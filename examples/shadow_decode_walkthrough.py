#!/usr/bin/env python3
"""Walk through Skia's head-decoding algorithm on real bytes.

Reproduces the paper's Figure 9 narrative on a line from a generated
program: pick a cache line that a branch enters mid-way, print the head
shadow region's bytes, the Index Computation Length vector, every
validated path, and the shadow branches the chosen path yields.

Run:
    python examples/shadow_decode_walkthrough.py
"""

from repro.core.sbd import ShadowBranchDecoder
from repro.frontend.config import SkiaConfig
from repro.isa.branch import BranchKind
from repro.workloads import build_program
from repro.workloads.program import LINE_SIZE, line_of


def find_interesting_entry(program):
    """A branch target mid-line whose head region contains a shadow
    branch -- scan real taken-branch targets."""
    decoder_config = SkiaConfig()
    sbd = ShadowBranchDecoder(program.image, program.base_address,
                              decoder_config)
    for block in program.iter_blocks():
        terminator = block.terminator
        if terminator.target_label is None:
            continue
        target = program.block(terminator.target_label).start_pc
        if target % LINE_SIZE == 0:
            continue
        result = sbd.decode_head(target)
        if result.branches and result.valid_paths >= 2:
            return target, result
    raise SystemExit("no multi-path head region found (unexpected)")


def main() -> None:
    program = build_program("tpcc")
    print(program.describe())
    entry_pc, result = find_interesting_entry(program)

    line = line_of(entry_pc)
    entry_offset = entry_pc - line
    region = program.bytes_at(line, entry_offset)
    print(f"\nFTQ entry point {entry_pc:#x} = line {line:#x} + offset "
          f"{entry_offset}")
    print(f"head shadow region ({entry_offset} bytes): {region.hex(' ')}")

    # Phase 1: Index Computation (the Length vector of Figure 9).
    sbd = ShadowBranchDecoder(program.image, program.base_address,
                              SkiaConfig())
    image_base = line - program.base_address
    lengths = sbd._index_computation(image_base, entry_offset)
    print(f"\nIndex Computation -> Length vector: {lengths}")
    print("  (0 means no valid instruction starts at that byte)")

    # Phase 2: Path Validation.
    valid_starts = sbd._path_validation(lengths, entry_offset)
    print(f"\nPath Validation -> {len(valid_starts)} valid path(s), "
          f"starting at offsets {valid_starts}")
    for start in valid_starts:
        path = [start]
        position = start
        while position < entry_offset:
            position += lengths[position]
            path.append(position)
        print(f"  path from {start}: {' -> '.join(map(str, path))}")

    print(f"\nchosen start (First Index policy): {result.chosen_start}")
    print("shadow branches inserted into the SBB:")
    for branch in result.branches:
        where = "U-SBB" if branch.kind is not BranchKind.RETURN else "R-SBB"
        target = f" target={branch.target:#x}" if branch.target else ""
        truth = ("true" if program.is_instruction_start(branch.pc)
                 else "BOGUS")
        print(f"  {branch.pc:#x}: {branch.kind.value}{target} "
              f"-> {where}  [{truth} instruction boundary]")


if __name__ == "__main__":
    main()
