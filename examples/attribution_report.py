#!/usr/bin/env python3
"""Attribution walkthrough: who causes the BTB misses, who gets rescued.

Runs one workload twice -- baseline front-end and FDIP+Skia -- with the
per-branch/per-line attribution layer attached, then:

1. prints the per-PC reconstruction of the paper's headline fraction
   (what share of BTB misses land in shadow bytes of L1I-resident
   lines, Figures 1/15) and verifies it equals the aggregate counter
   *exactly*;
2. shows the top offender branches by resteer cycles, with their
   static head/tail shadow position and U-/R-SBB rescue split;
3. shows the cache lines with the most unrescued misses and how many
   of their shadow bytes the SBD actually decoded;
4. diffs Skia against the baseline per branch -- the improvement shows
   up as negative cycle deltas on the rescued PCs.

Run:
    python examples/attribution_report.py [workload]
"""

import sys

from repro import WORKLOAD_NAMES
from repro.frontend.config import baseline_config, skia_config
from repro.harness.runner import ExperimentRunner
from repro.harness.scale import SCALES
from repro.obs import diff_attributions


def main() -> None:
    workload = sys.argv[1] if len(sys.argv) > 1 else "voter"
    if workload not in WORKLOAD_NAMES:
        known = ", ".join(WORKLOAD_NAMES)
        raise SystemExit(f"unknown workload {workload!r}; choose from: {known}")

    runner = ExperimentRunner(scale=SCALES["smoke"], store=None,
                              record_attribution=True)

    print(f"Simulating {workload} with attribution (baseline, then Skia)...")
    base_stats, base = runner.run_with_attribution(workload, baseline_config())
    skia_stats, skia = runner.run_with_attribution(workload, skia_config())

    # -- 1. the Figure 1/15 fraction, per-branch vs aggregate ----------
    totals = skia.totals()
    print()
    print(f"{int(totals['branches'])} static branches over "
          f"{int(totals['lines'])} cache lines attributed")
    print(f"shadow-resident BTB-miss fraction: "
          f"{skia.shadow_resident_fraction:.1%} "
          f"(SimStats: {skia_stats.btb_miss_l1i_hit_fraction:.1%})")
    assert skia.shadow_resident_fraction == (
        skia_stats.btb_miss_l1i_hit_fraction), "conservation broken!"

    # -- 2. worst branches ---------------------------------------------
    print()
    print("top 5 branches by resteer cycles (Skia run):")
    print(f"  {'pc':>10}  {'kind':<14} {'shadow':<9} "
          f"{'miss':>5} {'u+r':>7} {'cycles':>8}  top cause")
    for branch in skia.top_branches(5):
        rescued = f"{branch.sbb_hits_u}+{branch.sbb_hits_r}"
        print(f"  0x{branch.pc:08x}  {branch.kind or '?':<14} "
              f"{branch.shadow:<9} {branch.btb_misses:>5} {rescued:>7} "
              f"{branch.cycles:>8.0f}  {branch.top_cause}")

    # -- 3. worst lines ------------------------------------------------
    print()
    print("top 5 cache lines by unrescued misses:")
    print(f"  {'line':>10}  {'missed':>6} {'rescued':>7} "
          f"{'head/tail bytes decoded':>24}")
    for line in skia.top_lines(5):
        print(f"  0x{line.line:08x}  {line.missed:>6} {line.rescued:>7} "
              f"{line.head_bytes:>11} / {line.tail_bytes}")

    # -- 4. the per-branch A/B -----------------------------------------
    diff = diff_attributions(base, skia)
    improved = sum(1 for d in diff.deltas if d.delta_cycles < 0)
    print()
    print(f"Skia vs baseline: {len(diff.deltas)} branches moved, "
          f"{improved} improved, {len(diff.regressions)} regressed "
          f"past thresholds")
    print()
    print("Interpretation: branches whose resteer cycles drop are the")
    print("ones Skia pre-decodes out of the shadows (paper Section 6);")
    print("`repro attrib diff` turns the same comparison into a CI gate.")


if __name__ == "__main__":
    main()
