#!/usr/bin/env python3
"""Characterise a workload the way the paper characterises its suite.

Prints the static/dynamic branch mix, the cold-branch reuse profile (the
paper's §1 definition of "cold": recurring branches whose reuse distance
exceeds the BTB), the shadow-region geometry, and a disassembly of one
cache line with its head/tail shadow zones annotated (a textual
Figure 5).

Run:
    python examples/workload_report.py [workload]
"""

import sys

from repro.isa.disasm import disassemble_line_region
from repro.workloads import WORKLOAD_NAMES, build_program, build_trace
from repro.workloads.analysis import characterise, shadow_geometry
from repro.workloads.program import LINE_SIZE

RECORDS = 60_000


def pick_annotated_line(program, records):
    """A line that some trace record enters mid-way and exits by a taken
    branch -- i.e. one with both shadow zones."""
    for record in records:
        entry_offset = record.block_start % LINE_SIZE
        exit_pc = record.branch_pc + record.branch_len
        same_line = (record.block_start // LINE_SIZE
                     == (exit_pc - 1) // LINE_SIZE)
        if record.taken and entry_offset > 8 and same_line \
                and exit_pc % LINE_SIZE not in (0,) \
                and exit_pc % LINE_SIZE < 48:
            line_pc = record.block_start - entry_offset
            return line_pc, entry_offset, exit_pc % LINE_SIZE
    return None


def main() -> None:
    workload = sys.argv[1] if len(sys.argv) > 1 else "tpcc"
    if workload not in WORKLOAD_NAMES:
        raise SystemExit(f"unknown workload {workload!r}")

    program = build_program(workload)
    records = build_trace(workload, RECORDS)

    print(characterise(program, records).render())

    geometry = shadow_geometry(program)
    print(f"\nshadow geometry (static): {geometry.total_branches} branches;"
          f" {geometry.tail_fraction:.0%} have a same-line earlier exit"
          f" (tail-shadow candidates);"
          f" {geometry.eligible_fraction:.0%} SBB-eligible")

    found = pick_annotated_line(program, records)
    if found:
        line_pc, entry_offset, exit_offset = found
        print(f"\nFigure-5-style view of line {line_pc:#x} "
              f"(entry at +{entry_offset}, taken exit at +{exit_offset}):\n")
        print(disassemble_line_region(
            program.image, program.base_address, line_pc,
            entry_offset=entry_offset, exit_offset=exit_offset))
        print("\nBranches in HEAD/TAIL zones are the shadow branches Skia")
        print("decodes into the SBB without waiting for them to execute.")


if __name__ == "__main__":
    main()
