#!/usr/bin/env python3
"""Build a custom workload profile and measure Skia on it.

Shows the public workload API end to end: define a
:class:`~repro.workloads.profiles.WorkloadProfile` for a hypothetical
interpreter-style application (big dispatch fan-out, small handlers,
heavy call/return traffic), generate its program and trace, and sweep
the SBB budget to find the saturation point -- the Figure 17 (bottom)
methodology applied to your own workload.

Run:
    python examples/custom_workload.py
"""

from repro import FrontEndConfig, SkiaConfig, simulate
from repro.workloads.codegen import ProgramGenerator
from repro.workloads.profiles import WorkloadProfile
from repro.workloads.trace import TraceGenerator

INTERPRETER = WorkloadProfile(
    name="my-interpreter",
    suite="custom",
    # A bytecode interpreter: ~600 opcode handlers, most cold.
    n_handlers=600,
    n_lib_funcs=700,
    handler_blocks=(4, 9),
    lib_blocks=(2, 4),
    block_instrs=(1, 5),
    handler_zipf_s=0.8,
    # Opcode streams repeat locally (runs of the same opcode are short).
    dispatch_run_range=(1, 2),
    # Call/return heavy, like the paper's voter/sibench.
    p_cond_block=0.28, p_call_block=0.36, p_jmp_block=0.18,
    p_early_ret_block=0.10,
)

RECORDS, WARMUP = 120_000, 40_000


def main() -> None:
    print(f"Generating custom workload {INTERPRETER.name!r}...")
    program = ProgramGenerator(INTERPRETER, seed=42).generate()
    print(program.describe())
    trace = TraceGenerator(
        program, seed=42,
        dispatch_run_range=INTERPRETER.dispatch_run_range).records(RECORDS)

    baseline = simulate(program, trace, FrontEndConfig(), warmup=WARMUP)
    print(f"\nbaseline: IPC={baseline.ipc:.3f} "
          f"L1-I MPKI={baseline.l1i_mpki:.1f} "
          f"BTB miss MPKI={baseline.btb_miss_mpki:.2f} "
          f"(L1-resident fraction {baseline.btb_miss_l1i_hit_fraction:.0%})")

    print("\nSBB budget sweep (Figure 17 bottom methodology):")
    print(f"{'scale':>6s} {'state':>9s} {'IPC':>7s} {'gain':>7s} "
          f"{'SBB hits':>9s}")
    for factor in (0.25, 0.5, 1.0, 2.0, 4.0):
        skia_config = SkiaConfig().scaled(factor)
        stats = simulate(program, trace,
                         FrontEndConfig(skia=skia_config), warmup=WARMUP)
        gain = stats.ipc / baseline.ipc - 1
        print(f"{factor:>5.2f}x {skia_config.total_size_kib:>8.2f}K "
              f"{stats.ipc:>7.3f} {gain:>7.2%} {stats.total_sbb_hits:>9d}")

    print("\nReading: gains should grow with SBB capacity and flatten once")
    print("the recurring shadow-branch working set fits (saturation).")


if __name__ == "__main__":
    main()
