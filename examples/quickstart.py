#!/usr/bin/env python3
"""Quickstart: baseline FDIP vs FDIP+Skia on one workload.

Builds the synthetic ``voter`` workload (the paper's most Skia-friendly
benchmark: call/return-heavy OLTP dispatch), replays the same trace
through a baseline decoupled front-end and one with the 12.25KB Shadow
Branch Buffer, and prints the comparison.

Run:
    python examples/quickstart.py [workload]
"""

import sys

from repro import WORKLOAD_NAMES, quick_compare


def main() -> None:
    workload = sys.argv[1] if len(sys.argv) > 1 else "voter"
    if workload not in WORKLOAD_NAMES:
        known = ", ".join(WORKLOAD_NAMES)
        raise SystemExit(f"unknown workload {workload!r}; choose from: {known}")

    print(f"Simulating {workload} (baseline FDIP, then FDIP+Skia)...")
    result = quick_compare(workload)
    print()
    print(result.render())
    print()
    print("Interpretation: 'speedup' is Skia's IPC gain from covering BTB")
    print("misses with shadow-decoded branches (paper Figure 14).")


if __name__ == "__main__":
    main()
