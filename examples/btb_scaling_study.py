#!/usr/bin/env python3
"""BTB scaling study (the paper's Figure 3, for one workload).

Sweeps BTB sizes and compares four front-ends: plain BTB, BTB plus the
SBB's 12.25KB handed to the BTB, BTB plus Skia's SBB, and an infinite
BTB -- then draws an ASCII chart of normalised performance.

Run:
    python examples/btb_scaling_study.py [workload]
"""

import sys

from repro import FrontEndConfig, SkiaConfig, build_program, build_trace, simulate

BTB_SIZES = (2048, 4096, 8192, 16384)
RECORDS, WARMUP = 160_000, 50_000


def run_all(workload: str) -> dict[str, dict[int, float]]:
    program = build_program(workload)
    trace = build_trace(workload, RECORDS)

    def ipc(config: FrontEndConfig) -> float:
        return simulate(program, trace, config, warmup=WARMUP).ipc

    results: dict[str, dict[int, float]] = {
        "BTB": {}, "BTB+12.25KB": {}, "BTB+SBB": {}}
    for entries in BTB_SIZES:
        base = FrontEndConfig().with_btb_entries(entries)
        results["BTB"][entries] = ipc(base)
        results["BTB+12.25KB"][entries] = ipc(
            base.with_extra_btb_state(12.25 * 1024))
        results["BTB+SBB"][entries] = ipc(base.with_skia(SkiaConfig()))
    results["Infinite"] = {entries: ipc(
        FrontEndConfig().with_btb_entries(1 << 22, infinite=True))
        for entries in BTB_SIZES[:1]}
    return results


def ascii_chart(results: dict) -> str:
    reference = results["BTB"][BTB_SIZES[0]]
    lines = [f"{'config':14s} " + "".join(f"{s//1024:>7d}K" for s in BTB_SIZES),
             "-" * (15 + 8 * len(BTB_SIZES))]
    for name in ("BTB", "BTB+12.25KB", "BTB+SBB"):
        cells = "".join(f"{results[name][s] / reference:8.4f}"
                        for s in BTB_SIZES)
        lines.append(f"{name:14s} {cells}")
    infinite = results["Infinite"][BTB_SIZES[0]] / reference
    lines.append(f"{'Infinite BTB':14s} {infinite:8.4f} (size-independent)")

    lines.append("\nspeedup of BTB+SBB over plain BTB per size:")
    for entries in BTB_SIZES:
        gain = results["BTB+SBB"][entries] / results["BTB"][entries] - 1
        bar = "#" * max(1, round(gain * 400))
        lines.append(f"  {entries // 1024:>3d}K  {gain:6.2%}  {bar}")
    return "\n".join(lines)


def main() -> None:
    workload = sys.argv[1] if len(sys.argv) > 1 else "sibench"
    print(f"BTB scaling study on {workload} "
          f"(normalised to the {BTB_SIZES[0] // 1024}K plain BTB)\n")
    results = run_all(workload)
    print(ascii_chart(results))
    print("\nPaper shape (Figure 3): BTB+SBB roughly doubles the benefit of")
    print("spending the same 12.25KB on BTB capacity, at every size until")
    print("saturation; the infinite BTB is the ceiling.")


if __name__ == "__main__":
    main()
