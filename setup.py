"""Legacy setup shim.

The evaluation environment has no network access and no ``wheel`` package,
so PEP 517 editable installs fail; this file lets ``pip install -e .`` fall
back to ``setup.py develop``.  All real metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
