# Convenience targets for the Skia reproduction.

PYTHON ?= python3
SCALE ?= quick
# Simulation worker processes for bench targets (0 = all CPUs).
JOBS ?= 1

.PHONY: install test bench bench-smoke bench-trajectory trace report \
	examples clean clean-cache clean-runs

install:
	$(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/

test-output:
	$(PYTHON) -m pytest tests/ 2>&1 | tee test_output.txt

bench:
	REPRO_SCALE=$(SCALE) REPRO_JOBS=$(JOBS) $(PYTHON) -m pytest benchmarks/ --benchmark-only

bench-smoke:
	REPRO_SCALE=smoke REPRO_JOBS=$(JOBS) $(PYTHON) -m pytest benchmarks/ --benchmark-only

# Record a benchmark-trajectory point (BENCH_<date>.json at repo root).
# Compare against the blessed baseline with:
#   python -m repro bench compare
bench-trajectory:
	REPRO_SCALE=$(SCALE) PYTHONPATH=src $(PYTHON) -m repro bench run --jobs $(JOBS)

# Produce a Perfetto-loadable pipeline timeline + event trace for one
# smoke-scale Skia run (see docs/observability.md).
trace:
	PYTHONPATH=src $(PYTHON) -m repro --scale smoke stats run voter \
		--config skia --trace-out voter-events.jsonl \
		--timeline-out voter-timeline.json

report:
	$(PYTHON) -m repro report

examples:
	$(PYTHON) examples/quickstart.py
	$(PYTHON) examples/shadow_decode_walkthrough.py
	$(PYTHON) examples/workload_report.py
	$(PYTHON) examples/custom_workload.py
	$(PYTHON) examples/btb_scaling_study.py

clean:
	# Run ledgers first (manifest/spans/profile JSONL under runs/),
	# then the rest of the cache; listed separately so `clean` keeps
	# sweeping ledgers even if the cache layout changes.
	rm -rf .repro_cache/runs
	rm -rf .pytest_cache benchmarks/bench_results .repro_cache
	rm -f BENCH_*.json.tmp
	find . -name __pycache__ -type d -exec rm -rf {} +
	# Compiled-trace artifacts: shared-memory segments orphaned by a
	# killed run (normal exits unlink their own) and spill-file strays.
	rm -f /dev/shm/repro_ctrace_* 2>/dev/null || true

# Drop only the persistent result store (force cold re-simulation);
# includes the compiled-trace spill area (.repro_cache/compiled).
clean-cache:
	rm -rf .repro_cache

# Drop only recorded run ledgers (`python -m repro runs list`), keeping
# the simulation result store warm.
clean-runs:
	rm -rf .repro_cache/runs
