"""Section 6.1.4: Verilator bolted vs pre-bolt.

Paper shape: the un-bolted binary has significantly more BTB misses and
a larger Skia gain (10.27% pre-bolt); Skia still helps after BOLT.
"""

from repro.harness import experiments


def test_verilator_bolt(benchmark, runner, save_render):
    result = benchmark.pedantic(
        experiments.verilator_bolt_comparison,
        kwargs=dict(runner=runner),
        rounds=1, iterations=1)
    save_render("verilator_bolt", result["render"])

    data = result["data"]
    assert data["prebolt"]["btb_miss_mpki"] > data["bolted"]["btb_miss_mpki"]
    assert data["prebolt"]["gain"] > data["bolted"]["gain"]
    assert data["bolted"]["gain"] > 0  # robust to software layout fixes
