"""Seed stability: the headline Skia gain must survive re-seeding.

Not a paper exhibit, but the reproducibility check a credible release
ships: per-seed programs *and* traces differ, so this measures synthetic
workload-generation variance.
"""

import os

from repro.frontend.config import FrontEndConfig, SkiaConfig
from repro.harness.multiseed import speedup_metric, sweep_seeds
from repro.harness.reporting import format_table
from repro.harness.scale import Scale, current_scale


def test_seed_stability(benchmark, save_render):
    scale = current_scale()
    sweep_scale = Scale("seedsweep", records=min(scale.records, 120_000),
                        warmup=min(scale.warmup, 40_000))
    workloads = ("voter", "tpcc", "kafka")
    # Seeds are independent simulations; honour REPRO_JOBS here since the
    # sweep bypasses the shared session runner.
    jobs = 0 if os.environ.get("REPRO_JOBS", "").strip() not in ("", "1") else 1

    def run():
        return {
            workload: sweep_seeds(
                workload, speedup_metric, FrontEndConfig(),
                FrontEndConfig(skia=SkiaConfig()),
                seeds=(0, 1, 2), scale=sweep_scale, jobs=jobs)
            for workload in workloads
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [[workload, f"{result.mean:.2%}", f"{result.std:.2%}",
             f"[{result.minimum:.2%}, {result.maximum:.2%}]"]
            for workload, result in results.items()]
    render = format_table(
        ["workload", "mean gain", "std", "range"], rows,
        title="Seed stability of the Skia IPC gain (3 seeds)")
    save_render("seed_stability", render)

    for workload, result in results.items():
        assert result.minimum > 0, workload
        # voter stays clearly above kafka for every seed.
    assert results["voter"].minimum > results["kafka"].maximum
