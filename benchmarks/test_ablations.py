"""Design-choice ablations called out in DESIGN.md.

* Valid Index policy (Section 3.2.2): the paper found First Index best.
* Valid-path cutoff (Section 3.2.2): the paper discards lines with more
  than six valid paths.
* SBB replacement (Section 4.3): retired-first vs plain LRU.
"""

from repro.harness import experiments


def test_ablation_index_policy(benchmark, runner, sweep_params, save_render):
    result = benchmark.pedantic(
        experiments.ablation_index_policy,
        kwargs=dict(runner=runner, workloads=sweep_params["workloads"]),
        rounds=1, iterations=1)
    save_render("ablation_index_policy", result["render"])
    data = result["data"]
    assert all(value > 0 for value in data.values())
    # First index is at least competitive with the alternatives.
    assert data["first"] >= max(data.values()) - 0.01


def test_ablation_max_paths(benchmark, runner, sweep_params, save_render):
    result = benchmark.pedantic(
        experiments.ablation_max_paths,
        kwargs=dict(runner=runner, workloads=sweep_params["workloads"],
                    limits=sweep_params["max_paths_limits"]),
        rounds=1, iterations=1)
    save_render("ablation_max_paths", result["render"])
    data = result["data"]
    # Over-strict cutoffs forfeit head coverage: the paper's 6 beats 1.
    assert data[6] >= data[1] - 0.005


def test_ablation_retired_bit(benchmark, runner, sweep_params, save_render):
    result = benchmark.pedantic(
        experiments.ablation_retired_bit,
        kwargs=dict(runner=runner, workloads=sweep_params["workloads"]),
        rounds=1, iterations=1)
    save_render("ablation_retired_bit", result["render"])
    data = result["data"]
    assert data["retired-first"] >= data["plain LRU"] - 0.005
