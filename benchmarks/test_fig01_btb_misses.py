"""Figure 1: BTB miss MPKI vs BTB size, split by L1-I residency.

Paper claim: at an 8K-entry BTB, ~75% of BTB-missing branches are in
lines already resident in the L1-I.
"""

from repro.harness import experiments


def test_fig1_btb_misses(benchmark, runner, sweep_params, save_render):
    result = benchmark.pedantic(
        experiments.fig1_btb_miss_l1i_hit,
        kwargs=dict(runner=runner, btb_sizes=sweep_params["btb_sizes"],
                    workloads=sweep_params["workloads"]),
        rounds=1, iterations=1)
    save_render("fig01_btb_misses", result["render"])

    data = result["data"]
    sizes = sorted(data)
    # Shape: bigger BTBs miss less; a large share of misses is L1-resident.
    for smaller, larger in zip(sizes, sizes[1:]):
        assert data[larger]["total_mpki"] <= data[smaller]["total_mpki"]
    assert data[8192]["l1i_hit_fraction"] > 0.5
