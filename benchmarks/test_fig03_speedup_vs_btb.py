"""Figure 3: geomean speedup vs BTB size for four configurations.

Paper shape: BTB+SBB consistently outgains BTB+12.25KB-of-BTB-state
(~2x) at every size until saturation, with the infinite BTB as the
ceiling.
"""

from repro.harness import experiments


def test_fig3_speedup_vs_btb(benchmark, runner, sweep_params, save_render):
    result = benchmark.pedantic(
        experiments.fig3_speedup_vs_btb_size,
        kwargs=dict(runner=runner, btb_sizes=sweep_params["btb_sizes"],
                    workloads=sweep_params["workloads"]),
        rounds=1, iterations=1)
    save_render("fig03_speedup_vs_btb", result["render"])

    data = result["data"]
    for entries in sweep_params["btb_sizes"]:
        # Skia on top of a BTB beats handing the SBB budget to the BTB.
        assert data["btb_plus_sbb"][entries] >= data["btb_plus_state"][entries]
        # ... and never loses to the plain BTB.
        assert data["btb_plus_sbb"][entries] >= data["btb"][entries]
