"""Tables 1 and 2: configuration and benchmark listings."""

from repro.harness import experiments


def test_table1_config(benchmark, save_render):
    result = benchmark.pedantic(experiments.table1_config,
                                rounds=1, iterations=1)
    save_render("table1_config", result["render"])
    render = result["render"]
    assert "8K-entry/78KB" in render
    assert "7.3125KB" in render
    assert "24 entries" in render


def test_table2_benchmarks(benchmark, save_render):
    result = benchmark.pedantic(experiments.table2_benchmarks,
                                rounds=1, iterations=1)
    save_render("table2_benchmarks", result["render"])
    suites = result["suites"]
    assert set(suites) == {"DaCapo", "Renaissance", "OLTPBench",
                           "Chipyard", "BrowserBench"}
