"""Figure 13: L1-I MPKI, paper's real-system measurement vs simulation.

Paper claim: simulation tracks the real system within ~18% overall; the
reproduction substitutes synthetic workloads, so we assert order-of-
magnitude agreement and that the suite is front-end bound overall.
"""

from repro.harness import experiments


def test_fig13_l1i_mpki(benchmark, runner, sweep_params, save_render):
    result = benchmark.pedantic(
        experiments.fig13_l1i_mpki,
        kwargs=dict(runner=runner, workloads=sweep_params["workloads"]),
        rounds=1, iterations=1)
    save_render("fig13_l1i_mpki", result["render"])

    measured = [entry["measured"] for entry in result["data"].values()]
    # The suite stresses the L1-I: most workloads are miss-heavy.
    assert sum(mpki > 5 for mpki in measured) >= len(measured) // 2
