"""Figure 14 + Section 6.1 headline numbers: IPC gain per benchmark for
head-only, tail-only and combined shadow decoding.

Paper shape: both > tail-only > head-only in geomean (5.64% / 4.39% /
3.68%); voter and sibench the largest gains; kafka, finagle-chirper and
speedometer2.0 the smallest.
"""

from repro.harness import experiments


def test_fig14_ipc_gain(benchmark, runner, sweep_params, save_render):
    result = benchmark.pedantic(
        experiments.fig14_ipc_gain,
        kwargs=dict(runner=runner, workloads=sweep_params["workloads"]),
        rounds=1, iterations=1)
    save_render("fig14_ipc_gain", result["render"])

    geo = result["geomean"]
    assert geo["both"] > 0
    assert geo["both"] >= geo["tail"] * 0.98
    assert geo["both"] >= geo["head"] * 0.98
    assert geo["tail"] >= geo["head"] * 0.9  # tail-only carries most benefit

    both = result["data"]["both"]
    if "voter" in both and "kafka" in both:
        assert both["voter"] > both["kafka"]
    if "sibench" in both and "finagle-chirper" in both:
        assert both["sibench"] > both["finagle-chirper"]
