"""Section 3.2.2: bogus shadow-branch insertion audit.

Paper claim: ~0.0002% of SBB insertions are bogus.  Our synthetic ISA's
opcode map is denser than real x86-64's valid-encoding space at the
offsets that matter, so the reproduced rate is higher; the shape claim
is that the rate stays far below 1% and head decoding is the only
source.
"""

from repro.harness import experiments


def test_bogus_rate(benchmark, runner, sweep_params, save_render):
    result = benchmark.pedantic(
        experiments.bogus_rate_audit,
        kwargs=dict(runner=runner, workloads=sweep_params["workloads"]),
        rounds=1, iterations=1)
    save_render("bogus_rate", result["render"])

    assert result["average"] < 0.01
    for workload, rate in result["data"].items():
        assert rate < 0.05, workload
