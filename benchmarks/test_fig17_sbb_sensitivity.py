"""Figure 17: SBB sensitivity.

Top: U-SBB/R-SBB entry split at a constant ~12.25KB (paper's chosen
split is 768U/2024R).  Bottom: total SBB capacity scaling at the default
U:R ratio -- gains grow with capacity until saturation.
"""

from repro.harness import experiments


def test_fig17_sbb_sensitivity(benchmark, runner, sweep_params, save_render):
    result = benchmark.pedantic(
        experiments.fig17_sbb_sensitivity,
        kwargs=dict(runner=runner, workloads=sweep_params["workloads"],
                    splits=sweep_params["fig17_splits"],
                    scales=sweep_params["fig17_scales"]),
        rounds=1, iterations=1)
    save_render("fig17_sbb_sensitivity", result["render"])

    splits = result["splits"]
    # A mixed split beats both degenerate extremes when they are present.
    if (0, 5016) in splits and (1284, 8) in splits:
        best_mixed = max(value for (u, _), value in splits.items()
                         if 0 < u < 1284)
        assert best_mixed >= splits[(0, 5016)]
        assert best_mixed >= splits[(1284, 8)]

    scales = result["scales"]
    ordered = sorted(scales)
    # More capacity never hurts much; the large end outgains the small end.
    assert scales[ordered[-1]] >= scales[ordered[0]]
