"""Section 7.1 measured: Skia vs Confluence-like vs Boomerang-like.

The paper argues qualitatively that prior hardware schemes miss cold
shadow branches (AirBTB only retains executed branches while their lines
are resident; Boomerang's predecode cannot see bytes before the entry
point of a variable-length line).  This benchmark quantifies the
argument on the same substrate and workloads.
"""

from repro.frontend.config import FrontEndConfig, SkiaConfig
from repro.harness import experiments
from repro.harness.reporting import format_table, geomean_speedup, pct
from repro.harness.scale import current_scale


def test_comparators(benchmark, runner, sweep_params, save_render):
    base = FrontEndConfig()
    configs = {
        "AirBTB-lite": base.with_comparator("airbtb"),
        "Boomerang-lite": base.with_comparator("boomerang"),
        "Skia": base.with_skia(SkiaConfig()),
    }

    def run():
        gains = {}
        for name, config in configs.items():
            ratios = []
            for workload in sweep_params["workloads"]:
                ratios.append(runner.run(workload, config).ipc
                              / runner.run(workload, base).ipc)
            gains[name] = geomean_speedup(ratios)
        return gains

    gains = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [[name, pct(value)] for name, value in gains.items()]
    render = format_table(
        ["mechanism", "geomean gain"], rows,
        title=("Section 7.1 comparators: Skia vs prior hardware schemes "
               "(paper: prior schemes miss cold shadow branches)"))
    save_render("comparators", render)

    assert gains["Skia"] >= gains["AirBTB-lite"]
    # Smoke traces (40k blocks, 3 workloads) sit below calibration
    # fidelity; the tight Boomerang margin only holds from quick up.
    boomerang_factor = 0.95 if current_scale().name == "smoke" else 0.98
    assert gains["Skia"] >= gains["Boomerang-lite"] * boomerang_factor


def test_comparator_zoo(benchmark, runner, sweep_params, save_render):
    """Cross-design grid: Skia vs bigger-BTB vs Micro-BTB vs FDIP-depth."""
    zoo = benchmark.pedantic(
        lambda: experiments.comparator_zoo(
            runner, workloads=sweep_params["workloads"],
            depths=sweep_params["fdip_depths"]),
        rounds=1, iterations=1)
    save_render("comparator_zoo", zoo["render"])

    gains = {label: values["gain"] for label, values in zoo["data"].items()}
    # The execution-history designs cannot see never-executed shadow
    # branches, so Skia stays at or above both on every scale.
    factor = 0.95 if current_scale().name == "smoke" else 0.98
    assert gains["Skia"] >= gains["AirBTB-lite"] * factor
    assert gains["Skia"] >= gains["MicroBTB-lite"] * factor
