"""Figure 16: effective BTB miss MPKI -- baseline vs BTB+12.25KB vs Skia.

Paper claim: Skia reduces average BTB MPKI ~115% (i.e. >2x) versus ~35%
for handing the same budget to the BTB.  Shape assertion: Skia's
reduction is larger than the ISO-budget BTB's.
"""

from repro.harness import experiments


def test_fig16_mpki_reduction(benchmark, runner, sweep_params, save_render):
    result = benchmark.pedantic(
        experiments.fig16_mpki_reduction,
        kwargs=dict(runner=runner, workloads=sweep_params["workloads"]),
        rounds=1, iterations=1)
    save_render("fig16_mpki_reduction", result["render"])

    summary = result["summary"]
    assert summary["skia_reduction"] > summary["btb_plus_state_reduction"]
    for entry in result["data"].values():
        assert entry["skia"] <= entry["baseline"]
