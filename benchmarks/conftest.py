"""Benchmark-suite fixtures.

Each benchmark regenerates one exhibit (table/figure) from the paper's
evaluation section and prints its ASCII rendering, so the benchmark log
together with ``bench_results/`` is a full reproduction of Section 6.

``REPRO_SCALE`` controls trace length (see repro.harness.scale); the
sweep densities below also shrink at smoke scale so CI stays fast.
"""

from __future__ import annotations

import pathlib

import pytest

from repro.harness.runner import ExperimentRunner
from repro.harness.scale import current_scale

RESULTS_DIR = pathlib.Path(__file__).parent / "bench_results"


@pytest.fixture(scope="session")
def runner() -> ExperimentRunner:
    """One memoised runner shared by every benchmark, so exhibits that
    need the same (workload, config) cells share the simulation."""
    return ExperimentRunner(scale=current_scale())


@pytest.fixture(scope="session")
def sweep_params() -> dict:
    """Sweep densities tuned per scale."""
    scale = current_scale()
    if scale.name == "smoke":
        return {
            "workloads": ("noop", "voter", "kafka"),
            "btb_sizes": (4096, 8192),
            "fig17_splits": ((768, 2024), (1024, 1024)),
            "fig17_scales": (0.5, 1.0),
            "max_paths_limits": (1, 6),
        }
    if scale.name == "quick":
        from repro.workloads.profiles import WORKLOAD_NAMES
        return {
            "workloads": WORKLOAD_NAMES,
            "btb_sizes": (2048, 8192, 32768),
            "fig17_splits": ((0, 5016), (512, 3020), (768, 2024),
                             (1024, 1024), (1284, 8)),
            "fig17_scales": (0.25, 0.5, 1.0, 2.0, 4.0),
            "max_paths_limits": (1, 6, 64),
        }
    from repro.harness.experiments import BTB_SWEEP, FIG17_SCALES, FIG17_SPLITS
    from repro.workloads.profiles import WORKLOAD_NAMES
    return {
        "workloads": WORKLOAD_NAMES,
        "btb_sizes": BTB_SWEEP,
        "fig17_splits": FIG17_SPLITS,
        "fig17_scales": FIG17_SCALES,
        "max_paths_limits": (1, 2, 4, 6, 12, 64),
    }


@pytest.fixture(scope="session")
def save_render():
    """Persist each exhibit's rendering under bench_results/."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def save(name: str, render: str) -> None:
        path = RESULTS_DIR / f"{name}.txt"
        path.write_text(render + "\n")
        print(f"\n{render}\n[saved to {path}]")

    return save
