"""Benchmark-suite fixtures.

Each benchmark regenerates one exhibit (table/figure) from the paper's
evaluation section and prints its ASCII rendering, so the benchmark log
together with ``bench_results/`` is a full reproduction of Section 6.

``REPRO_SCALE`` controls trace length (see repro.harness.scale); the
sweep densities below also shrink at smoke scale so CI stays fast.

``REPRO_JOBS`` controls parallelism: when set (and not 1), the session
runner fans every exhibit's cells out over a process pool *before* the
first benchmark runs, so the timed exhibit functions assemble their
tables from memo hits.  The persistent store (``.repro_cache/``) makes
repeat invocations near-instant either way; ``REPRO_NO_STORE=1`` opts
out.
"""

from __future__ import annotations

import os
import pathlib

import pytest

from repro.harness import experiments
from repro.harness.runner import ExperimentRunner
from repro.harness.scale import current_scale

RESULTS_DIR = pathlib.Path(__file__).parent / "bench_results"

#: Exhibits whose cells are pre-simulated when REPRO_JOBS requests
#: parallelism.  One combined batch maximises dedup: the 8K-BTB baseline
#: cells are shared by most of these.
PREFETCH_EXHIBITS = ("fig1", "fig3", "fig6", "fig13", "fig14", "fig15",
                     "fig16", "fig17", "fig18", "bolt", "bogus",
                     "ablation-index", "ablation-paths",
                     "ablation-retired", "comparator-zoo")


def _planned_cells(sweep_params: dict) -> list:
    cells: list = []
    for name in PREFETCH_EXHIBITS:
        kwargs: dict = {"workloads": sweep_params["workloads"]}
        if name in ("fig1", "fig3"):
            kwargs["btb_sizes"] = sweep_params["btb_sizes"]
        elif name == "fig17":
            kwargs["splits"] = sweep_params["fig17_splits"]
            kwargs["scales"] = sweep_params["fig17_scales"]
        elif name == "ablation-paths":
            kwargs["limits"] = sweep_params["max_paths_limits"]
        elif name == "comparator-zoo":
            kwargs["depths"] = sweep_params["fdip_depths"]
        cells += experiments.exhibit_cells(name, **kwargs)
    return cells


@pytest.fixture(scope="session")
def runner(sweep_params) -> ExperimentRunner:
    """One memoised runner shared by every benchmark, so exhibits that
    need the same (workload, config) cells share the simulation."""
    runner = ExperimentRunner(scale=current_scale())
    if os.environ.get("REPRO_JOBS", "").strip() not in ("", "1"):
        runner.run_cells(_planned_cells(sweep_params), jobs=0)
    return runner


@pytest.fixture(scope="session")
def sweep_params() -> dict:
    """Sweep densities tuned per scale."""
    scale = current_scale()
    if scale.name == "smoke":
        return {
            "workloads": ("noop", "voter", "kafka"),
            "btb_sizes": (4096, 8192),
            "fig17_splits": ((768, 2024), (1024, 1024)),
            "fig17_scales": (0.5, 1.0),
            "max_paths_limits": (1, 6),
            "fdip_depths": (1, 2),
        }
    if scale.name == "quick":
        from repro.workloads.profiles import WORKLOAD_NAMES
        return {
            "workloads": WORKLOAD_NAMES,
            "btb_sizes": (2048, 8192, 32768),
            "fig17_splits": ((0, 5016), (512, 3020), (768, 2024),
                             (1024, 1024), (1284, 8)),
            "fig17_scales": (0.25, 0.5, 1.0, 2.0, 4.0),
            "max_paths_limits": (1, 6, 64),
            "fdip_depths": (1, 2, 4),
        }
    from repro.harness.experiments import (BTB_SWEEP, FDIP_DEPTHS,
                                           FIG17_SCALES, FIG17_SPLITS)
    from repro.workloads.profiles import WORKLOAD_NAMES
    return {
        "workloads": WORKLOAD_NAMES,
        "btb_sizes": BTB_SWEEP,
        "fig17_splits": FIG17_SPLITS,
        "fig17_scales": FIG17_SCALES,
        "max_paths_limits": (1, 2, 4, 6, 12, 64),
        "fdip_depths": FDIP_DEPTHS,
    }


@pytest.fixture(scope="session")
def save_render():
    """Persist each exhibit's rendering under bench_results/."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def save(name: str, render: str) -> None:
        path = RESULTS_DIR / f"{name}.txt"
        path.write_text(render + "\n")
        print(f"\n{render}\n[saved to {path}]")

    return save
