"""Figure 15: per-benchmark BTB misses whose lines are L1-I resident."""

from repro.harness import experiments


def test_fig15_btb_miss_l1i_hit(benchmark, runner, sweep_params,
                                save_render):
    result = benchmark.pedantic(
        experiments.fig15_btb_miss_l1i_hit,
        kwargs=dict(runner=runner, workloads=sweep_params["workloads"]),
        rounds=1, iterations=1)
    save_render("fig15_btbmiss_l1ihit", result["render"])

    data = result["data"]
    fractions = [entry["fraction"] for entry in data.values()]
    # The paper's central observation: the majority of BTB-missing
    # branches sit on L1-I-resident lines.
    average = sum(fractions) / len(fractions)
    assert average > 0.6
    # kafka shows an especially high resident fraction (Section 6.1.2).
    if "kafka" in data and "voter" in data:
        assert data["kafka"]["fraction"] >= data["voter"]["fraction"]
