"""Figure 18: decoder idle-cycle reduction from Skia.

Paper shape: positive reductions across the suite, largest for the
call/return-heavy voter and sibench.
"""

from repro.harness import experiments


def test_fig18_decoder_idle(benchmark, runner, sweep_params, save_render):
    result = benchmark.pedantic(
        experiments.fig18_decoder_idle,
        kwargs=dict(runner=runner, workloads=sweep_params["workloads"]),
        rounds=1, iterations=1)
    save_render("fig18_decoder_idle", result["render"])

    data = result["data"]
    positive = sum(reduction > 0 for reduction in data.values())
    assert positive >= len(data) * 0.7
    if "voter" in data and "kafka" in data:
        assert data["voter"] > data["kafka"]
