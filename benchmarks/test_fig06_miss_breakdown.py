"""Figure 6: BTB misses by branch type at the 8K-entry BTB.

Paper shape: indirect branches are a vanishingly small share of misses
everywhere; kafka is conditional-dominated; voter/sibench are
call/return heavy.
"""

from repro.harness import experiments


def test_fig6_miss_breakdown(benchmark, runner, sweep_params, save_render):
    result = benchmark.pedantic(
        experiments.fig6_miss_breakdown,
        kwargs=dict(runner=runner, workloads=sweep_params["workloads"]),
        rounds=1, iterations=1)
    save_render("fig06_miss_breakdown", result["render"])

    data = result["data"]
    for workload, breakdown in data.items():
        indirect = (breakdown["IndirectUnCond"] + breakdown["IndirectCall"])
        assert indirect < 0.25, workload
    if "kafka" in data:
        assert data["kafka"]["DirectCond"] > 0.5
    if "voter" in data:
        eligible = (data["voter"]["DirectUnCond"] + data["voter"]["Call"]
                    + data["voter"]["Return"])
        assert eligible > 0.5
