"""Component micro-benchmarks: throughput of the building blocks.

These are conventional pytest-benchmark timings (ops/sec) rather than
paper exhibits; they guard against performance regressions in the hot
paths that dominate experiment runtime.
"""

import random

import pytest

from repro.core.sbb import ShadowBranchBuffer
from repro.core.sbd import ShadowBranchDecoder
from repro.frontend.config import FrontEndConfig, SkiaConfig
from repro.frontend.engine import FrontEndSimulator
from repro.frontend.predictor import ITTageLite, TageLite
from repro.isa.decoder import Decoder, decode_at
from repro.isa.encoder import Encoder
from repro.workloads.codegen import ProgramGenerator
from repro.workloads.trace import TraceGenerator
from tests.conftest import MICRO_PROFILE


@pytest.fixture(scope="module")
def program():
    return ProgramGenerator(MICRO_PROFILE, seed=7).generate()


@pytest.fixture(scope="module")
def trace(program):
    return TraceGenerator(program, seed=7).records(6_000)


def test_decode_throughput(benchmark, program):
    image = program.image
    offsets = list(range(0, min(len(image), 4096)))

    def decode_window():
        for offset in offsets:
            decode_at(image, offset)

    benchmark(decode_window)


def test_decoder_memo_throughput(benchmark, program):
    """The memoised Decoder on a hot window: after the first pass every
    decode is an LRU hit, and the instance counters prove it."""
    decoder = Decoder(program.image, base_pc=program.base_address)
    offsets = list(range(0, min(len(program.image), 4096)))

    def decode_window():
        for offset in offsets:
            decoder.decode(offset)

    benchmark(decode_window)
    stats = decoder.memo_stats
    assert stats.hits > stats.misses  # repeat passes hit the memo
    assert stats.misses >= len(offsets)  # each offset decoded once
    print(stats.render("decoder memo"))


def test_decoder_memo_bounded(program):
    """A memo smaller than the sweep evicts instead of growing."""
    decoder = Decoder(program.image, memo_size=256)
    for offset in range(1024):
        decoder.decode(offset)
    stats = decoder.memo_stats
    assert stats.size <= 256
    assert stats.evictions >= 1024 - 256


def test_encoder_throughput(benchmark):
    encoder = Encoder()
    rng = random.Random(0)

    def encode_batch():
        for length in (1, 2, 3, 4, 5, 6, 7, 8):
            for _ in range(50):
                encoder.filler(rng, length)

    benchmark(encode_batch)


def test_tage_throughput(benchmark):
    tage = TageLite()
    rng = random.Random(0)
    stream = [(rng.randrange(1 << 20) * 2, rng.random() < 0.8)
              for _ in range(2_000)]

    def run():
        for pc, taken in stream:
            tage.update(pc, taken)

    benchmark(run)


def test_ittage_throughput(benchmark):
    ittage = ITTageLite()
    rng = random.Random(0)
    stream = [(0x1000, rng.randrange(64) * 0x40) for _ in range(2_000)]

    def run():
        for pc, target in stream:
            ittage.update(pc, target)

    benchmark(run)


def test_sbb_insert_lookup_throughput(benchmark):
    sbb = ShadowBranchBuffer(SkiaConfig())
    pcs = [0x400000 + offset * 7 for offset in range(2_000)]

    def run():
        for pc in pcs:
            sbb.insert_unconditional(pc, pc + 64)
            sbb.lookup(pc)

    benchmark(run)


def test_sbd_head_decode_throughput(benchmark, program):
    sbd = ShadowBranchDecoder(program.image, program.base_address,
                              SkiaConfig())
    entries = [program.base_address + line * 64 + offset
               for line in range(0, 40)
               for offset in (7, 23, 41)]

    def run():
        sbd._head_memo.clear()
        for entry in entries:
            sbd.decode_head(entry)

    benchmark(run)
    for name, stats in sbd.cache_stats().items():
        print(stats.render(f"sbd {name}"))


def test_sbd_tail_decode_throughput(benchmark, program):
    sbd = ShadowBranchDecoder(program.image, program.base_address,
                              SkiaConfig())
    exits = [program.base_address + line * 64 + offset
             for line in range(0, 40)
             for offset in (5, 19, 47)]

    def run():
        sbd._tail_memo.clear()
        for exit_pc in exits:
            sbd.decode_tail(exit_pc)

    benchmark(run)


def test_engine_blocks_per_second(benchmark, program, trace):
    def run():
        FrontEndSimulator(program, FrontEndConfig()).run(trace)

    benchmark.pedantic(run, rounds=2, iterations=1)


def test_engine_with_skia_blocks_per_second(benchmark, program, trace):
    def run():
        FrontEndSimulator(program,
                          FrontEndConfig(skia=SkiaConfig())).run(trace)

    benchmark.pedantic(run, rounds=2, iterations=1)


def test_batched_kernel_speedup_gate(benchmark, program, trace):
    """Hard floor: the batched lane kernel must stay >= 2x the object
    replay loop on the Figure-14 configuration set.

    Measured *warm* (decode tables and fused lane rows pre-built): a
    grid sweep builds each trace's tables once and replays them across
    hundreds of cells, so steady-state replay is what the kernel is for
    -- and what must not regress.  Both paths are timed interleaved,
    min-of-3, in this same process; the ratio is stable (+-2%) even when
    absolute host timings wander.
    """
    import time as _time

    from repro.frontend.batch import BatchedFrontEndSimulator
    from repro.workloads import compile_trace

    compiled = compile_trace(trace)
    configs = [FrontEndConfig(),
               FrontEndConfig(skia=SkiaConfig(decode_tails=False)),
               FrontEndConfig(skia=SkiaConfig(decode_heads=False)),
               FrontEndConfig(skia=SkiaConfig())]
    warmup = 500

    def object_grid():
        for config in configs:
            FrontEndSimulator(program, config, seed=0).run(trace,
                                                           warmup=warmup)

    def batched_grid():
        batch = BatchedFrontEndSimulator()
        for config in configs:
            batch.add_lane(FrontEndSimulator(program, config, seed=0),
                           compiled, warmup=warmup)
        batch.run()

    object_grid()
    batched_grid()  # warm decode tables + lane rows
    object_s, batched_s = [], []
    for _ in range(3):
        start = _time.perf_counter()
        object_grid()
        object_s.append(_time.perf_counter() - start)
        start = _time.perf_counter()
        batched_grid()
        batched_s.append(_time.perf_counter() - start)
    ratio = min(object_s) / min(batched_s)
    benchmark.extra_info["speedup_vs_object"] = round(ratio, 3)
    benchmark.pedantic(batched_grid, rounds=2, iterations=1)
    assert ratio >= 2.0, (
        f"batched kernel only {ratio:.2f}x the object path "
        f"(object {min(object_s):.3f}s, batched {min(batched_s):.3f}s); "
        f"the floor is 2x")
