"""Byte decoder behaviour on hand-crafted encodings."""

import pytest

from repro.isa.branch import BranchKind
from repro.isa.decoder import Decoder, decode_at, instruction_length


def b(*values) -> bytes:
    return bytes(values)


class TestBasicDecodes:
    def test_nop(self):
        decoded = decode_at(b(0x90), 0)
        assert decoded.length == 1
        assert decoded.kind is BranchKind.NOT_BRANCH

    def test_ret(self):
        decoded = decode_at(b(0xC3), 0)
        assert decoded.kind is BranchKind.RETURN
        assert decoded.length == 1
        assert decoded.target is None

    def test_ret_imm16(self):
        decoded = decode_at(b(0xC2, 0x08, 0x00), 0)
        assert decoded.kind is BranchKind.RETURN
        assert decoded.length == 3

    def test_jmp_rel8_forward(self):
        decoded = decode_at(b(0xEB, 0x10), 0, pc=100)
        assert decoded.kind is BranchKind.DIRECT_UNCOND
        assert decoded.length == 2
        assert decoded.target == 100 + 2 + 0x10

    def test_jmp_rel8_backward(self):
        decoded = decode_at(b(0xEB, 0xFE), 0, pc=100)
        assert decoded.target == 100 + 2 - 2

    def test_jmp_rel32(self):
        decoded = decode_at(b(0xE9, 0x00, 0x01, 0x00, 0x00), 0, pc=0)
        assert decoded.length == 5
        assert decoded.target == 5 + 0x100

    def test_call_rel32_negative(self):
        decoded = decode_at(b(0xE8, 0xFC, 0xFF, 0xFF, 0xFF), 0, pc=1000)
        assert decoded.kind is BranchKind.CALL
        assert decoded.target == 1000 + 5 - 4

    def test_jcc_rel8(self):
        decoded = decode_at(b(0x74, 0x05), 0, pc=0)
        assert decoded.kind is BranchKind.DIRECT_COND
        assert decoded.target == 7

    def test_jcc_rel32_two_byte(self):
        decoded = decode_at(b(0x0F, 0x84, 0x10, 0x00, 0x00, 0x00), 0, pc=0)
        assert decoded.kind is BranchKind.DIRECT_COND
        assert decoded.length == 6
        assert decoded.target == 6 + 0x10

    def test_indirect_jmp_register(self):
        decoded = decode_at(b(0xFF, 0b11_100_000), 0)
        assert decoded.kind is BranchKind.INDIRECT_UNCOND
        assert decoded.length == 2
        assert decoded.target is None

    def test_indirect_call_memory(self):
        decoded = decode_at(b(0xFF, 0b10_010_001, 1, 2, 3, 4), 0)
        assert decoded.kind is BranchKind.INDIRECT_CALL
        assert decoded.length == 6

    def test_ff_group_non_branch(self):
        decoded = decode_at(b(0xFF, 0b11_000_000), 0)  # inc r/m
        assert decoded.kind is BranchKind.NOT_BRANCH


class TestPrefixes:
    def test_single_prefix(self):
        decoded = decode_at(b(0x66, 0x90), 0)
        assert decoded.length == 2
        assert decoded.kind is BranchKind.NOT_BRANCH

    def test_prefix_on_branch_keeps_kind(self):
        decoded = decode_at(b(0x48, 0xC3), 0)
        assert decoded.kind is BranchKind.RETURN
        assert decoded.length == 2

    def test_prefix_run_to_limit_is_invalid(self):
        assert decode_at(bytes([0x66] * 16), 0) is None

    def test_fourteen_prefixes_plus_nop(self):
        decoded = decode_at(bytes([0x66] * 14 + [0x90]), 0)
        assert decoded.length == 15

    def test_prefix_shifts_relative_base(self):
        # prefix + jmp rel8: target measured from instruction start.
        decoded = decode_at(b(0x66, 0xEB, 0x10), 0, pc=0)
        assert decoded.length == 3
        assert decoded.target == 3 + 0x10


class TestInvalidAndTruncated:
    def test_invalid_primary(self):
        assert decode_at(b(0x06), 0) is None

    def test_invalid_secondary(self):
        assert decode_at(b(0x0F, 0x04), 0) is None

    def test_truncated_immediate(self):
        assert decode_at(b(0xE9, 0x01, 0x02), 0) is None

    def test_truncated_modrm(self):
        assert decode_at(b(0x89), 0) is None

    def test_truncated_sib(self):
        assert decode_at(b(0x89, 0b01_000_100), 0) is None

    def test_escape_at_end(self):
        assert decode_at(b(0x0F), 0) is None

    def test_out_of_range_offset(self):
        assert decode_at(b(0x90), 5) is None
        assert decode_at(b(0x90), -1) is None

    def test_empty(self):
        assert decode_at(b(), 0) is None


class TestLimit:
    def test_limit_cuts_instruction(self):
        code = b(0xE9, 0x00, 0x00, 0x00, 0x00, 0x90)
        assert decode_at(code, 0, limit=4) is None
        assert decode_at(code, 0, limit=5) is not None

    def test_limit_allows_exact_fit(self):
        assert decode_at(b(0x74, 0x00), 0, limit=2) is not None

    def test_limit_beyond_buffer_clamped(self):
        assert decode_at(b(0x90), 0, limit=100) is not None


class TestInstructionLength:
    def test_valid(self):
        assert instruction_length(b(0x90), 0) == 1

    def test_invalid_is_zero(self):
        assert instruction_length(b(0x06), 0) == 0

    def test_figure9_zero_convention(self):
        # The Index Computation phase records 0 where no instruction
        # starts (Figure 9 in the paper).
        code = b(0x0F, 0x04)  # invalid two-byte encoding
        assert instruction_length(code, 0) == 0


class TestDecoderClass:
    def test_memoises(self):
        decoder = Decoder(b(0x90, 0xC3))
        first = decoder.decode(0)
        second = decoder.decode(0)
        assert first is second

    def test_base_pc_applied(self):
        decoder = Decoder(b(0xEB, 0x02), base_pc=0x400000)
        decoded = decoder.decode(0)
        assert decoded.pc == 0x400000
        assert decoded.target == 0x400004

    def test_decode_pc(self):
        decoder = Decoder(b(0x90, 0xC3), base_pc=0x1000)
        decoded = decoder.decode_pc(0x1001)
        assert decoded.kind is BranchKind.RETURN

    def test_linear_sweep(self):
        decoder = Decoder(b(0x90, 0x90, 0xC3, 0x90))
        instructions = decoder.linear_sweep(0, 3)
        assert [i.length for i in instructions] == [1, 1, 1]
        assert instructions[-1].kind is BranchKind.RETURN

    def test_linear_sweep_stops_on_invalid(self):
        decoder = Decoder(b(0x90, 0x06, 0x90))
        instructions = decoder.linear_sweep(0, 3)
        assert len(instructions) == 1

    def test_length_helper(self):
        decoder = Decoder(b(0x90))
        assert decoder.length(0) == 1
        assert decoder.length(5) == 0


class TestMidInstructionAmbiguity:
    """The property head shadow decoding relies on: decoding from a wrong
    offset can produce a valid-but-different instruction stream."""

    def test_immediate_bytes_decode_differently(self):
        # mov eax, imm32 where the immediate contains a RET byte.
        code = b(0xB8, 0xC3, 0x00, 0x00, 0x00)
        true = decode_at(code, 0)
        assert true.length == 5
        shifted = decode_at(code, 1)
        assert shifted is not None
        assert shifted.kind is BranchKind.RETURN

    def test_figure8_style_convergence(self):
        # Two decode paths (offset 0 and 1) that converge on the same
        # later instruction, like the paper's Figure 8.
        code = b(0x31, 0xD8, 0xC3)  # xor; ret -- offset1: one-byte op; ret
        path0 = []
        offset = 0
        while offset < len(code):
            decoded = decode_at(code, offset)
            path0.append(offset)
            offset += decoded.length
        assert path0 == [0, 2]
        mid = decode_at(code, 1)
        assert mid is not None  # a valid (bogus) instruction exists


@pytest.mark.parametrize("byte", [0x06, 0x07, 0x0E, 0x16, 0x17, 0x1E,
                                  0x27, 0x2F, 0x37, 0x3F, 0x60, 0x61,
                                  0x62, 0x82, 0x9A, 0xD4, 0xD5, 0xD6,
                                  0xEA, 0xF1])
def test_all_invalid_primaries_fail(byte):
    assert decode_at(bytes([byte, 0, 0, 0, 0, 0]), 0) is None
