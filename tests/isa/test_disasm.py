"""Disassembler rendering."""

from repro.isa.branch import BranchKind
from repro.isa.disasm import (
    DisasmLine,
    disassemble,
    disassemble_line_region,
    format_listing,
)


class TestDisassemble:
    def test_simple_stream(self):
        code = bytes([0x90, 0xC3, 0x50])
        lines = disassemble(code)
        assert [line.text for line in lines][1] == "ret"
        assert lines[0].pc == 0
        assert lines[1].pc == 1

    def test_branch_target_rendered(self):
        code = bytes([0xE8, 0x10, 0x00, 0x00, 0x00])
        lines = disassemble(code, base_pc=0x400000)
        assert lines[0].text == "call rel32 0x400015"
        assert lines[0].kind is BranchKind.CALL

    def test_invalid_bytes_rendered_as_bad(self):
        code = bytes([0x90, 0x06, 0x90])
        lines = disassemble(code)
        assert [line.text for line in lines] == ["nop/xchg", "(bad)",
                                                 "nop/xchg"]
        assert lines[1].kind is None

    def test_skip_invalid_stops(self):
        code = bytes([0x90, 0x06, 0x90])
        lines = disassemble(code, skip_invalid=True)
        assert len(lines) == 1

    def test_window_bounds(self):
        code = bytes([0x90] * 10)
        lines = disassemble(code, start=2, stop=5)
        assert len(lines) == 3
        assert lines[0].pc == 2

    def test_raw_bytes_match(self):
        code = bytes([0xEB, 0x05, 0x90])
        lines = disassemble(code)
        assert lines[0].raw == bytes([0xEB, 0x05])


class TestFormatting:
    def test_render_line(self):
        line = DisasmLine(pc=0x400000, raw=b"\xc3", text="ret",
                          kind=BranchKind.RETURN)
        text = line.render()
        assert "0x00400000" in text
        assert "c3" in text
        assert "ret" in text

    def test_listing_marks_branches(self):
        code = bytes([0x90, 0xC3])
        listing = format_listing(disassemble(code))
        assert "<-- Return" in listing
        assert "nop" in listing

    def test_line_region_zones(self):
        image = bytes([0x90] * 64)
        listing = disassemble_line_region(image, 0, 0, entry_offset=8,
                                          exit_offset=40)
        assert "HEAD shadow" in listing
        assert "TAIL shadow" in listing
        assert "exec" in listing

    def test_line_region_without_annotations(self):
        image = bytes([0x90] * 64)
        listing = disassemble_line_region(image, 0, 0)
        assert "HEAD" not in listing
        assert "exec" in listing


class TestRealProgram:
    def test_disassembles_generated_code(self, micro_program):
        block = next(micro_program.iter_blocks())
        start = block.start_pc - micro_program.base_address
        lines = disassemble(micro_program.image, start, start + block.size,
                            base_pc=micro_program.base_address)
        assert len(lines) == block.num_instructions
        assert lines[0].pc == block.start_pc
        assert lines[-1].kind is block.terminator.kind
