"""Property-based tests for the ISA substrate."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.isa.branch import BranchKind
from repro.isa.decoder import decode_at
from repro.isa.encoder import Encoder
from repro.isa.opcodes import MAX_INSTRUCTION_LENGTH

ENCODER = Encoder()


@given(seed=st.integers(0, 2**32 - 1), length=st.integers(1, 15))
@settings(max_examples=300)
def test_filler_roundtrip(seed, length):
    """Every filler decodes to a single non-branch instruction of the
    requested length."""
    rng = random.Random(seed)
    ins = ENCODER.filler(rng, length)
    decoded = decode_at(bytes(ins.encoding), 0)
    assert decoded is not None
    assert decoded.length == length
    assert decoded.kind is BranchKind.NOT_BRANCH


@given(data=st.binary(min_size=0, max_size=64),
       offset=st.integers(0, 63))
@settings(max_examples=500)
def test_decode_never_crashes_and_bounds_length(data, offset):
    """Arbitrary bytes either fail to decode or give a 1..15-byte
    instruction that fits in the buffer."""
    decoded = decode_at(data, offset)
    if decoded is not None:
        assert 1 <= decoded.length <= MAX_INSTRUCTION_LENGTH
        assert offset + decoded.length <= len(data)


@given(data=st.binary(min_size=1, max_size=64),
       offset=st.integers(0, 63),
       limit=st.integers(0, 64))
@settings(max_examples=300)
def test_decode_respects_limit(data, offset, limit):
    decoded = decode_at(data, offset, limit=limit)
    if decoded is not None:
        assert offset + decoded.length <= min(limit, len(data))


@given(seed=st.integers(0, 2**32 - 1),
       pc=st.integers(0, 2**30),
       displacement=st.integers(-(2**31), 2**31 - 1))
@settings(max_examples=300)
def test_call_target_roundtrip(seed, pc, displacement):
    """patch_relative then decode recovers the exact target for any
    rel32-reachable displacement."""
    rng = random.Random(seed)
    ins = ENCODER.call(rng, target_label=0)
    ins.pc = pc
    target = pc + ins.length + displacement
    ins.patch_relative(target)
    decoded = decode_at(bytes(ins.encoding), 0, pc=pc)
    assert decoded.target == target


@given(data=st.binary(min_size=16, max_size=64))
@settings(max_examples=200)
def test_linear_decode_is_self_consistent(data):
    """Decoding a window consecutively always terminates and never
    overlaps instructions."""
    offset = 0
    previous_end = 0
    steps = 0
    while offset < len(data):
        decoded = decode_at(data, offset)
        if decoded is None:
            break
        assert offset >= previous_end
        previous_end = offset + decoded.length
        offset = previous_end
        steps += 1
        assert steps <= len(data)  # guaranteed progress


@given(seed=st.integers(0, 2**32 - 1))
@settings(max_examples=200)
def test_branch_encodings_decode_to_same_kind(seed):
    rng = random.Random(seed)
    cases = [
        (ENCODER.cond_branch(rng, 0, wide=rng.random() < 0.5),
         BranchKind.DIRECT_COND),
        (ENCODER.uncond_jmp(rng, 0, wide=rng.random() < 0.5),
         BranchKind.DIRECT_UNCOND),
        (ENCODER.call(rng, 0), BranchKind.CALL),
        (ENCODER.ret(rng, with_imm=rng.random() < 0.5), BranchKind.RETURN),
        (ENCODER.indirect_jmp(rng, memory=rng.random() < 0.5),
         BranchKind.INDIRECT_UNCOND),
        (ENCODER.indirect_call(rng, memory=rng.random() < 0.5),
         BranchKind.INDIRECT_CALL),
    ]
    for ins, kind in cases:
        decoded = decode_at(bytes(ins.encoding), 0)
        assert decoded is not None
        assert decoded.kind is kind
        assert decoded.length == ins.length
