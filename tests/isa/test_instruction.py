"""Instruction data-model unit tests."""

import pytest

from repro.isa.branch import REPORTED_KINDS, BranchKind
from repro.isa.instruction import DecodedInstruction, Instruction


class TestDecodedInstruction:
    def test_end(self):
        decoded = DecodedInstruction(pc=100, length=5,
                                     kind=BranchKind.CALL, target=200)
        assert decoded.end == 105

    def test_is_branch(self):
        assert DecodedInstruction(0, 1, BranchKind.RETURN).is_branch
        assert not DecodedInstruction(0, 1, BranchKind.NOT_BRANCH).is_branch

    def test_rejects_nonpositive_length(self):
        with pytest.raises(ValueError):
            DecodedInstruction(pc=0, length=0, kind=BranchKind.NOT_BRANCH)

    def test_frozen(self):
        decoded = DecodedInstruction(0, 1, BranchKind.NOT_BRANCH)
        with pytest.raises(AttributeError):
            decoded.length = 2


class TestInstruction:
    def test_length(self):
        ins = Instruction(encoding=bytearray(b"\x90\x90"))
        assert ins.length == 2

    def test_is_branch(self):
        assert Instruction(encoding=bytearray(b"\xc3"),
                           kind=BranchKind.RETURN).is_branch
        assert not Instruction(encoding=bytearray(b"\x90")).is_branch

    def test_patch_writes_little_endian(self):
        ins = Instruction(encoding=bytearray(5), kind=BranchKind.CALL,
                          target_label=0, rel_width=4, rel_offset=1)
        ins.pc = 0
        ins.patch_relative(0x12345678 + 5)
        assert ins.encoding[1:5] == bytes([0x78, 0x56, 0x34, 0x12])

    def test_patch_negative_displacement(self):
        ins = Instruction(encoding=bytearray(2), kind=BranchKind.DIRECT_UNCOND,
                          target_label=0, rel_width=1, rel_offset=1)
        ins.pc = 100
        ins.patch_relative(100 + 2 - 1)
        assert ins.encoding[1] == 0xFF  # -1 as u8


class TestBranchKindTaxonomy:
    def test_direct_vs_indirect_partition(self):
        for kind in REPORTED_KINDS:
            assert kind.is_direct != kind.is_indirect or (
                kind is BranchKind.RETURN)

    def test_return_neither_direct_nor_indirect(self):
        assert not BranchKind.RETURN.is_direct
        assert not BranchKind.RETURN.is_indirect

    def test_sbb_eligibility_matches_section_2_4(self):
        eligible = {kind for kind in BranchKind if kind.sbb_eligible}
        assert eligible == {BranchKind.DIRECT_UNCOND, BranchKind.CALL,
                            BranchKind.RETURN}

    def test_conditional_flags(self):
        assert BranchKind.DIRECT_COND.is_conditional
        assert not BranchKind.DIRECT_COND.is_unconditional
        assert BranchKind.CALL.is_unconditional

    def test_call_flags(self):
        assert BranchKind.CALL.is_call
        assert BranchKind.INDIRECT_CALL.is_call
        assert not BranchKind.RETURN.is_call

    def test_not_branch(self):
        assert not BranchKind.NOT_BRANCH.is_branch
        assert not BranchKind.NOT_BRANCH.sbb_eligible

    def test_reported_kinds_complete(self):
        assert len(REPORTED_KINDS) == 6
        assert BranchKind.NOT_BRANCH not in REPORTED_KINDS
