"""Encoder output is always decodable to exactly what was asked for."""

import pytest

from repro.isa.branch import BranchKind
from repro.isa.decoder import decode_at
from repro.isa.opcodes import MAX_INSTRUCTION_LENGTH


class TestFillers:
    @pytest.mark.parametrize("length", range(1, 16))
    def test_exact_length_and_not_branch(self, encoder, rng, length):
        for _ in range(50):
            ins = encoder.filler(rng, length)
            assert ins.length == length
            decoded = decode_at(bytes(ins.encoding), 0)
            assert decoded is not None
            assert decoded.length == length
            assert decoded.kind is BranchKind.NOT_BRANCH

    def test_rejects_zero_length(self, encoder, rng):
        with pytest.raises(ValueError):
            encoder.filler(rng, 0)

    def test_rejects_over_max(self, encoder, rng):
        with pytest.raises(ValueError):
            encoder.filler(rng, MAX_INSTRUCTION_LENGTH + 1)

    def test_variety(self, encoder, rng):
        # The same length should not always produce the same encoding.
        encodings = {bytes(encoder.filler(rng, 3).encoding)
                     for _ in range(100)}
        assert len(encodings) > 10


class TestBranches:
    def test_cond_narrow(self, encoder, rng):
        ins = encoder.cond_branch(rng, target_label=5)
        assert ins.kind is BranchKind.DIRECT_COND
        assert ins.length == 2
        assert ins.rel_width == 1
        assert ins.target_label == 5

    def test_cond_wide(self, encoder, rng):
        ins = encoder.cond_branch(rng, target_label=5, wide=True)
        assert ins.length == 6
        assert ins.rel_width == 4

    def test_jmp_forms(self, encoder, rng):
        assert encoder.uncond_jmp(rng, 1).length == 5
        assert encoder.uncond_jmp(rng, 1, wide=False).length == 2

    def test_call(self, encoder, rng):
        ins = encoder.call(rng, 9)
        assert ins.kind is BranchKind.CALL
        assert ins.length == 5

    def test_ret_forms(self, encoder, rng):
        assert encoder.ret(rng).length == 1
        assert encoder.ret(rng, with_imm=True).length == 3

    def test_indirect_forms(self, encoder, rng):
        assert encoder.indirect_jmp(rng).length == 2
        assert encoder.indirect_jmp(rng, memory=True).length == 6
        assert encoder.indirect_call(rng).length == 2
        assert encoder.indirect_call(rng, memory=True).length == 6

    def test_indirect_kinds_decode(self, encoder, rng):
        jmp = encoder.indirect_jmp(rng)
        call = encoder.indirect_call(rng)
        assert decode_at(bytes(jmp.encoding), 0).kind is (
            BranchKind.INDIRECT_UNCOND)
        assert decode_at(bytes(call.encoding), 0).kind is (
            BranchKind.INDIRECT_CALL)


class TestPatching:
    def test_patch_and_decode_target(self, encoder, rng):
        ins = encoder.call(rng, target_label=1)
        ins.pc = 0x400000
        ins.patch_relative(0x400123)
        decoded = decode_at(bytes(ins.encoding), 0, pc=0x400000)
        assert decoded.target == 0x400123

    def test_patch_backward(self, encoder, rng):
        ins = encoder.uncond_jmp(rng, 1)
        ins.pc = 0x401000
        ins.patch_relative(0x400500)
        decoded = decode_at(bytes(ins.encoding), 0, pc=0x401000)
        assert decoded.target == 0x400500

    def test_rel8_overflow_raises(self, encoder, rng):
        ins = encoder.cond_branch(rng, 1, wide=False)
        ins.pc = 0
        with pytest.raises(OverflowError):
            ins.patch_relative(1000)

    def test_rel8_extremes_fit(self, encoder, rng):
        ins = encoder.cond_branch(rng, 1, wide=False)
        ins.pc = 1000
        ins.patch_relative(1000 + 2 + 127)
        ins.patch_relative(1000 + 2 - 128)

    def test_patch_before_layout_raises(self, encoder, rng):
        ins = encoder.call(rng, 1)
        with pytest.raises(RuntimeError):
            ins.patch_relative(5)

    def test_patch_non_relative_raises(self, encoder, rng):
        ins = encoder.ret(rng)
        ins.pc = 0
        with pytest.raises(RuntimeError):
            ins.patch_relative(5)

    def test_repatching_is_idempotent(self, encoder, rng):
        ins = encoder.call(rng, 1)
        ins.pc = 100
        ins.patch_relative(500)
        first = bytes(ins.encoding)
        ins.patch_relative(500)
        assert bytes(ins.encoding) == first
