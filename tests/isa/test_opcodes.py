"""Opcode table invariants."""

from repro.isa.branch import BranchKind
from repro.isa.opcodes import (
    INVALID_PRIMARY,
    MAX_INSTRUCTION_LENGTH,
    PREFIX_BYTES,
    PRIMARY_MAP,
    SECONDARY_MAP,
    Format,
    ff_group_kind,
    modrm_tail_length,
)


class TestPrimaryMap:
    def test_every_byte_assigned(self):
        assert set(PRIMARY_MAP) == set(range(256))

    def test_invalid_bytes_marked_invalid(self):
        for byte in INVALID_PRIMARY:
            assert PRIMARY_MAP[byte].format is Format.INVALID

    def test_prefixes_marked_prefix(self):
        for byte in PREFIX_BYTES:
            assert PRIMARY_MAP[byte].format is Format.PREFIX

    def test_rex_range_is_prefix(self):
        for byte in range(0x40, 0x50):
            assert byte in PREFIX_BYTES

    def test_escape_byte(self):
        assert PRIMARY_MAP[0x0F].format is Format.ESCAPE

    def test_branch_opcodes(self):
        assert PRIMARY_MAP[0xC3].kind is BranchKind.RETURN
        assert PRIMARY_MAP[0xC2].kind is BranchKind.RETURN
        assert PRIMARY_MAP[0xE8].kind is BranchKind.CALL
        assert PRIMARY_MAP[0xE9].kind is BranchKind.DIRECT_UNCOND
        assert PRIMARY_MAP[0xEB].kind is BranchKind.DIRECT_UNCOND
        for byte in range(0x70, 0x80):
            assert PRIMARY_MAP[byte].kind is BranchKind.DIRECT_COND

    def test_jcc_rel8_immediate_width(self):
        for byte in range(0x70, 0x80):
            assert PRIMARY_MAP[byte].imm_bytes == 1

    def test_call_and_jmp_rel32_width(self):
        assert PRIMARY_MAP[0xE8].imm_bytes == 4
        assert PRIMARY_MAP[0xE9].imm_bytes == 4

    def test_ff_group_marked(self):
        assert PRIMARY_MAP[0xFF].format is Format.GROUP_FF

    def test_no_primary_branch_without_rel_format(self):
        for byte, info in PRIMARY_MAP.items():
            if info.kind.is_branch and info.format not in (
                    Format.RET, Format.GROUP_FF):
                assert info.format is Format.REL, hex(byte)


class TestSecondaryMap:
    def test_every_byte_assigned(self):
        assert set(SECONDARY_MAP) == set(range(256))

    def test_jcc_rel32(self):
        for byte in range(0x80, 0x90):
            info = SECONDARY_MAP[byte]
            assert info.kind is BranchKind.DIRECT_COND
            assert info.format is Format.REL
            assert info.imm_bytes == 4

    def test_has_invalid_entries(self):
        # The secondary map must contain invalid encodings -- they are
        # what kills candidate paths during head shadow decoding.
        invalid = [byte for byte, info in SECONDARY_MAP.items()
                   if info.format is Format.INVALID]
        assert len(invalid) > 50

    def test_nop_rm_is_modrm(self):
        assert SECONDARY_MAP[0x1F].format is Format.MODRM


class TestFFGroup:
    def test_indirect_call_regs(self):
        assert ff_group_kind(0b11_010_000) is BranchKind.INDIRECT_CALL
        assert ff_group_kind(0b11_011_000) is BranchKind.INDIRECT_CALL

    def test_indirect_jmp_regs(self):
        assert ff_group_kind(0b11_100_000) is BranchKind.INDIRECT_UNCOND
        assert ff_group_kind(0b11_101_000) is BranchKind.INDIRECT_UNCOND

    def test_non_branch_regs(self):
        for reg in (0, 1, 6, 7):
            modrm = 0b11_000_000 | (reg << 3)
            assert ff_group_kind(modrm) is BranchKind.NOT_BRANCH


class TestModRMTailLength:
    def test_register_operand(self):
        assert modrm_tail_length(0b11_000_000, None) == 1

    def test_mod0_plain(self):
        assert modrm_tail_length(0b00_000_001, None) == 1

    def test_mod0_rip_relative_disp32(self):
        assert modrm_tail_length(0b00_000_101, None) == 5

    def test_mod1_disp8(self):
        assert modrm_tail_length(0b01_000_001, None) == 2

    def test_mod2_disp32(self):
        assert modrm_tail_length(0b10_000_001, None) == 5

    def test_sib_required(self):
        assert modrm_tail_length(0b00_000_100, None) is None

    def test_sib_plain(self):
        assert modrm_tail_length(0b00_000_100, 0b00_000_000) == 2

    def test_sib_base5_mod0_disp32(self):
        assert modrm_tail_length(0b00_000_100, 0b00_000_101) == 6

    def test_sib_mod1(self):
        assert modrm_tail_length(0b01_000_100, 0b00_000_000) == 3

    def test_sib_mod2(self):
        assert modrm_tail_length(0b10_000_100, 0b00_000_000) == 6

    def test_max_length_constant(self):
        assert MAX_INSTRUCTION_LENGTH == 15
