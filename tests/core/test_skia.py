"""Skia integration component: FTQ-entry hooks, gating, auditing."""

import pytest

from repro.core.skia import Skia
from repro.frontend.config import SkiaConfig
from repro.frontend.stats import SimStats

INVALID = 0x06


def image_with(head_line: bytes) -> bytes:
    return bytes(head_line) + bytes([0x90] * (256 - len(head_line)))


def always_present(_pc: int) -> bool:
    return True


def never_present(_pc: int) -> bool:
    return False


@pytest.fixture()
def stats():
    return SimStats()


def make_skia(image: bytes, **config_kwargs) -> Skia:
    return Skia(image=image, base_address=0,
                config=SkiaConfig(**config_kwargs))


class TestConstruction:
    def test_rejects_disabled_config(self):
        with pytest.raises(ValueError):
            Skia(image=b"\x90", base_address=0,
                 config=SkiaConfig.disabled())


class TestHeadGating:
    HEAD = bytes([0xB8, INVALID, INVALID, INVALID, INVALID, 0xEB, INVALID])

    def test_head_decoded_on_taken_entry(self, stats):
        skia = make_skia(image_with(self.HEAD))
        skia.on_ftq_entry(entry_pc=7, entered_by_taken_branch=True,
                          exit_pc=None, line_present=always_present,
                          stats=stats)
        assert stats.sbd_head_decodes == 1
        assert stats.sbb_insertions_u == 1
        assert skia.sbb.lookup(5) is not None

    def test_no_head_decode_on_fallthrough_entry(self, stats):
        skia = make_skia(image_with(self.HEAD))
        skia.on_ftq_entry(entry_pc=7, entered_by_taken_branch=False,
                          exit_pc=None, line_present=always_present,
                          stats=stats)
        assert stats.sbd_head_decodes == 0

    def test_no_head_decode_at_line_aligned_entry(self, stats):
        skia = make_skia(image_with(self.HEAD))
        skia.on_ftq_entry(entry_pc=64, entered_by_taken_branch=True,
                          exit_pc=None, line_present=always_present,
                          stats=stats)
        assert stats.sbd_head_decodes == 0

    def test_requires_line_present(self, stats):
        """The paper decodes only after confirming L1-I residency."""
        skia = make_skia(image_with(self.HEAD))
        skia.on_ftq_entry(entry_pc=7, entered_by_taken_branch=True,
                          exit_pc=None, line_present=never_present,
                          stats=stats)
        assert stats.sbd_head_decodes == 0

    def test_heads_disabled(self, stats):
        skia = make_skia(image_with(self.HEAD), decode_heads=False)
        skia.on_ftq_entry(entry_pc=7, entered_by_taken_branch=True,
                          exit_pc=None, line_present=always_present,
                          stats=stats)
        assert stats.sbd_head_decodes == 0


class TestTailGating:
    def tail_image(self) -> bytes:
        image = bytearray([0x90] * 256)
        image[10] = 0xC3  # shadow ret after exit at 5
        return bytes(image)

    def test_tail_decoded_on_taken_exit(self, stats):
        skia = make_skia(self.tail_image())
        skia.on_ftq_entry(entry_pc=0, entered_by_taken_branch=False,
                          exit_pc=5, line_present=always_present,
                          stats=stats)
        assert stats.sbd_tail_decodes == 1
        assert stats.sbb_insertions_r == 1
        assert skia.sbb.lookup(10) is not None

    def test_no_tail_decode_on_fallthrough(self, stats):
        skia = make_skia(self.tail_image())
        skia.on_ftq_entry(entry_pc=0, entered_by_taken_branch=False,
                          exit_pc=None, line_present=always_present,
                          stats=stats)
        assert stats.sbd_tail_decodes == 0

    def test_tails_disabled(self, stats):
        skia = make_skia(self.tail_image(), decode_tails=False)
        skia.on_ftq_entry(entry_pc=0, entered_by_taken_branch=False,
                          exit_pc=5, line_present=always_present,
                          stats=stats)
        assert stats.sbd_tail_decodes == 0

    def test_tail_requires_line_present(self, stats):
        skia = make_skia(self.tail_image())
        skia.on_ftq_entry(entry_pc=0, entered_by_taken_branch=False,
                          exit_pc=5, line_present=never_present,
                          stats=stats)
        assert stats.sbd_tail_decodes == 0


class TestBogusAudit:
    def test_oracle_counts_bogus(self, stats):
        head = bytes([0xB8, INVALID, INVALID, INVALID, INVALID, 0xEB,
                      INVALID])
        skia = Skia(image=image_with(head), base_address=0,
                    config=SkiaConfig(),
                    boundary_oracle=lambda pc: False)  # everything bogus
        skia.on_ftq_entry(entry_pc=7, entered_by_taken_branch=True,
                          exit_pc=None, line_present=always_present,
                          stats=stats)
        assert stats.sbb_bogus_insertions == stats.total_sbb_insertions > 0

    def test_true_boundaries_not_bogus(self, stats):
        image = bytearray([0x90] * 256)
        image[10] = 0xC3
        skia = Skia(image=bytes(image), base_address=0,
                    config=SkiaConfig(),
                    boundary_oracle=lambda pc: True)
        skia.on_ftq_entry(entry_pc=0, entered_by_taken_branch=False,
                          exit_pc=5, line_present=always_present,
                          stats=stats)
        assert stats.sbb_bogus_insertions == 0
        assert stats.sbb_insertions_r == 1


class TestRetirement:
    def test_mark_retired_counts(self, stats):
        image = bytearray([0x90] * 256)
        image[10] = 0xC3
        skia = make_skia(bytes(image))
        skia.on_ftq_entry(entry_pc=0, entered_by_taken_branch=False,
                          exit_pc=5, line_present=always_present,
                          stats=stats)
        skia.mark_retired(10, "r", stats)
        assert stats.sbb_retired_marks == 1
        _, entry = skia.sbb.lookup(10)
        assert entry.retired

    def test_mark_retired_miss_no_count(self, stats):
        skia = make_skia(bytes([0x90] * 256))
        skia.mark_retired(10, "r", stats)
        assert stats.sbb_retired_marks == 0


class TestStatsOptional:
    def test_runs_without_stats(self):
        image = bytearray([0x90] * 256)
        image[10] = 0xC3
        skia = make_skia(bytes(image))
        skia.on_ftq_entry(entry_pc=0, entered_by_taken_branch=False,
                          exit_pc=5, line_present=always_present,
                          stats=None)
        assert skia.sbb.lookup(10) is not None
