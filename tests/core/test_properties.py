"""Property-based tests for shadow decoding invariants."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.sbd import ShadowBranchDecoder
from repro.frontend.config import IndexPolicy, SkiaConfig
from repro.isa.decoder import decode_at
from repro.isa.encoder import Encoder

ENCODER = Encoder()


def build_true_code(seed: int, total: int = 64) -> tuple[bytes, list[int]]:
    """A byte stream of real instructions; returns (bytes, boundaries)."""
    rng = random.Random(seed)
    out = bytearray()
    boundaries = []
    while len(out) < total:
        boundaries.append(len(out))
        remaining = total - len(out)
        roll = rng.random()
        if roll < 0.10 and remaining >= 1:
            out.extend(ENCODER.ret(rng).encoding)
        elif roll < 0.2 and remaining >= 5:
            ins = ENCODER.uncond_jmp(rng, 0)
            ins.pc = len(out)
            ins.patch_relative(rng.randrange(0, 1 << 12))
            out.extend(ins.encoding)
        elif roll < 0.3 and remaining >= 5:
            ins = ENCODER.call(rng, 0)
            ins.pc = len(out)
            ins.patch_relative(rng.randrange(0, 1 << 12))
            out.extend(ins.encoding)
        else:
            length = rng.randint(1, min(remaining, 11))
            out.extend(ENCODER.filler(rng, length).encoding)
    return bytes(out[:total]), [b for b in boundaries if b < total]


@given(seed=st.integers(0, 10_000), exit_offset=st.integers(0, 63))
@settings(max_examples=150, deadline=None)
def test_tail_decode_from_true_boundary_follows_truth(seed, exit_offset):
    """Tail decoding started at a true instruction boundary only visits
    true boundaries (Section 3.4: tail decoding is unambiguous)."""
    code, boundaries = build_true_code(seed, total=128)
    if exit_offset not in boundaries:
        return
    sbd = ShadowBranchDecoder(code, 0, SkiaConfig())
    result = sbd.decode_tail(exit_pc=exit_offset)
    boundary_set = set(boundaries)
    for pc in result.decoded_pcs:
        assert pc in boundary_set


@given(seed=st.integers(0, 10_000), entry=st.integers(1, 63))
@settings(max_examples=150, deadline=None)
def test_head_paths_land_exactly_on_entry(seed, entry):
    """Every validated head path, walked through the Length vector,
    terminates exactly at the entry offset."""
    code, _ = build_true_code(seed, total=64)
    sbd = ShadowBranchDecoder(code, 0, SkiaConfig(max_valid_paths=10**9))
    lengths = sbd._index_computation(0, entry)
    for start in sbd._path_validation(lengths, entry):
        position = start
        while position < entry:
            assert lengths[position] > 0
            position += lengths[position]
        assert position == entry


@given(seed=st.integers(0, 10_000), entry=st.integers(1, 63))
@settings(max_examples=100, deadline=None)
def test_head_true_boundary_path_always_validates(seed, entry):
    """If the entry offset and some earlier true boundary are both real
    instruction starts with no branch redirection between them, the true
    path must be among the validated paths."""
    code, boundaries = build_true_code(seed, total=64)
    if entry not in boundaries:
        return
    earlier = [b for b in boundaries if b < entry]
    if not earlier:
        return
    sbd = ShadowBranchDecoder(code, 0, SkiaConfig(max_valid_paths=10**9))
    lengths = sbd._index_computation(0, entry)
    valid = set(sbd._path_validation(lengths, entry))
    # Walking true boundaries from any earlier true start reaches entry,
    # so each earlier boundary is a valid path start.
    for start in earlier:
        assert start in valid


@given(seed=st.integers(0, 10_000), entry=st.integers(1, 63),
       policy=st.sampled_from(list(IndexPolicy)))
@settings(max_examples=100, deadline=None)
def test_head_branches_have_in_region_pcs(seed, entry, policy):
    code, _ = build_true_code(seed, total=64)
    sbd = ShadowBranchDecoder(
        code, 0, SkiaConfig(index_policy=policy, max_valid_paths=10**9))
    result = sbd.decode_head(entry_pc=entry)
    for branch in result.branches:
        assert 0 <= branch.pc < entry
        assert branch.kind.sbb_eligible


@given(seed=st.integers(0, 10_000), exit_offset=st.integers(1, 63))
@settings(max_examples=100, deadline=None)
def test_tail_branches_within_line(seed, exit_offset):
    code, _ = build_true_code(seed, total=64)
    sbd = ShadowBranchDecoder(code, 0, SkiaConfig())
    result = sbd.decode_tail(exit_pc=exit_offset)
    for branch in result.branches:
        assert exit_offset <= branch.pc < 64
        # The whole instruction fits in the line.
        decoded = decode_at(code, branch.pc, pc=branch.pc)
        assert branch.pc + decoded.length <= 64
