"""Tail shadow decoding (Section 3.3): unambiguous linear sweep."""

from repro.core.sbd import ShadowBranchDecoder
from repro.frontend.config import SkiaConfig
from repro.isa.branch import BranchKind


def make_sbd(image: bytes, base: int = 0) -> ShadowBranchDecoder:
    return ShadowBranchDecoder(image, base, SkiaConfig())


class TestTailDecode:
    def test_finds_call_after_exit(self):
        # Line: [jmp rel8][call rel32][padding...]
        line = bytearray(64)
        line[0:2] = bytes([0xEB, 0x10])                # taken exit at 2
        line[2:7] = bytes([0xE8, 0x20, 0x00, 0x00, 0x00])  # shadow call
        line[7:] = bytes([0x90] * 57)
        result = make_sbd(bytes(line)).decode_tail(exit_pc=2)
        kinds = [branch.kind for branch in result.branches]
        assert BranchKind.CALL in kinds
        call = next(b for b in result.branches if b.kind is BranchKind.CALL)
        assert call.pc == 2
        assert call.target == 7 + 0x20

    def test_finds_return(self):
        line = bytearray([0x90] * 64)
        line[10] = 0xC3
        result = make_sbd(bytes(line)).decode_tail(exit_pc=5)
        rets = [b for b in result.branches if b.kind is BranchKind.RETURN]
        assert len(rets) == 1
        assert rets[0].pc == 10
        assert rets[0].target is None

    def test_conditionals_not_eligible(self):
        line = bytearray([0x90] * 64)
        line[10:12] = bytes([0x74, 0x05])  # jcc rel8
        result = make_sbd(bytes(line)).decode_tail(exit_pc=5)
        assert all(b.kind is not BranchKind.DIRECT_COND
                   for b in result.branches)
        assert 10 in result.decoded_pcs  # decoded, just not buffered

    def test_indirect_not_eligible(self):
        line = bytearray([0x90] * 64)
        line[10:12] = bytes([0xFF, 0b11_100_000])  # jmp r/m
        result = make_sbd(bytes(line)).decode_tail(exit_pc=5)
        assert not result.branches

    def test_stops_at_invalid(self):
        line = bytearray([0x90] * 64)
        line[8] = 0x06  # invalid
        line[20] = 0xC3  # unreachable past the invalid byte
        result = make_sbd(bytes(line)).decode_tail(exit_pc=5)
        assert not result.branches
        assert max(result.decoded_pcs) < 8

    def test_stops_at_line_end(self):
        """An instruction straddling the line boundary is not decoded."""
        line = bytearray([0x90] * 64)
        line[60:64] = bytes([0xE8, 0x00, 0x00, 0x00])  # call cut off at 64
        result = make_sbd(bytes(line) + bytes(64)).decode_tail(exit_pc=58)
        assert all(b.pc + 5 <= 64 for b in result.branches)
        assert 60 not in [b.pc for b in result.branches]

    def test_empty_region_when_exit_at_line_boundary(self):
        image = bytes([0x90] * 128)
        result = make_sbd(image).decode_tail(exit_pc=64)
        assert not result.branches
        assert not result.decoded_pcs

    def test_exit_mid_line_second_line(self):
        image = bytearray([0x90] * 128)
        image[70] = 0xC3
        result = make_sbd(bytes(image)).decode_tail(exit_pc=66)
        assert [b.pc for b in result.branches] == [70]

    def test_no_bogus_from_true_boundary(self, micro_program):
        """Starting at a genuine instruction boundary, tail decode only
        reports true instruction starts (tail decoding cannot produce
        bogus branches -- Section 3.4)."""
        sbd = ShadowBranchDecoder(micro_program.image,
                                  micro_program.base_address, SkiaConfig())
        checked = 0
        for block in micro_program.iter_blocks():
            terminator = block.terminator
            if not terminator.kind.is_branch:
                continue
            exit_pc = terminator.pc + terminator.length
            result = sbd.decode_tail(exit_pc)
            for pc in result.decoded_pcs:
                # Every decoded pc is either a true boundary or inside
                # inter-function NOP padding (also true boundaries from
                # the decoder's perspective: 0x90 bytes).
                if not micro_program.is_instruction_start(pc):
                    offset = pc - micro_program.base_address
                    assert micro_program.image[offset] == 0x90
            checked += 1
            if checked > 300:
                break
        assert checked > 0

    def test_memoised(self):
        image = bytes([0x90] * 64)
        sbd = make_sbd(image)
        first = sbd.decode_tail(exit_pc=5)
        second = sbd.decode_tail(exit_pc=5)
        assert first is second

    def test_region_outside_image(self):
        sbd = make_sbd(bytes([0x90] * 64))
        result = sbd.decode_tail(exit_pc=1000)
        assert not result.branches
