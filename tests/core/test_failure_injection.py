"""Failure injection: the shadow decoder must be robust to hostile
byte content -- corrupted lines, all-prefix runs, truncation at image
boundaries -- because in hardware it sees raw, unvalidated bytes."""

import random

from repro.core.sbd import ShadowBranchDecoder
from repro.frontend.config import SkiaConfig


def make_sbd(image: bytes) -> ShadowBranchDecoder:
    return ShadowBranchDecoder(image, 0, SkiaConfig())


class TestHostileBytes:
    def test_random_garbage_lines(self):
        rng = random.Random(0xBAD)
        image = bytes(rng.randrange(256) for _ in range(4096))
        sbd = make_sbd(image)
        for line in range(0, 4096, 64):
            for offset in (1, 13, 37, 63):
                head = sbd.decode_head(line + offset)
                assert head.valid_paths >= 0
                tail = sbd.decode_tail(line + offset)
                for branch in tail.branches:
                    assert line <= branch.pc < line + 64

    def test_all_prefix_line(self):
        """A line of nothing but prefixes: no instruction can complete
        within 15 bytes, so no paths validate and nothing is inserted."""
        image = bytes([0x66] * 128)
        sbd = make_sbd(image)
        head = sbd.decode_head(40)
        assert head.valid_paths == 0
        tail = sbd.decode_tail(8)
        assert not tail.branches

    def test_all_invalid_line(self):
        image = bytes([0x06] * 128)
        sbd = make_sbd(image)
        assert sbd.decode_head(17).valid_paths == 0
        assert not sbd.decode_tail(5).decoded_pcs

    def test_all_ret_line(self):
        """64 one-byte returns: every offset is a valid path; the line
        must be discarded by the valid-path cutoff, protecting the SBB
        from 64 insertions of dubious provenance."""
        image = bytes([0xC3] * 128)
        sbd = make_sbd(image)
        result = sbd.decode_head(32)
        assert result.discarded
        assert not result.branches

    def test_branch_targets_far_outside_image(self):
        """rel32 displacement pointing gigabytes away decodes fine; the
        SBB stores it and the front-end pays a wrong-target repair --
        no crash at decode time."""
        line = bytearray(64)
        line[0:2] = bytes([0xEB, 0x10])
        line[2:7] = bytes([0xE9, 0xFF, 0xFF, 0xFF, 0x7F])
        sbd = make_sbd(bytes(line))
        result = sbd.decode_tail(2)
        assert result.branches
        assert result.branches[0].target > 2**30

    def test_image_boundary_truncation(self):
        """Shadow regions at the very end of the image never read past
        it."""
        image = bytes([0x90] * 61 + [0xE9])  # truncated call at the edge
        sbd = make_sbd(image)
        result = sbd.decode_tail(2)
        for pc in result.decoded_pcs:
            assert pc < 62

    def test_empty_image(self):
        sbd = make_sbd(b"")
        assert not sbd.decode_head(7).branches
        assert not sbd.decode_tail(7).branches

    def test_single_byte_image(self):
        sbd = make_sbd(b"\xc3")
        result = sbd.decode_tail(0)
        # exit_pc=0 means the branch ended at -1; region is byte 0.
        assert all(0 <= b.pc < 64 for b in result.branches)


class TestAdversarialHeadRegions:
    def test_deep_ambiguity_respects_cutoff(self):
        """Byte patterns engineered so many offsets decode: the cutoff
        must bound work and discard."""
        # Alternating push (1B) instructions: every offset valid.
        image = bytes([0x50, 0x51] * 64)
        sbd = ShadowBranchDecoder(image, 0, SkiaConfig(max_valid_paths=6))
        result = sbd.decode_head(48)
        assert result.discarded

    def test_pathological_region_is_linear_time(self):
        """Path validation is memoised right-to-left; a worst-case
        63-byte region of 1-byte ops completes instantly rather than
        exponentially."""
        image = bytes([0x90] * 128)
        sbd = ShadowBranchDecoder(image, 0,
                                  SkiaConfig(max_valid_paths=10**9))
        result = sbd.decode_head(63)
        assert result.valid_paths == 63
