"""Shadow decoder boundary conditions."""

from repro.core.sbd import ShadowBranchDecoder
from repro.frontend.config import SkiaConfig
from repro.isa.branch import BranchKind


def sbd_for(image: bytes, base: int = 0, **cfg) -> ShadowBranchDecoder:
    return ShadowBranchDecoder(image, base, SkiaConfig(**cfg))


class TestHeadBoundaries:
    def test_entry_at_offset_one(self):
        image = bytes([0xC3]) + bytes([0x90] * 127)
        result = sbd_for(image).decode_head(entry_pc=1)
        assert result.valid_paths == 1
        assert result.branches[0].kind is BranchKind.RETURN

    def test_entry_at_offset_63(self):
        image = bytes([0x90] * 62) + bytes([0xC3]) + bytes([0x90] * 65)
        result = sbd_for(image, max_valid_paths=10**9).decode_head(entry_pc=63)
        assert 62 in [b.pc for b in result.branches]

    def test_memo_distinguishes_entries(self):
        image = bytes([0x90] * 128)
        sbd = sbd_for(image, max_valid_paths=10**9)
        first = sbd.decode_head(5)
        second = sbd.decode_head(9)
        assert first is not second
        assert len(first.decoded_pcs) != len(second.decoded_pcs)

    def test_nonzero_base_address(self):
        image = bytes([0xC3]) + bytes([0x90] * 127)
        sbd = sbd_for(image, base=0x400000)
        result = sbd.decode_head(entry_pc=0x400001)
        assert result.branches[0].pc == 0x400000

    def test_head_region_beyond_image_is_empty(self):
        image = bytes([0x90] * 32)  # half a line
        sbd = sbd_for(image)
        result = sbd.decode_head(entry_pc=64 + 7)  # next line: absent
        assert not result.branches


class TestTailBoundaries:
    def test_exit_at_last_byte_of_line(self):
        image = bytes([0x90] * 128)
        result = sbd_for(image).decode_tail(exit_pc=63)
        assert result.decoded_pcs == [63]

    def test_exit_pc_equal_line_end_means_empty(self):
        image = bytes([0x90] * 128)
        result = sbd_for(image).decode_tail(exit_pc=64)
        # The branch ended exactly at the boundary: its line has no tail.
        assert not result.decoded_pcs

    def test_base_address_offsets(self):
        image = bytearray([0x90] * 128)
        image[10] = 0xC3
        sbd = sbd_for(bytes(image), base=0x400000)
        result = sbd.decode_tail(exit_pc=0x400005)
        assert [b.pc for b in result.branches] == [0x40000A]

    def test_call_target_computed_with_base(self):
        image = bytearray([0x90] * 128)
        image[8:13] = bytes([0xE8, 0x10, 0x00, 0x00, 0x00])
        sbd = sbd_for(bytes(image), base=0x400000)
        result = sbd.decode_tail(exit_pc=0x400002)
        call = result.branches[0]
        assert call.target == 0x400000 + 13 + 0x10


class TestCutoffEdge:
    def test_exactly_max_paths_is_kept(self):
        # 6 one-byte NOPs -> 6 valid paths == cutoff -> kept.
        image = bytes([0x90] * 64)
        result = sbd_for(image, max_valid_paths=6).decode_head(entry_pc=6)
        assert result.valid_paths == 6
        assert not result.discarded

    def test_one_over_cutoff_discarded(self):
        image = bytes([0x90] * 64)
        result = sbd_for(image, max_valid_paths=6).decode_head(entry_pc=7)
        assert result.valid_paths == 7
        assert result.discarded
