"""Shadow Branch Buffer: structure, LRU + retired-bit replacement."""

import pytest

from repro.core.sbb import SBBStructure, ShadowBranchBuffer
from repro.frontend.config import SkiaConfig


def same_set_pcs(structure: SBBStructure, count: int, base: int = 0x40):
    """PCs mapping to one set with distinct tags."""
    return [base + way * 2 * structure.n_sets for way in range(count)]


class TestSBBStructure:
    def make(self, entries=16, assoc=4, retired=True):
        return SBBStructure(entries, assoc, tag_bits=10, entry_bits=78,
                            name="test", use_retired_bit=retired)

    def test_insert_lookup(self):
        structure = self.make()
        structure.insert(0x1000, 0x2000)
        entry = structure.lookup(0x1000)
        assert entry is not None
        assert entry.payload == 0x2000
        assert not entry.retired

    def test_miss(self):
        assert self.make().lookup(0x1234) is None

    def test_reinsert_updates_payload_keeps_retired(self):
        structure = self.make()
        structure.insert(0x1000, 1)
        structure.mark_retired(0x1000)
        structure.insert(0x1000, 2)
        entry = structure.lookup(0x1000)
        assert entry.payload == 2
        assert entry.retired  # survives re-insertion

    def test_lru_eviction(self):
        structure = self.make()
        pcs = same_set_pcs(structure, 5)
        for pc in pcs[:4]:
            structure.insert(pc, pc)
        structure.insert(pcs[4], pcs[4])
        assert structure.lookup(pcs[0]) is None
        assert structure.lookup(pcs[4]) is not None

    def test_retired_entries_evicted_last(self):
        """Section 4.3: never-retired (possibly bogus) entries go first."""
        structure = self.make()
        pcs = same_set_pcs(structure, 5)
        for pc in pcs[:4]:
            structure.insert(pc, pc)
        structure.mark_retired(pcs[0])  # LRU but retired
        structure.insert(pcs[4], pcs[4])
        assert structure.lookup(pcs[0]) is not None   # protected
        assert structure.lookup(pcs[1]) is None       # bogus evicted first
        assert structure.evictions_bogus_first == 1

    def test_all_retired_falls_back_to_lru(self):
        structure = self.make()
        pcs = same_set_pcs(structure, 5)
        for pc in pcs[:4]:
            structure.insert(pc, pc)
            structure.mark_retired(pc)
        structure.insert(pcs[4], pcs[4])
        assert structure.lookup(pcs[0]) is None
        assert structure.evictions_lru == 1

    def test_plain_lru_mode_ignores_retired(self):
        structure = self.make(retired=False)
        pcs = same_set_pcs(structure, 5)
        for pc in pcs[:4]:
            structure.insert(pc, pc)
        structure.mark_retired(pcs[0])
        structure.insert(pcs[4], pcs[4])
        assert structure.lookup(pcs[0]) is None  # retired bit not used

    def test_mark_retired_preserves_lru_order(self):
        structure = self.make()
        pcs = same_set_pcs(structure, 5)
        for pc in pcs[:4]:
            structure.insert(pc, pc)
        structure.mark_retired(pcs[1])
        structure.insert(pcs[4], pcs[4])
        # pcs[0] is the LRU non-retired entry.
        assert structure.lookup(pcs[0]) is None

    def test_mark_retired_miss_returns_false(self):
        assert not self.make().mark_retired(0x9999)

    def test_lookup_refreshes_lru(self):
        structure = self.make()
        pcs = same_set_pcs(structure, 5)
        for pc in pcs[:4]:
            structure.insert(pc, pc)
        structure.lookup(pcs[0])
        structure.insert(pcs[4], pcs[4])
        assert structure.lookup(pcs[0]) is not None
        assert structure.lookup(pcs[1]) is None

    def test_zero_entries_disabled(self):
        structure = SBBStructure(0, 4, 10, 20, name="off")
        structure.insert(0x1, 0x2)
        assert structure.lookup(0x1) is None
        assert not structure.mark_retired(0x1)
        assert structure.occupancy() == 0

    def test_too_few_entries_rejected(self):
        with pytest.raises(ValueError):
            SBBStructure(2, 4, 10, 20, name="bad")

    def test_flush(self):
        structure = self.make()
        structure.insert(0x1, 0x2)
        structure.flush()
        assert structure.occupancy() == 0


class TestCounters:
    """Regression: the structure used to expose no probe counters, so
    the eviction fallback could not be cross-checked from snapshots."""

    def make(self):
        return SBBStructure(16, 4, tag_bits=10, entry_bits=78,
                            name="test", use_retired_bit=True)

    def test_lookup_counts_hits_and_misses(self):
        structure = self.make()
        structure.insert(0x1000, 0x2000)
        structure.lookup(0x1000)
        structure.lookup(0x3000)
        assert structure.lookups == 2
        assert structure.hits == 1

    def test_disabled_structure_still_counts_lookups(self):
        structure = SBBStructure(0, 4, 10, 20, name="off")
        structure.lookup(0x1)
        assert structure.lookups == 1
        assert structure.hits == 0

    def test_retired_marks_counted_on_success_only(self):
        structure = self.make()
        structure.insert(0x1000, 1)
        structure.mark_retired(0x1000)
        structure.mark_retired(0x9999)  # miss: not counted
        assert structure.retired_marks == 1

    def test_eviction_counters_partition_by_fallback(self):
        structure = self.make()
        pcs = same_set_pcs(structure, 6)
        for pc in pcs[:4]:
            structure.insert(pc, pc)
        structure.mark_retired(pcs[0])
        structure.insert(pcs[4], pcs[4])   # bogus-first eviction
        for pc in pcs[:4]:
            structure.mark_retired(pc)
        structure.mark_retired(pcs[4])
        structure.insert(pcs[5], pcs[5])   # all retired: LRU fallback
        assert structure.evictions_bogus_first == 1
        assert structure.evictions_lru == 1

    def test_insertion_accounting_identity(self):
        structure = self.make()
        pcs = same_set_pcs(structure, 8)
        for pc in pcs:
            structure.insert(pc, pc)
        evictions = (structure.evictions_bogus_first
                     + structure.evictions_lru)
        assert structure.insertions == evictions + structure.occupancy()

    def test_register_metrics_exposes_live_gauges(self):
        from repro.obs import MetricsRegistry
        registry = MetricsRegistry()
        structure = self.make()
        structure.register_metrics(registry.scope("sbb.u"))
        structure.insert(0x1000, 1)
        structure.lookup(0x1000)
        snapshot = registry.snapshot()
        assert snapshot["sbb.u.insertions"] == 1
        assert snapshot["sbb.u.hits"] == 1
        assert snapshot["sbb.u.occupancy"] == 1
        assert snapshot["sbb.u.entries"] == 16


class TestShadowBranchBuffer:
    def test_paper_sizes(self):
        sbb = ShadowBranchBuffer(SkiaConfig())
        assert sbb.usbb.entries == 768
        assert sbb.rsbb.entries == 2024
        assert sbb.size_kib == pytest.approx(12.25, abs=0.01)

    def test_unconditional_routing(self):
        sbb = ShadowBranchBuffer(SkiaConfig())
        sbb.insert_unconditional(0x1000, 0x2000)
        which, entry = sbb.lookup(0x1000)
        assert which == "u"
        assert entry.payload == 0x2000

    def test_return_routing_stores_line_offset(self):
        sbb = ShadowBranchBuffer(SkiaConfig())
        sbb.insert_return(0x1037)
        which, entry = sbb.lookup(0x1037)
        assert which == "r"
        assert entry.payload == 0x37  # 6-bit in-line offset (Fig 12)

    def test_u_wins_double_hit(self):
        sbb = ShadowBranchBuffer(SkiaConfig())
        sbb.insert_unconditional(0x1000, 0x2000)
        sbb.insert_return(0x1000)
        which, _ = sbb.lookup(0x1000)
        assert which == "u"

    def test_miss(self):
        assert ShadowBranchBuffer(SkiaConfig()).lookup(0x5) is None

    def test_mark_retired_routing(self):
        sbb = ShadowBranchBuffer(SkiaConfig())
        sbb.insert_unconditional(0x1000, 0x2000)
        assert sbb.mark_retired(0x1000, "u")
        assert not sbb.mark_retired(0x1000, "r")
