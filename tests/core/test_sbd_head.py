"""Head shadow decoding (Section 3.2): Index Computation + Path
Validation, index policies, and the valid-path cutoff."""

import pytest

from repro.core.sbd import ShadowBranchDecoder
from repro.frontend.config import IndexPolicy, SkiaConfig
from repro.isa.branch import BranchKind

INVALID = 0x06  # an invalid primary opcode


def line_with_head(head: bytes) -> bytes:
    """A 64-byte line whose first len(head) bytes are `head`."""
    assert len(head) <= 64
    return bytes(head) + bytes([0x90] * (64 - len(head)))


def make_sbd(image: bytes, policy=IndexPolicy.FIRST,
             max_paths=6) -> ShadowBranchDecoder:
    config = SkiaConfig(index_policy=policy, max_valid_paths=max_paths)
    return ShadowBranchDecoder(image, 0, config)


#: Figure-9-style head region (entry at offset 7):
#:   offset 0: mov r32, imm32 (5 bytes, immediate = invalid bytes)
#:   offset 5: jmp rel8 +6    (2 bytes) -> the shadow branch, target 13
#: Valid paths start at 0 and 5; offsets 1-4 and 6 are undecodable.
FIG9_HEAD = bytes([0xB8, INVALID, INVALID, INVALID, INVALID, 0xEB, INVALID])


class TestIndexComputation:
    def test_length_vector(self):
        sbd = make_sbd(line_with_head(FIG9_HEAD))
        lengths = sbd._index_computation(0, 7)
        assert lengths == [5, 0, 0, 0, 0, 2, 0]

    def test_zero_for_instruction_crossing_entry(self):
        # A 5-byte mov starting at offset 4 would cross entry offset 7.
        head = bytes([0x90, 0x90, 0x90, 0x90, 0xB8, 0x01, 0x02])
        sbd = make_sbd(line_with_head(head))
        lengths = sbd._index_computation(0, 7)
        assert lengths[4] == 0  # cut off by the entry-point limit


class TestPathValidation:
    def test_valid_starts(self):
        sbd = make_sbd(line_with_head(FIG9_HEAD))
        lengths = sbd._index_computation(0, 7)
        assert sbd._path_validation(lengths, 7) == [0, 5]

    def test_path_must_land_exactly_on_entry(self):
        # Single 2-byte instruction, entry at 3: 0 -> 2 -> invalid.
        head = bytes([0xEB, 0x00, INVALID])
        sbd = make_sbd(line_with_head(head))
        lengths = sbd._index_computation(0, 3)
        assert 0 not in sbd._path_validation(lengths, 3)

    def test_all_nops_every_offset_valid(self):
        sbd = make_sbd(line_with_head(bytes([0x90] * 8)))
        lengths = sbd._index_computation(0, 8)
        assert sbd._path_validation(lengths, 8) == list(range(8))


class TestDecodeHead:
    def test_finds_shadow_branch(self):
        sbd = make_sbd(line_with_head(FIG9_HEAD))
        result = sbd.decode_head(entry_pc=7)
        assert result.valid_paths == 2
        assert not result.discarded
        assert result.chosen_start == 0
        jmp = next(b for b in result.branches
                   if b.kind is BranchKind.DIRECT_UNCOND)
        assert jmp.pc == 5
        assert jmp.target == 13  # pc 5 + len 2 + rel 6

    def test_entry_at_line_start_is_empty(self):
        sbd = make_sbd(line_with_head(FIG9_HEAD))
        result = sbd.decode_head(entry_pc=64)
        assert not result.branches
        assert result.valid_paths == 0

    def test_no_valid_paths(self):
        head = bytes([INVALID, INVALID, INVALID])
        sbd = make_sbd(line_with_head(head))
        result = sbd.decode_head(entry_pc=3)
        assert result.valid_paths == 0
        assert not result.branches

    def test_discard_when_too_many_paths(self):
        """A NOP sled validates at every offset; above the cutoff the
        line is discarded (Section 3.2.2 Valid Encodings)."""
        sbd = make_sbd(line_with_head(bytes([0x90] * 10)), max_paths=6)
        result = sbd.decode_head(entry_pc=10)
        assert result.valid_paths == 10
        assert result.discarded
        assert not result.branches

    def test_cutoff_configurable(self):
        sbd = make_sbd(line_with_head(bytes([0x90] * 10)), max_paths=16)
        result = sbd.decode_head(entry_pc=10)
        assert not result.discarded

    def test_returns_captured(self):
        head = bytes([0xC3, INVALID])  # ret; junk
        sbd = make_sbd(line_with_head(head))
        # Only path from 0 would be 0 -> 1 -> dead; make entry at 1.
        result = sbd.decode_head(entry_pc=1)
        assert [b.kind for b in result.branches] == [BranchKind.RETURN]

    def test_conditionals_ignored(self):
        head = bytes([0x74, 0x05])  # jcc rel8
        sbd = make_sbd(line_with_head(head))
        result = sbd.decode_head(entry_pc=2)
        assert not result.branches
        assert result.decoded_pcs == [0]

    def test_memoised(self):
        sbd = make_sbd(line_with_head(FIG9_HEAD))
        assert sbd.decode_head(7) is sbd.decode_head(7)

    def test_second_line_offsets(self):
        image = bytes([0x90] * 64) + line_with_head(FIG9_HEAD)
        sbd = make_sbd(image)
        result = sbd.decode_head(entry_pc=64 + 7)
        assert result.valid_paths == 2
        jmp = result.branches[0]
        assert jmp.pc == 64 + 5
        assert jmp.target == 64 + 13

    def test_outside_image(self):
        sbd = make_sbd(line_with_head(FIG9_HEAD))
        result = sbd.decode_head(entry_pc=1000 * 64 + 7)
        assert not result.branches


class TestIndexPolicies:
    def test_first_index(self):
        sbd = make_sbd(line_with_head(FIG9_HEAD), IndexPolicy.FIRST)
        assert sbd.decode_head(7).chosen_start == 0

    def test_zero_index_uses_zero_when_valid(self):
        sbd = make_sbd(line_with_head(FIG9_HEAD), IndexPolicy.ZERO)
        assert sbd.decode_head(7).chosen_start == 0

    def test_zero_index_falls_back(self):
        # Offset 0 invalid; first valid path starts at 1.
        head = bytes([INVALID, 0x90, 0x90])
        sbd = make_sbd(line_with_head(head), IndexPolicy.ZERO)
        assert sbd.decode_head(3).chosen_start == 1

    def test_merge_index_picks_shared_position(self):
        sbd = make_sbd(line_with_head(FIG9_HEAD), IndexPolicy.MERGE)
        # Position 5 is visited by both valid paths; 0 by only one.
        assert sbd.decode_head(7).chosen_start == 5

    def test_policies_share_branch_when_after_merge(self):
        for policy in IndexPolicy:
            sbd = make_sbd(line_with_head(FIG9_HEAD), policy)
            branches = sbd.decode_head(7).branches
            assert any(b.pc == 5 for b in branches), policy


class TestConvergence:
    def test_figure8_merging_paths(self):
        """Two different start offsets converging on the same shadow
        branch (the paper's Figure 8 merging-path case)."""
        # offset0: xor r,r (2 bytes: 0x31 + ModRM mod=3) then ret at 2;
        # offset1: 0xD8 is an x87 ModRM op that *consumes* the ret byte
        # as its ModRM and also lands on the entry -- a valid bogus path.
        head = bytes([0x31, 0xD8, 0xC3])
        sbd = make_sbd(line_with_head(head))
        result = sbd.decode_head(entry_pc=3)
        assert result.valid_paths >= 2
        # The FIRST policy picks the offset-0 path, which sees the ret.
        assert any(b.kind is BranchKind.RETURN and b.pc == 2
                   for b in result.branches)
