"""LRUCache counter-consistency tests.

The decode memos and workload caches all ride on ``repro.caching``, so
its counters feed the observability snapshots directly; drift here would
show up as phantom invariant violations.  The property test drives
random op sequences at the degenerate capacities (0, 1) and under
touch-on-hit re-ordering and checks the documented counter identities
after every operation.
"""

import random

import pytest

from repro.caching import LRUCache


class TestCapacityZero:
    # Regression: LRUCache(maxsize=0) used to raise ValueError, so a
    # cache-size sweep could not include the "no cache" endpoint.

    def test_constructible(self):
        cache = LRUCache(maxsize=0)
        assert len(cache) == 0

    def test_store_is_immediately_evicted(self):
        cache = LRUCache(maxsize=0)
        cache["a"] = 1
        assert len(cache) == 0
        assert cache.get("a") is None
        assert cache.evictions == 1
        assert cache.misses == 1
        assert cache.hits == 0

    def test_negative_still_rejected(self):
        with pytest.raises(ValueError):
            LRUCache(maxsize=-1)


class TestCapacityOne:
    def test_eviction_counts(self):
        cache = LRUCache(maxsize=1)
        cache["a"] = 1
        cache["b"] = 2  # evicts a
        assert cache.evictions == 1
        assert cache.get("a") is None
        assert cache.get("b") == 2
        assert (cache.hits, cache.misses) == (1, 1)

    def test_update_in_place_is_not_an_eviction(self):
        cache = LRUCache(maxsize=1)
        cache["a"] = 1
        cache["a"] = 2
        assert cache.evictions == 0
        assert cache.get("a") == 2


class TestTouchOnHit:
    def test_get_refreshes_recency(self):
        cache = LRUCache(maxsize=2)
        cache["a"] = 1
        cache["b"] = 2
        assert cache.get("a") == 1     # a becomes MRU
        cache["c"] = 3                 # evicts b, not a
        assert cache.get("a") == 1
        assert cache.get("b") is None
        assert cache.evictions == 1

    def test_peek_and_contains_do_not_count_or_touch(self):
        cache = LRUCache(maxsize=2)
        cache["a"] = 1
        cache["b"] = 2
        assert cache.peek("a") == 1
        assert "a" in cache
        cache["c"] = 3                 # a is still LRU: evicted
        assert cache.peek("a") is None
        assert (cache.hits, cache.misses) == (0, 0)


@pytest.mark.parametrize("maxsize", [0, 1, 2, 5, None])
def test_counter_invariants_hold_under_random_ops(maxsize):
    """Property: after any op sequence, the documented identities hold.

    * ``hits + misses == number of get() calls``
    * ``evictions == new-key stores - live entries`` (bounded caches)
    * ``len(cache) <= maxsize``
    """
    rng = random.Random(maxsize if maxsize is not None else 99)
    cache = LRUCache(maxsize=maxsize)
    shadow: dict = {}           # reference model (unbounded, same recency)
    gets = 0
    new_key_stores = 0
    keys = [f"k{i}" for i in range(8)]

    for _ in range(3000):
        key = rng.choice(keys)
        op = rng.random()
        if op < 0.45:
            gets += 1
            value = cache.get(key)
            if value is not None:
                assert value == shadow[key]
                # Touch in the shadow model too.
                shadow[key] = shadow.pop(key)
        elif op < 0.9:
            if not cache.__contains__(key):
                new_key_stores += 1
            cache[key] = rng.randrange(1, 1000)
            shadow.pop(key, None)
            shadow[key] = cache.peek(key)
            if maxsize is not None:
                while len(shadow) > maxsize:
                    oldest = next(iter(shadow))
                    del shadow[oldest]
        elif op < 0.95:
            cache.peek(key)
        else:
            _ = key in cache

        assert cache.hits + cache.misses == gets
        if maxsize is not None:
            assert len(cache) <= maxsize
            assert cache.evictions == new_key_stores - len(cache)
        else:
            assert cache.evictions == 0
        # Contents must match the reference model exactly.
        assert dict((k, cache.peek(k)) for k in cache) == shadow


class TestOnEvict:
    """The eviction callback that lets cached values own resources."""

    def test_fires_on_lru_displacement(self):
        seen = []
        cache = LRUCache(maxsize=1, on_evict=lambda k, v: seen.append((k, v)))
        cache["a"] = 1
        cache["b"] = 2
        assert seen == [("a", 1)]

    def test_fires_on_overwrite_with_new_value(self):
        seen = []
        cache = LRUCache(maxsize=2, on_evict=lambda k, v: seen.append((k, v)))
        cache["a"] = 1
        cache["a"] = 2
        assert seen == [("a", 1)]

    def test_silent_on_overwrite_with_same_object(self):
        seen = []
        value = object()
        cache = LRUCache(maxsize=2, on_evict=lambda k, v: seen.append((k, v)))
        cache["a"] = value
        cache["a"] = value
        assert seen == []

    def test_clear_does_not_fire(self):
        # clear() drops entries without the callback: callers that need
        # teardown-on-clear (WorkloadCache) walk entries themselves first.
        seen = []
        cache = LRUCache(maxsize=4, on_evict=lambda k, v: seen.append(k))
        cache["a"] = 1
        cache.clear()
        assert seen == []
