"""Top-level package surface."""

import repro


class TestSurface:
    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_version(self):
        assert repro.__version__.count(".") == 2

    def test_workload_names_exposed(self):
        assert len(repro.WORKLOAD_NAMES) == 16


class TestQuickCompare:
    def test_small_run(self):
        result = repro.quick_compare("noop", records=12_000, warmup=4_000)
        assert result.workload == "noop"
        assert result.baseline.ipc > 0
        assert result.skia.ipc > 0
        assert -0.2 < result.speedup < 0.5

    def test_render_fields(self):
        result = repro.quick_compare("noop", records=8_000, warmup=2_000)
        text = result.render()
        for needle in ("baseline IPC", "speedup", "BTB miss MPKI",
                       "SBB hits"):
            assert needle in text

    def test_deterministic(self):
        first = repro.quick_compare("noop", records=8_000, warmup=2_000)
        second = repro.quick_compare("noop", records=8_000, warmup=2_000)
        assert first.baseline.cycles == second.baseline.cycles
        assert first.skia.cycles == second.skia.cycles
