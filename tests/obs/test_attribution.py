"""Per-branch / per-line attribution: rollups, conservation, diff.

The synthetic-event tests pin the aggregator's accounting rules; the
micro-simulation tests pin the property the tier-1 grid scales up:
per-branch sums equal the aggregate ``SimStats`` counters exactly, even
when the attached ring buffer drops events (sinks see everything).
"""

import json
import warnings

import pytest

from repro.frontend.config import FrontEndConfig, SkiaConfig
from repro.frontend.engine import FrontEndSimulator
from repro.obs import (
    AttributionAggregator,
    DroppedEventsWarning,
    EventTrace,
    check_snapshot,
    diff_attributions,
)
from repro.obs.attribution import render_html, render_markdown
from repro.workloads.analysis import (
    shadow_geometry,
    shadow_position_map,
    shadow_positions,
)


def _btb(pc, hit, record=10, resident=False, kind="DirectUnCond"):
    return {"kind": "btb", "record": record, "pc": pc, "hit": hit,
            "branch_kind": kind, "resident": resident}


class TestObserve:
    def test_btb_rollup(self):
        agg = AttributionAggregator(warmup=0)
        agg.observe(_btb(0x100, hit=True))
        agg.observe(_btb(0x100, hit=False, resident=True))
        agg.observe(_btb(0x100, hit=False, resident=False))
        branch = agg.branches[0x100]
        assert branch.btb_lookups == 3
        assert branch.btb_misses == 2
        assert branch.btb_miss_l1i_hit == 1
        assert branch.kind == "DirectUnCond"
        assert agg.lines[0x100].btb_misses == 2

    def test_warmup_gating(self):
        agg = AttributionAggregator(warmup=5)
        agg.observe(_btb(0x100, hit=False, record=4))   # warm-up: uncounted
        agg.observe(_btb(0x100, hit=False, record=5))   # boundary: counted
        assert agg.events_seen == 2
        assert agg.events_counted == 1
        assert agg.branches[0x100].btb_misses == 1

    def test_sbb_split(self):
        agg = AttributionAggregator()
        agg.observe({"kind": "sbb", "record": 0, "pc": 0x10, "hit": True,
                     "which": "u"})
        agg.observe({"kind": "sbb", "record": 0, "pc": 0x10, "hit": True,
                     "which": "r"})
        agg.observe({"kind": "sbb", "record": 0, "pc": 0x10, "hit": False,
                     "which": None})
        branch = agg.branches[0x10]
        assert (branch.sbb_hits_u, branch.sbb_hits_r,
                branch.sbb_misses) == (1, 1, 1)
        assert branch.sbb_hits == 2
        assert agg.lines[0].sbb_hits == 2

    def test_resteer_cycles_by_cause(self):
        agg = AttributionAggregator()
        agg.observe({"kind": "resteer", "record": 0, "pc": 0x20,
                     "stage": "decode", "cause": "undetected_branch",
                     "latency": 10.0})
        agg.observe({"kind": "resteer", "record": 0, "pc": 0x20,
                     "stage": "exec", "cause": "cond_mispredict",
                     "latency": 25.0})
        branch = agg.branches[0x20]
        assert branch.decode_resteers == 1
        assert branch.exec_resteers == 1
        assert branch.resteer_cycles == {"undetected_branch": 10.0,
                                         "cond_mispredict": 25.0}
        assert branch.cycles == 35.0
        assert branch.top_cause == "cond_mispredict"

    def test_sbd_byte_masks(self):
        agg = AttributionAggregator(line_size=64)
        # Head decode entering at offset 16 covers bytes [0, 16).
        agg.observe({"kind": "sbd", "record": 0, "side": "head",
                     "pc": 0x1010, "branches": 2, "discarded": False})
        # Tail decode exiting at offset 48 covers bytes [48, 64).
        agg.observe({"kind": "sbd", "record": 0, "side": "tail",
                     "pc": 0x1030, "branches": 1})
        line = agg.lines[0x1000]
        assert line.head_bytes == 16
        assert line.tail_bytes == 16
        assert line.covered_bytes == 32
        assert line.head_decodes == 1 and line.tail_decodes == 1
        assert line.shadow_branches_found == 3

    def test_head_discard_counted(self):
        agg = AttributionAggregator()
        agg.observe({"kind": "sbd", "record": 0, "side": "head",
                     "pc": 0x10, "branches": 0, "discarded": True})
        assert agg.lines[0].head_discarded == 1

    def test_unknown_kind_ignored(self):
        agg = AttributionAggregator()
        agg.observe({"kind": "trace_header", "capacity": 4})
        assert agg.events_seen == 1
        assert agg.events_counted == 0

    def test_rejects_bad_line_size(self):
        with pytest.raises(ValueError):
            AttributionAggregator(line_size=0)


class TestTotalsAndSnapshot:
    def test_totals_sum_branches_and_lines(self):
        agg = AttributionAggregator()
        agg.observe(_btb(0x100, hit=False, resident=True))
        agg.observe(_btb(0x180, hit=False))
        agg.observe({"kind": "sbb", "record": 10, "pc": 0x100,
                     "hit": True, "which": "u"})
        agg.observe({"kind": "sbb", "record": 10, "pc": 0x180,
                     "hit": False, "which": None})
        totals = agg.totals()
        assert totals["btb_misses"] == 2
        assert totals["btb_miss_l1i_hit"] == 1
        assert totals["sbb_lookups"] == 2
        assert totals["branches"] == 2
        assert totals["lines"] == 2
        assert agg.shadow_resident_fraction == 0.5

    def test_snapshot_uses_attrib_prefix(self):
        agg = AttributionAggregator()
        agg.observe(_btb(0x100, hit=False))
        snapshot = agg.snapshot()
        assert snapshot["attrib.btb_misses"] == 1
        assert all(key.startswith("attrib.") for key in snapshot)

    def test_top_branches_ranked_by_cycles(self):
        agg = AttributionAggregator()
        for pc, latency in ((0x10, 5.0), (0x20, 50.0), (0x30, 20.0)):
            agg.observe({"kind": "resteer", "record": 0, "pc": pc,
                         "stage": "exec", "cause": "cond_mispredict",
                         "latency": latency})
        assert [b.pc for b in agg.top_branches(2)] == [0x20, 0x30]


class TestPersistence:
    def _populated(self):
        agg = AttributionAggregator(workload="micro", warmup=3)
        agg.observe(_btb(0x100, hit=False, resident=True))
        agg.observe({"kind": "sbb", "record": 10, "pc": 0x100,
                     "hit": True, "which": "u"})
        agg.observe({"kind": "resteer", "record": 11, "pc": 0x140,
                     "stage": "decode", "cause": "undetected_branch",
                     "latency": 9.0})
        agg.observe({"kind": "sbd", "record": 11, "side": "head",
                     "pc": 0x148, "branches": 1, "discarded": False})
        return agg

    def test_roundtrip_is_lossless(self, tmp_path):
        agg = self._populated()
        path = agg.save(tmp_path / "attrib.json")
        loaded = AttributionAggregator.load(path)
        assert loaded.to_jsonable() == agg.to_jsonable()
        assert loaded.totals() == agg.totals()
        # Deterministic bytes: re-saving reproduces the file exactly.
        assert loaded.save(tmp_path / "again.json").read_bytes() == (
            path.read_bytes())

    def test_schema_mismatch_rejected(self):
        payload = self._populated().to_jsonable()
        payload["schema"] = 999
        with pytest.raises(ValueError, match="schema"):
            AttributionAggregator.from_jsonable(payload)

    def test_from_trace_jsonl_rebuilds_rollups(self, tmp_path):
        trace = EventTrace(capacity=1024)
        agg_live = AttributionAggregator()
        trace.add_sink(agg_live.observe)
        trace.record_index = 0
        trace.emit("btb", pc=0x100, hit=False, branch_kind="Call",
                   resident=True)
        trace.emit("sbb", pc=0x100, hit=True, which="u")
        path = trace.to_jsonl(tmp_path / "trace.jsonl")
        rebuilt = AttributionAggregator.from_trace_jsonl(path)
        assert rebuilt.totals() == agg_live.totals()

    def test_truncated_trace_warns(self, tmp_path):
        # Satellite: a capacity-1 ring drops all but the newest event;
        # rebuilding attribution from such a dump must warn, not
        # silently under-attribute.
        trace = EventTrace(capacity=1)
        for index in range(6):
            trace.emit("btb", pc=index * 4, hit=False,
                       branch_kind="Call", resident=False)
        path = trace.to_jsonl(tmp_path / "truncated.jsonl")
        with pytest.warns(DroppedEventsWarning, match="5 dropped"):
            rebuilt = AttributionAggregator.from_trace_jsonl(path)
        assert rebuilt.source_dropped == 5
        assert rebuilt.totals()["btb_misses"] == 1  # only the survivor

    def test_complete_trace_does_not_warn(self, tmp_path):
        trace = EventTrace(capacity=16)
        trace.emit("btb", pc=0, hit=True, branch_kind="Call",
                   resident=False)
        path = trace.to_jsonl(tmp_path / "full.jsonl")
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            AttributionAggregator.from_trace_jsonl(path)


class TestShadowPositions:
    def test_positions_aggregate_to_geometry(self, micro_program):
        positions = shadow_positions(micro_program)
        geometry = shadow_geometry(micro_program)
        assert len(positions) == geometry.total_branches
        assert sum(p.head for p in positions) == (
            geometry.head_shadow_candidates)
        assert sum(p.tail for p in positions) == (
            geometry.tail_shadow_candidates)
        assert sum(p.eligible for p in positions) == (
            geometry.eligible_branches)

    def test_map_keys_are_branch_pcs(self, micro_program):
        mapping = shadow_position_map(micro_program)
        assert mapping
        assert all(mapping[pc].pc == pc for pc in mapping)

    def test_labels(self, micro_program):
        labels = {p.label for p in shadow_positions(micro_program)}
        assert labels <= {"head", "tail", "head+tail", "none"}

    def test_aggregator_stamps_positions(self, micro_program):
        agg = AttributionAggregator(
            shadow_positions=shadow_position_map(micro_program))
        some_pc = next(iter(shadow_position_map(micro_program)))
        agg.observe(_btb(some_pc, hit=False))
        assert agg.branches[some_pc].shadow in (
            "head", "tail", "head+tail", "none")
        # Unknown PCs are "none", not "?", once a census is supplied.
        agg.observe(_btb(0x1, hit=False))
        assert agg.branches[0x1].shadow == "none"


@pytest.fixture(scope="module")
def attributed_sim(micro_program, micro_trace):
    """Skia micro run with live attribution through a *tiny* ring.

    The capacity-4 trace drops nearly everything from the ring, proving
    attribution reads the sink stream, not the buffer.
    """
    config = FrontEndConfig(skia=SkiaConfig()).with_btb_entries(256)
    simulator = FrontEndSimulator(micro_program, config)
    simulator.attach_trace(EventTrace(capacity=4))
    simulator.attach_attribution()
    simulator.run(micro_trace, warmup=2_000)
    return simulator


class TestConservationOnRealRuns:
    def test_exact_integer_identities(self, attributed_sim):
        stats = attributed_sim.stats
        totals = attributed_sim.attribution.totals()
        assert attributed_sim.trace.dropped > 0  # the ring truly dropped
        assert totals["btb_lookups"] == stats.btb_lookups
        assert totals["btb_misses"] == stats.total_btb_misses
        assert totals["btb_miss_l1i_hit"] == stats.btb_miss_l1i_hit
        assert totals["sbb_lookups"] == stats.sbb_lookups
        assert totals["sbb_hits_u"] == stats.sbb_hits_u
        assert totals["sbb_hits_r"] == stats.sbb_hits_r
        assert totals["sbb_misses"] == stats.sbb_misses
        assert totals["decode_resteers"] == stats.decode_resteers
        assert totals["exec_resteers"] == stats.exec_resteers
        assert totals["sbd_head_decodes"] == stats.sbd_head_decodes
        assert totals["sbd_tail_decodes"] == stats.sbd_tail_decodes
        assert totals["sbd_head_discarded"] == stats.sbd_head_discarded
        for cause, count in stats.resteer_causes.items():
            assert totals[f"resteer_causes.{cause}"] == count

    def test_shadow_resident_fraction_identity(self, attributed_sim):
        # The acceptance criterion: the per-branch reconstruction of the
        # Figure 1/15 fraction equals the aggregate exactly.
        assert attributed_sim.attribution.shadow_resident_fraction == (
            attributed_sim.stats.btb_miss_l1i_hit_fraction)

    def test_merged_snapshot_passes_attribution_invariants(
            self, attributed_sim):
        merged = attributed_sim.metrics_snapshot()
        merged.update(attributed_sim.attribution.snapshot())
        assert check_snapshot(merged) == []
        from repro.obs import applicable_invariants
        names = applicable_invariants(merged)
        assert "attribution_btb_conservation" in names
        assert "attribution_sbb_conservation" in names
        assert "attribution_resteer_conservation" in names
        assert "attribution_sbd_conservation" in names

    def test_corrupted_rollup_is_caught(self, attributed_sim):
        merged = attributed_sim.metrics_snapshot()
        merged.update(attributed_sim.attribution.snapshot())
        merged["attrib.btb_misses"] += 1
        names = {v.invariant for v in check_snapshot(merged)}
        assert "attribution_btb_conservation" in names

    def test_branch_shadow_labels_stamped(self, attributed_sim):
        labels = {b.shadow
                  for b in attributed_sim.attribution.branches.values()}
        assert "?" not in labels  # for_simulation supplied the census


class TestReports:
    def test_markdown_report(self, attributed_sim):
        rendered = render_markdown(attributed_sim.attribution, top=5)
        assert "# Attribution report" in rendered
        assert "| pc | kind | shadow |" in rendered
        assert "Resteer causes" in rendered

    def test_html_report(self, attributed_sim):
        rendered = render_html(attributed_sim.attribution, top=5)
        assert rendered.startswith("<!DOCTYPE html>")
        assert "<table>" in rendered

    def test_unknown_format_rejected(self, attributed_sim):
        from repro.obs.attribution import render_report
        with pytest.raises(ValueError):
            render_report(attributed_sim.attribution, fmt="pdf")


def _agg_with_cycles(spec):
    """{pc: (cycles, misses, rescues)} -> aggregator."""
    agg = AttributionAggregator()
    for pc, (cycles, misses, rescues) in spec.items():
        if cycles:
            agg.observe({"kind": "resteer", "record": 0, "pc": pc,
                         "stage": "exec", "cause": "cond_mispredict",
                         "latency": cycles})
        for _ in range(misses):
            agg.observe(_btb(pc, hit=False))
        for _ in range(rescues):
            agg.observe({"kind": "sbb", "record": 0, "pc": pc,
                         "hit": True, "which": "u"})
    return agg


class TestDiff:
    def test_regression_needs_both_gates(self):
        before = _agg_with_cycles({0x10: (1000.0, 0, 0)})
        # +50 cycles is past neither gate; +500 is past both.
        after_small = _agg_with_cycles({0x10: (1050.0, 0, 0)})
        after_big = _agg_with_cycles({0x10: (1500.0, 0, 0)})
        assert diff_attributions(before, after_small,
                                 min_cycles=100, min_pct=10).regressions == []
        diff = diff_attributions(before, after_big,
                                 min_cycles=100, min_pct=10)
        assert [d.pc for d in diff.regressions] == [0x10]

    def test_relative_gate_protects_hot_branches(self):
        # 200 extra cycles on a 10k-cycle branch is 2% -- not a
        # regression at a 10% relative gate, despite passing the
        # absolute one.
        before = _agg_with_cycles({0x10: (10_000.0, 0, 0)})
        after = _agg_with_cycles({0x10: (10_200.0, 0, 0)})
        assert diff_attributions(before, after,
                                 min_cycles=100, min_pct=10).regressions == []

    def test_new_branch_flagged_on_absolute_gate(self):
        before = _agg_with_cycles({})
        after = _agg_with_cycles({0x20: (500.0, 0, 0)})
        diff = diff_attributions(before, after, min_cycles=100, min_pct=10)
        assert [d.pc for d in diff.regressions] == [0x20]

    def test_improvement_never_flagged(self):
        before = _agg_with_cycles({0x10: (1000.0, 0, 0)})
        after = _agg_with_cycles({0x10: (100.0, 0, 0)})
        diff = diff_attributions(before, after)
        assert diff.regressions == []
        assert diff.deltas[0].delta_cycles == -900.0

    def test_unmoved_branches_excluded(self):
        spec = {0x10: (100.0, 2, 1)}
        diff = diff_attributions(_agg_with_cycles(spec),
                                 _agg_with_cycles(spec))
        assert diff.deltas == []

    def test_miss_and_rescue_movement_kept(self):
        before = _agg_with_cycles({0x10: (0.0, 5, 1)})
        after = _agg_with_cycles({0x10: (0.0, 8, 4)})
        diff = diff_attributions(before, after)
        assert len(diff.deltas) == 1
        delta = diff.deltas[0]
        assert delta.after_misses - delta.before_misses == 3
        assert delta.after_rescues - delta.before_rescues == 3

    def test_render_mentions_thresholds(self):
        before = _agg_with_cycles({0x10: (0.0, 0, 0)})
        after = _agg_with_cycles({0x10: (500.0, 0, 0)})
        rendered = diff_attributions(before, after).render()
        assert "REGRESSED" in rendered
        assert "1 regressed past thresholds" in rendered
