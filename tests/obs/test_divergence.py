"""Divergence bisection: clean pairs stay clean, seeded ones localize.

The seeded tests validate the bisector against a brute-force oracle:
an ``interval_size=1`` collector pass over the full trace names the
true first divergent record, and the bisector must agree -- window and
record both.
"""

import dataclasses
import json

import pytest

from repro.frontend.config import FrontEndConfig, SkiaConfig
from repro.frontend.engine import FrontEndSimulator
from repro.obs.divergence import (
    bisect_divergence,
    state_digest,
    window_digests,
)
from repro.obs.intervals import IntervalCollector

RECORDS = 1_000
WARMUP = 150
WINDOW = 250

SKIA = FrontEndConfig(skia=SkiaConfig())


@pytest.fixture(scope="module")
def records(micro_trace):
    return micro_trace[:RECORDS]


def _first_divergent_record(program, records, config_a, config_b,
                            warmup=WARMUP):
    """Brute-force oracle: per-record rows over the whole trace."""
    sides = []
    for config in (config_a, config_b):
        config = dataclasses.replace(config, interval_size=0)
        simulator = FrontEndSimulator(program, config, seed=0)
        collector = IntervalCollector(1)
        simulator.attach_intervals(collector)
        simulator.run(records, warmup=warmup)
        sides.append(collector.rows)
    for index, (row_a, row_b) in enumerate(zip(*sides)):
        if row_a != row_b:
            return index
    return None


class TestIdenticalSides:
    @pytest.mark.parametrize("engine_b", ["compiled", "batched"])
    def test_engine_pairs_are_clean(self, micro_program, records,
                                    engine_b):
        report = bisect_divergence(
            micro_program, records, SKIA, engine_a="object",
            engine_b=engine_b, warmup=WARMUP, window=WINDOW)
        assert report.identical
        assert report.window is None
        assert report.record_index is None
        assert report.windows_compared == RECORDS // WINDOW
        assert "identical" in report.render()

    def test_same_engine_same_config(self, micro_program, records):
        report = bisect_divergence(
            micro_program, records, SKIA, engine_a="object",
            engine_b="object", warmup=WARMUP, window=WINDOW)
        assert report.identical


class TestSeededDivergence:
    @pytest.mark.parametrize("perturb", [
        lambda c: c.with_btb_entries(64),
        lambda c: dataclasses.replace(c, ras_depth=2),
        lambda c: dataclasses.replace(c, exec_resolve_delay=10.0),
    ], ids=["btb64", "ras2", "resolve10"])
    def test_bisect_matches_brute_force_oracle(self, micro_program,
                                               records, perturb):
        config_b = perturb(SKIA)
        expected = _first_divergent_record(micro_program, records, SKIA,
                                           config_b)
        assert expected is not None, "perturbation produced no divergence"
        report = bisect_divergence(
            micro_program, records, SKIA, config_b, engine_a="object",
            engine_b="object", warmup=WARMUP, window=WINDOW,
            oracle_events=False)
        assert not report.identical
        assert report.window == expected // WINDOW
        assert report.window_start <= expected < report.window_end
        assert report.record_index == expected
        assert report.record_counters

    def test_oracle_events_cover_the_divergent_record(self, micro_program,
                                                      records):
        report = bisect_divergence(
            micro_program, records, SKIA, SKIA.with_btb_entries(64),
            engine_a="object", engine_b="object", warmup=WARMUP,
            window=WINDOW)
        assert report.events_a and report.events_b
        for event in report.events_a + report.events_b:
            assert event["record"] == report.record_index
        rendered = report.render()
        assert "first divergent window" in rendered
        assert f"first divergent record: {report.record_index}" in rendered

    def test_report_is_json_serializable(self, micro_program, records):
        report = bisect_divergence(
            micro_program, records, SKIA, SKIA.with_btb_entries(64),
            engine_a="object", engine_b="object", warmup=WARMUP,
            window=WINDOW, oracle_events=False)
        payload = json.loads(json.dumps(report.to_jsonable()))
        assert payload["identical"] is False
        assert payload["window"] == report.window
        assert payload["record_index"] == report.record_index

    def test_state_diff_reports_counter_movement(self, micro_program,
                                                 records):
        report = bisect_divergence(
            micro_program, records, SKIA, SKIA.with_btb_entries(64),
            engine_a="object", engine_b="object", warmup=WARMUP,
            window=WINDOW, oracle_events=False)
        assert report.state_diff  # snapshots differ after the prefix


class TestStateDigest:
    def test_deterministic_and_state_sensitive(self, micro_program,
                                               records):
        a = FrontEndSimulator(micro_program, SKIA, seed=0)
        b = FrontEndSimulator(micro_program, SKIA, seed=0)
        assert state_digest(a) == state_digest(b)
        a.run(records[:100], warmup=0)
        assert state_digest(a) != state_digest(b)
        b.run(records[:100], warmup=0)
        assert state_digest(a) == state_digest(b)

    def test_window_digests_expose_comparison_units(self, micro_program,
                                                    records):
        config = dataclasses.replace(SKIA, interval_size=0)
        simulator = FrontEndSimulator(micro_program, config, seed=0)
        collector = IntervalCollector(
            WINDOW, state_probe=lambda: state_digest(simulator))
        simulator.attach_intervals(collector)
        simulator.run(records, warmup=WARMUP)
        digests = window_digests(collector)
        assert len(digests) == RECORDS // WINDOW
        assert all(d.state_hash for d in digests)
        assert len({d.row_hash for d in digests}) > 1


class TestValidation:
    def test_window_must_be_positive(self, micro_program, records):
        with pytest.raises(ValueError):
            bisect_divergence(micro_program, records, SKIA, window=0)

    def test_unknown_engine_rejected(self, micro_program, records):
        with pytest.raises(ValueError):
            bisect_divergence(micro_program, records, SKIA,
                              engine_a="quantum", engine_b="object",
                              warmup=0, window=WINDOW)
