"""Interval telemetry: collector windows, series algebra, conservation.

The engine-facing contract (boundaries cut on the record index, final
partial window from ``finish``, injected progress counters) is pinned
here on the micro workload; three-way cross-engine bit-identity over
the Figure-14 grid lives in tests/frontend/test_interval_equality.py.
"""

import dataclasses

import pytest

from repro.frontend.config import FrontEndConfig, SkiaConfig
from repro.frontend.engine import FrontEndSimulator
from repro.obs.intervals import (
    IntervalCollector,
    IntervalSeries,
    diff_series,
    sparkline,
)
from repro.obs.invariants import check_snapshot

RECORDS = 1_000
WARMUP = 150
WINDOW = 100


@pytest.fixture(scope="module")
def records(micro_trace):
    return micro_trace[:RECORDS]


@pytest.fixture(scope="module")
def skia_run(micro_program, records):
    config = dataclasses.replace(FrontEndConfig(skia=SkiaConfig()),
                                 interval_size=WINDOW)
    simulator = FrontEndSimulator(micro_program, config)
    stats = simulator.run(records, warmup=WARMUP)
    return simulator, stats


class TestCollectorGeometry:
    def test_window_count_and_boundaries(self, skia_run):
        simulator, _ = skia_run
        series = simulator.intervals.series()
        assert series.windows == RECORDS // WINDOW
        assert series.ends == list(range(WINDOW, RECORDS + 1, WINDOW))
        assert series.starts == list(range(0, RECORDS, WINDOW))
        assert series.warmup == WARMUP

    def test_exact_multiple_has_no_duplicate_final_window(
            self, micro_program, records):
        config = dataclasses.replace(FrontEndConfig(), interval_size=100)
        simulator = FrontEndSimulator(micro_program, config)
        simulator.run(records[:500], warmup=0)
        assert simulator.intervals.ends == [100, 200, 300, 400, 500]

    def test_trace_shorter_than_one_window(self, micro_program,
                                           records):
        config = dataclasses.replace(FrontEndConfig(), interval_size=5_000)
        simulator = FrontEndSimulator(micro_program, config)
        simulator.run(records, warmup=WARMUP)
        series = simulator.intervals.series()
        assert series.ends == [RECORDS]
        assert series.windows == 1

    def test_interval_size_zero_attaches_nothing(self,
                                                 micro_program,
                                                 records):
        simulator = FrontEndSimulator(micro_program,
                                      FrontEndConfig())
        simulator.run(records[:200], warmup=0)
        assert simulator.intervals is None
        assert not any(key.startswith("intervals.")
                       for key in simulator.metrics_snapshot())

    def test_empty_trace_yields_no_windows(self, micro_program):
        config = dataclasses.replace(FrontEndConfig(), interval_size=10)
        simulator = FrontEndSimulator(micro_program, config)
        simulator.run([], warmup=0)
        assert simulator.intervals.series().windows == 0

    def test_negative_interval_size_rejected(self):
        with pytest.raises(ValueError):
            IntervalCollector(-1)


class TestConservation:
    """Column sums telescope exactly to the aggregate counters."""

    def test_totals_match_aggregate_stats(self, skia_run):
        simulator, stats = skia_run
        totals = simulator.intervals.series().totals()
        aggregate = stats.snapshot_row()
        for name, expected in aggregate.items():
            assert totals.get(name, 0) == expected, name

    def test_invariant_applies_and_passes(self, skia_run):
        simulator, _ = skia_run
        snapshot = simulator.metrics_snapshot()
        assert snapshot["intervals.windows"] == RECORDS // WINDOW
        assert not check_snapshot(snapshot)

    def test_warmup_crossing_a_window_boundary(self, micro_program,
                                               records):
        # WARMUP=150 sits mid-window at WINDOW=100: window 0 is all
        # warm-up (all-zero deltas), window 1 is split.  The conserved
        # totals must still equal the aggregate counted-region stats.
        config = dataclasses.replace(FrontEndConfig(skia=SkiaConfig()),
                                     interval_size=100)
        simulator = FrontEndSimulator(micro_program, config)
        stats = simulator.run(records, warmup=150)
        series = simulator.intervals.series()
        assert all(value == 0 for value in
                   (row[0] for row in series.columns.values()))
        totals = series.totals()
        for name, expected in stats.snapshot_row().items():
            assert totals.get(name, 0) == expected, name

    def test_all_warmup_run_passes_invariant(self, micro_program,
                                             records):
        # Counting never starts: the epilogue reports a degenerate
        # cycle figure, the series a true zero -- the invariant's
        # empty-counted-region exception must absorb it.
        config = dataclasses.replace(FrontEndConfig(), interval_size=100)
        simulator = FrontEndSimulator(micro_program, config)
        simulator.run(records[:120], warmup=500)
        assert not check_snapshot(simulator.metrics_snapshot())


class TestSeries:
    def test_round_trip_and_fingerprint(self, skia_run, tmp_path):
        simulator, _ = skia_run
        series = simulator.intervals.series()
        loaded = IntervalSeries.from_jsonable(series.to_jsonable())
        assert loaded == series
        assert loaded.fingerprint() == series.fingerprint()
        path = tmp_path / "series.json"
        series.save(path)
        assert IntervalSeries.load(path) == series

    def test_schema_version_enforced(self, skia_run):
        simulator, _ = skia_run
        payload = simulator.intervals.series().to_jsonable()
        payload["schema_version"] = 99
        with pytest.raises(ValueError):
            IntervalSeries.from_jsonable(payload)

    def test_metric_series_shapes(self, skia_run):
        simulator, _ = skia_run
        series = simulator.intervals.series()
        for metric in series.metric_names():
            assert len(series.metric_series(metric)) == series.windows
        with pytest.raises(KeyError):
            series.metric_series("not-a-metric")

    def test_render_markdown_contains_table_and_sparklines(self, skia_run):
        simulator, _ = skia_run
        series = simulator.intervals.series()
        rendered = series.render_markdown(["ipc", "btb_miss_mpki"])
        assert f"fingerprint={series.fingerprint()}" in rendered
        assert "| window | start | end | ipc | btb_miss_mpki |" in rendered
        assert rendered.count("\n| ") == series.windows + 1  # header + rows

    def test_diff_identical_is_empty(self, skia_run):
        simulator, _ = skia_run
        series = simulator.intervals.series()
        assert diff_series(series, series) == []

    def test_diff_flags_value_and_geometry_changes(self, skia_run):
        simulator, _ = skia_run
        series = simulator.intervals.series()
        mutated = IntervalSeries.from_jsonable(series.to_jsonable())
        mutated.columns["branches.DirectCond"][3] += 1
        mutated.ends.append(mutated.ends[-1] + WINDOW)
        for column in mutated.columns.values():
            column.append(0)
        differences = diff_series(series, mutated)
        assert (-1, "~windows", series.windows,
                series.windows + 1) in differences
        assert any(entry[:2] == (3, "branches.DirectCond")
                   for entry in differences)


class TestSparkline:
    def test_scales_to_maximum(self):
        assert sparkline([0, 1, 2, 4]) == "▁▃▅█"

    def test_all_zero_and_empty(self):
        assert sparkline([0, 0]) == "▁▁"
        assert sparkline([]) == ""
