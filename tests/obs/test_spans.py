"""Span tracing: sink capture, rollups, conservation, trace merge.

The load-bearing property is *conservation by construction*: the
recorder is the profiler's sink, so span rollups must equal profiler
section totals exactly -- these tests drive the real profiler and then
corrupt the stream in each possible way to prove the checker catches
drops, duplicates and mis-stamps.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.obs import spans as spans_mod
from repro.obs.profiler import PROFILER
from repro.obs.spans import (
    HARNESS_PID,
    SpanRecorder,
    check_cell_conservation,
    check_span_conservation,
    merge_run_trace,
    read_spans,
    span_rollup,
    spans_to_chrome,
)


@pytest.fixture()
def recorded(tmp_path):
    """Drive the real profiler through a recorder; yield (spans, delta)."""
    recorder = SpanRecorder(tmp_path / "spans.jsonl")
    before = PROFILER.snapshot()
    previous_enabled, previous_sink = PROFILER.enabled, PROFILER.sink
    PROFILER.enabled = True
    PROFILER.sink = recorder.on_section
    try:
        recorder.set_cell("cell-a")
        for _ in range(3):
            with PROFILER.section("t.outer"):
                with PROFILER.section("t.inner"):
                    pass
        recorder.set_cell(None)
        with PROFILER.section("t.outer"):
            pass
    finally:
        PROFILER.enabled, PROFILER.sink = previous_enabled, previous_sink
    recorder.close()
    delta = {}
    for name, stats in PROFILER.snapshot().items():
        base = before.get(name, {})
        calls = stats["calls"] - base.get("calls", 0)
        total = stats["total_ns"] - base.get("total_ns", 0)
        if calls or total:
            delta[name] = {"calls": calls, "total_ns": total,
                           "exclusive_ns": (stats["exclusive_ns"]
                                            - base.get("exclusive_ns", 0))}
    return read_spans(tmp_path / "spans.jsonl"), delta


class TestRecorder:
    def test_one_span_per_section_pop(self, recorded):
        spans, _ = recorded
        names = sorted(span["name"] for span in spans)
        assert names == ["t.inner"] * 3 + ["t.outer"] * 4

    def test_cell_stamping_follows_set_cell(self, recorded):
        spans, _ = recorded
        by_cell = {}
        for span in spans:
            by_cell.setdefault(span["cell"], []).append(span["name"])
        assert sorted(by_cell["cell-a"]) == ["t.inner"] * 3 + ["t.outer"] * 3
        assert by_cell[None] == ["t.outer"]

    def test_spans_carry_pid(self, recorded):
        spans, _ = recorded
        assert {span["pid"] for span in spans} == {os.getpid()}

    def test_flush_counts_and_is_idempotent(self, tmp_path):
        recorder = SpanRecorder(tmp_path / "s.jsonl")
        recorder.on_section("a", 100, 5)
        recorder.on_section("b", 110, 7)
        assert recorder.flush() == 2
        assert recorder.flush() == 0
        recorder.close()
        assert len(read_spans(tmp_path / "s.jsonl")) == 2
        assert recorder.recorded == 2

    def test_reader_tolerates_torn_final_line(self, tmp_path):
        recorder = SpanRecorder(tmp_path / "s.jsonl")
        recorder.on_section("a", 100, 5)
        recorder.close()
        with open(tmp_path / "s.jsonl", "a", encoding="utf-8") as handle:
            handle.write('{"name": "b", "start')
        assert [s["name"] for s in read_spans(tmp_path / "s.jsonl")] == ["a"]


class TestSpanConservation:
    def test_exact_by_construction(self, recorded):
        spans, delta = recorded
        assert check_span_conservation(spans, {os.getpid(): delta}) == []

    def test_rollup_matches_profiler_delta(self, recorded):
        spans, delta = recorded
        rollup = span_rollup(spans)
        pid = os.getpid()
        for name, stats in delta.items():
            count, total = rollup[(pid, name)]
            assert count == stats["calls"]
            assert total == stats["total_ns"]

    def test_dropped_span_detected(self, recorded):
        spans, delta = recorded
        violations = check_span_conservation(spans[:-1],
                                             {os.getpid(): delta})
        assert violations
        assert all(v.invariant == "span_profiler_conservation"
                   for v in violations)

    def test_duplicated_span_detected(self, recorded):
        spans, delta = recorded
        violations = check_span_conservation(spans + [spans[0]],
                                             {os.getpid(): delta})
        assert violations

    def test_clock_drift_detected(self, recorded):
        spans, delta = recorded
        tampered = [dict(span) for span in spans]
        tampered[0]["dur_ns"] += 1
        assert check_span_conservation(tampered, {os.getpid(): delta})

    def test_span_without_profile_section_detected(self, recorded):
        spans, delta = recorded
        stray = dict(spans[0], name="t.phantom")
        assert check_span_conservation(spans + [stray],
                                       {os.getpid(): delta})


class TestCellConservation:
    def _ledger(self, cells):
        records = [{"kind": "group", "cells": list(cells),
                    "n": len(cells), "mode": "serial"}]
        for cell in cells:
            records.append({"kind": "cell", "cell": cell, "phase": "done",
                            "result": "simulated", "spanned": True})
        return records

    def _spans(self, n):
        return [{"name": "harness.cell", "start_ns": i, "dur_ns": 1,
                 "pid": 1, "cell": None} for i in range(n)]

    def test_exact_coverage_passes(self):
        assert check_cell_conservation(self._ledger(["a", "b"]),
                                       self._spans(1)) == []

    def test_span_group_count_mismatch(self):
        violations = check_cell_conservation(self._ledger(["a"]),
                                             self._spans(2))
        assert any("harness.cell spans" in v.message for v in violations)

    def test_uncovered_spanned_cell_detected(self):
        records = self._ledger(["a"])
        records.append({"kind": "cell", "cell": "ghost", "phase": "done",
                        "result": "simulated", "spanned": True})
        violations = check_cell_conservation(records, self._spans(1))
        assert any("ghost" in v.message for v in violations)

    def test_unspanned_store_hits_are_exempt(self):
        records = self._ledger(["a"])
        records.append({"kind": "cell", "cell": "hit", "phase": "done",
                        "result": "store_hit", "spanned": False})
        assert check_cell_conservation(records, self._spans(1)) == []


class TestChromeExport:
    def test_per_pid_normalisation_and_metadata(self):
        spans = [
            {"name": "a", "start_ns": 5_000_000, "dur_ns": 2_000,
             "pid": 10, "cell": "c1"},
            {"name": "b", "start_ns": 5_001_000, "dur_ns": 1_000,
             "pid": 10, "cell": None},
            {"name": "a", "start_ns": 9_000_000, "dur_ns": 4_000,
             "pid": 20, "cell": None},
        ]
        events = spans_to_chrome(spans)
        assert all(event["pid"] == HARNESS_PID for event in events)
        timed = [e for e in events if e["ph"] == "X"]
        # Each pid's earliest span normalises to ts 0 on its own track.
        by_tid = {}
        for event in timed:
            by_tid.setdefault(event["tid"], []).append(event)
        assert len(by_tid) == 2
        for events_on_tid in by_tid.values():
            assert min(e["ts"] for e in events_on_tid) == 0.0
        named = [e for e in events if e["ph"] == "M"
                 and e["name"] == "thread_name"]
        assert {e["args"]["name"] for e in named} == {"pid 10", "pid 20"}
        cells = [e["args"]["cell"] for e in timed if "args" in e]
        assert cells == ["c1"]

    def test_merge_run_trace_combines_sources(self, tmp_path):
        recorder = SpanRecorder(tmp_path / "spans.jsonl")
        recorder.on_section("harness.cell", 1_000, 500)
        recorder.close()
        timeline = {"traceEvents": [
            {"ph": "X", "pid": 1, "tid": 1, "name": "fetch",
             "ts": 0, "dur": 3}]}
        (tmp_path / "timeline-c1.json").write_text(json.dumps(timeline))
        (tmp_path / "timeline-bad.json").write_text("{not json")
        out = merge_run_trace(tmp_path, tmp_path / "merged.json")
        payload = json.loads(out.read_text())
        pids = {event["pid"] for event in payload["traceEvents"]}
        assert pids == {HARNESS_PID, 1}
        assert payload["metadata"]["sources"] == ["spans.jsonl",
                                                  "timeline-c1.json"]

    def test_module_level_set_cell_is_safe_without_recorder(self):
        previous = spans_mod.active_recorder()
        spans_mod.set_active_recorder(None)
        try:
            spans_mod.set_cell("anything")  # must not raise
        finally:
            spans_mod.set_active_recorder(previous)
