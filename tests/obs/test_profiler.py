"""Section profiler: nesting, exclusive-time math, disabled path."""

import json

from repro.obs.profiler import PROFILER, SectionProfiler, profile


class FakeClock:
    """Deterministic nanosecond clock advanced explicitly by tests."""

    def __init__(self):
        self.now = 0

    def __call__(self) -> int:
        return self.now

    def advance(self, ns: int) -> None:
        self.now += ns


def make() -> tuple[SectionProfiler, FakeClock]:
    clock = FakeClock()
    return SectionProfiler(enabled=True, clock=clock), clock


class TestNesting:
    def test_flat_section(self):
        profiler, clock = make()
        with profiler.section("a"):
            clock.advance(100)
        stats = profiler.stats()["a"]
        assert stats.calls == 1
        assert stats.total_ns == 100
        assert stats.exclusive_ns == 100

    def test_child_time_is_excluded_from_parent(self):
        profiler, clock = make()
        with profiler.section("parent"):
            clock.advance(10)
            with profiler.section("child"):
                clock.advance(70)
            clock.advance(20)
        parent = profiler.stats()["parent"]
        child = profiler.stats()["child"]
        assert parent.total_ns == 100
        assert parent.exclusive_ns == 30
        assert child.total_ns == 70
        assert child.exclusive_ns == 70

    def test_siblings_both_subtract(self):
        profiler, clock = make()
        with profiler.section("p"):
            with profiler.section("a"):
                clock.advance(40)
            with profiler.section("b"):
                clock.advance(50)
            clock.advance(10)
        assert profiler.stats()["p"].exclusive_ns == 10

    def test_exclusive_times_sum_to_wall_clock(self):
        profiler, clock = make()
        with profiler.section("outer"):
            clock.advance(5)
            for _ in range(3):
                with profiler.section("inner"):
                    clock.advance(11)
        total_exclusive = sum(stats.exclusive_ns
                              for stats in profiler.stats().values())
        assert total_exclusive == clock.now

    def test_calls_accumulate(self):
        profiler, clock = make()
        for _ in range(5):
            with profiler.section("s"):
                clock.advance(1)
        assert profiler.stats()["s"].calls == 5
        assert profiler.stats()["s"].total_ns == 5


class TestDisabled:
    def test_disabled_records_nothing(self):
        profiler = SectionProfiler(enabled=False)
        with profiler.section("x"):
            pass
        assert profiler.stats() == {}

    def test_disabled_returns_shared_noop(self):
        profiler = SectionProfiler(enabled=False)
        assert profiler.section("a") is profiler.section("b")

    def test_module_profiler_disabled_by_default(self):
        # REPRO_PROFILE is not set in the test environment; the global
        # instrumentation in the SBD/store/runner must be inert.
        assert PROFILER.enabled is False

    def test_profile_shorthand_targets_module_profiler(self):
        assert profile("anything") is PROFILER.section("anything")


class TestReporting:
    def test_snapshot_is_json_safe_and_sorted(self):
        profiler, clock = make()
        with profiler.section("b"):
            clock.advance(2)
        with profiler.section("a"):
            clock.advance(1)
        snapshot = profiler.snapshot()
        assert list(snapshot) == ["a", "b"]
        assert json.loads(json.dumps(snapshot)) == snapshot
        assert snapshot["b"] == {"calls": 1, "total_ns": 2,
                                 "exclusive_ns": 2}

    def test_render_sorted_by_exclusive(self):
        profiler, clock = make()
        with profiler.section("small"):
            clock.advance(10)
        with profiler.section("big"):
            clock.advance(1000)
        text = profiler.render(title="profile")
        assert text.index("big") < text.index("small")
        assert "profile" in text and "calls" in text

    def test_render_empty(self):
        assert "no sections" in SectionProfiler(enabled=True).render()

    def test_reset(self):
        profiler, clock = make()
        with profiler.section("x"):
            clock.advance(1)
        profiler.reset()
        assert profiler.stats() == {}
