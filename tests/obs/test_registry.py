"""Metrics registry unit tests."""

import math

import pytest

from repro.obs import (
    Histogram,
    MetricsRegistry,
    diff_snapshots,
    load_snapshot,
    merge_snapshots,
    render_snapshot,
    save_snapshot,
)


class TestHistogram:
    def test_empty(self):
        histogram = Histogram()
        assert histogram.count == 0
        assert histogram.mean == 0.0

    def test_power_of_two_buckets(self):
        histogram = Histogram()
        for value in (0.5, 1, 3, 3, 17):
            histogram.record(value)
        out = {}
        histogram.snapshot_into(out, "h")
        assert out["h.count"] == 5
        assert out["h.bucket_lt_1"] == 1     # 0.5
        assert out["h.bucket_lt_4"] == 2     # 3, 3
        assert out["h.bucket_lt_32"] == 1    # 17
        assert out["h.min"] == 0.5
        assert out["h.max"] == 17
        assert out["h.mean"] == pytest.approx((0.5 + 1 + 3 + 3 + 17) / 5)

    def test_bucket_counts_sum_to_count(self):
        histogram = Histogram()
        for value in range(100):
            histogram.record(value)
        assert sum(histogram.buckets) == histogram.count == 100


class TestRegistry:
    def test_gauges_sample_lazily(self):
        registry = MetricsRegistry()
        scope = registry.scope("ras")
        counter = {"pops": 0}
        scope.gauge("pops", lambda: counter["pops"])
        counter["pops"] = 7
        assert registry.snapshot()["ras.pops"] == 7

    def test_nested_scopes(self):
        registry = MetricsRegistry()
        sbb = registry.scope("sbb")
        sbb.scope("u").gauge("hits", lambda: 3)
        sbb.scope("r").gauge("hits", lambda: 4)
        snapshot = registry.snapshot()
        assert snapshot["sbb.u.hits"] == 3
        assert snapshot["sbb.r.hits"] == 4

    def test_histogram_is_shared_per_name(self):
        registry = MetricsRegistry()
        scope = registry.scope("engine")
        scope.histogram("latency").record(2)
        scope.histogram("latency").record(6)
        assert registry.snapshot()["engine.latency.count"] == 2


class TestSnapshotAlgebra:
    def test_diff_reports_changed_keys_only(self):
        diff = diff_snapshots({"a": 1, "b": 2}, {"a": 1, "b": 5})
        assert diff == {"b": (2, 5)}

    def test_diff_surfaces_schema_drift(self):
        diff = diff_snapshots({"old": 1}, {"new": 2})
        assert diff == {"old": (1, None), "new": (None, 2)}

    def test_merge_sums_counters(self):
        merged = merge_snapshots([{"a": 1, "b": 2}, {"a": 10}])
        assert merged == {"a": 11, "b": 2}

    def test_render_groups_by_component(self):
        text = render_snapshot({"btb.hits": 5, "btb.lookups": 9,
                                "ras.pops": 1.5})
        assert "[btb]" in text and "[ras]" in text
        assert "1.5000" in text  # non-integral floats keep precision

    def test_save_load_roundtrip(self, tmp_path):
        path = tmp_path / "snap.json"
        snapshot = {"btb.hits": 5, "engine.mean": 1.25}
        save_snapshot(path, snapshot, meta={"workload": "voter"})
        loaded, meta = load_snapshot(path)
        assert loaded == snapshot
        assert meta == {"workload": "voter"}

    def test_load_accepts_bare_mapping(self, tmp_path):
        path = tmp_path / "bare.json"
        path.write_text('{"x": 1}')
        loaded, meta = load_snapshot(path)
        assert loaded == {"x": 1}
        assert meta == {}


class TestPrometheusExport:
    def test_type_lines_and_values(self):
        from repro.obs import snapshot_to_prometheus

        text = snapshot_to_prometheus({"btb.hits": 5, "engine.mean": 1.25})
        lines = text.splitlines()
        assert "# TYPE repro_btb_hits gauge" in lines
        assert "repro_btb_hits 5" in lines
        assert "repro_engine_mean 1.25" in lines
        assert text.endswith("\n")

    def test_names_sanitised_and_sorted(self):
        from repro.obs import snapshot_to_prometheus

        text = snapshot_to_prometheus({"z.last": 1, "a.first": 2,
                                       "sbb/u-way:hits": 3})
        samples = [line for line in text.splitlines()
                   if not line.startswith("#")]
        assert samples == ["repro_a_first 2", "repro_sbb_u_way_hits 3",
                           "repro_z_last 1"]

    def test_help_line_precedes_each_type_line(self):
        # promtool-style exposition: every metric's HELP line comes
        # immediately before its TYPE line, which comes immediately
        # before the sample.
        from repro.obs import snapshot_to_prometheus

        text = snapshot_to_prometheus({"btb.hits": 5, "ras.pops": 2})
        lines = text.splitlines()
        for name, metric in (("btb.hits", "repro_btb_hits"),
                             ("ras.pops", "repro_ras_pops")):
            index = lines.index(f"# HELP {metric} repro counter {name}")
            assert lines[index + 1] == f"# TYPE {metric} gauge"
            assert lines[index + 2].startswith(metric)

    def test_labels_attached_and_escaped(self):
        from repro.obs import snapshot_to_prometheus

        text = snapshot_to_prometheus(
            {"x": 1}, labels={"workload": 'vo"ter\n', "seed": "7"})
        assert (r'repro_x{seed="7",workload="vo\"ter\n"} 1'
                in text.splitlines())

    def test_empty_snapshot_renders_empty(self):
        from repro.obs import snapshot_to_prometheus

        assert snapshot_to_prometheus({}) == ""

    def test_registry_to_prometheus(self):
        registry = MetricsRegistry()
        registry.scope("btb").gauge("hits", lambda: 4)
        text = registry.to_prometheus(labels={"workload": "noop"})
        assert 'repro_btb_hits{workload="noop"} 4' in text
