"""Timeline recorder + Chrome trace-event export round-trips."""

import json

import pytest

from repro.frontend.bpu import RESTEER_CAUSES
from repro.frontend.config import FrontEndConfig, SkiaConfig
from repro.frontend.engine import FrontEndSimulator
from repro.obs import EventTrace, TimelineRecorder, chrome_from_jsonl
from repro.obs.timeline import (
    EVENT_TRACE_PID,
    PIPELINE_PID,
    TRACKS,
    chrome_from_trace_events,
)


@pytest.fixture(scope="module")
def traced_sim(micro_program, micro_trace):
    """One Skia micro run with the timeline enabled via the config flag.

    A small BTB forces misses, SBB activity and resteers so every event
    family appears.
    """
    config = FrontEndConfig(skia=SkiaConfig(),
                            record_timeline=True).with_btb_entries(256)
    simulator = FrontEndSimulator(micro_program, config)
    simulator.run(micro_trace, warmup=2_000)
    return simulator


@pytest.fixture(scope="module")
def chrome_payload(traced_sim, tmp_path_factory):
    path = traced_sim.timeline.to_chrome(
        tmp_path_factory.mktemp("timeline") / "timeline.json")
    return json.loads(path.read_text(encoding="utf-8"))


class TestRecorder:
    def test_config_flag_attaches_recorder(self, traced_sim):
        assert isinstance(traced_sim.timeline, TimelineRecorder)
        assert traced_sim.skia.timeline is traced_sim.timeline

    def test_ring_buffer_bounds_and_counts(self):
        recorder = TimelineRecorder(capacity=4)
        for i in range(10):
            recorder.span("iag", "x", float(i), 1.0)
        assert len(recorder) == 4
        assert recorder.emitted == 10
        assert recorder.dropped == 6

    def test_rejects_non_positive_capacity(self):
        with pytest.raises(ValueError):
            TimelineRecorder(capacity=0)

    def test_clear(self):
        recorder = TimelineRecorder()
        recorder.instant("iag", "x", 1.0)
        recorder.clear()
        assert len(recorder) == 0 and recorder.emitted == 0


class TestChromeExport:
    def test_valid_json_with_trace_events(self, chrome_payload):
        events = chrome_payload["traceEvents"]
        assert isinstance(events, list) and events
        for event in events:
            assert event["ph"] in ("X", "M", "i")

    def test_process_and_thread_metadata(self, chrome_payload):
        metadata = [e for e in chrome_payload["traceEvents"]
                    if e["ph"] == "M"]
        names = {e["args"]["name"] for e in metadata
                 if e["name"] == "thread_name"}
        assert {"iag", "fetch", "decode", "retire"} <= names
        process = [e for e in metadata if e["name"] == "process_name"]
        assert process and process[0]["pid"] == PIPELINE_PID

    def test_at_least_four_tracks_populated(self, chrome_payload):
        tids = {e["tid"] for e in chrome_payload["traceEvents"]
                if e["ph"] in ("X", "i")}
        # IAG, fetch, decode, retire always; SBD tracks with Skia on.
        assert len(tids) >= 4
        assert {TRACKS["iag"], TRACKS["fetch"], TRACKS["decode"]} <= tids
        assert tids & {TRACKS["sbd.head"], TRACKS["sbd.tail"]}

    def test_timestamps_monotonic(self, chrome_payload):
        ts = [e["ts"] for e in chrome_payload["traceEvents"] if "ts" in e]
        assert ts == sorted(ts)

    def test_spans_carry_durations(self, chrome_payload):
        spans = [e for e in chrome_payload["traceEvents"]
                 if e["ph"] == "X"]
        assert spans
        assert all(e["dur"] >= 0 for e in spans)

    def test_resteer_instants_attributed_by_cause(self, chrome_payload):
        resteers = [e for e in chrome_payload["traceEvents"]
                    if e["ph"] == "i" and e["name"].startswith("resteer:")]
        assert resteers
        for event in resteers:
            cause = event["name"].split(":", 1)[1]
            assert cause in RESTEER_CAUSES
            assert event["args"]["stage"] in ("decode", "exec")
            assert event["args"]["latency"] > 0

    def test_btb_miss_and_sbb_instants_present(self, chrome_payload):
        instants = {e["name"] for e in chrome_payload["traceEvents"]
                    if e["ph"] == "i"}
        assert "btb_miss" in instants

    def test_timeline_agrees_with_resteer_stats(self, traced_sim):
        resteers = sum(
            1 for phase, _, name, *_ in traced_sim.timeline
            if phase == "i" and name.startswith("resteer:"))
        stats = traced_sim.stats
        # Timeline covers warm-up too, so it bounds the counters.
        assert resteers >= stats.decode_resteers + stats.exec_resteers


class TestJsonlConversion:
    def test_round_trip_from_event_trace(self, tmp_path):
        trace = EventTrace(capacity=64)
        trace.emit("btb", pc=0x1000, hit=False)
        trace.emit("sbb", pc=0x1000, hit=True, which="u")
        trace.emit("sbd", side="head", pc=0x1040, branches=2,
                   discarded=False, valid_paths=1)
        trace.emit("resteer", pc=0x1080, stage="decode",
                   cause="undetected_branch", latency=7)
        jsonl = trace.to_jsonl(tmp_path / "events.jsonl")
        out = chrome_from_jsonl(jsonl, tmp_path / "events-chrome.json")
        payload = json.loads(out.read_text(encoding="utf-8"))
        events = payload["traceEvents"]
        instants = [e for e in events if e["ph"] == "i"]
        assert len(instants) == 4
        assert all(e["pid"] == EVENT_TRACE_PID for e in instants)
        ts = [e["ts"] for e in instants]
        assert ts == sorted(ts)
        names = {e["name"] for e in instants}
        assert {"miss", "hit:u", "head", "undetected_branch"} <= names

    def test_truncated_dump_warns(self, tmp_path):
        # A capacity-1 ring keeps one event of many; the converted
        # timeline silently missing data would read as "nothing
        # happened", so the dropped count in the header must surface.
        from repro.obs import DroppedEventsWarning

        trace = EventTrace(capacity=1)
        for index in range(4):
            trace.emit("btb", pc=index, hit=False)
        jsonl = trace.to_jsonl(tmp_path / "truncated.jsonl")
        with pytest.warns(DroppedEventsWarning, match="3 dropped"):
            chrome_from_jsonl(jsonl, tmp_path / "truncated-chrome.json")

    def test_complete_dump_does_not_warn(self, tmp_path):
        import warnings

        trace = EventTrace(capacity=8)
        trace.emit("btb", pc=1, hit=True)
        jsonl = trace.to_jsonl(tmp_path / "complete.jsonl")
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            chrome_from_jsonl(jsonl, tmp_path / "complete-chrome.json")

    def test_header_skipped_and_tracks_stable(self):
        events = [
            {"kind": "trace_header", "capacity": 8, "emitted": 2,
             "dropped": 0},
            {"kind": "btb", "seq": 0, "pc": 1, "hit": True},
            {"kind": "btb", "seq": 1, "pc": 2, "hit": False},
        ]
        chrome = chrome_from_trace_events(events)
        instants = [e for e in chrome if e["ph"] == "i"]
        assert len(instants) == 2
        assert len({e["tid"] for e in instants}) == 1

    def test_unknown_kind_gets_its_own_track(self):
        chrome = chrome_from_trace_events(
            [{"kind": "custom", "seq": 0, "x": 1}])
        instants = [e for e in chrome if e["ph"] == "i"]
        assert instants[0]["name"] == "custom"
        thread_names = {e["args"]["name"] for e in chrome
                        if e["ph"] == "M" and e["name"] == "thread_name"}
        assert "custom" in thread_names
