"""Instrumentation overhead guard.

Prevents accidental always-on instrumentation: a default-config run must
attach no trace, timeline or profiler sections (the structural guard),
and fully-enabled instrumentation must stay within a small factor of the
untraced run (the cost guard).  If timeline/trace emission ever stops
being gated behind the ``None`` checks, the structural assertions fail
immediately; if the gated path grows expensive, the ratio does.
"""

import time

from repro.frontend.config import FrontEndConfig, SkiaConfig
from repro.frontend.engine import FrontEndSimulator
from repro.obs import EventTrace, TimelineRecorder
from repro.obs.profiler import PROFILER

#: Enabled instrumentation may cost at most this factor over untraced.
MAX_OVERHEAD_FACTOR = 4.0


def _config() -> FrontEndConfig:
    return FrontEndConfig(skia=SkiaConfig()).with_btb_entries(256)


def _timed_run(micro_program, micro_trace, instrumented: bool) -> float:
    simulator = FrontEndSimulator(micro_program, _config())
    if instrumented:
        simulator.attach_trace(EventTrace(capacity=1_000_000))
        simulator.attach_timeline(TimelineRecorder(capacity=1_000_000))
    start = time.perf_counter()
    simulator.run(micro_trace, warmup=2_000)
    return time.perf_counter() - start


class TestStructuralGuard:
    """Disabled means *nothing attached*, not just nothing emitted."""

    def test_default_run_attaches_no_instrumentation(self, micro_program,
                                                     micro_trace):
        simulator = FrontEndSimulator(micro_program, _config())
        simulator.run(micro_trace[:2_000], warmup=500)
        assert simulator.trace is None
        assert simulator.timeline is None
        assert simulator.intervals is None
        assert simulator.bpu.trace is None
        assert simulator.skia.trace is None
        assert simulator.skia.timeline is None

    def test_default_run_records_no_profiler_sections(self, micro_program,
                                                      micro_trace):
        # The module-level profiler is threaded through the SBD memo
        # misses; with REPRO_PROFILE unset it must collect nothing.
        assert PROFILER.enabled is False
        before = dict(PROFILER.stats())
        simulator = FrontEndSimulator(micro_program, _config())
        simulator.run(micro_trace[:2_000], warmup=500)
        assert PROFILER.stats() == before

    def test_record_timeline_flag_defaults_off(self):
        assert FrontEndConfig().record_timeline is False

    def test_interval_size_defaults_off(self):
        assert FrontEndConfig().interval_size == 0

    def test_default_run_has_no_ledger_telemetry(self):
        # Telemetry-off is structural: no active ledger, no span sink.
        # The harness consults active_ledger() once per *cell* and the
        # profiler sink once per section pop (itself gated on
        # PROFILER.enabled), so nothing rides the per-record hot path.
        from repro.obs import spans as spans_mod
        from repro.obs.ledger import active_ledger

        assert active_ledger() is None
        assert spans_mod.active_recorder() is None
        assert PROFILER.sink is None


class TestCostGuard:
    #: A fully-ledgered harness run may cost at most this factor over an
    #: unledgered one -- the lifecycle records and spans are per-cell
    #: and per-section, never per-record, so the headroom is generous.
    MAX_LEDGER_FACTOR = 1.5

    def test_ledgered_run_within_small_factor(self, monkeypatch, tmp_path):
        import time as time_mod

        from repro.harness.parallel import Cell
        from repro.harness.runner import ExperimentRunner
        from repro.harness.scale import Scale
        from repro.obs.ledger import start_run
        from repro.workloads.cache import WorkloadCache

        monkeypatch.setenv("REPRO_LEDGER", "1")
        monkeypatch.setenv("REPRO_NO_PROGRESS", "1")
        tiny = Scale("test", records=6_000, warmup=2_000)
        cells = [Cell("noop", _config())]

        def timed(ledgered: bool) -> float:
            runner = ExperimentRunner(scale=tiny, cache=WorkloadCache(),
                                      store=None)
            start = time_mod.perf_counter()
            if ledgered:
                with start_run("overhead", root=tmp_path / "runs"):
                    runner.run_cells(cells, jobs=1)
            else:
                runner.run_cells(cells, jobs=1)
            return time_mod.perf_counter() - start

        plain = min(timed(False) for _ in range(3))
        ledgered = min(timed(True) for _ in range(3))
        assert ledgered <= plain * self.MAX_LEDGER_FACTOR + 0.05, (
            f"ledgered run {ledgered:.3f}s vs plain {plain:.3f}s exceeds "
            f"{self.MAX_LEDGER_FACTOR}x")

    def test_instrumented_run_within_small_factor(self, micro_program,
                                                  micro_trace):
        # min-of-3 filters scheduler noise; the generous factor keeps
        # this green on loaded CI machines while still catching an
        # instrumentation path that stops being O(1)-per-event.
        untraced = min(_timed_run(micro_program, micro_trace, False)
                       for _ in range(3))
        instrumented = min(_timed_run(micro_program, micro_trace, True)
                           for _ in range(3))
        assert instrumented <= untraced * MAX_OVERHEAD_FACTOR + 0.05, (
            f"instrumented run {instrumented:.3f}s vs untraced "
            f"{untraced:.3f}s exceeds {MAX_OVERHEAD_FACTOR}x")

    #: Interval telemetry works per *window*, not per record -- when
    #: off it is a single None-check per record, so the ceiling is much
    #: tighter than the per-event instrumentation factor above.
    MAX_INTERVAL_FACTOR = 1.05

    def test_interval_run_within_tiny_factor(self, micro_program,
                                             micro_trace):
        import dataclasses
        import time as time_mod

        def timed(interval_size: int) -> float:
            config = dataclasses.replace(_config(),
                                         interval_size=interval_size)
            simulator = FrontEndSimulator(micro_program, config)
            start = time_mod.perf_counter()
            simulator.run(micro_trace, warmup=2_000)
            return time_mod.perf_counter() - start

        plain = min(timed(0) for _ in range(3))
        windowed = min(timed(500) for _ in range(3))
        assert windowed <= plain * self.MAX_INTERVAL_FACTOR + 0.05, (
            f"interval run {windowed:.3f}s vs plain {plain:.3f}s exceeds "
            f"{self.MAX_INTERVAL_FACTOR}x")
