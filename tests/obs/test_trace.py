"""Event trace unit tests."""

import json

import pytest

from repro.obs import EventTrace


class TestRingBuffer:
    def test_emit_and_iterate(self):
        trace = EventTrace(capacity=8)
        trace.emit("btb", pc=0x100, hit=True)
        events = list(trace)
        assert events == [{"seq": 0, "kind": "btb", "pc": 0x100,
                           "hit": True}]

    def test_record_index_stamped_when_set(self):
        trace = EventTrace()
        trace.record_index = 42
        trace.emit("sbb", pc=1, hit=False, which=None)
        assert trace.events("sbb")[0]["record"] == 42

    def test_capacity_keeps_most_recent(self):
        trace = EventTrace(capacity=3)
        for index in range(10):
            trace.emit("btb", pc=index, hit=False)
        assert trace.emitted == 10
        assert trace.dropped == 7
        assert [event["pc"] for event in trace] == [7, 8, 9]

    def test_events_filters_by_kind(self):
        trace = EventTrace()
        trace.emit("btb", pc=1, hit=True)
        trace.emit("resteer", pc=1, stage="decode", cause="btb_alias",
                   latency=12.0)
        assert len(trace.events("resteer")) == 1
        assert len(trace.events()) == 2

    def test_clear(self):
        trace = EventTrace()
        trace.emit("btb", pc=1, hit=True)
        trace.clear()
        assert len(trace) == 0
        assert trace.emitted == 0

    def test_clear_resets_record_index(self):
        # Regression: clear() used to leave the previous run's final
        # record index behind, so a cleared trace reused on another
        # simulator stamped its first events with a stale record.
        trace = EventTrace()
        trace.record_index = 99
        trace.emit("btb", pc=1, hit=True)
        trace.clear()
        assert trace.record_index is None
        trace.emit("btb", pc=2, hit=False)
        assert "record" not in trace.events("btb")[0]

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError):
            EventTrace(capacity=0)


class TestSinks:
    def test_sink_sees_every_event(self):
        trace = EventTrace()
        seen = []
        trace.add_sink(seen.append)
        trace.emit("btb", pc=1, hit=True)
        trace.emit("resteer", pc=1, stage="decode", cause="btb_alias",
                   latency=12.0)
        assert [event["kind"] for event in seen] == ["btb", "resteer"]

    def test_sink_observes_past_ring_capacity(self):
        # The ring keeps only the newest events, but sinks are fed at
        # emission time -- a sink-based aggregation never under-counts.
        trace = EventTrace(capacity=1)
        seen = []
        trace.add_sink(seen.append)
        for index in range(5):
            trace.emit("btb", pc=index, hit=False)
        assert trace.dropped == 4
        assert len(trace) == 1
        assert [event["pc"] for event in seen] == [0, 1, 2, 3, 4]


class TestJsonl:
    def test_dump_is_self_describing(self, tmp_path):
        trace = EventTrace(capacity=2)
        for index in range(5):
            trace.emit("btb", pc=index, hit=bool(index % 2))
        path = trace.to_jsonl(tmp_path / "trace.jsonl")
        lines = [json.loads(line)
                 for line in path.read_text().splitlines()]
        header, *events = lines
        assert header["kind"] == "trace_header"
        assert header["emitted"] == 5
        assert header["dropped"] == 3
        assert len(events) == 2
        assert all(event["kind"] == "btb" for event in events)
