"""The run ledger: manifest schema, lifecycle folding, stragglers.

Covers the contract points of :mod:`repro.obs.ledger`:

* the manifest is append-only schema-versioned JSONL whose reader
  tolerates a torn final line (crashed-run diagnosability);
* ``summarize`` folds lifecycle records into per-cell states with exact
  terminal/incomplete detection;
* ``start_run`` installs and fully restores the process telemetry
  (active ledger, span sink, profiler enablement), and is inert when
  disabled;
* straggler flagging is pure median arithmetic over ledger walls.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.frontend.config import FrontEndConfig, SkiaConfig
from repro.obs import ledger as ledger_mod
from repro.obs import spans as spans_mod
from repro.obs.ledger import (
    LEDGER_SCHEMA_VERSION,
    RunLedger,
    active_ledger,
    cell_id_for,
    flag_stragglers,
    ledger_enabled,
    list_runs,
    load_run,
    read_manifest,
    start_run,
    summarize,
)
from repro.obs.profiler import PROFILER


@pytest.fixture()
def enabled_ledger(monkeypatch):
    """Opt back in (the suite-wide autouse fixture disables the layer)."""
    monkeypatch.setenv("REPRO_LEDGER", "1")


class TestEnablement:
    def test_enabled_by_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_LEDGER", raising=False)
        assert ledger_enabled()

    @pytest.mark.parametrize("value", ["0", "false", "no", "off", "OFF"])
    def test_falsy_values_disable(self, monkeypatch, value):
        monkeypatch.setenv("REPRO_LEDGER", value)
        assert not ledger_enabled()

    def test_truthy_value_enables(self, monkeypatch):
        monkeypatch.setenv("REPRO_LEDGER", "1")
        assert ledger_enabled()


class TestManifest:
    def test_header_carries_schema_and_fingerprints(self, tmp_path):
        ledger = RunLedger.create("stats check", root=tmp_path)
        ledger.close()
        records = read_manifest(ledger.manifest_path)
        header = records[0]
        assert header["kind"] == "run_header"
        assert header["schema_version"] == LEDGER_SCHEMA_VERSION
        assert header["command"] == "stats check"
        assert header["code"] and header["schema"]
        assert header["run_id"] == ledger.run_id

    def test_records_are_stamped_and_ordered(self, tmp_path):
        ledger = RunLedger.create("x", root=tmp_path)
        ledger.cell("c1", "queued")
        ledger.cell("c1", "done", result="simulated")
        ledger.close()
        kinds = [r["kind"] for r in read_manifest(ledger.manifest_path)]
        assert kinds == ["run_header", "cell", "cell"]
        for record in read_manifest(ledger.manifest_path):
            assert record["pid"] == os.getpid()
            assert record["ts"] > 0

    def test_reader_tolerates_torn_final_line(self, tmp_path):
        ledger = RunLedger.create("x", root=tmp_path)
        ledger.cell("c1", "queued")
        ledger.close()
        with open(ledger.manifest_path, "a", encoding="utf-8") as handle:
            handle.write('{"kind": "cell", "cel')  # crashed mid-write
        records = read_manifest(ledger.manifest_path)
        assert [r["kind"] for r in records] == ["run_header", "cell"]

    def test_reader_missing_file_is_empty(self, tmp_path):
        assert read_manifest(tmp_path / "nope.jsonl") == []

    def test_attach_appends_to_existing_run(self, tmp_path):
        ledger = RunLedger.create("x", root=tmp_path)
        ledger.close()
        worker = RunLedger.attach(ledger.run_dir)
        worker.cell("c9", "done", result="simulated")
        worker.close()
        records = read_manifest(ledger.manifest_path)
        assert records[-1]["cell"] == "c9"
        assert worker.run_id == ledger.run_id

    def test_heartbeat_rate_limited_per_process(self, tmp_path):
        ledger = RunLedger.create("x", root=tmp_path)
        ledger.heartbeat(cell="a")
        ledger.heartbeat(cell="b")  # within min_interval: swallowed
        ledger.heartbeat(min_interval=0.0, cell="c")
        ledger.close()
        beats = [r for r in read_manifest(ledger.manifest_path)
                 if r["kind"] == "heartbeat"]
        assert [b["cell"] for b in beats] == ["a", "c"]

    def test_timeline_path_sanitises_cell_id(self, tmp_path):
        ledger = RunLedger(tmp_path, "r")
        path = ledger.timeline_path("voter+bolt:s0:ab/..cd")
        assert path.name == "timeline-voter+bolt_s0_ab_..cd.json"

    def test_write_profile_is_loadable(self, tmp_path):
        ledger = RunLedger.create("x", root=tmp_path)
        snapshot = {"harness.cell": {"calls": 2, "total_ns": 10,
                                     "exclusive_ns": 4}}
        ledger.write_profile(snapshot)
        ledger.close()
        loaded = json.loads(ledger.profile_path().read_text())
        assert loaded == snapshot


class TestCellIdentity:
    def test_stable_across_equal_configs(self):
        assert (cell_id_for("voter", FrontEndConfig(), 0, False)
                == cell_id_for("voter", FrontEndConfig(), 0, False))

    def test_distinguishes_cells(self):
        base = FrontEndConfig()
        skia = FrontEndConfig(skia=SkiaConfig())
        ids = {cell_id_for("voter", base, 0, False),
               cell_id_for("voter", skia, 0, False),
               cell_id_for("noop", base, 0, False),
               cell_id_for("voter", base, 1, False),
               cell_id_for("voter", base, 0, True)}
        assert len(ids) == 5

    def test_bolted_marker_is_readable(self):
        assert cell_id_for("kafka", FrontEndConfig(), 2, True).startswith(
            "kafka+bolt:s2:")


class TestSummarize:
    def _records(self):
        return [
            {"kind": "run_header", "run_id": "r1", "command": "c",
             "created": "t", "schema_version": 1},
            {"kind": "grid", "cells": 2},
            {"kind": "cell", "cell": "a", "phase": "queued"},
            {"kind": "cell", "cell": "b", "phase": "queued"},
            {"kind": "group", "cells": ["a"], "n": 1, "mode": "serial"},
            {"kind": "cell", "cell": "a", "phase": "done",
             "result": "simulated", "wall_s": 1.5},
            {"kind": "heartbeat", "pid": 42},
            {"kind": "finish", "status": "complete"},
        ]

    def test_folds_lifecycle(self):
        summary = summarize(self._records())
        assert summary.run_id == "r1"
        assert summary.grid_cells == 2
        assert summary.groups == 1 and summary.group_cells == 1
        assert summary.heartbeat_pids == {42}
        assert summary.cells["a"].terminal == "done"
        assert summary.cells["a"].wall_s == 1.5

    def test_incomplete_cells_detected(self):
        summary = summarize(self._records())
        assert summary.incomplete == ["b"]
        assert "incomplete" in summary.status

    def test_results_histogram(self):
        records = self._records() + [
            {"kind": "cell", "cell": "b", "phase": "error", "error": "boom"}]
        summary = summarize(records)
        assert summary.results() == {"simulated": 1, "error": 1}
        assert summary.incomplete == []

    def test_no_finish_reads_as_crashed(self):
        records = [r for r in self._records() if r["kind"] != "finish"]
        assert summarize(records).status == "running/crashed"

    def test_straggler_phase_flags_cell(self):
        records = self._records() + [
            {"kind": "cell", "cell": "a", "phase": "straggler",
             "wall_s": 9.0}]
        assert summarize(records).stragglers == ["a"]


class TestRunIndex:
    def test_list_runs_newest_first(self, tmp_path):
        first = RunLedger.create("one", root=tmp_path, run_id="20240101-aa")
        first.close()
        second = RunLedger.create("two", root=tmp_path, run_id="20240102-bb")
        second.close()
        summaries = list_runs(tmp_path)
        assert [s.run_id for s in summaries] == ["20240102-bb", "20240101-aa"]
        assert ledger_mod.latest_run_id(tmp_path) == "20240102-bb"

    def test_load_run_round_trips(self, tmp_path):
        ledger = RunLedger.create("cmd", root=tmp_path)
        ledger.cell("a", "queued")
        ledger.cell("a", "done", result="simulated")
        ledger.finish()
        ledger.close()
        summary = load_run(ledger.run_id, tmp_path)
        assert summary.command == "cmd"
        assert summary.incomplete == []
        assert summary.status == "complete"

    def test_empty_root(self, tmp_path):
        assert list_runs(tmp_path / "nothing") == []
        assert ledger_mod.latest_run_id(tmp_path / "nothing") is None


class TestStartRun:
    def test_installs_and_restores_telemetry(self, tmp_path, enabled_ledger):
        assert active_ledger() is None
        previous_enabled = PROFILER.enabled
        with start_run("t", root=tmp_path) as ledger:
            assert active_ledger() is ledger
            assert PROFILER.enabled is True
            assert PROFILER.sink is not None
            assert spans_mod.active_recorder() is not None
            with PROFILER.section("t.section"):
                pass
        assert active_ledger() is None
        assert spans_mod.active_recorder() is None
        assert PROFILER.sink is None
        assert PROFILER.enabled is previous_enabled
        records = read_manifest(ledger.manifest_path)
        assert records[-1]["kind"] == "finish"
        assert records[-1]["status"] == "complete"
        # checkpoint_telemetry ran: the section is on disk in both forms.
        spans = spans_mod.read_spans(ledger.spans_path)
        assert any(s["name"] == "t.section" for s in spans)
        profile = json.loads(ledger.profile_path().read_text())
        assert profile["t.section"]["calls"] == 1

    def test_disabled_by_env(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_LEDGER", "0")
        with start_run("t", root=tmp_path) as ledger:
            assert ledger is None
            assert active_ledger() is None
        assert list(tmp_path.iterdir()) == []

    def test_nested_run_reuses_outer(self, tmp_path, enabled_ledger):
        with start_run("outer", root=tmp_path) as outer:
            with start_run("inner", root=tmp_path) as inner:
                assert inner is None
                assert active_ledger() is outer

    def test_exception_marks_run_errored(self, tmp_path, enabled_ledger):
        with pytest.raises(RuntimeError):
            with start_run("t", root=tmp_path) as ledger:
                raise RuntimeError("boom")
        records = read_manifest(ledger.manifest_path)
        assert records[-1]["kind"] == "finish"
        assert records[-1]["status"] == "error"
        assert active_ledger() is None

    def test_active_ledger_is_pid_guarded(self, tmp_path, enabled_ledger,
                                          monkeypatch):
        with start_run("t", root=tmp_path) as ledger:
            assert active_ledger() is ledger
            # A forked worker inherits the module state but not the pid:
            monkeypatch.setattr(ledger_mod, "_ACTIVE_PID",
                                os.getpid() + 1)
            assert active_ledger() is None

    def test_profile_delta_is_baselined(self, tmp_path, enabled_ledger):
        # Sections accumulated *before* the run must not leak into the
        # run's profile delta (fork inheritance / prior CLI commands).
        previous_enabled = PROFILER.enabled
        PROFILER.enabled = True
        try:
            with PROFILER.section("t.before"):
                pass
            with start_run("t", root=tmp_path) as ledger:
                with PROFILER.section("t.during"):
                    pass
        finally:
            PROFILER.enabled = previous_enabled
        profile = json.loads(ledger.profile_path().read_text())
        assert "t.during" in profile
        assert "t.before" not in profile


class TestFlagStragglers:
    def _done(self, ledger, cell, wall, **fields):
        ledger.cell(cell, "done", result="simulated", wall_s=wall, **fields)

    def test_flags_beyond_factor_median(self, tmp_path):
        ledger = RunLedger.create("t", root=tmp_path)
        for index in range(5):
            self._done(ledger, f"c{index}", 1.0)
        self._done(ledger, "slow", 10.0)
        flagged = flag_stragglers(ledger)
        assert flagged == ["slow"]
        records = read_manifest(ledger.manifest_path)
        straggler = [r for r in records if r.get("phase") == "straggler"]
        assert len(straggler) == 1
        assert straggler[0]["cell"] == "slow"
        assert straggler[0]["median_s"] == 1.0
        ledger.close()

    def test_idempotent(self, tmp_path):
        ledger = RunLedger.create("t", root=tmp_path)
        for index in range(5):
            self._done(ledger, f"c{index}", 1.0)
        self._done(ledger, "slow", 10.0)
        assert flag_stragglers(ledger) == ["slow"]
        assert flag_stragglers(ledger) == []  # already flagged
        ledger.close()

    def test_needs_min_samples(self, tmp_path):
        ledger = RunLedger.create("t", root=tmp_path)
        self._done(ledger, "a", 1.0)
        self._done(ledger, "slow", 100.0)
        assert flag_stragglers(ledger) == []
        ledger.close()

    def test_shared_walls_excluded_from_median(self, tmp_path):
        # Batched-group cells share one wall; they must not skew the
        # median nor be flagged themselves.
        ledger = RunLedger.create("t", root=tmp_path)
        for index in range(5):
            self._done(ledger, f"c{index}", 1.0)
        self._done(ledger, "groupcell", 50.0, shared_wall=True)
        assert flag_stragglers(ledger) == []
        ledger.close()
