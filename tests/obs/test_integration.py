"""End-to-end observability: metrics + trace on real micro simulations.

These are the tests the ISSUE's tier-1 grid check scales up from — a
full simulation must produce a snapshot that passes every applicable
invariant, and the event trace must agree with the counters it shadows.
"""

import pytest

from repro.frontend.bpu import RESTEER_CAUSES
from repro.frontend.config import FrontEndConfig, SkiaConfig
from repro.frontend.engine import FrontEndSimulator
from repro.obs import EventTrace, check_snapshot


def run_simulator(micro_program, micro_trace, config,
                  trace_capacity=None, warmup=2_000):
    simulator = FrontEndSimulator(micro_program, config)
    if trace_capacity is not None:
        simulator.attach_trace(EventTrace(capacity=trace_capacity))
    simulator.run(micro_trace, warmup=warmup)
    return simulator


@pytest.fixture(scope="module")
def baseline_sim(micro_program, micro_trace):
    return run_simulator(micro_program, micro_trace, FrontEndConfig(),
                         trace_capacity=1_000_000)


@pytest.fixture(scope="module")
def skia_sim(micro_program, micro_trace):
    config = FrontEndConfig(skia=SkiaConfig()).with_btb_entries(256)
    return run_simulator(micro_program, micro_trace, config,
                         trace_capacity=1_000_000)


class TestInvariantsOnRealRuns:
    def test_baseline_snapshot_clean(self, baseline_sim):
        assert check_snapshot(baseline_sim.metrics_snapshot()) == []

    def test_skia_snapshot_clean(self, skia_sim):
        assert check_snapshot(skia_sim.metrics_snapshot()) == []

    def test_resteer_causes_partition_exactly(self, skia_sim):
        stats = skia_sim.stats
        assert sum(stats.resteer_causes.values()) == (
            stats.decode_resteers + stats.exec_resteers)
        assert set(stats.resteer_causes) <= set(RESTEER_CAUSES)

    def test_sbb_probe_partition_exactly(self, skia_sim):
        stats = skia_sim.stats
        assert stats.sbb_lookups == stats.total_btb_misses
        assert (stats.sbb_hits_u + stats.sbb_hits_r + stats.sbb_misses
                == stats.sbb_lookups)


class TestTraceAgreesWithCounters:
    """The trace is sampled from the same events the counters count, so
    with an over-sized ring nothing is dropped and tallies must match
    the whole-run structure counters (trace covers warm-up too)."""

    def test_nothing_dropped(self, skia_sim):
        assert skia_sim.trace.dropped == 0

    def test_btb_events_match_structure_counters(self, skia_sim):
        events = skia_sim.trace.events("btb")
        btb = skia_sim.bpu.btb
        assert len(events) == btb.lookups
        assert sum(event["hit"] for event in events) == btb.hits

    def test_sbb_events_match_structure_counters(self, skia_sim):
        events = skia_sim.trace.events("sbb")
        sbb = skia_sim.skia.sbb
        assert len(events) == sbb.usbb.lookups
        hits = [event for event in events if event["hit"]]
        which = {"u": 0, "r": 0}
        for event in hits:
            which[event["which"]] += 1
        assert which["u"] == sbb.usbb.hits
        assert which["r"] == sbb.rsbb.hits

    def test_resteer_events_cover_post_warmup_counters(self, skia_sim):
        # The trace covers warm-up records too, so per-cause tallies
        # bound the post-warm-up stats from above.
        events = skia_sim.trace.events("resteer")
        stats = skia_sim.stats
        assert len(events) >= stats.decode_resteers + stats.exec_resteers
        by_cause: dict[str, int] = {}
        for event in events:
            by_cause[event["cause"]] = by_cause.get(event["cause"], 0) + 1
        for cause, count in stats.resteer_causes.items():
            assert by_cause.get(cause, 0) >= count
        assert set(by_cause) <= set(RESTEER_CAUSES)
        assert all(event["latency"] > 0 for event in events)

    def test_sbd_events_cover_decode_counters(self, skia_sim):
        # Trace covers warm-up decodes too, so it bounds the stats.
        sides = {"head": 0, "tail": 0}
        for event in skia_sim.trace.events("sbd"):
            sides[event["side"]] += 1
        stats = skia_sim.stats
        assert sides["head"] >= stats.sbd_head_decodes > 0
        assert sides["tail"] >= stats.sbd_tail_decodes > 0

    def test_baseline_emits_no_skia_events(self, baseline_sim):
        assert baseline_sim.trace.events("sbb") == []
        assert baseline_sim.trace.events("sbd") == []
        assert baseline_sim.trace.events("btb") != []


class TestStructureCounterRegressions:
    """Satellite regressions: RAS underflow + SBB counters must be live
    on real runs, not just unit-constructed structures."""

    def test_ras_underflow_counter_flows_to_stats(self, skia_sim):
        # Whole-run structure counter covers warm-up, stats do not.
        assert skia_sim.stats.ras_underflows <= skia_sim.bpu.ras.underflows
        assert skia_sim.stats.ras_underflows <= skia_sim.stats.ras_mispredicts

    def test_ras_conservation_identity(self, skia_sim):
        ras = skia_sim.bpu.ras
        assert len(ras) == (ras.pushes - ras.overflow_overwrites
                            - (ras.pops - ras.underflows))

    def test_sbb_insertion_accounting(self, skia_sim):
        for half in (skia_sim.skia.sbb.usbb, skia_sim.skia.sbb.rsbb):
            evictions = half.evictions_bogus_first + half.evictions_lru
            assert half.insertions >= evictions + half.occupancy()
            assert half.hits <= half.lookups


class TestDeterminism:
    def test_snapshot_identical_across_runs(self, micro_program,
                                            micro_trace):
        config = FrontEndConfig(skia=SkiaConfig())
        first = run_simulator(micro_program, micro_trace, config)
        second = run_simulator(micro_program, micro_trace, config)
        assert first.metrics_snapshot() == second.metrics_snapshot()

    def test_tracing_does_not_perturb_stats(self, micro_program,
                                            micro_trace):
        # The trace's own drop-accounting counters (trace.emitted /
        # trace.retained / trace.dropped_events) exist only when a
        # trace is attached; everything else must be untouched.
        config = FrontEndConfig(skia=SkiaConfig())
        traced = run_simulator(micro_program, micro_trace, config,
                               trace_capacity=64)
        untraced = run_simulator(micro_program, micro_trace, config)
        traced_stats = {name: value
                        for name, value in traced.metrics_snapshot().items()
                        if not name.startswith("trace.")}
        assert traced_stats == untraced.metrics_snapshot()
