"""Invariant-check unit tests: each declared identity fires on a
corrupted snapshot and stays silent on a consistent one."""

from repro.frontend.stats import SimStats
from repro.isa.branch import BranchKind
from repro.obs import applicable_invariants, check_snapshot, snapshot_from_stats


def consistent_stats() -> SimStats:
    """A hand-built SimStats satisfying every counter identity."""
    stats = SimStats()
    stats.branches[BranchKind.DIRECT_UNCOND] = 60
    stats.branches[BranchKind.DIRECT_COND] = 40
    stats.btb_lookups = 100
    stats.btb_misses[BranchKind.DIRECT_UNCOND] = 20
    stats.btb_miss_l1i_hit = 15
    stats.l1i_accesses = 500
    stats.l1i_misses = 50
    stats.l2_misses = 20
    stats.l3_misses = 5
    stats.cond_predictions = 40
    stats.cond_mispredicts = 4
    stats.ras_predictions = 10
    stats.ras_mispredicts = 2
    stats.ras_underflows = 1
    stats.decode_resteers = 6
    stats.exec_resteers = 4
    stats.resteer_causes = {"undetected_branch": 6, "cond_mispredict": 4}
    stats.sbb_lookups = 20
    stats.sbb_hits_u = 5
    stats.sbb_hits_r = 3
    stats.sbb_misses = 12
    stats.sbb_insertions_u = 30
    stats.sbb_insertions_r = 10
    stats.sbb_bogus_insertions = 2
    stats.sbb_wrong_target = 1
    stats.sbb_retired_marks = 4
    stats.sbd_head_decodes = 50
    stats.sbd_head_discarded = 10
    return stats


class TestSnapshotFromStats:
    def test_flattens_scalars_and_dicts(self):
        snapshot = snapshot_from_stats(consistent_stats())
        assert snapshot["sim.btb_lookups"] == 100
        assert snapshot["sim.branches.DirectUnCond"] == 60
        assert snapshot["sim.branches_total"] == 100
        assert snapshot["sim.resteer_causes.cond_mispredict"] == 4
        assert snapshot["sim.sbb_hits_total"] == 8
        assert snapshot["sim.resteers_total"] == 10

    def test_config_gates(self):
        snapshot = snapshot_from_stats(consistent_stats(),
                                       skia_enabled=True)
        assert snapshot["config.skia_enabled"] == 1.0
        off = snapshot_from_stats(consistent_stats(), skia_enabled=False)
        assert off["config.skia_enabled"] == 0.0

    def test_new_fields_join_automatically(self):
        # The flattening is generic over dataclass fields, so any future
        # counter shows up without touching the obs package.
        names = {field_key for field_key in
                 snapshot_from_stats(SimStats()) if field_key.startswith("sim.")}
        assert "sim.ras_underflows" in names
        assert "sim.sbb_lookups" in names


class TestCheckSnapshot:
    def test_consistent_snapshot_passes(self):
        snapshot = snapshot_from_stats(consistent_stats(),
                                       skia_enabled=True)
        assert check_snapshot(snapshot) == []

    def test_skia_invariants_gated_off_for_baseline(self):
        snapshot = snapshot_from_stats(consistent_stats(),
                                       skia_enabled=False)
        names = applicable_invariants(snapshot)
        assert "sbb_probe_partition" not in names
        assert "btb_lookups_cover_branches" in names

    def test_btb_lookup_mismatch_fires(self):
        snapshot = snapshot_from_stats(consistent_stats())
        snapshot["sim.btb_lookups"] = 99
        assert any(v.invariant == "btb_lookups_cover_branches"
                   for v in check_snapshot(snapshot))

    def test_sbb_partition_fires(self):
        snapshot = snapshot_from_stats(consistent_stats(),
                                       skia_enabled=True)
        snapshot["sim.sbb_misses"] = 11  # hits + misses != lookups
        assert any(v.invariant == "sbb_hit_miss_partition"
                   for v in check_snapshot(snapshot))

    def test_resteer_cause_partition_fires(self):
        snapshot = snapshot_from_stats(consistent_stats())
        snapshot["sim.resteer_causes.cond_mispredict"] = 3
        assert any(v.invariant == "resteer_causes_partition"
                   for v in check_snapshot(snapshot))

    def test_ras_underflow_bound_fires(self):
        snapshot = snapshot_from_stats(consistent_stats())
        snapshot["sim.ras_underflows"] = 3  # > ras_mispredicts
        assert any(v.invariant == "ras_underflows_are_mispredicts"
                   for v in check_snapshot(snapshot))

    def test_structure_invariants_require_structure_keys(self):
        snapshot = snapshot_from_stats(consistent_stats())
        names = applicable_invariants(snapshot)
        assert "ras_structure_accounting" not in names
        assert "sbb_structure_accounting" not in names

    def test_ras_structure_accounting(self):
        snapshot = {"ras.pushes": 10, "ras.pops": 6, "ras.underflows": 2,
                    "ras.overflow_overwrites": 1, "ras.occupancy": 5,
                    "ras.depth": 8}
        assert check_snapshot(snapshot) == []
        snapshot["ras.occupancy"] = 4
        assert any(v.invariant == "ras_structure_accounting"
                   for v in check_snapshot(snapshot))

    def test_sbb_structure_accounting(self):
        half = {"insertions": 20, "evictions_bogus_first": 3,
                "evictions_lru": 2, "occupancy": 10, "hits": 4,
                "lookups": 9, "entries": 16}
        snapshot = {}
        for prefix in ("sbb.u", "sbb.r"):
            for name, value in half.items():
                snapshot[f"{prefix}.{name}"] = value
        assert check_snapshot(snapshot) == []
        snapshot["sbb.u.insertions"] = 14  # < evictions + occupancy
        assert any(v.invariant == "sbb_structure_accounting"
                   for v in check_snapshot(snapshot))

    def test_cross_layer_bound(self):
        snapshot = snapshot_from_stats(consistent_stats())
        snapshot["btb.lookups"] = 99  # whole-run < post-warm-up: impossible
        snapshot["btb.hits"] = 50
        snapshot["btb.occupancy"] = 10
        snapshot["btb.entries"] = 64
        assert any(v.invariant == "cross_layer_bounds"
                   for v in check_snapshot(snapshot))


class TestTraceDropAccounting:
    def _snapshot(self, emitted, retained, dropped):
        return {"trace.emitted": emitted, "trace.retained": retained,
                "trace.dropped_events": dropped}

    def test_consistent_accounting_passes(self):
        assert check_snapshot(self._snapshot(10, 8, 2)) == []
        assert check_snapshot(self._snapshot(5, 5, 0)) == []

    def test_mismatch_fires(self):
        violations = check_snapshot(self._snapshot(10, 8, 1))
        assert any(v.invariant == "trace_drop_accounting"
                   for v in violations)

    def test_dropped_exceeding_emitted_fires(self):
        assert check_snapshot(self._snapshot(3, 0, 4))

    def test_gated_off_without_trace_keys(self):
        names = [inv.name for inv in applicable_invariants({"btb.hits": 1})]
        assert "trace_drop_accounting" not in names

    def test_live_simulator_gauges_conserve(self, micro_program,
                                            micro_trace):
        # A deliberately tiny ring buffer forces drops; the registered
        # trace.* gauges must still account for every emitted event.
        from repro.frontend.config import FrontEndConfig, SkiaConfig
        from repro.frontend.engine import FrontEndSimulator
        from repro.obs import EventTrace

        simulator = FrontEndSimulator(
            micro_program, FrontEndConfig(skia=SkiaConfig()))
        simulator.attach_trace(EventTrace(capacity=64))
        simulator.run(micro_trace[:4_000], warmup=500)
        snapshot = simulator.metrics_snapshot()
        assert snapshot["trace.dropped_events"] > 0
        assert (snapshot["trace.emitted"]
                == snapshot["trace.retained"]
                + snapshot["trace.dropped_events"])
        assert not [v for v in check_snapshot(snapshot)
                    if v.invariant == "trace_drop_accounting"]
