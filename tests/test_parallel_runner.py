"""The parallel execution layer and the persistent result store.

Covers the three contract points of the performance layer:

* parallel (``jobs > 1``) results are bit-identical to serial runs;
* the persistent store round-trips ``SimStats`` exactly and
  self-invalidates when its schema/version fingerprints change;
* ``config_key`` is order-stable for dict/list-valued config fields.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import pytest

from repro.frontend.config import FrontEndConfig, SkiaConfig
from repro.frontend.stats import SimStats
from repro.harness.parallel import (
    Cell,
    ParallelRunner,
    available_cpus,
    default_jobs,
)
from repro.harness.runner import ExperimentRunner, config_key
from repro.harness.scale import Scale
from repro.harness.store import (
    ResultStore,
    default_store,
    result_key,
    schema_fingerprint,
    stats_from_jsonable,
    stats_to_jsonable,
    store_enabled,
)
from repro.isa.branch import BranchKind
from repro.workloads.cache import WorkloadCache

TINY = Scale("test", records=6_000, warmup=2_000)

WORKLOADS = ("noop", "voter", "kafka")
CONFIGS = (FrontEndConfig(), FrontEndConfig(skia=SkiaConfig()))

GRID = [Cell(workload, config)
        for workload in WORKLOADS for config in CONFIGS]


# ----------------------------------------------------------------------
# (a) parallel == serial, bit for bit
# ----------------------------------------------------------------------

class TestParallelMatchesSerial:
    @pytest.fixture(scope="class")
    def serial_results(self):
        runner = ExperimentRunner(scale=TINY, cache=WorkloadCache(),
                                  store=None)
        return runner.run_cells(GRID, jobs=1)

    @pytest.fixture(scope="class")
    def batch_runner(self):
        """An ExperimentRunner whose memo was filled by a jobs=2 batch;
        duplicates of GRID[0] exercise in-batch dedup."""
        runner = ExperimentRunner(scale=TINY, cache=WorkloadCache(),
                                  store=None)
        runner.batch_results = runner.run_cells(list(GRID) + [GRID[0]],
                                                jobs=2)
        return runner

    def test_grid_bit_identical(self, serial_results):
        parallel = ParallelRunner(scale=TINY, jobs=2, store=None)
        results = parallel.run_batch(GRID, default_seed=0)
        assert results == serial_results

    def test_runner_batch_parallel_matches(self, batch_runner,
                                           serial_results):
        assert batch_runner.batch_results[:len(GRID)] == serial_results

    def test_duplicate_cells_deduplicated(self, batch_runner):
        results = batch_runner.batch_results
        assert len(results) == len(GRID) + 1
        assert results[-1] == results[0]

    def test_batch_populates_memo(self, batch_runner, serial_results):
        # Subsequent serial run() calls are memo hits on the same stats.
        stats = batch_runner.run("voter", CONFIGS[1])
        assert stats is serial_results[GRID.index(Cell("voter", CONFIGS[1]))] \
            or stats == serial_results[GRID.index(Cell("voter", CONFIGS[1]))]

    def test_run_many_parallel(self, batch_runner, serial_results):
        results = batch_runner.run_many(list(WORKLOADS), CONFIGS[0], jobs=2)
        assert set(results) == set(WORKLOADS)
        for workload in WORKLOADS:
            assert results[workload] == serial_results[
                GRID.index(Cell(workload, CONFIGS[0]))]


class TestJobsResolution:
    def test_default_jobs_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "3")
        assert default_jobs() == 3

    def test_default_jobs_zero_means_available_cpus(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "0")
        assert default_jobs() == available_cpus() >= 1

    def test_unset_means_available_cpus(self, monkeypatch):
        monkeypatch.delenv("REPRO_JOBS", raising=False)
        assert default_jobs() == available_cpus()

    def test_available_cpus_is_affinity_aware(self):
        # Never more than the machine total; at least one.
        import os
        assert 1 <= available_cpus() <= (os.cpu_count() or 1)
        counter = getattr(os, "process_cpu_count", None)
        if counter is not None:  # 3.13+
            assert available_cpus() == (counter() or 1)
        else:
            assert available_cpus() == len(os.sched_getaffinity(0))

    def test_default_jobs_invalid(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "lots")
        with pytest.raises(ValueError):
            default_jobs()

    def test_jobs_one_never_pools(self, monkeypatch):
        # Even with REPRO_JOBS set, an explicit jobs=1 stays serial.
        monkeypatch.setenv("REPRO_JOBS", "8")
        assert ParallelRunner(scale=TINY, jobs=1, store=None).jobs == 1


# ----------------------------------------------------------------------
# (a') zero-copy compiled-trace distribution
# ----------------------------------------------------------------------

class TestZeroCopyDistribution:
    def test_publish_skipped_for_serial(self):
        runner = ParallelRunner(scale=TINY, jobs=1, store=None)
        ordered = [(cell.resolved(0).identity(TINY), cell.resolved(0))
                   for cell in GRID]
        assert runner._publish_traces(ordered, workers=1) == {}

    def test_publish_skipped_when_disabled(self, monkeypatch):
        monkeypatch.setenv("REPRO_NO_COMPILED_TRACES", "1")
        runner = ParallelRunner(scale=TINY, jobs=2, store=None)
        ordered = [(cell.resolved(0).identity(TINY), cell.resolved(0))
                   for cell in GRID]
        assert runner._publish_traces(ordered, workers=2) == {}

    def test_publish_one_ref_per_workload(self):
        runner = ParallelRunner(scale=TINY, jobs=2, store=None)
        ordered = [(cell.resolved(0).identity(TINY), cell.resolved(0))
                   for cell in GRID]
        refs = runner._publish_traces(ordered, workers=2)
        assert set(refs) == {(workload, 0, False)
                             for workload in WORKLOADS}
        for kind, _ in refs.values():
            assert kind in ("shm", "file")

    def test_publish_skips_fully_stored_groups(self, tmp_path):
        store = ResultStore(tmp_path / "cache")
        # Pre-fill every cell of one workload.
        for config in CONFIGS:
            store.put(result_key("noop", config, 0, TINY), make_stats())
        runner = ParallelRunner(scale=TINY, jobs=2, store=store)
        ordered = [(cell.resolved(0).identity(TINY), cell.resolved(0))
                   for cell in GRID]
        refs = runner._publish_traces(ordered, workers=2)
        assert ("noop", 0, False) not in refs
        assert ("voter", 0, False) in refs

    def test_worker_falls_back_when_ref_vanishes(self):
        """A dead ref must not fail the cell -- local compile instead."""
        from repro.harness.parallel import simulate_cell

        serial = simulate_cell("noop", CONFIGS[0], 0, False, TINY)
        via_dead_ref = simulate_cell(
            "noop", CONFIGS[0], 0, False, TINY,
            trace_ref=("shm", "repro_ctrace_gone_000000000000"))
        assert via_dead_ref == serial

    def test_worker_attach_memoised(self, micro_trace):
        from repro.harness.parallel import _ATTACHED_TRACES, _attached_trace
        from repro.workloads.compiled import compile_trace

        published = compile_trace(micro_trace[:200])
        ref = published.shared_ref()
        try:
            first = _attached_trace(ref)
            assert _attached_trace(ref) is first
        finally:
            _ATTACHED_TRACES.pop(ref, None)
            published.close()


# ----------------------------------------------------------------------
# (b) persistent store round-trip and invalidation
# ----------------------------------------------------------------------

def make_stats() -> SimStats:
    stats = SimStats(instructions=123_456, blocks=789, cycles=54_321.25,
                     taken_branches=42, btb_miss_l1i_hit=7,
                     decoder_idle_cycles=12.5)
    stats.branches[BranchKind.DIRECT_COND] = 1_000
    stats.btb_misses[BranchKind.RETURN] = 17
    return stats


class TestStoreRoundTrip:
    def test_jsonable_round_trip(self):
        stats = make_stats()
        assert stats_from_jsonable(stats_to_jsonable(stats)) == stats

    def test_put_get(self, tmp_path):
        store = ResultStore(tmp_path / "cache")
        key = result_key("voter", CONFIGS[0], 0, TINY)
        assert store.get(key) is None
        store.put(key, make_stats())
        assert store.get(key) == make_stats()
        assert len(store) == 1

    def test_runner_round_trips_through_store(self, tmp_path):
        store = ResultStore(tmp_path / "cache")
        first = ExperimentRunner(scale=TINY, cache=WorkloadCache(),
                                 store=store).run("noop", CONFIGS[0])
        warm_store = ResultStore(tmp_path / "cache")
        second = ExperimentRunner(scale=TINY, cache=WorkloadCache(),
                                  store=warm_store).run("noop", CONFIGS[0])
        assert warm_store.hits == 1
        assert second == first

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        store = ResultStore(tmp_path / "cache")
        key = result_key("voter", CONFIGS[0], 0, TINY)
        store.put(key, make_stats())
        store._path(key).write_text("{not json")
        assert store.get(key) is None

    def test_clear(self, tmp_path):
        store = ResultStore(tmp_path / "cache")
        store.put(result_key("voter", CONFIGS[0], 0, TINY), make_stats())
        store.clear()
        assert len(store) == 0


class TestStoreInvalidation:
    def test_schema_version_bump_changes_key(self):
        old = result_key("voter", CONFIGS[0], 0, TINY, store_version=1)
        new = result_key("voter", CONFIGS[0], 0, TINY, store_version=2)
        assert old != new

    def test_schema_fingerprint_tracks_version(self):
        assert schema_fingerprint(1) != schema_fingerprint(2)

    def test_repro_version_changes_key(self):
        old = result_key("voter", CONFIGS[0], 0, TINY, version="1.0.0")
        new = result_key("voter", CONFIGS[0], 0, TINY, version="1.1.0")
        assert old != new

    def test_version_bump_misses_old_entry(self, tmp_path):
        store = ResultStore(tmp_path / "cache")
        store.put(result_key("voter", CONFIGS[0], 0, TINY, store_version=1),
                  make_stats())
        bumped = result_key("voter", CONFIGS[0], 0, TINY, store_version=2)
        assert store.get(bumped) is None

    def test_key_distinguishes_cells(self):
        keys = {
            result_key("voter", CONFIGS[0], 0, TINY),
            result_key("voter", CONFIGS[1], 0, TINY),
            result_key("noop", CONFIGS[0], 0, TINY),
            result_key("voter", CONFIGS[0], 1, TINY),
            result_key("voter", CONFIGS[0], 0, TINY, bolted=True),
            result_key("voter", CONFIGS[0], 0,
                       Scale("test2", records=7_000, warmup=2_000)),
        }
        assert len(keys) == 6

    def test_scale_name_is_a_label_not_identity(self):
        renamed = Scale("renamed", records=TINY.records, warmup=TINY.warmup)
        assert (result_key("voter", CONFIGS[0], 0, TINY)
                == result_key("voter", CONFIGS[0], 0, renamed))


class TestStoreOptOut:
    def test_env_opt_out(self, monkeypatch):
        monkeypatch.setenv("REPRO_NO_STORE", "1")
        assert not store_enabled()
        assert default_store() is None

    def test_enabled_by_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_NO_STORE", raising=False)
        assert store_enabled()

    def test_cache_dir_env(self, monkeypatch, tmp_path):
        monkeypatch.delenv("REPRO_NO_STORE", raising=False)
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "elsewhere"))
        store = default_store()
        assert store is not None
        assert store.root == tmp_path / "elsewhere"


# ----------------------------------------------------------------------
# (c) config_key order stability
# ----------------------------------------------------------------------

@dataclass
class FakeConfig:
    mapping: dict = field(default_factory=dict)
    items: list = field(default_factory=list)
    nested: dict = field(default_factory=dict)


class TestConfigKeyStability:
    def test_dict_field_order_stable(self):
        first = FakeConfig(mapping={"beta": 1, "alpha": 2})
        second = FakeConfig(mapping={"alpha": 2, "beta": 1})
        assert config_key(first) == config_key(second)

    def test_nested_dict_order_stable(self):
        first = FakeConfig(nested={"outer": {"b": 1, "a": 2}})
        second = FakeConfig(nested={"outer": {"a": 2, "b": 1}})
        assert config_key(first) == config_key(second)

    def test_list_fields_hashable(self):
        key = config_key(FakeConfig(items=[3, 1, 2]))
        hash(key)

    def test_list_order_significant(self):
        assert (config_key(FakeConfig(items=[1, 2]))
                != config_key(FakeConfig(items=[2, 1])))

    def test_real_configs_distinct_and_stable(self):
        assert config_key(FrontEndConfig()) == config_key(FrontEndConfig())
        assert (config_key(CONFIGS[0]) != config_key(CONFIGS[1]))
        assert (config_key(replace(FrontEndConfig(), btb_entries=4096))
                != config_key(FrontEndConfig()))
