"""Property test: the Fenwick-tree reuse-distance computation matches a
brute-force distinct-count reference."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.isa.branch import BranchKind
from repro.workloads.analysis import branch_reuse_profile
from repro.workloads.trace import BlockRecord


def record_for(pc: int) -> BlockRecord:
    return BlockRecord(block_start=pc, n_instr=1, branch_pc=pc,
                       branch_len=1, kind=BranchKind.RETURN, taken=True,
                       target=pc, fallthrough=pc + 1, next_pc=pc)


def brute_force_distances(pcs: list[int]) -> list[int]:
    last_seen: dict[int, int] = {}
    distances = []
    for position, pc in enumerate(pcs):
        previous = last_seen.get(pc)
        if previous is not None:
            window = pcs[previous + 1:position]
            distances.append(len({p for p in window}))
        last_seen[pc] = position
    return distances


@given(pcs=st.lists(st.integers(0, 12), min_size=2, max_size=120))
@settings(max_examples=200, deadline=None)
def test_reuse_distances_match_brute_force(pcs):
    records = [record_for(pc * 2) for pc in pcs]
    profile = branch_reuse_profile(records)
    reference = sorted(brute_force_distances([pc * 2 for pc in pcs]))
    assert profile.samples == len(reference)
    if reference:
        assert profile.median == reference[len(reference) // 2]
        assert profile.p90 == reference[int(len(reference) * 0.9)]


@given(pcs=st.lists(st.integers(0, 40), min_size=2, max_size=150),
       capacity=st.integers(1, 16))
@settings(max_examples=100, deadline=None)
def test_cold_fraction_matches_brute_force(pcs, capacity):
    records = [record_for(pc * 2) for pc in pcs]
    profile = branch_reuse_profile(records, btb_entries=capacity)
    reference = brute_force_distances([pc * 2 for pc in pcs])
    if reference:
        expected = sum(d > capacity for d in reference) / len(reference)
        assert profile.over_8k_fraction == expected
