"""Program generator behaviour across profiles and seeds."""

import pytest

from repro.isa.branch import BranchKind
from repro.isa.decoder import decode_at
from repro.workloads.codegen import ProgramGenerator
from repro.workloads.profiles import PROFILES, get_profile
from tests.conftest import make_profile


class TestGeneration:
    def test_deterministic_per_seed(self):
        profile = make_profile()
        first = ProgramGenerator(profile, seed=3).generate()
        second = ProgramGenerator(profile, seed=3).generate()
        assert first.image == second.image

    def test_different_seeds_differ(self):
        profile = make_profile()
        first = ProgramGenerator(profile, seed=3).generate()
        second = ProgramGenerator(profile, seed=4).generate()
        assert first.image != second.image

    def test_function_count(self, micro_program, micro_profile):
        expected = 1 + micro_profile.n_handlers + micro_profile.n_lib_funcs
        assert len(micro_program.functions) == expected

    def test_direct_branch_targets_patched(self, micro_program):
        """Every direct branch in the image decodes to the address of its
        target block -- layout and patching agree."""
        for block in micro_program.iter_blocks():
            terminator = block.terminator
            if terminator.rel_width == 0 or terminator.target_label is None:
                continue
            decoded = decode_at(micro_program.image,
                                terminator.pc - micro_program.base_address,
                                pc=terminator.pc)
            target_block = micro_program.block(terminator.target_label)
            assert decoded.target == target_block.start_pc

    def test_call_graph_is_dag(self, micro_program):
        """Callees always come later in the function list (no recursion)."""
        order = {f.name: i for i, f in enumerate(micro_program.functions)}
        index_of_entry = {f.entry_label: f.name
                          for f in micro_program.functions}
        # DAG property is by construction on the handler/library index,
        # not the layout order; verify no call-cycle via DFS.
        calls: dict[str, set[str]] = {f.name: set()
                                      for f in micro_program.functions}
        for function in micro_program.functions:
            for block in function.blocks:
                terminator = block.terminator
                if (terminator.kind is BranchKind.CALL
                        and terminator.target_label is not None):
                    callee = index_of_entry[terminator.target_label]
                    calls[function.name].add(callee)

        state: dict[str, int] = {}

        def has_cycle(node: str) -> bool:
            state[node] = 1
            for nxt in calls[node]:
                mark = state.get(nxt, 0)
                if mark == 1:
                    return True
                if mark == 0 and has_cycle(nxt):
                    return True
            state[node] = 2
            return False

        assert not any(has_cycle(f) for f in calls if state.get(f, 0) == 0)
        assert order  # silence unused warning

    def test_calls_target_function_entries(self, micro_program):
        entries = {f.entry_label for f in micro_program.functions}
        for block in micro_program.iter_blocks():
            terminator = block.terminator
            if terminator.kind is BranchKind.CALL:
                assert terminator.target_label in entries

    def test_loop_backedges_have_trip_counts(self, micro_program):
        loops = [b for b in micro_program.iter_blocks()
                 if b.loop_trip is not None]
        assert loops, "micro profile should generate loops"
        for block in loops:
            assert block.terminator.kind is BranchKind.DIRECT_COND
            assert block.loop_trip >= 2
            target = micro_program.block(block.terminator.target_label)
            assert target.start_pc < block.start_pc  # backward edge

    def test_pattern_blocks_well_formed(self, micro_program):
        patterns = [b for b in micro_program.iter_blocks()
                    if b.pattern_bits is not None]
        assert patterns, "micro profile should generate pattern conds"
        for block in patterns:
            assert block.terminator.kind is BranchKind.DIRECT_COND
            assert 1 <= block.pattern_len
            assert 0 <= block.pattern_bits < (1 << block.pattern_len)

    def test_indirect_blocks_have_candidates(self, micro_program):
        for block in micro_program.iter_blocks():
            if block.terminator.kind.is_indirect:
                assert block.indirect_targets
                for label, weight in block.indirect_targets:
                    micro_program.block(label)  # resolvable
                    assert weight > 0

    def test_last_block_returns(self, micro_program):
        for function in micro_program.functions:
            if function.name == "main":
                continue
            assert function.blocks[-1].terminator.kind is BranchKind.RETURN

    def test_main_dispatch_targets_all_handlers(self, micro_program,
                                                micro_profile):
        main = micro_program.functions[0]
        dispatch = main.blocks[0]
        assert dispatch.terminator.kind is BranchKind.INDIRECT_CALL
        assert len(dispatch.indirect_targets) == micro_profile.n_handlers


class TestLayoutPolicies:
    def test_shuffle_policy(self):
        profile = make_profile(layout_policy="shuffle")
        program = ProgramGenerator(profile, seed=1).generate()
        assert program.functions[0].name == "main"

    def test_scatter_spreads_hot_functions(self):
        profile = make_profile(layout_policy="scatter",
                               hot_handler_fraction=0.2)
        program = ProgramGenerator(profile, seed=1).generate()
        # Hot (low-rank) handlers should not be contiguous in layout.
        positions = [i for i, f in enumerate(program.functions)
                     if f.name in ("handler_0", "handler_1", "handler_2")]
        assert len(positions) == 3
        assert max(positions) - min(positions) > 3

    def test_alignment_respected(self):
        profile = make_profile(function_alignment=16)
        program = ProgramGenerator(profile, seed=1).generate()
        for function in program.functions:
            assert function.blocks[0].start_pc % 16 == 0


@pytest.mark.parametrize("name", sorted(PROFILES))
def test_all_registered_profiles_have_sane_weights(name):
    profile = get_profile(name)
    assert profile.weights_sum() > 0
    assert 0 < profile.hot_handler_fraction <= 1
    assert profile.n_handlers > 0
    assert profile.loop_trip_range[0] >= 2
    assert profile.dispatch_run_range[0] >= 1


def test_get_profile_unknown_raises():
    with pytest.raises(KeyError, match="unknown workload"):
        get_profile("nope")
