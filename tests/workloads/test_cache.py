"""Workload cache memoisation."""

from repro.workloads.cache import WorkloadCache


class TestWorkloadCache:
    def test_program_memoised(self):
        cache = WorkloadCache()
        first = cache.program("noop", seed=1)
        second = cache.program("noop", seed=1)
        assert first is second

    def test_seed_separates(self):
        cache = WorkloadCache()
        assert cache.program("noop", seed=1) is not cache.program(
            "noop", seed=2)

    def test_bolted_separates(self):
        cache = WorkloadCache()
        plain = cache.program("noop", seed=1)
        bolted = cache.program("noop", seed=1, bolted=True)
        assert plain is not bolted
        assert bolted.name.endswith("+bolt")

    def test_trace_memoised(self):
        cache = WorkloadCache()
        first = cache.trace("noop", 2_000, seed=1)
        second = cache.trace("noop", 2_000, seed=1)
        assert first is second

    def test_trace_length_separates(self):
        cache = WorkloadCache()
        assert cache.trace("noop", 1_000) is not cache.trace("noop", 2_000)

    def test_trace_eviction(self):
        cache = WorkloadCache(max_traces=2)
        first = cache.trace("noop", 1_000)
        cache.trace("noop", 1_100)
        cache.trace("noop", 1_200)  # evicts the 1_000 trace
        again = cache.trace("noop", 1_000)
        assert again is not first
        assert again == first  # deterministic regeneration

    def test_clear(self):
        cache = WorkloadCache()
        first = cache.program("noop")
        cache.clear()
        assert cache.program("noop") is not first


class TestWorkloadCacheStats:
    def test_program_hits_and_misses(self):
        cache = WorkloadCache()
        cache.program("noop", seed=1)
        cache.program("noop", seed=1)
        cache.program("noop", seed=2)
        stats = cache.stats()["programs"]
        assert stats.hits == 1
        assert stats.misses == 2
        assert stats.size == 2

    def test_trace_hits_misses_evictions(self):
        cache = WorkloadCache(max_traces=2)
        cache.trace("noop", 1_000)
        cache.trace("noop", 1_000)  # hit
        cache.trace("noop", 1_100)
        cache.trace("noop", 1_200)  # evicts one
        stats = cache.stats()["traces"]
        assert stats.hits == 1
        assert stats.misses == 3
        assert stats.evictions == 1
        assert stats.size == 2

    def test_trace_eviction_is_lru_not_fifo(self):
        """A hit must refresh recency: after touching the oldest trace,
        inserting a new one evicts the *other* (least recently used)
        trace, not the oldest-inserted one."""
        cache = WorkloadCache(max_traces=2)
        first = cache.trace("noop", 1_000)
        cache.trace("noop", 1_100)
        assert cache.trace("noop", 1_000) is first  # touch on hit
        cache.trace("noop", 1_200)  # must evict the 1_100 trace
        assert cache.trace("noop", 1_000) is first  # survived eviction
        assert cache.stats()["traces"].evictions == 1

    def test_clear_preserves_counters(self):
        cache = WorkloadCache()
        cache.program("noop")
        cache.clear()
        assert cache.stats()["programs"].misses == 1
        assert cache.stats()["programs"].size == 0
