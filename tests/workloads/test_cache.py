"""Workload cache memoisation."""

from repro.workloads.cache import WorkloadCache


class TestWorkloadCache:
    def test_program_memoised(self):
        cache = WorkloadCache()
        first = cache.program("noop", seed=1)
        second = cache.program("noop", seed=1)
        assert first is second

    def test_seed_separates(self):
        cache = WorkloadCache()
        assert cache.program("noop", seed=1) is not cache.program(
            "noop", seed=2)

    def test_bolted_separates(self):
        cache = WorkloadCache()
        plain = cache.program("noop", seed=1)
        bolted = cache.program("noop", seed=1, bolted=True)
        assert plain is not bolted
        assert bolted.name.endswith("+bolt")

    def test_trace_memoised(self):
        cache = WorkloadCache()
        first = cache.trace("noop", 2_000, seed=1)
        second = cache.trace("noop", 2_000, seed=1)
        assert first is second

    def test_trace_length_separates(self):
        cache = WorkloadCache()
        assert cache.trace("noop", 1_000) is not cache.trace("noop", 2_000)

    def test_trace_eviction(self):
        cache = WorkloadCache(max_traces=2)
        first = cache.trace("noop", 1_000)
        cache.trace("noop", 1_100)
        cache.trace("noop", 1_200)  # evicts the 1_000 trace
        again = cache.trace("noop", 1_000)
        assert again is not first
        assert again == first  # deterministic regeneration

    def test_clear(self):
        cache = WorkloadCache()
        first = cache.program("noop")
        cache.clear()
        assert cache.program("noop") is not first
