"""CompiledTrace: lowering, serialisation, sharing, cache lifecycle."""

import os
import subprocess
import sys
from array import array
from pathlib import Path

import pytest

from repro.workloads.cache import WorkloadCache
from repro.workloads.compiled import (
    CORE_COLUMNS,
    KIND_BY_CODE,
    CompiledTrace,
    compile_trace,
    compiled_traces_enabled,
    default_spill_dir,
    shared_memory_available,
)
from repro.workloads.trace import TraceGenerator


@pytest.fixture(scope="module")
def compiled(micro_trace):
    return compile_trace(micro_trace)


class TestCompilation:
    def test_round_trip(self, micro_trace, compiled):
        assert compiled.n_records == len(micro_trace)
        assert compiled.records() == micro_trace

    def test_columns_are_int64(self, compiled):
        for name in CORE_COLUMNS:
            column = compiled.column(name)
            assert isinstance(column, array)
            assert column.itemsize == 8

    def test_kind_and_taken_encoding(self, micro_trace, compiled):
        kinds = compiled.column("kind")
        taken = compiled.column("taken")
        for index in (0, 17, len(micro_trace) - 1):
            record = micro_trace[index]
            assert KIND_BY_CODE[kinds[index]] is record.kind
            assert bool(taken[index]) is record.taken

    def test_len(self, micro_trace, compiled):
        assert len(compiled) == len(micro_trace)

    def test_deterministic_fingerprint(self, micro_trace):
        assert (compile_trace(micro_trace).fingerprint
                == compile_trace(micro_trace).fingerprint)

    def test_different_traces_different_fingerprints(self, micro_program,
                                                     compiled):
        other = TraceGenerator(micro_program, seed=99).records(100)
        assert compile_trace(other).fingerprint != compiled.fingerprint


class TestDerivedColumns:
    @pytest.mark.parametrize("line_size", [32, 64, 128])
    def test_matches_per_record_arithmetic(self, micro_trace, compiled,
                                           line_size):
        first_line, n_lines = compiled.derived(line_size)
        mask = ~(line_size - 1)
        for index in range(0, len(micro_trace), 97):
            record = micro_trace[index]
            first = record.block_start & mask
            last = (record.branch_pc + record.branch_len - 1) & mask
            assert first_line[index] == first
            assert n_lines[index] == (last - first) // line_size + 1

    def test_memoised_per_instance(self, compiled):
        assert compiled.derived(32) is compiled.derived(32)

    def test_rejects_non_power_of_two(self, compiled):
        with pytest.raises(ValueError):
            compiled.derived(48)


class TestSerialisation:
    def test_buffer_round_trip(self, micro_trace, compiled):
        view = CompiledTrace.from_buffer(compiled.to_bytes())
        try:
            assert view.fingerprint == compiled.fingerprint
            assert view.n_records == compiled.n_records
            for name in CORE_COLUMNS:
                assert list(view.column(name)) == list(compiled.column(name))
            # The precompiled 64-byte derived columns ship in the buffer.
            assert list(view.derived(64)[1]) == list(compiled.derived(64)[1])
            assert view.records()[:50] == micro_trace[:50]
        finally:
            view.close()

    def test_views_are_zero_copy(self, compiled):
        payload = bytearray(compiled.to_bytes())
        view = CompiledTrace.from_buffer(payload)
        try:
            assert isinstance(view.column("block_start"), memoryview)
        finally:
            view.close()

    def test_rejects_bad_magic(self):
        with pytest.raises(ValueError):
            CompiledTrace.from_buffer(b"NOPE" + bytes(64))

    def test_nbytes_is_exact(self, compiled):
        assert compiled.nbytes() == len(compiled.to_bytes())

    def test_cross_process_byte_identity(self, tmp_path):
        """Same (program, seed) compiles to the same bytes anywhere."""
        script = (
            "from repro.workloads import build_trace, compile_trace\n"
            "records = build_trace('noop', 2000, seed=3)\n"
            "print(compile_trace(records).fingerprint)\n")
        env = dict(os.environ)
        env["PYTHONPATH"] = str(Path("src").resolve())
        result = subprocess.run(
            [sys.executable, "-c", script], env=env, cwd=tmp_path,
            capture_output=True, text=True, check=True)
        from repro.workloads import build_trace
        local = compile_trace(build_trace("noop", 2000, seed=3))
        assert result.stdout.strip() == local.fingerprint


@pytest.mark.skipif(not shared_memory_available(),
                    reason="no shared memory on this platform")
class TestSharedMemory:
    def test_shared_ref_and_attach(self, micro_trace, compiled):
        ref = compiled.shared_ref()
        assert ref[0] == "shm"
        assert compiled.shared_ref() == ref  # published once, reused
        attached = CompiledTrace.attach(ref)
        try:
            assert attached.fingerprint == compiled.fingerprint
            assert attached.records()[:20] == micro_trace[:20]
        finally:
            attached.close()

    def test_close_unlinks_segment(self, micro_trace):
        from multiprocessing import shared_memory

        trace = compile_trace(micro_trace[:500])
        kind, name = trace.shared_ref()
        assert kind == "shm"
        trace.close()
        assert trace.closed
        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=name)

    def test_close_is_idempotent(self, micro_trace):
        trace = compile_trace(micro_trace[:100])
        trace.shared_ref()
        trace.close()
        trace.close()


class TestSpill:
    def test_spill_is_content_addressed(self, micro_trace, tmp_path):
        trace = compile_trace(micro_trace[:300])
        path = trace.spill(tmp_path)
        assert path.name == f"{trace.fingerprint}.ctrace"
        # Re-spilling reuses the file.
        assert trace.spill(tmp_path) == path
        attached = CompiledTrace.attach(("file", str(path)))
        try:
            assert attached.fingerprint == trace.fingerprint
        finally:
            attached.close()
            trace.close()

    def test_default_spill_dir_follows_cache_dir(self, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", "/tmp/somewhere")
        assert default_spill_dir() == Path("/tmp/somewhere/compiled")

    def test_attach_rejects_unknown_kind(self):
        with pytest.raises(ValueError):
            CompiledTrace.attach(("carrier-pigeon", "x"))


class TestEnvGate:
    def test_enabled_by_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_NO_COMPILED_TRACES", raising=False)
        assert compiled_traces_enabled()

    @pytest.mark.parametrize("value", ["1", "true", "YES"])
    def test_disabled_by_env(self, monkeypatch, value):
        monkeypatch.setenv("REPRO_NO_COMPILED_TRACES", value)
        assert not compiled_traces_enabled()

    def test_falsey_values_keep_it_enabled(self, monkeypatch):
        monkeypatch.setenv("REPRO_NO_COMPILED_TRACES", "0")
        assert compiled_traces_enabled()


class TestCacheLifecycle:
    def test_compiled_is_memoised(self):
        cache = WorkloadCache()
        first = cache.compiled("noop", 1000)
        assert cache.compiled("noop", 1000) is first
        stats = cache.stats()["compiled"]
        assert (stats.hits, stats.misses) == (1, 1)
        cache.clear()

    def test_eviction_closes_and_unlinks(self):
        """LRU displacement must release the shared-memory segment."""
        from multiprocessing import shared_memory

        cache = WorkloadCache(max_traces=1)
        first = cache.compiled("noop", 500)
        kind, name = first.shared_ref()
        assert kind == "shm"
        cache.compiled("noop", 600)  # displaces the first entry
        assert first.closed
        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=name)
        cache.clear()

    def test_clear_closes_compiled_traces(self):
        cache = WorkloadCache()
        trace = cache.compiled("noop", 400)
        cache.clear()
        assert trace.closed

    def test_closed_entry_is_recompiled(self):
        cache = WorkloadCache()
        first = cache.compiled("noop", 400)
        first.close()
        again = cache.compiled("noop", 400)
        assert again is not first and not again.closed
        cache.clear()

    def test_no_leaked_shm_after_cache_teardown(self, micro_trace):
        import glob

        before = set(glob.glob("/dev/shm/repro_ctrace_*"))
        cache = WorkloadCache(max_traces=1)
        cache.compiled("noop", 500).shared_ref()
        cache.compiled("noop", 600).shared_ref()
        cache.clear()
        leaked = set(glob.glob("/dev/shm/repro_ctrace_*")) - before
        assert not leaked
