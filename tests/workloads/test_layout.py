"""Layout engine: address assignment, relaxation, emission."""

import random

import pytest

from repro.isa.branch import BranchKind
from repro.isa.decoder import decode_at
from repro.isa.encoder import Encoder
from repro.workloads.layout import PAD_BYTE, lay_out
from repro.workloads.program import BasicBlock, Function


def build_chain(encoder, rng, n_blocks, body_lengths=(2, 3)):
    """A single function: chain of filler blocks ending in ret."""
    blocks = []
    for index in range(n_blocks):
        block = BasicBlock(label=index)
        block.instructions = [encoder.filler(rng, length)
                              for length in body_lengths]
        blocks.append(block)
    for first, second in zip(blocks, blocks[1:]):
        first.fallthrough_label = second.label
        first.instructions.append(encoder.uncond_jmp(rng, second.label,
                                                     wide=False))
    blocks[-1].instructions.append(encoder.ret(rng))
    return Function(name="chain", blocks=blocks)


class TestLayOut:
    def test_addresses_contiguous(self, encoder, rng):
        function = build_chain(encoder, rng, 4)
        image = lay_out([function], 0x1000, 1, encoder, rng)
        cursor = 0x1000
        for block in function.blocks:
            assert block.start_pc == cursor
            for ins in block.instructions:
                assert ins.pc == cursor
                cursor += ins.length
        assert len(image) == cursor - 0x1000

    def test_image_bytes_match(self, encoder, rng):
        function = build_chain(encoder, rng, 3)
        image = lay_out([function], 0, 1, encoder, rng)
        for block in function.blocks:
            for ins in block.instructions:
                assert image[ins.pc:ins.pc + ins.length] == bytes(ins.encoding)

    def test_jmps_patched(self, encoder, rng):
        function = build_chain(encoder, rng, 3)
        image = lay_out([function], 0x2000, 1, encoder, rng)
        for block in function.blocks[:-1]:
            terminator = block.terminator
            decoded = decode_at(image, terminator.pc - 0x2000,
                                pc=terminator.pc)
            target = function.blocks[block.label + 1]
            assert decoded.target == target.start_pc

    def test_alignment_pads_with_nops(self, encoder, rng):
        functions = [build_chain(encoder, rng, 1) for _ in range(2)]
        functions[1].blocks[0].label = 100
        functions[1] = Function(name="second",
                                blocks=functions[1].blocks)
        image = lay_out(functions, 0, 32, encoder, rng)
        second_start = functions[1].blocks[0].start_pc
        assert second_start % 32 == 0
        first_end = (functions[0].blocks[-1].start_pc
                     + functions[0].blocks[-1].size)
        for offset in range(first_end, second_start):
            assert image[offset] == PAD_BYTE

    def test_relaxation_widens_short_branch(self, encoder, rng):
        """A rel8 jmp over >127 bytes must be widened to rel32."""
        first = BasicBlock(label=0)
        first.instructions = [encoder.uncond_jmp(rng, 2, wide=False)]
        middle = BasicBlock(label=1)
        middle.instructions = [encoder.filler(rng, 11) for _ in range(30)]
        middle.instructions.append(encoder.ret(rng))
        last = BasicBlock(label=2)
        last.instructions = [encoder.ret(rng)]
        function = Function(name="wide", blocks=[first, middle, last])
        image = lay_out([function], 0, 1, encoder, rng)
        terminator = first.terminator
        assert terminator.length == 5  # widened to rel32
        decoded = decode_at(image, terminator.pc, pc=terminator.pc)
        assert decoded.target == last.start_pc

    def test_cond_relaxation(self, encoder, rng):
        first = BasicBlock(label=0)
        first.instructions = [encoder.cond_branch(rng, 2, wide=False)]
        middle = BasicBlock(label=1)
        middle.instructions = [encoder.filler(rng, 11) for _ in range(40)]
        middle.instructions.append(encoder.ret(rng))
        last = BasicBlock(label=2)
        last.instructions = [encoder.ret(rng)]
        first.fallthrough_label = 1
        function = Function(name="wide", blocks=[first, middle, last])
        lay_out([function], 0, 1, encoder, rng)
        assert first.terminator.length == 6  # 0x0F Jcc rel32
        assert first.terminator.kind is BranchKind.DIRECT_COND

    def test_base_address_respected(self, encoder, rng):
        function = build_chain(encoder, rng, 2)
        lay_out([function], 0x400000, 1, encoder, rng)
        assert function.blocks[0].start_pc == 0x400000


class TestErrorPaths:
    def test_unknown_target_label_raises(self, encoder, rng):
        block = BasicBlock(label=0)
        block.instructions = [encoder.uncond_jmp(rng, 999)]
        function = Function(name="broken", blocks=[block])
        with pytest.raises(KeyError):
            lay_out([function], 0, 1, encoder, rng)
