"""Trace generation: the correct-path oracle must agree with the image."""

from collections import Counter

from repro.isa.branch import BranchKind
from repro.isa.decoder import decode_at
from repro.workloads.trace import TraceGenerator, trace_statistics


class TestOracleConsistency:
    def test_branch_records_match_image(self, micro_program, micro_trace):
        """Every record's branch decodes from the image with the same
        kind, length and (for direct branches) target."""
        for record in micro_trace[:3000]:
            decoded = decode_at(
                micro_program.image,
                record.branch_pc - micro_program.base_address,
                pc=record.branch_pc)
            assert decoded is not None
            assert decoded.kind is record.kind
            assert decoded.length == record.branch_len
            if record.kind.is_direct:
                assert decoded.target == record.target

    def test_next_pc_semantics(self, micro_trace):
        for record in micro_trace:
            if record.taken:
                assert record.next_pc == record.target
            else:
                assert record.next_pc == record.fallthrough

    def test_stream_is_connected(self, micro_trace):
        for current, following in zip(micro_trace, micro_trace[1:]):
            assert current.next_pc == following.block_start

    def test_fallthrough_is_branch_end(self, micro_trace):
        for record in micro_trace:
            assert record.fallthrough == record.branch_pc + record.branch_len

    def test_unconditional_always_taken(self, micro_trace):
        for record in micro_trace:
            if record.kind is not BranchKind.DIRECT_COND:
                assert record.taken

    def test_blocks_start_at_instruction_boundaries(self, micro_program,
                                                    micro_trace):
        for record in micro_trace[:2000]:
            assert micro_program.is_instruction_start(record.block_start)
            assert micro_program.is_instruction_start(record.branch_pc)


class TestCallReturnMatching:
    def test_returns_go_to_call_sites(self, micro_trace):
        """Simulate a perfect stack over the record stream: every return
        must target the fallthrough of the matching call."""
        stack = []
        for record in micro_trace:
            if record.kind.is_call:
                stack.append(record.fallthrough)
            elif record.kind is BranchKind.RETURN:
                assert stack, "return without a call"
                assert record.target == stack.pop()


class TestDeterminism:
    def test_same_seed_same_trace(self, micro_program):
        first = TraceGenerator(micro_program, seed=5).records(2000)
        second = TraceGenerator(micro_program, seed=5).records(2000)
        assert first == second

    def test_different_seed_differs(self, micro_program):
        first = TraceGenerator(micro_program, seed=5).records(2000)
        second = TraceGenerator(micro_program, seed=6).records(2000)
        assert first != second

    def test_prefix_property(self, micro_program):
        """records(n) is a prefix of records(2n) -- generation is
        streaming, not length-dependent."""
        short = TraceGenerator(micro_program, seed=5).records(1000)
        long = TraceGenerator(micro_program, seed=5).records(2000)
        assert long[:1000] == short


class TestLoopAndPatternDeterminism:
    def test_loop_backedge_trip_counts(self, micro_program):
        """A loop back-edge is taken exactly (trip-1) consecutive times."""
        records = TraceGenerator(micro_program, seed=9).records(30_000)
        loop_blocks = {b.start_pc: b.loop_trip
                       for b in micro_program.iter_blocks()
                       if b.loop_trip is not None}
        runs: dict[int, list[int]] = {}
        current: dict[int, int] = {}
        for record in records:
            trip = loop_blocks.get(record.block_start)
            if trip is None:
                continue
            if record.taken:
                current[record.block_start] = current.get(
                    record.block_start, 0) + 1
            else:
                runs.setdefault(record.block_start, []).append(
                    current.pop(record.block_start, 0))
        checked = 0
        for start, observed in runs.items():
            trip = loop_blocks[start]
            for consecutive_takes in observed[1:-1]:
                # Every completed loop execution takes the back-edge
                # exactly trip-1 times (break-outs via pattern branches
                # can shorten the count, never lengthen it).
                assert consecutive_takes <= trip - 1
                checked += 1
        assert checked > 0

    def test_pattern_blocks_follow_pattern(self, micro_program):
        records = TraceGenerator(micro_program, seed=9).records(30_000)
        pattern_blocks = {b.start_pc: (b.pattern_bits, b.pattern_len)
                          for b in micro_program.iter_blocks()
                          if b.pattern_bits is not None}
        visit: dict[int, int] = {}
        checked = 0
        for record in records:
            spec = pattern_blocks.get(record.block_start)
            if spec is None:
                continue
            bits, length = spec
            index = visit.get(record.block_start, 0)
            assert record.taken == bool((bits >> index) & 1)
            visit[record.block_start] = (index + 1) % length
            checked += 1
        assert checked > 0


class TestIndirectBehaviour:
    def test_indirect_targets_are_candidates(self, micro_program):
        records = TraceGenerator(micro_program, seed=2).records(10_000)
        candidates = {
            block.start_pc: {micro_program.block(label).start_pc
                             for label, _ in block.indirect_targets}
            for block in micro_program.iter_blocks()
            if block.indirect_targets
        }
        for record in records:
            if record.kind.is_indirect:
                assert record.target in candidates[record.block_start]

    def test_run_stickiness(self, micro_program):
        """With a (5,5) run range every 5 consecutive dispatches share a
        target."""
        generator = TraceGenerator(micro_program, seed=2,
                                   dispatch_run_range=(5, 5))
        records = generator.records(20_000)
        dispatch_targets = [r.target for r in records
                            if r.kind is BranchKind.INDIRECT_CALL]
        for index in range(0, len(dispatch_targets) - 5, 5):
            run = dispatch_targets[index:index + 5]
            assert len(set(run)) == 1


class TestStatistics:
    def test_empty(self):
        assert trace_statistics([])["records"] == 0

    def test_counts(self, micro_trace):
        stats = trace_statistics(micro_trace)
        assert stats["records"] == len(micro_trace)
        assert stats["instructions"] == sum(r.n_instr for r in micro_trace)
        assert 0 < stats["taken_fraction"] <= 1
        kind_fractions = [v for k, v in stats.items()
                          if k.startswith("frac_")]
        assert abs(sum(kind_fractions) - 1.0) < 1e-9

    def test_kind_mix_sane(self, micro_trace):
        kinds = Counter(r.kind for r in micro_trace)
        assert kinds[BranchKind.RETURN] > 0
        assert kinds[BranchKind.CALL] > 0
        assert kinds[BranchKind.DIRECT_COND] > 0
