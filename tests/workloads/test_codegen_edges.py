"""Code generator edge cases."""

from repro.isa.branch import BranchKind
from repro.workloads.codegen import ProgramGenerator
from repro.workloads.trace import TraceGenerator
from tests.conftest import make_profile


class TestDegenerateProfiles:
    def test_single_library(self):
        """The last library cannot call a later one; such calls are
        demoted to jumps and the program stays well-formed."""
        profile = make_profile(n_handlers=4, n_lib_funcs=1,
                               p_call_block=0.9, p_cond_block=0.05,
                               p_jmp_block=0.05)
        program = ProgramGenerator(profile, seed=0).generate()
        lib = next(f for f in program.functions if f.name == "lib_0")
        for block in lib.blocks:
            terminator = block.terminator
            if terminator.kind is BranchKind.CALL:
                # Any surviving call must target a real entry.
                assert terminator.target_label in {
                    f.entry_label for f in program.functions}
        # Trace generation terminates without underflow.
        records = TraceGenerator(program, seed=0).records(2_000)
        assert len(records) == 2_000

    def test_minimum_blocks_per_function(self):
        profile = make_profile(handler_blocks=(1, 1), lib_blocks=(1, 1))
        program = ProgramGenerator(profile, seed=0).generate()
        for function in program.functions:
            assert len(function.blocks) >= 2  # clamped to 2

    def test_no_loops_no_patterns(self):
        profile = make_profile(p_loop_backedge=0.0, p_pattern_cond=0.0)
        program = ProgramGenerator(profile, seed=0).generate()
        assert all(b.loop_trip is None for b in program.iter_blocks())
        assert all(b.pattern_bits is None for b in program.iter_blocks())

    def test_all_cond_terminators(self):
        profile = make_profile(p_cond_block=1.0, p_jmp_block=0.0,
                               p_call_block=0.0, p_indirect_jmp_block=0.0,
                               p_early_ret_block=0.0, p_loop_backedge=0.0,
                               p_pattern_cond=0.0)
        program = ProgramGenerator(profile, seed=0).generate()
        records = TraceGenerator(program, seed=0).records(3_000)
        kinds = {record.kind for record in records}
        # Conditionals dominate but rets and the dispatcher remain.
        assert BranchKind.DIRECT_COND in kinds
        assert BranchKind.RETURN in kinds

    def test_handler_pool_of_one(self):
        profile = make_profile(n_handlers=1, n_lib_funcs=2)
        program = ProgramGenerator(profile, seed=0).generate()
        records = TraceGenerator(program, seed=0).records(1_000)
        assert len(records) == 1_000

    def test_sixteen_byte_alignment_with_scatter(self):
        profile = make_profile(function_alignment=16,
                               layout_policy="scatter")
        program = ProgramGenerator(profile, seed=0).generate()
        for function in program.functions:
            assert function.blocks[0].start_pc % 16 == 0
