"""Binary trace format round-trips and corruption handling."""

import gzip
import struct

import pytest

from repro.workloads.traceio import (
    MAGIC,
    TraceFormatError,
    load_trace,
    save_trace,
    trace_info,
)


class TestRoundTrip:
    def test_lossless(self, micro_trace, tmp_path):
        path = tmp_path / "trace.sktr"
        save_trace(micro_trace[:3_000], path)
        loaded = load_trace(path)
        assert loaded == micro_trace[:3_000]

    def test_empty_trace(self, tmp_path):
        path = tmp_path / "empty.sktr"
        save_trace([], path)
        assert load_trace(path) == []

    def test_compression_effective(self, micro_trace, tmp_path):
        path = tmp_path / "trace.sktr"
        save_trace(micro_trace, path)
        raw_size = len(micro_trace) * 26
        assert path.stat().st_size < raw_size / 2

    def test_info(self, micro_trace, tmp_path):
        path = tmp_path / "trace.sktr"
        save_trace(micro_trace[:1_000], path)
        info = trace_info(path)
        assert info["records"] == 1_000
        assert info["instructions"] > 0


class TestCorruption:
    def test_bad_magic(self, tmp_path):
        path = tmp_path / "bad.sktr"
        with gzip.open(path, "wb") as stream:
            stream.write(struct.pack("<4sHHQQ", b"NOPE", 1, 0, 0, 0))
        with pytest.raises(TraceFormatError, match="magic"):
            load_trace(path)

    def test_bad_version(self, tmp_path):
        path = tmp_path / "bad.sktr"
        with gzip.open(path, "wb") as stream:
            stream.write(struct.pack("<4sHHQQ", MAGIC, 99, 0, 0, 0))
        with pytest.raises(TraceFormatError, match="version"):
            load_trace(path)

    def test_truncated_header(self, tmp_path):
        path = tmp_path / "bad.sktr"
        with gzip.open(path, "wb") as stream:
            stream.write(b"SK")
        with pytest.raises(TraceFormatError, match="header"):
            load_trace(path)

    def test_truncated_payload(self, micro_trace, tmp_path):
        path = tmp_path / "bad.sktr"
        with gzip.open(path, "wb") as stream:
            stream.write(struct.pack("<4sHHQQ", MAGIC, 1, 0, 100, 0))
            stream.write(b"\x00" * 10)
        with pytest.raises(TraceFormatError, match="truncated"):
            load_trace(path)

    def test_unknown_kind_code(self, tmp_path):
        path = tmp_path / "bad.sktr"
        with gzip.open(path, "wb") as stream:
            stream.write(struct.pack("<4sHHQQ", MAGIC, 1, 0, 1, 0))
            stream.write(struct.pack("<QHHBBBBQ", 0, 1, 0, 1, 250, 1, 0, 0))
        with pytest.raises(TraceFormatError, match="kind"):
            load_trace(path)


class TestSimulationEquivalence:
    def test_simulating_loaded_trace_matches(self, micro_program,
                                             micro_trace, tmp_path):
        """A round-tripped trace produces bit-identical simulation."""
        from repro.frontend.config import FrontEndConfig
        from repro.frontend.engine import simulate

        path = tmp_path / "trace.sktr"
        save_trace(micro_trace, path)
        loaded = load_trace(path)
        original = simulate(micro_program, micro_trace, FrontEndConfig(),
                            warmup=1_000)
        reloaded = simulate(micro_program, loaded, FrontEndConfig(),
                            warmup=1_000)
        assert original.cycles == reloaded.cycles
        assert original.total_btb_misses == reloaded.total_btb_misses
