"""Property-based tests: generated programs/traces are always coherent."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.isa.decoder import decode_at
from repro.workloads.codegen import ProgramGenerator
from repro.workloads.trace import TraceGenerator
from tests.conftest import make_profile


@st.composite
def tiny_profiles(draw):
    return make_profile(
        n_handlers=draw(st.integers(3, 12)),
        n_lib_funcs=draw(st.integers(2, 10)),
        handler_blocks=(draw(st.integers(2, 4)), draw(st.integers(5, 9))),
        lib_blocks=(2, draw(st.integers(2, 5))),
        block_instrs=(1, draw(st.integers(2, 6))),
        p_call_block=draw(st.floats(0.05, 0.5)),
        p_cond_block=draw(st.floats(0.1, 0.7)),
        p_jmp_block=draw(st.floats(0.05, 0.3)),
        p_loop_backedge=draw(st.floats(0.0, 0.4)),
        p_pattern_cond=draw(st.floats(0.0, 0.8)),
        function_alignment=draw(st.sampled_from([1, 16])),
        layout_policy=draw(st.sampled_from(["scatter", "shuffle"])),
    )


@given(profile=tiny_profiles(), seed=st.integers(0, 1000))
@settings(max_examples=30, deadline=None)
def test_generated_program_is_coherent(profile, seed):
    program = ProgramGenerator(profile, seed=seed).generate()
    # Layout covers the image exactly and all branches are patched.
    for block in program.iter_blocks():
        for ins in block.instructions:
            assert program.bytes_at(ins.pc, ins.length) == bytes(ins.encoding)
        terminator = block.terminator
        if terminator.rel_width and terminator.target_label is not None:
            decoded = decode_at(program.image,
                                terminator.pc - program.base_address,
                                pc=terminator.pc)
            assert decoded.target == program.block(
                terminator.target_label).start_pc


@given(profile=tiny_profiles(), seed=st.integers(0, 1000),
       trace_seed=st.integers(0, 1000))
@settings(max_examples=20, deadline=None)
def test_trace_oracle_always_consistent(profile, seed, trace_seed):
    """For any generated program and seed, every trace record's branch
    agrees with the byte image, and the stream is connected."""
    program = ProgramGenerator(profile, seed=seed).generate()
    records = TraceGenerator(program, seed=trace_seed).records(400)
    previous_next = program.entry_block.start_pc
    for record in records:
        assert record.block_start == previous_next
        decoded = decode_at(program.image,
                            record.branch_pc - program.base_address,
                            pc=record.branch_pc)
        assert decoded is not None
        assert decoded.kind is record.kind
        assert decoded.length == record.branch_len
        previous_next = record.next_pc
