"""BOLT-like reordering pass."""

from repro.isa.decoder import decode_at
from repro.workloads.bolt import bolt_optimize, profile_function_heat
from repro.workloads.trace import TraceGenerator


class TestHeatProfile:
    def test_covers_all_functions(self, micro_program):
        heat = profile_function_heat(micro_program, sample_records=5_000)
        assert set(heat) == {f.name for f in micro_program.functions}

    def test_main_is_hot(self, micro_program):
        heat = profile_function_heat(micro_program, sample_records=5_000)
        median = sorted(heat.values())[len(heat) // 2]
        assert heat["main"] > median


class TestBoltOptimize:
    def test_preserves_functions_and_labels(self, micro_program):
        bolted = bolt_optimize(micro_program, sample_records=5_000)
        assert {f.name for f in bolted.functions} == {
            f.name for f in micro_program.functions}
        assert set(bolted.block_by_label) == set(micro_program.block_by_label)

    def test_entry_function_first(self, micro_program):
        bolted = bolt_optimize(micro_program, sample_records=5_000)
        assert bolted.functions[0].name == "main"

    def test_hot_functions_moved_forward(self, micro_program):
        heat = profile_function_heat(micro_program, seed=0,
                                     sample_records=5_000)
        bolted = bolt_optimize(micro_program, seed=0, sample_records=5_000)
        positions = {f.name: i for i, f in enumerate(bolted.functions)}
        hot = sorted(heat, key=heat.get, reverse=True)[1:6]
        cold = sorted(heat, key=heat.get)[:20]
        average_hot = sum(positions[name] for name in hot) / len(hot)
        average_cold = sum(positions[name] for name in cold) / len(cold)
        assert average_hot < average_cold

    def test_branches_repatched(self, micro_program):
        """After re-layout, every direct branch still decodes to its
        target block's (new) address."""
        bolted = bolt_optimize(micro_program, sample_records=5_000)
        for block in bolted.iter_blocks():
            terminator = block.terminator
            if terminator.rel_width == 0 or terminator.target_label is None:
                continue
            decoded = decode_at(bolted.image,
                                terminator.pc - bolted.base_address,
                                pc=terminator.pc)
            assert decoded.target == bolted.block(
                terminator.target_label).start_pc

    def test_bolted_traces_still_consistent(self, micro_program):
        bolted = bolt_optimize(micro_program, sample_records=5_000)
        records = TraceGenerator(bolted, seed=1).records(3_000)
        for record in records[:500]:
            decoded = decode_at(bolted.image,
                                record.branch_pc - bolted.base_address,
                                pc=record.branch_pc)
            assert decoded is not None
            assert decoded.kind is record.kind

    def test_hot_code_span_shrinks(self, micro_program):
        """The bytes spanned by the hottest functions shrink after
        bolting -- the whole point of the pass."""
        heat = profile_function_heat(micro_program, seed=0,
                                     sample_records=5_000)
        hottest = sorted(heat, key=heat.get, reverse=True)[:10]

        def span(program):
            starts = [f.blocks[0].start_pc for f in program.functions
                      if f.name in hottest]
            ends = [f.blocks[-1].end_pc for f in program.functions
                    if f.name in hottest]
            return max(ends) - min(starts)

        bolted = bolt_optimize(micro_program, seed=0, sample_records=5_000)
        assert span(bolted) < span(micro_program)

    def test_name_tagged(self, micro_program):
        bolted = bolt_optimize(micro_program, sample_records=5_000)
        assert bolted.name.endswith("+bolt")
