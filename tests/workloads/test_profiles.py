"""Profile registry invariants and calibration-class consistency."""

import pytest

from repro.workloads.profiles import (
    PROFILES,
    WORKLOAD_NAMES,
    WorkloadProfile,
    get_profile,
)


class TestRegistry:
    def test_sixteen_table2_workloads(self):
        assert len(WORKLOAD_NAMES) == 16

    def test_prebolt_extra_profile(self):
        assert "verilator-prebolt" in PROFILES
        assert "verilator-prebolt" not in WORKLOAD_NAMES

    def test_all_names_resolve(self):
        for name in WORKLOAD_NAMES:
            assert get_profile(name).name == name

    def test_suites_match_table2(self):
        suites = {get_profile(name).suite for name in WORKLOAD_NAMES}
        assert suites == {"DaCapo", "Renaissance", "OLTPBench", "Chipyard",
                          "BrowserBench"}

    def test_oltp_has_eight(self):
        oltp = [name for name in WORKLOAD_NAMES
                if get_profile(name).suite == "OLTPBench"]
        assert len(oltp) == 8  # tpcc, ycsb, twitter, voter, smallbank,
        #                        tatp, sibench, noop


class TestCalibrationClasses:
    def test_high_gain_workloads_are_call_heavy(self):
        for name in WORKLOAD_NAMES:
            profile = get_profile(name)
            if profile.expected.gain_class == "high":
                assert profile.p_call_block > 0.3, name

    def test_kafka_is_conditional_heavy(self):
        kafka = get_profile("kafka")
        assert kafka.p_cond_block > 0.6
        assert kafka.p_call_block < 0.1
        assert not kafka.cold_path_eligible_bias

    def test_low_miss_workloads_are_small_and_skewed(self):
        for name in ("finagle-chirper", "speedometer2.0"):
            profile = get_profile(name)
            assert profile.n_handlers < 500, name
            assert profile.handler_zipf_s > 1.1, name

    def test_expected_gains_ordered_by_class(self):
        highs = [get_profile(n).expected.ipc_gain_pct
                 for n in WORKLOAD_NAMES
                 if get_profile(n).expected.gain_class == "high"]
        lows = [get_profile(n).expected.ipc_gain_pct
                for n in WORKLOAD_NAMES
                if get_profile(n).expected.gain_class == "low"]
        assert min(highs) > max(lows)

    def test_prebolt_texture_differs_from_bolted(self):
        prebolt = get_profile("verilator-prebolt")
        bolted = get_profile("verilator-bolted")
        assert prebolt.p_jmp_block > bolted.p_jmp_block
        assert prebolt.layout_policy == "shuffle"
        assert bolted.layout_policy == "scatter"


class TestProfileDataclass:
    def test_frozen(self):
        with pytest.raises(AttributeError):
            get_profile("noop").n_handlers = 1

    def test_defaults_sane(self):
        profile = WorkloadProfile(name="x")
        assert profile.weights_sum() > 0
        assert profile.block_instrs[0] >= 1
        assert profile.pattern_len_range[0] >= 1
        assert 0 <= profile.p_pattern_cond <= 1

    def test_expected_metadata_present_for_all(self):
        for name in WORKLOAD_NAMES:
            expected = get_profile(name).expected
            assert expected.l1i_mpki_real > 0
            assert expected.ipc_gain_pct > 0
            assert expected.gain_class in {"low", "mid", "high"}
