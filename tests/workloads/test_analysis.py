"""Workload characterisation module."""

from repro.isa.branch import BranchKind
from repro.workloads.analysis import (
    branch_reuse_profile,
    characterise,
    shadow_geometry,
)
from repro.workloads.trace import BlockRecord


def record_for(pc: int) -> BlockRecord:
    return BlockRecord(block_start=pc, n_instr=2, branch_pc=pc + 4,
                       branch_len=5, kind=BranchKind.DIRECT_UNCOND,
                       taken=True, target=pc, fallthrough=pc + 9,
                       next_pc=pc)


class TestReuseProfile:
    def test_no_recurrence(self):
        records = [record_for(i * 64) for i in range(10)]
        profile = branch_reuse_profile(records)
        assert profile.samples == 0

    def test_tight_loop_distance_zero(self):
        records = [record_for(0)] * 10
        profile = branch_reuse_profile(records)
        assert profile.samples == 9
        assert profile.median == 0

    def test_round_robin_distance(self):
        """A..E repeated: each recurrence sees 4 distinct others."""
        base = [record_for(i * 64) for i in range(5)]
        profile = branch_reuse_profile(base * 4)
        assert profile.median == 4
        assert profile.p90 == 4

    def test_cold_fraction(self):
        base = [record_for(i * 64) for i in range(50)]
        profile = branch_reuse_profile(base * 3, btb_entries=10)
        assert profile.over_8k_fraction == 1.0  # every reuse spans 49 > 10

    def test_mixed_hot_cold(self):
        hot = record_for(0)
        colds = [record_for((i + 1) * 64) for i in range(30)]
        stream = []
        for cold in colds * 2:
            stream.extend([hot, cold])
        profile = branch_reuse_profile(stream, btb_entries=10)
        assert 0.0 < profile.over_8k_fraction < 1.0


class TestShadowGeometry:
    def test_counts_on_generated_program(self, micro_program):
        geometry = shadow_geometry(micro_program)
        assert geometry.total_branches == sum(
            1 for _ in micro_program.iter_blocks())
        assert geometry.tail_shadow_candidates > 0
        assert geometry.head_shadow_candidates > 0
        assert 0 < geometry.eligible_fraction < 1

    def test_fractions_bounded(self, micro_program):
        geometry = shadow_geometry(micro_program)
        assert 0.0 <= geometry.tail_fraction <= 1.0


class TestCharacterise:
    def test_report(self, micro_program, micro_trace):
        report = characterise(micro_program, micro_trace[:4_000])
        assert report.name == "micro"
        assert report.footprint_bytes == len(micro_program.image)
        assert sum(report.dynamic_mix.values()) == 4_000
        text = report.render()
        assert "dynamic mix" in text
        assert "branch reuse" in text

    def test_real_workload_has_cold_recurrences(self, micro_program,
                                                micro_trace):
        """The micro workload is small; verify the machinery sees *some*
        recurrence structure (full-size workloads are checked in the
        calibration benchmarks)."""
        report = characterise(micro_program, micro_trace)
        assert report.reuse.samples > 0
