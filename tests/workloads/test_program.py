"""Program data-model invariants on the generated micro program."""

import pytest

from repro.isa.branch import BranchKind
from repro.workloads.program import LINE_SIZE, line_of


class TestLineOf:
    def test_alignment(self):
        assert line_of(0) == 0
        assert line_of(63) == 0
        assert line_of(64) == 64
        assert line_of(0x400027) == 0x400000

    def test_line_size_matches_table1(self):
        assert LINE_SIZE == 64


class TestProgramStructure:
    def test_every_block_ends_in_branch(self, micro_program):
        for block in micro_program.iter_blocks():
            assert block.terminator.kind.is_branch

    def test_labels_unique_and_indexed(self, micro_program):
        labels = [b.label for b in micro_program.iter_blocks()]
        assert len(labels) == len(set(labels))
        for label in labels:
            assert micro_program.block(label).label == label

    def test_entry_block_is_main(self, micro_program):
        function = micro_program.function_of_label[micro_program.entry_label]
        assert function.name == "main"

    def test_image_matches_block_bytes(self, micro_program):
        for block in micro_program.iter_blocks():
            for ins in block.instructions:
                image_bytes = micro_program.bytes_at(ins.pc, ins.length)
                assert image_bytes == bytes(ins.encoding)

    def test_blocks_laid_out_consecutively_within_function(self, micro_program):
        for function in micro_program.functions:
            for first, second in zip(function.blocks, function.blocks[1:]):
                assert first.end_pc == second.start_pc

    def test_instruction_starts_ground_truth(self, micro_program):
        for block in micro_program.iter_blocks():
            for ins in block.instructions:
                assert micro_program.is_instruction_start(ins.pc)

    def test_mid_instruction_not_a_start(self, micro_program):
        # Instructions never overlap in a layout, so a multi-byte
        # instruction's interior bytes are not ground-truth starts.
        checked = 0
        for block in micro_program.iter_blocks():
            for ins in block.instructions:
                if ins.length > 1:
                    assert not micro_program.is_instruction_start(ins.pc + 1)
                    checked += 1
        assert checked > 0

    def test_fallthrough_is_physically_next(self, micro_program):
        for block in micro_program.iter_blocks():
            if block.fallthrough_label is None:
                continue
            fallthrough = micro_program.block(block.fallthrough_label)
            assert fallthrough.start_pc == block.end_pc

    def test_static_branch_counts(self, micro_program):
        counts = micro_program.static_branch_counts()
        assert counts[BranchKind.RETURN] >= len(micro_program.functions) - 1
        assert sum(counts.values()) == sum(
            1 for _ in micro_program.iter_blocks())

    def test_footprint_lines_positive(self, micro_program):
        lines = micro_program.footprint_lines()
        assert lines * 64 >= len(micro_program.image)

    def test_describe_mentions_name(self, micro_program):
        assert "micro" in micro_program.describe()

    def test_duplicate_labels_rejected(self, micro_program):
        from repro.workloads.program import Program
        functions = micro_program.functions
        with pytest.raises(ValueError):
            Program(functions=functions + [functions[-1]],
                    image=micro_program.image,
                    base_address=micro_program.base_address,
                    entry_label=micro_program.entry_label)


class TestBlockProperties:
    def test_size_is_sum_of_lengths(self, micro_program):
        block = next(micro_program.iter_blocks())
        assert block.size == sum(i.length for i in block.instructions)

    def test_num_instructions(self, micro_program):
        block = next(micro_program.iter_blocks())
        assert block.num_instructions == len(block.instructions)

    def test_terminator_is_last(self, micro_program):
        block = next(micro_program.iter_blocks())
        assert block.terminator is block.instructions[-1]
