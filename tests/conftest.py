"""Shared fixtures: a small program + trace that many test modules reuse.

Session-scoped because program generation is the expensive part; tests
never mutate these objects (simulators copy what they need).
"""

from __future__ import annotations

import dataclasses
import random

import pytest

from repro.isa.encoder import Encoder
from repro.workloads.codegen import ProgramGenerator
from repro.workloads.profiles import WorkloadProfile
from repro.workloads.trace import TraceGenerator

#: A deliberately tiny profile so unit/integration tests run in seconds.
MICRO_PROFILE = WorkloadProfile(
    name="micro",
    n_handlers=40,
    n_lib_funcs=30,
    handler_blocks=(4, 8),
    lib_blocks=(2, 4),
    block_instrs=(1, 5),
)


@pytest.fixture(scope="session")
def micro_profile() -> WorkloadProfile:
    return MICRO_PROFILE


@pytest.fixture(scope="session")
def micro_program():
    return ProgramGenerator(MICRO_PROFILE, seed=7).generate()


@pytest.fixture(scope="session")
def micro_trace(micro_program):
    return TraceGenerator(micro_program, seed=7).records(8_000)


@pytest.fixture(autouse=True)
def _no_run_ledger(monkeypatch):
    """Disable the run ledger by default.

    CLI entry points open a run ledger under ``.repro_cache/runs/``;
    left enabled, every test that drives ``main()`` would litter the
    repository working copy with run directories.  Ledger tests opt
    back in with ``monkeypatch.setenv("REPRO_LEDGER", "1")`` (their own
    setenv overrides this one) and point ``REPRO_CACHE_DIR`` at a
    tmp path, or call ``start_run(root=tmp_path)`` directly.
    """
    monkeypatch.setenv("REPRO_LEDGER", "0")


@pytest.fixture()
def rng() -> random.Random:
    return random.Random(1234)


@pytest.fixture()
def encoder() -> Encoder:
    return Encoder()


def make_profile(**overrides) -> WorkloadProfile:
    """Micro profile with overrides (helper for workload tests)."""
    return dataclasses.replace(MICRO_PROFILE, **overrides)
