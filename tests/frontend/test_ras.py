"""Return address stack tests."""

import pytest

from repro.frontend.ras import ReturnAddressStack


class TestBasics:
    def test_push_pop(self):
        ras = ReturnAddressStack(depth=4)
        ras.push(0x100)
        ras.push(0x200)
        assert ras.pop() == 0x200
        assert ras.pop() == 0x100

    def test_underflow_returns_none(self):
        ras = ReturnAddressStack(depth=4)
        assert ras.pop() is None
        assert ras.underflows == 1

    def test_peek(self):
        ras = ReturnAddressStack(depth=4)
        assert ras.peek() is None
        ras.push(0x42)
        assert ras.peek() == 0x42
        assert len(ras) == 1  # peek does not pop

    def test_len(self):
        ras = ReturnAddressStack(depth=4)
        for value in range(3):
            ras.push(value)
        assert len(ras) == 3

    def test_invalid_depth(self):
        with pytest.raises(ValueError):
            ReturnAddressStack(depth=0)

    def test_clear(self):
        ras = ReturnAddressStack(depth=4)
        ras.push(1)
        ras.clear()
        assert len(ras) == 0
        assert ras.pop() is None


class TestCounterConservation:
    """Audited circular-stack semantics (see the module docstring):
    occupancy == pushes - overflow_overwrites - (pops - underflows)."""

    def identity_holds(self, ras):
        return len(ras) == (ras.pushes - ras.overflow_overwrites
                            - (ras.pops - ras.underflows))

    def test_pop_on_empty_leaves_state_untouched(self):
        ras = ReturnAddressStack(depth=4)
        ras.push(0x10)
        ras.pop()
        assert ras.pop() is None
        assert ras.pop() is None
        assert ras.underflows == 2
        ras.push(0x20)  # stack still behaves normally after underflow
        assert ras.pop() == 0x20
        assert self.identity_holds(ras)

    def test_identity_under_mixed_sequence(self):
        import random
        rng = random.Random(5)
        ras = ReturnAddressStack(depth=4)
        for _ in range(500):
            if rng.random() < 0.55:
                ras.push(rng.randrange(1 << 20))
            else:
                ras.pop()
            assert self.identity_holds(ras)
            assert len(ras) <= 4

    def test_register_metrics_exposes_live_gauges(self):
        from repro.obs import MetricsRegistry
        registry = MetricsRegistry()
        ras = ReturnAddressStack(depth=4)
        ras.register_metrics(registry.scope("ras"))
        ras.push(1)
        ras.pop()
        ras.pop()
        snapshot = registry.snapshot()
        assert snapshot["ras.pushes"] == 1
        assert snapshot["ras.pops"] == 2
        assert snapshot["ras.underflows"] == 1
        assert snapshot["ras.occupancy"] == 0
        assert snapshot["ras.depth"] == 4


class TestOverflow:
    def test_overflow_overwrites_oldest(self):
        """Pushing past capacity corrupts the bottom, as in hardware."""
        ras = ReturnAddressStack(depth=3)
        for value in (1, 2, 3, 4):
            ras.push(value)
        assert ras.overflow_overwrites == 1
        assert ras.pop() == 4
        assert ras.pop() == 3
        assert ras.pop() == 2
        # value 1 was overwritten by 4: deep return now mispredicts.
        assert ras.pop() is None

    def test_deep_call_chain_corrupts_exactly_excess(self):
        ras = ReturnAddressStack(depth=8)
        for value in range(12):
            ras.push(value)
        popped = [ras.pop() for _ in range(8)]
        assert popped == [11, 10, 9, 8, 7, 6, 5, 4]
        assert ras.pop() is None

    def test_occupancy_never_exceeds_depth(self):
        ras = ReturnAddressStack(depth=5)
        for value in range(100):
            ras.push(value)
        assert len(ras) == 5
