"""Return address stack tests."""

import pytest

from repro.frontend.ras import ReturnAddressStack


class TestBasics:
    def test_push_pop(self):
        ras = ReturnAddressStack(depth=4)
        ras.push(0x100)
        ras.push(0x200)
        assert ras.pop() == 0x200
        assert ras.pop() == 0x100

    def test_underflow_returns_none(self):
        ras = ReturnAddressStack(depth=4)
        assert ras.pop() is None
        assert ras.underflows == 1

    def test_peek(self):
        ras = ReturnAddressStack(depth=4)
        assert ras.peek() is None
        ras.push(0x42)
        assert ras.peek() == 0x42
        assert len(ras) == 1  # peek does not pop

    def test_len(self):
        ras = ReturnAddressStack(depth=4)
        for value in range(3):
            ras.push(value)
        assert len(ras) == 3

    def test_invalid_depth(self):
        with pytest.raises(ValueError):
            ReturnAddressStack(depth=0)

    def test_clear(self):
        ras = ReturnAddressStack(depth=4)
        ras.push(1)
        ras.clear()
        assert len(ras) == 0
        assert ras.pop() is None


class TestOverflow:
    def test_overflow_overwrites_oldest(self):
        """Pushing past capacity corrupts the bottom, as in hardware."""
        ras = ReturnAddressStack(depth=3)
        for value in (1, 2, 3, 4):
            ras.push(value)
        assert ras.overflow_overwrites == 1
        assert ras.pop() == 4
        assert ras.pop() == 3
        assert ras.pop() == 2
        # value 1 was overwritten by 4: deep return now mispredicts.
        assert ras.pop() is None

    def test_deep_call_chain_corrupts_exactly_excess(self):
        ras = ReturnAddressStack(depth=8)
        for value in range(12):
            ras.push(value)
        popped = [ras.pop() for _ in range(8)]
        assert popped == [11, 10, 9, 8, 7, 6, 5, 4]
        assert ras.pop() is None

    def test_occupancy_never_exceeds_depth(self):
        ras = ReturnAddressStack(depth=5)
        for value in range(100):
            ras.push(value)
        assert len(ras) == 5
