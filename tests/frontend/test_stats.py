"""SimStats derived-metric arithmetic."""

import pytest

from repro.frontend.stats import SimStats
from repro.isa.branch import BranchKind


class TestDerived:
    def test_ipc(self):
        stats = SimStats(instructions=3000, cycles=1500.0)
        assert stats.ipc == 2.0

    def test_ipc_zero_cycles(self):
        assert SimStats().ipc == 0.0

    def test_mpki(self):
        stats = SimStats(instructions=10_000)
        assert stats.mpki(25) == 2.5

    def test_mpki_no_instructions(self):
        assert SimStats().mpki(100) == 0.0

    def test_btb_miss_aggregation(self):
        stats = SimStats(instructions=1000)
        stats.btb_misses[BranchKind.CALL] = 3
        stats.btb_misses[BranchKind.RETURN] = 2
        assert stats.total_btb_misses == 5
        assert stats.btb_miss_mpki == 5.0

    def test_l1i_hit_fraction(self):
        stats = SimStats(instructions=1000, btb_miss_l1i_hit=3)
        stats.btb_misses[BranchKind.CALL] = 4
        assert stats.btb_miss_l1i_hit_fraction == 0.75

    def test_l1i_hit_fraction_no_misses(self):
        assert SimStats().btb_miss_l1i_hit_fraction == 0.0

    def test_cond_accuracy(self):
        stats = SimStats(cond_predictions=100, cond_mispredicts=5)
        assert stats.cond_accuracy == 0.95

    def test_cond_accuracy_empty(self):
        assert SimStats().cond_accuracy == 1.0

    def test_bogus_rate(self):
        stats = SimStats(sbb_insertions_u=90, sbb_insertions_r=10,
                         sbb_bogus_insertions=1)
        assert stats.bogus_insertion_rate == pytest.approx(0.01)

    def test_bogus_rate_empty(self):
        assert SimStats().bogus_insertion_rate == 0.0

    def test_breakdown_sums_to_one(self):
        stats = SimStats()
        stats.btb_misses[BranchKind.CALL] = 6
        stats.btb_misses[BranchKind.DIRECT_COND] = 4
        breakdown = stats.btb_miss_breakdown()
        assert sum(breakdown.values()) == pytest.approx(1.0)
        assert breakdown["Call"] == 0.6

    def test_breakdown_empty(self):
        breakdown = SimStats().btb_miss_breakdown()
        assert all(value == 0.0 for value in breakdown.values())

    def test_summary_keys(self):
        summary = SimStats(instructions=10, cycles=5).summary()
        for key in ("ipc", "l1i_mpki", "btb_miss_mpki", "decoder_idle_cycles"):
            assert key in summary
