"""Comparator cells on the batched lane kernel, plus fallback telemetry.

PR-6 made plain cells ~4x faster via the batched kernel but refused any
cell with a comparator attached, so comparator sweeps silently ran on
the slow object path.  These tests pin the new contract:

* every registered comparator design runs on the kernel bit-identically
  to the object-path oracle (SimStats *and* metric snapshot), alone and
  stacked with Skia;
* the harness routes comparator grids onto the kernel in both serial
  and parallel modes without changing a single counter;
* cells that *do* degrade to the object path (trace/timeline/
  attribution) are counted, logged once per reason, and flagged in
  their own metric snapshot -- never silently.
"""

import dataclasses
import logging

import pytest

from repro.frontend import batch
from repro.frontend.batch import (
    BatchedFrontEndSimulator,
    batch_supported,
    batch_unsupported_reason,
    fallback_counts,
    reset_fallbacks,
    run_compiled_batched,
)
from repro.frontend.comparators import COMPARATOR_NAMES
from repro.frontend.config import FrontEndConfig, SkiaConfig
from repro.frontend.engine import FrontEndSimulator
from repro.harness.parallel import Cell, ParallelRunner
from repro.harness.runner import ExperimentRunner
from repro.harness.scale import Scale
from repro.workloads import build_program, build_trace, compile_trace

RECORDS = 1_000
WARMUP = 150

#: A small BTB creates the capacity re-misses the comparators cover, so
#: their hooks (lookup/record/on_btb_miss) actually fire in these runs.
_SMALL_BTB = FrontEndConfig().with_btb_entries(256)

#: Every design alone, one stacked with Skia, and a deeper FDIP point.
COMPARATOR_CONFIGS = {
    **{name: _SMALL_BTB.with_comparator(name) for name in COMPARATOR_NAMES},
    "fdip-depth4": _SMALL_BTB.with_fdip_depth(4),
    "airbtb+skia": _SMALL_BTB.with_comparator("airbtb").with_skia(
        SkiaConfig()),
}


def _object_run(program, records, config, seed=0):
    simulator = FrontEndSimulator(program, config, seed=seed)
    stats = simulator.run(records, warmup=WARMUP)
    return dataclasses.asdict(stats), simulator.metrics_snapshot()


def _batched_run(program, compiled, config, seed=0):
    simulator = FrontEndSimulator(program, config, seed=seed)
    stats = run_compiled_batched(simulator, compiled, warmup=WARMUP)
    return dataclasses.asdict(stats), simulator.metrics_snapshot()


@pytest.mark.parametrize("name", sorted(COMPARATOR_CONFIGS))
def test_comparator_cell_bit_identity(name):
    """Object path == batched kernel for every comparator design."""
    config = COMPARATOR_CONFIGS[name]
    for workload in ("voter", "kafka"):
        program = build_program(workload, seed=0)
        records = build_trace(workload, RECORDS, seed=0)
        compiled = compile_trace(records)
        obj_stats, obj_metrics = _object_run(program, records, config)
        bat_stats, bat_metrics = _batched_run(program, compiled, config)
        assert bat_stats == obj_stats, (workload, name)
        assert bat_metrics == obj_metrics, (workload, name)


def test_comparator_hooks_fire_on_kernel():
    """The equivalence above is not vacuous: the kernel actually drives
    the comparator (probes on BTB misses, predecodes, demand hits)."""
    program = build_program("voter", seed=0)
    compiled = compile_trace(build_trace("voter", RECORDS, seed=0))
    simulator = FrontEndSimulator(program, _SMALL_BTB.with_fdip_depth(2),
                                  seed=0)
    run_compiled_batched(simulator, compiled, warmup=WARMUP)
    metrics = simulator.metrics_snapshot()
    assert metrics["comparator.lookups"] > 0
    assert metrics["comparator.predecodes"] > 0
    assert metrics["comparator.hits"] > 0


def test_comparator_lane_sharing():
    """All designs as lanes over one shared compiled table."""
    program = build_program("voter", seed=0)
    records = build_trace("voter", RECORDS, seed=0)
    compiled = compile_trace(records)
    shared = BatchedFrontEndSimulator(chunk_records=257)
    simulators = [FrontEndSimulator(program, config, seed=0)
                  for config in COMPARATOR_CONFIGS.values()]
    for simulator in simulators:
        shared.add_lane(simulator, compiled, warmup=WARMUP)
    results = shared.run()
    for simulator, stats, (name, config) in zip(simulators, results,
                                                COMPARATOR_CONFIGS.items()):
        expect_stats, expect_metrics = _object_run(program, records, config)
        assert dataclasses.asdict(stats) == expect_stats, name
        assert simulator.metrics_snapshot() == expect_metrics, name


def test_comparator_cells_are_batch_supported():
    """The PR-6 refusal is gone: a comparator alone never forces the
    object path (only trace/timeline/attribution instrumentation does)."""
    program = build_program("voter", seed=0)
    for name, config in COMPARATOR_CONFIGS.items():
        simulator = FrontEndSimulator(program, config, seed=0)
        assert batch_unsupported_reason(simulator) is None, name
        assert batch_supported(simulator), name


class TestHarnessPaths:
    """Comparator grids stay bit-identical through the harness routing."""

    SCALE = Scale("comparatorbatch", records=RECORDS, warmup=WARMUP)
    CELLS = [Cell(workload, config, seed, False)
             for workload in ("voter", "kafka")
             for config in COMPARATOR_CONFIGS.values()
             for seed in (0, 1)]

    def _reference(self, monkeypatch):
        monkeypatch.setenv("REPRO_BATCH", "0")
        try:
            runner = ParallelRunner(scale=self.SCALE, jobs=1, store=None)
            return runner.run_batch(self.CELLS)
        finally:
            monkeypatch.delenv("REPRO_BATCH")

    def test_serial_batched_matches_object_path(self, monkeypatch):
        reference = self._reference(monkeypatch)
        runner = ExperimentRunner(scale=self.SCALE, store=None)
        batched = runner.run_cells(self.CELLS)
        for expect, got, cell in zip(reference, batched, self.CELLS):
            assert dataclasses.asdict(got) == dataclasses.asdict(expect), \
                cell

    def test_worker_batched_matches_object_path(self, monkeypatch):
        reference = self._reference(monkeypatch)
        runner = ParallelRunner(scale=self.SCALE, jobs=2, store=None)
        batched = runner.run_batch(self.CELLS)
        for expect, got, cell in zip(reference, batched, self.CELLS):
            assert dataclasses.asdict(got) == dataclasses.asdict(expect), \
                cell


class TestFallbackObservability:
    """Satellite: the object-path fallback is counted, logged once per
    reason, and visible in the degraded cell's metric snapshot."""

    SCALE = Scale("fallbackobs", records=200, warmup=50)

    @pytest.fixture(autouse=True)
    def _clean_counters(self, monkeypatch):
        monkeypatch.delenv("REPRO_BATCH", raising=False)
        reset_fallbacks()
        yield
        reset_fallbacks()

    def test_supported_cells_never_trip_the_fallback(self):
        runner = ExperimentRunner(scale=self.SCALE, store=None)
        cells = [Cell("voter", config, 0, False)
                 for config in (FrontEndConfig(),
                                _SMALL_BTB.with_comparator("microbtb"),
                                FrontEndConfig(skia=SkiaConfig()))]
        runner.run_cells(cells)
        assert fallback_counts() == {}

    def test_attribution_cell_counts_and_gauges(self):
        runner = ExperimentRunner(scale=self.SCALE, store=None,
                                  record_attribution=True)
        config = FrontEndConfig(skia=SkiaConfig())
        runner.run("voter", config)
        counts = fallback_counts()
        assert counts.get("attribution sink attached") == 1
        metrics = runner.metrics_for("voter", config)
        assert metrics["batch.object_path_fallback"] == 1.0

    def test_supported_cell_snapshot_has_no_fallback_gauge(self):
        runner = ExperimentRunner(scale=self.SCALE, store=None)
        runner.run("voter", FrontEndConfig())
        metrics = runner.metrics_for("voter", FrontEndConfig())
        assert "batch.object_path_fallback" not in metrics

    def test_reason_logged_once(self, caplog):
        program = build_program("voter", seed=0)
        with caplog.at_level(logging.INFO, logger="repro.batch"):
            for _ in range(3):
                simulator = FrontEndSimulator(program, FrontEndConfig(),
                                              seed=0)
                simulator.attach_attribution()
                batch.note_object_fallback(simulator)
        messages = [record for record in caplog.records
                    if "object path" in record.getMessage()]
        assert len(messages) == 1
        assert fallback_counts() == {"attribution sink attached": 3}
