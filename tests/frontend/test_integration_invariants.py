"""Cross-cutting invariants on full simulations (micro workload)."""

import pytest

from repro.frontend.config import FrontEndConfig, SkiaConfig
from repro.frontend.engine import simulate
from repro.isa.branch import BranchKind


@pytest.fixture(scope="module")
def small_btb_skia(micro_program, micro_trace):
    """A pressured configuration: 256-entry BTB + Skia."""
    config = FrontEndConfig(skia=SkiaConfig()).with_btb_entries(256)
    return simulate(micro_program, micro_trace, config, warmup=2_000)


class TestAccountingInvariants:
    def test_sbb_hits_bounded_by_eligible_misses(self, small_btb_skia):
        stats = small_btb_skia
        eligible_misses = sum(
            count for kind, count in stats.btb_misses.items()
            if kind.sbb_eligible)
        # Hits can also land on non-eligible branches via aliasing, but
        # never exceed total misses.
        assert stats.total_sbb_hits <= stats.total_btb_misses
        assert eligible_misses <= stats.total_btb_misses

    def test_retired_marks_bounded_by_hits(self, small_btb_skia):
        assert small_btb_skia.sbb_retired_marks <= (
            small_btb_skia.total_sbb_hits)

    def test_wrong_targets_bounded_by_hits(self, small_btb_skia):
        assert small_btb_skia.sbb_wrong_target <= (
            small_btb_skia.total_sbb_hits)

    def test_bogus_bounded_by_insertions(self, small_btb_skia):
        assert small_btb_skia.sbb_bogus_insertions <= (
            small_btb_skia.total_sbb_insertions)

    def test_pollution_happens_under_pressure(self, small_btb_skia):
        assert small_btb_skia.wrong_path_fills > 0

    def test_resteer_kinds_partition(self, small_btb_skia):
        stats = small_btb_skia
        total_resteers = stats.decode_resteers + stats.exec_resteers
        assert total_resteers <= sum(stats.branches.values())

    def test_mispredict_counters_consistent(self, small_btb_skia):
        stats = small_btb_skia
        assert stats.cond_mispredicts <= stats.cond_predictions
        assert stats.indirect_mispredicts <= stats.indirect_predictions
        assert stats.ras_mispredicts <= stats.ras_predictions

    def test_branch_kind_totals(self, small_btb_skia, micro_trace):
        stats = small_btb_skia
        for kind in BranchKind:
            if not kind.is_branch:
                continue
            expected = sum(1 for record in micro_trace[2_000:]
                           if record.kind is kind)
            assert stats.branches[kind] == expected


class TestComposition:
    def test_skia_plus_comparator_coexist(self, micro_program, micro_trace):
        """Skia and a comparator can be enabled together; the comparator
        is probed before the SBB (both behind the BTB)."""
        config = FrontEndConfig(
            skia=SkiaConfig(), comparator="airbtb").with_btb_entries(256)
        stats = simulate(micro_program, micro_trace, config, warmup=2_000)
        assert stats.comparator_hits > 0
        assert stats.total_sbb_hits > 0

    def test_skia_on_infinite_btb_is_noop_ish(self, micro_program,
                                              micro_trace):
        """With an infinite BTB only compulsory misses remain; Skia's
        only possible wins are first-sight branches."""
        infinite = FrontEndConfig(skia=SkiaConfig()).with_btb_entries(
            1 << 20, infinite=True)
        stats = simulate(micro_program, micro_trace, infinite, warmup=2_000)
        assert stats.total_sbb_hits <= stats.total_btb_misses

    def test_disable_everything_still_runs(self, micro_program,
                                           micro_trace):
        config = FrontEndConfig(use_loop_predictor=False,
                                pollution_max_lines=0)
        stats = simulate(micro_program, micro_trace, config, warmup=2_000)
        assert stats.wrong_path_fills == 0
        assert stats.ipc > 0

    def test_head_tail_hits_sum_close_to_both(self, micro_program,
                                              micro_trace):
        """Head-only and tail-only coverage roughly composes (they
        overlap only where both regions contain the same branch)."""
        small = FrontEndConfig().with_btb_entries(256)
        head = simulate(micro_program, micro_trace,
                        small.with_skia(SkiaConfig(decode_tails=False)),
                        warmup=2_000)
        tail = simulate(micro_program, micro_trace,
                        small.with_skia(SkiaConfig(decode_heads=False)),
                        warmup=2_000)
        both = simulate(micro_program, micro_trace,
                        small.with_skia(SkiaConfig()), warmup=2_000)
        assert both.total_sbb_hits >= max(head.total_sbb_hits,
                                          tail.total_sbb_hits)
