"""Three-way bit-identity of the interval series across engines.

Window boundaries are cut on the record index, which the object loop,
the compiled loop and the batched lane kernel all step identically --
so the serialized :class:`IntervalSeries` (canonical JSON text, hence
the fingerprint) must be byte-equal across all three, over the whole
Figure-14 grid and through the edge cases that stress the boundary
bookkeeping (partial final window, warmup crossing a boundary,
chunk-boundary splits in the lane kernel).
"""

import dataclasses

import pytest

from repro.frontend.batch import BatchedFrontEndSimulator, run_compiled_batched
from repro.frontend.config import FrontEndConfig, SkiaConfig
from repro.frontend.engine import FrontEndSimulator
from repro.workloads import (
    WORKLOAD_NAMES,
    build_program,
    build_trace,
    compile_trace,
)

RECORDS = 1_000
WARMUP = 150
WINDOW = 100

CONFIGS = {
    "base": FrontEndConfig(interval_size=WINDOW),
    "head": FrontEndConfig(skia=SkiaConfig(decode_tails=False),
                           interval_size=WINDOW),
    "tail": FrontEndConfig(skia=SkiaConfig(decode_heads=False),
                           interval_size=WINDOW),
    "skia": FrontEndConfig(skia=SkiaConfig(), interval_size=WINDOW),
}


def _series_text(program, records, compiled, config, engine,
                 warmup=WARMUP):
    simulator = FrontEndSimulator(program, config, seed=0)
    if engine == "object":
        simulator.run(records, warmup=warmup)
    elif engine == "compiled":
        simulator.run_compiled(compiled, warmup=warmup)
    else:
        run_compiled_batched(simulator, compiled, warmup=warmup)
    return simulator.intervals.series().to_json_text()


@pytest.mark.parametrize("workload", WORKLOAD_NAMES)
def test_fig14_grid_three_way_byte_identity(workload):
    """Object == compiled == batched, byte-for-byte, for every cell."""
    program = build_program(workload, seed=0)
    records = build_trace(workload, RECORDS, seed=0)
    compiled = compile_trace(records)
    for name, config in CONFIGS.items():
        texts = {engine: _series_text(program, records, compiled,
                                      config, engine)
                 for engine in ("object", "compiled", "batched")}
        assert texts["compiled"] == texts["object"], (workload, name)
        assert texts["batched"] == texts["object"], (workload, name)


class TestEdgeCases:
    CONFIG = FrontEndConfig(skia=SkiaConfig(), interval_size=WINDOW)

    def _three_way(self, records, config=None, warmup=WARMUP):
        program = build_program("voter", seed=0)
        compiled = compile_trace(records)
        config = config or self.CONFIG
        return [_series_text(program, records, compiled, config, engine,
                             warmup=warmup)
                for engine in ("object", "compiled", "batched")]

    def test_trace_shorter_than_one_window(self):
        records = build_trace("voter", 40, seed=0)
        obj, comp, bat = self._three_way(records, warmup=10)
        assert comp == obj and bat == obj
        assert '"ends":[40]' in obj

    def test_warmup_crossing_a_window_boundary(self):
        # WARMUP=150 lands mid-window at WINDOW=100: the counting flip
        # happens inside window 1 on every engine.
        records = build_trace("voter", RECORDS, seed=0)
        obj, comp, bat = self._three_way(records, warmup=150)
        assert comp == obj and bat == obj

    def test_partial_final_window(self):
        records = build_trace("voter", 250, seed=0)
        obj, comp, bat = self._three_way(records, warmup=0)
        assert comp == obj and bat == obj
        assert '"ends":[100,200,250]' in obj

    def test_window_straddles_kernel_chunks(self):
        """A window larger than the kernel chunk still cuts identically."""
        program = build_program("voter", seed=0)
        records = build_trace("voter", RECORDS, seed=0)
        compiled = compile_trace(records)
        config = dataclasses.replace(self.CONFIG, interval_size=300)
        expected = _series_text(program, records, compiled, config,
                                "object")
        simulator = FrontEndSimulator(program, config, seed=0)
        batch = BatchedFrontEndSimulator(chunk_records=128)
        batch.add_lane(simulator, compiled, warmup=WARMUP)
        batch.run()
        assert simulator.intervals.series().to_json_text() == expected

    def test_interval_size_zero_disables_on_every_engine(self):
        program = build_program("voter", seed=0)
        records = build_trace("voter", 200, seed=0)
        compiled = compile_trace(records)
        config = FrontEndConfig(skia=SkiaConfig())
        for engine, run in (
                ("object", lambda s: s.run(records, warmup=0)),
                ("compiled", lambda s: s.run_compiled(compiled, warmup=0)),
                ("batched", lambda s: run_compiled_batched(
                    s, compiled, warmup=0))):
            simulator = FrontEndSimulator(program, config, seed=0)
            run(simulator)
            assert simulator.intervals is None, engine

    def test_series_identical_across_seeds(self):
        """Seeded predictor noise stays engine-invariant too."""
        for seed in (1, 2):
            program = build_program("voter", seed=seed)
            records = build_trace("voter", RECORDS, seed=seed)
            compiled = compile_trace(records)
            texts = [_series_text(program, records, compiled, self.CONFIG,
                                  engine)
                     for engine in ("object", "compiled", "batched")]
            assert texts[1] == texts[0] and texts[2] == texts[0], seed
