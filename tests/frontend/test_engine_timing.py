"""Timeline-arithmetic tests with hand-crafted record streams.

These pin the engine's cycle accounting: steady-state throughput, miss
latency hiding by FDIP runahead, and resteer bubbles.
"""

import pytest

from repro.frontend.config import FrontEndConfig
from repro.frontend.engine import FrontEndSimulator
from repro.isa.branch import BranchKind
from repro.workloads.trace import BlockRecord


def loop_record(pc=0x400000, n_instr=4, branch_offset=16):
    """A single block that jumps back to itself (one 64B line)."""
    branch_pc = pc + branch_offset
    return BlockRecord(block_start=pc, n_instr=n_instr, branch_pc=branch_pc,
                       branch_len=5, kind=BranchKind.DIRECT_UNCOND,
                       taken=True, target=pc, fallthrough=branch_pc + 5,
                       next_pc=pc)


def chain_records(count, start=0x400000, stride=64, n_instr=4):
    """`count` blocks, one per line, each jumping to the next; the last
    jumps back to the first (a big loop)."""
    records = []
    for index in range(count):
        pc = start + index * stride
        target = start + ((index + 1) % count) * stride
        branch_pc = pc + 16
        records.append(BlockRecord(
            block_start=pc, n_instr=n_instr, branch_pc=branch_pc,
            branch_len=5, kind=BranchKind.DIRECT_UNCOND, taken=True,
            target=target, fallthrough=branch_pc + 5, next_pc=target))
    return records


@pytest.fixture()
def simulator(micro_program):
    # The program is only consulted by Skia (disabled here); the records
    # are hand-crafted.
    return FrontEndSimulator(micro_program, FrontEndConfig())


class TestSteadyState:
    def test_hot_loop_throughput_is_one_block_per_cycle(self, simulator):
        """Everything hits: the front-end sustains 1 block/cycle, so
        IPC equals instructions per block."""
        records = [loop_record()] * 3_000
        stats = simulator.run(records, warmup=1_000)
        cycles_per_block = stats.cycles / stats.blocks
        assert cycles_per_block == pytest.approx(1.0, abs=0.05)
        assert stats.ipc == pytest.approx(4.0, rel=0.05)

    def test_retire_bound_when_blocks_are_huge(self, micro_program):
        """A 40-instruction block retires in 40/width cycles, making the
        back-end the bottleneck."""
        config = FrontEndConfig(backend_effective_width=4.0)
        simulator = FrontEndSimulator(micro_program, config)
        records = [loop_record(n_instr=40)] * 2_000
        stats = simulator.run(records, warmup=500)
        assert stats.ipc == pytest.approx(4.0, rel=0.05)

    def test_decoder_never_idle_in_steady_loop(self, simulator):
        records = [loop_record()] * 3_000
        stats = simulator.run(records, warmup=1_000)
        assert stats.decoder_idle_cycles < stats.cycles * 0.02


class TestLatencyHiding:
    def test_big_loop_fits_l1_after_warmup(self, simulator):
        """A 64-line loop fits the 32KB L1-I: after one traversal there
        are no more instruction misses."""
        records = chain_records(64) * 40
        stats = simulator.run(records, warmup=640)
        assert stats.l1i_misses == 0

    def test_l2_resident_loop_mostly_hidden_by_runahead(self, micro_program):
        """A loop bigger than L1 but inside L2 misses constantly, yet
        FDIP runahead (24-entry FTQ, 1 block/cycle IAG) hides most of
        the 14-cycle L2 latency."""
        config = FrontEndConfig()
        simulator = FrontEndSimulator(micro_program, config)
        n_lines = (config.l1i_size // 64) * 3  # 3x the L1-I capacity
        records = chain_records(n_lines) * 6
        stats = simulator.run(records, warmup=n_lines)
        assert stats.l1i_misses > 0
        # Without any hiding each miss would add ~14 cycles to its
        # block; require at least half hidden.
        cycles_per_block = stats.cycles / stats.blocks
        assert cycles_per_block < 1.0 + config.l2_latency * 0.5

    def test_fetch_stalls_recorded_on_cold_start(self, simulator):
        records = chain_records(200)
        stats = simulator.run(records, warmup=0)
        assert stats.fetch_stall_cycles > 0


class TestResteerCosts:
    def test_compulsory_miss_costs_a_bubble(self, simulator):
        """First-ever taken jump: a decode resteer whose bubble shows up
        in decoder idle cycles."""
        records = [loop_record()] * 100
        stats = simulator.run(records, warmup=0)
        assert stats.decode_resteers == 1  # only the first encounter
        assert stats.decoder_idle_cycles > 0

    def test_decode_resteer_bubble_size(self, micro_program):
        """Isolate one resteer and check the bubble is repair + refill
        deep (roughly iag->fetch + fetch + fetch->decode + repair)."""
        config = FrontEndConfig()
        simulator = FrontEndSimulator(micro_program, config)
        records = [loop_record()] * 400
        baseline_like = FrontEndSimulator(micro_program, config)
        warm = baseline_like.run([loop_record()] * 400, warmup=399)
        cold = simulator.run([loop_record()] * 400, warmup=0)
        # One resteer across 400 blocks: average extra cycles per block
        # times blocks gives the bubble; bound it loosely.
        bubble = cold.cycles - 400 * (warm.cycles / warm.blocks)
        expected_min = config.decode_repair_cycles
        expected_max = 40 + config.memory_latency  # incl. cold fills
        assert expected_min <= bubble <= expected_max

    def test_exec_resteer_costs_more_than_decode(self, micro_program):
        """Alternate two block PCs so each is seen once (compulsory);
        compare an indirect-heavy stream (exec resteers) against a
        direct-jump stream (decode resteers)."""
        config = FrontEndConfig()

        def stream(kind):
            records = []
            for index in range(3_000):
                pc = 0x400000 + (index % 1500) * 128
                target = 0x400000 + ((index % 1500 + 1) % 1500) * 128
                records.append(BlockRecord(
                    block_start=pc, n_instr=4, branch_pc=pc + 16,
                    branch_len=5, kind=kind, taken=True, target=target,
                    fallthrough=pc + 21, next_pc=target))
            return records

        direct = FrontEndSimulator(micro_program, config).run(
            stream(BranchKind.DIRECT_UNCOND), warmup=0)
        indirect = FrontEndSimulator(micro_program, config).run(
            stream(BranchKind.INDIRECT_UNCOND), warmup=0)
        assert indirect.cycles > direct.cycles


class TestFTQBackpressure:
    def test_tiny_ftq_hurts_when_misses_need_hiding(self, micro_program):
        config_small = FrontEndConfig(ftq_size=2)
        config_large = FrontEndConfig(ftq_size=24)
        n_lines = (32 * 1024 // 64) * 3
        records = chain_records(n_lines) * 5
        small = FrontEndSimulator(micro_program, config_small).run(
            records, warmup=n_lines)
        large = FrontEndSimulator(micro_program, config_large).run(
            records, warmup=n_lines)
        assert large.cycles <= small.cycles
