"""Bit-identity of the compiled fast path against the object path.

The contract behind every other compiled-trace feature: for any cell of
the Figure-14 grid, ``FrontEndSimulator.run_compiled`` must produce the
same ``SimStats``, the same metric snapshot, the same event stream and a
byte-for-byte identical attribution artifact as ``run`` over the object
records -- and the harness's serial/parallel/zero-copy plumbing must
preserve that.  CI runs this module as its own job.
"""

import dataclasses
import json

import pytest

from repro.frontend.config import FrontEndConfig, SkiaConfig
from repro.frontend.engine import FrontEndSimulator
from repro.harness.parallel import Cell, ParallelRunner
from repro.harness.scale import Scale
from repro.obs import EventTrace
from repro.workloads import (
    WORKLOAD_NAMES,
    build_program,
    build_trace,
    compile_trace,
)

RECORDS = 1_000
WARMUP = 150

#: The four Figure-14 configurations: FDIP baseline, Skia with only one
#: shadow-branch half enabled, and full Skia.
CONFIGS = {
    "base": FrontEndConfig(),
    "head": FrontEndConfig(skia=SkiaConfig(decode_tails=False)),
    "tail": FrontEndConfig(skia=SkiaConfig(decode_heads=False)),
    "both": FrontEndConfig(skia=SkiaConfig()),
}


def _run(program, records_or_compiled, config, compiled: bool):
    simulator = FrontEndSimulator(program, config, seed=0)
    trace = EventTrace()
    simulator.attach_trace(trace)
    aggregator = simulator.attach_attribution()
    if compiled:
        stats = simulator.run_compiled(records_or_compiled, warmup=WARMUP)
    else:
        stats = simulator.run(records_or_compiled, warmup=WARMUP)
    artifact = json.dumps(aggregator.to_jsonable(), sort_keys=True).encode()
    return (dataclasses.asdict(stats), simulator.metrics_snapshot(),
            trace.events(), artifact)


@pytest.mark.parametrize("workload", WORKLOAD_NAMES)
def test_fig14_grid_bit_identity(workload):
    """Every (workload, config) cell: object path == compiled path."""
    program = build_program(workload, seed=0)
    records = build_trace(workload, RECORDS, seed=0)
    compiled = compile_trace(records)
    for name, config in CONFIGS.items():
        obj_stats, obj_metrics, obj_events, obj_artifact = _run(
            program, records, config, compiled=False)
        cmp_stats, cmp_metrics, cmp_events, cmp_artifact = _run(
            program, compiled, config, compiled=True)
        assert cmp_stats == obj_stats, (workload, name)
        assert cmp_metrics == obj_metrics, (workload, name)
        assert cmp_events == obj_events, (workload, name)
        assert cmp_artifact == obj_artifact, (workload, name)


class TestHarnessPaths:
    """The runner plumbing keeps the identity end to end."""

    SCALE = Scale("equiv", records=RECORDS, warmup=WARMUP)
    CELLS = [Cell(workload, config, 0, False)
             for workload in WORKLOAD_NAMES[:2]
             for config in CONFIGS.values()]

    def _object_path_stats(self, monkeypatch):
        monkeypatch.setenv("REPRO_NO_COMPILED_TRACES", "1")
        try:
            runner = ParallelRunner(scale=self.SCALE, jobs=1, store=None)
            return runner.run_batch(self.CELLS)
        finally:
            monkeypatch.delenv("REPRO_NO_COMPILED_TRACES")

    def test_serial_compiled_matches_object_path(self, monkeypatch):
        reference = self._object_path_stats(monkeypatch)
        runner = ParallelRunner(scale=self.SCALE, jobs=1, store=None)
        compiled = runner.run_batch(self.CELLS)
        for expect, got, cell in zip(reference, compiled, self.CELLS):
            assert dataclasses.asdict(got) == dataclasses.asdict(expect), \
                cell

    def test_parallel_zero_copy_matches_object_path(self, monkeypatch):
        reference = self._object_path_stats(monkeypatch)
        runner = ParallelRunner(scale=self.SCALE, jobs=2, store=None)
        compiled = runner.run_batch(self.CELLS)
        for expect, got, cell in zip(reference, compiled, self.CELLS):
            assert dataclasses.asdict(got) == dataclasses.asdict(expect), \
                cell
