"""Direction and indirect-target predictor behaviour."""

import random

from repro.frontend.predictor import ITTageLite, TageLite


class TestTageLite:
    def test_learns_always_taken(self):
        tage = TageLite()
        for _ in range(200):
            tage.update(0x1000, True)
        hits = sum(tage.update(0x1000, True) for _ in range(100))
        assert hits >= 99

    def test_learns_always_not_taken(self):
        tage = TageLite()
        for _ in range(200):
            tage.update(0x1000, False)
        correct = sum(tage.update(0x1000, False) is False
                      for _ in range(100))
        assert correct >= 99

    def test_learns_loop_exit(self):
        """A trip-8 loop back-edge (T T T T T T T N) should be almost
        perfectly predicted once TAGE warms up."""
        tage = TageLite()
        correct = total = 0
        for visit in range(600):
            for iteration in range(8):
                taken = iteration < 7
                predicted = tage.update(0x2000, taken)
                if visit >= 300:
                    correct += predicted == taken
                    total += 1
        assert correct / total > 0.97

    def test_learns_alternating(self):
        tage = TageLite()
        correct = total = 0
        for step in range(2000):
            taken = step % 2 == 0
            predicted = tage.update(0x3000, taken)
            if step >= 1000:
                correct += predicted == taken
                total += 1
        assert correct / total > 0.97

    def test_biased_branch_accuracy_bounded_by_bias(self):
        tage = TageLite()
        rng = random.Random(0)
        correct = total = 0
        for step in range(4000):
            taken = rng.random() < 0.95
            predicted = tage.update(0x4000, taken)
            if step >= 1000:
                correct += predicted == taken
                total += 1
        assert correct / total > 0.90

    def test_accuracy_property(self):
        tage = TageLite()
        assert tage.accuracy == 1.0
        tage.update(0x1, True)
        assert 0.0 <= tage.accuracy <= 1.0

    def test_predict_is_side_effect_free(self):
        tage = TageLite()
        for _ in range(50):
            tage.update(0x5000, True)
        before = tage.predictions
        tage.predict(0x5000)
        assert tage.predictions == before

    def test_many_branches_coexist(self):
        tage = TageLite()
        correct = total = 0
        for step in range(3000):
            for pc, taken in ((0x10, True), (0x20, False),
                              (0x30, step % 2 == 0)):
                predicted = tage.update(pc, taken)
                if step > 1500:
                    correct += predicted == taken
                    total += 1
        assert correct / total > 0.95


class TestITTageLite:
    def test_last_target_floor(self):
        """With run-sticky random targets, accuracy must reach the
        last-target floor of 1 - 1/mean_run."""
        ittage = ITTageLite()
        rng = random.Random(1)
        targets = [0x1000 * i for i in range(500)]
        current, remaining = None, 0
        correct = total = 0
        for step in range(30_000):
            if remaining == 0:
                current = rng.choice(targets)
                remaining = rng.randint(2, 12)
            remaining -= 1
            predicted = ittage.update(0x400000, current)
            if step > 5_000:
                correct += predicted == current
                total += 1
        assert correct / total > 0.82

    def test_learns_repeating_sequence(self):
        """A periodic target sequence is learned via history tables --
        this is where ITTAGE beats a plain last-target predictor."""
        ittage = ITTageLite()
        sequence = [0x100, 0x200, 0x300, 0x400, 0x150, 0x250]
        correct = total = 0
        for step in range(12_000):
            target = sequence[step % len(sequence)]
            predicted = ittage.update(0x400000, target)
            if step > 6_000:
                correct += predicted == target
                total += 1
        assert correct / total > 0.95

    def test_stable_target_perfect(self):
        ittage = ITTageLite()
        for _ in range(100):
            ittage.update(0x1, 0xAA)
        assert ittage.predict(0x1) == 0xAA

    def test_unknown_pc_predicts_none(self):
        assert ITTageLite().predict(0x1234) is None

    def test_accuracy_property(self):
        ittage = ITTageLite()
        assert ittage.accuracy == 1.0
        ittage.update(0x1, 0x2)
        assert 0.0 <= ittage.accuracy <= 1.0
