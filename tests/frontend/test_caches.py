"""Instruction cache hierarchy tests."""

import pytest

from repro.frontend.caches import CacheHierarchy, SetAssociativeCache
from repro.frontend.config import FrontEndConfig


class TestSetAssociativeCache:
    def test_size_validation(self):
        with pytest.raises(ValueError):
            SetAssociativeCache(1000, 8, 64)

    def test_miss_then_hit(self):
        cache = SetAssociativeCache(1024, 2, 64)
        assert cache.lookup(0) is None
        cache.fill(0, ready_time=5.0)
        assert cache.lookup(0) == 5.0

    def test_lru_within_set(self):
        cache = SetAssociativeCache(2 * 64 * 4, 2, 64)  # 4 sets, 2 ways
        conflicting = [0, 4 * 64, 8 * 64]  # same set
        cache.fill(conflicting[0], 0)
        cache.fill(conflicting[1], 0)
        evicted = cache.fill(conflicting[2], 0)
        assert evicted == conflicting[0]
        assert not cache.probe(conflicting[0])

    def test_lookup_refreshes_lru(self):
        cache = SetAssociativeCache(2 * 64 * 4, 2, 64)
        lines = [0, 4 * 64, 8 * 64]
        cache.fill(lines[0], 0)
        cache.fill(lines[1], 0)
        cache.lookup(lines[0])
        cache.fill(lines[2], 0)
        assert cache.probe(lines[0])
        assert not cache.probe(lines[1])

    def test_refill_keeps_earlier_ready_time(self):
        cache = SetAssociativeCache(1024, 2, 64)
        cache.fill(0, ready_time=5.0)
        cache.fill(0, ready_time=50.0)
        assert cache.lookup(0) == 5.0

    def test_miss_counter(self):
        cache = SetAssociativeCache(1024, 2, 64)
        cache.lookup(0)
        cache.fill(0, 0)
        cache.lookup(0)
        assert cache.accesses == 2
        assert cache.misses == 1

    def test_flush(self):
        cache = SetAssociativeCache(1024, 2, 64)
        cache.fill(0, 0)
        cache.flush()
        assert cache.occupancy() == 0


class TestHierarchy:
    def make(self):
        return CacheHierarchy(FrontEndConfig())

    def test_memory_latency_on_cold_miss(self):
        hierarchy = self.make()
        hit, ready, level = hierarchy.access(0x1000, now=10.0)
        assert not hit
        assert level == 4
        assert ready == 10.0 + hierarchy.memory_latency

    def test_l1_hit_after_fill(self):
        hierarchy = self.make()
        hierarchy.access(0x1000, now=0.0)
        hit, ready, level = hierarchy.access(0x1000, now=500.0)
        assert hit and level == 1
        assert ready == 500.0

    def test_hit_before_fill_ready_waits(self):
        hierarchy = self.make()
        _, fill_time, _ = hierarchy.access(0x1000, now=0.0)
        hit, ready, _ = hierarchy.access(0x1000, now=1.0)
        assert hit
        assert ready == fill_time  # in flight: wait for the fill

    def test_l2_serves_after_l1_eviction(self):
        config = FrontEndConfig()
        hierarchy = self.make()
        hierarchy.access(0x1000, now=0.0)
        # Evict 0x1000 from L1 by filling its set (8-way: 8 conflicts).
        l1_sets = hierarchy.l1i.n_sets
        for way in range(config.l1i_assoc):
            conflict = 0x1000 + (way + 1) * l1_sets * 64
            hierarchy.access(conflict, now=0.0)
        assert not hierarchy.l1i.probe(0x1000)
        hit, ready, level = hierarchy.access(0x1000, now=1000.0)
        assert not hit
        assert level == 2
        assert ready == 1000.0 + config.l2_latency

    def test_wrong_path_fill_counter(self):
        hierarchy = self.make()
        hierarchy.access(0x9000, now=0.0, wrong_path=True)
        hierarchy.access(0x9000, now=1.0, wrong_path=True)  # hit: no fill
        assert hierarchy.wrong_path_fills == 1

    def test_line_present(self):
        hierarchy = self.make()
        assert not hierarchy.line_present(0x2345)
        hierarchy.access(0x2340 & ~63, now=0.0)
        assert hierarchy.line_present(0x2345)  # any pc within the line

    def test_lines_spanning(self):
        hierarchy = self.make()
        assert hierarchy.lines_spanning(0, 1) == [0]
        assert hierarchy.lines_spanning(0, 64) == [0]
        assert hierarchy.lines_spanning(0, 65) == [0, 64]
        assert hierarchy.lines_spanning(60, 70) == [0, 64]
        assert hierarchy.lines_spanning(128, 300) == [128, 192, 256]

    def test_table1_geometry(self):
        hierarchy = self.make()
        assert hierarchy.l1i.n_sets == 32 * 1024 // (8 * 64)
        assert hierarchy.l2.n_sets == 1024 * 1024 // (16 * 64)
        assert hierarchy.l3.n_sets == 2 * 1024 * 1024 // (16 * 64)
