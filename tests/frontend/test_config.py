"""Configuration arithmetic: the paper's sizes must come out exactly."""

import pytest

from repro.frontend.config import (
    FrontEndConfig,
    IndexPolicy,
    SkiaConfig,
    baseline_config,
    skia_config,
)


class TestBTBSizes:
    def test_default_is_8k_78kb(self):
        config = FrontEndConfig()
        assert config.btb_entries == 8192
        assert config.btb_size_kib == 78.0  # Table 1: 8K-entry/78KB

    def test_with_btb_entries(self):
        config = FrontEndConfig().with_btb_entries(4096)
        assert config.btb_entries == 4096
        assert config.btb_size_kib == 39.0

    def test_with_extra_state_matches_sbb_budget(self):
        config = FrontEndConfig().with_extra_btb_state(12.25 * 1024)
        # 12.25KB * 8 bits / 78 bits per entry = 1286 extra entries.
        assert config.btb_entries == 8192 + 1286

    def test_latency_model_monotone(self):
        small = FrontEndConfig().with_btb_entries(4096)
        medium = FrontEndConfig().with_btb_entries(16384)
        large = FrontEndConfig().with_btb_entries(131072)
        assert small.btb_access_latency() == 1
        assert medium.btb_access_latency() == 1
        assert large.btb_access_latency() > 1

    def test_infinite_btb_latency_is_one(self):
        config = FrontEndConfig().with_btb_entries(1 << 22, infinite=True)
        assert config.btb_access_latency() == 1


class TestSkiaSizes:
    def test_default_sbb_is_12_25_kib(self):
        skia = SkiaConfig()
        # Paper Section 6.2: 768 x 78b U-SBB = 7.3125KB,
        # 2024 x 20b R-SBB ~= 4.94KB, total ~12.25KB.
        assert skia.usbb_size_bytes / 1024 == pytest.approx(7.3125)
        assert skia.rsbb_size_bytes / 1024 == pytest.approx(4.9414, abs=1e-3)
        assert skia.total_size_kib == pytest.approx(12.25, abs=0.01)

    def test_scaled_preserves_ratio(self):
        skia = SkiaConfig().scaled(2.0)
        assert skia.usbb_entries == 1536
        assert skia.rsbb_entries == 4048

    def test_scaled_floor(self):
        skia = SkiaConfig().scaled(0.001)
        assert skia.usbb_entries >= skia.usbb_assoc

    def test_disabled(self):
        assert not SkiaConfig.disabled().enabled

    def test_index_policy_values(self):
        assert {p.value for p in IndexPolicy} == {"first", "zero", "merge"}


class TestPresets:
    def test_baseline_has_no_skia(self):
        assert not baseline_config().skia.enabled

    def test_skia_config_enables(self):
        config = skia_config()
        assert config.skia.enabled
        assert config.skia.decode_heads and config.skia.decode_tails

    def test_head_only(self):
        config = skia_config(heads=True, tails=False)
        assert config.skia.decode_heads and not config.skia.decode_tails

    def test_with_skia_returns_new_config(self):
        base = FrontEndConfig()
        enhanced = base.with_skia(SkiaConfig())
        assert not base.skia.enabled
        assert enhanced.skia.enabled


class TestTable1Defaults:
    def test_cache_sizes(self):
        config = FrontEndConfig()
        assert config.l1i_size == 32 * 1024
        assert config.l1i_assoc == 8
        assert config.l2_size == 1024 * 1024
        assert config.l3_size == 2 * 1024 * 1024
        assert config.line_size == 64

    def test_pipeline_widths(self):
        config = FrontEndConfig()
        assert config.ftq_size == 24
        assert config.decode_width == 12
