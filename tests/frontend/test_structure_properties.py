"""Property-based structure tests against naive reference models.

The set-associative structures (cache, BTB, SBB) are exercised with
random operation streams and compared against simple dict/list reference
implementations of LRU semantics.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.sbb import SBBStructure
from repro.frontend.btb import BranchTargetBuffer
from repro.frontend.caches import SetAssociativeCache
from repro.isa.branch import BranchKind


class ReferenceLRUSet:
    """Reference model of one LRU set: ordered list, MRU last."""

    def __init__(self, capacity: int):
        self.capacity = capacity
        self.order: list[int] = []

    def touch(self, key: int) -> bool:
        hit = key in self.order
        if hit:
            self.order.remove(key)
            self.order.append(key)
        return hit

    def insert(self, key: int) -> None:
        if key in self.order:
            self.order.remove(key)
        elif len(self.order) >= self.capacity:
            self.order.pop(0)
        self.order.append(key)


@given(operations=st.lists(
    st.tuples(st.sampled_from(["lookup", "fill"]), st.integers(0, 30)),
    min_size=1, max_size=300))
@settings(max_examples=100, deadline=None)
def test_cache_matches_reference_lru(operations):
    """A 1-set cache behaves exactly like the reference LRU list."""
    cache = SetAssociativeCache(4 * 64, 4, 64)  # 1 set, 4 ways
    reference = ReferenceLRUSet(4)
    for op, line_index in operations:
        line = line_index * 64
        if op == "lookup":
            hit = cache.lookup(line) is not None
            assert hit == reference.touch(line)
        else:
            cache.fill(line, 0.0)
            reference.insert(line)
    assert cache.occupancy() == len(reference.order)


@given(operations=st.lists(
    st.tuples(st.sampled_from(["lookup", "insert"]), st.integers(0, 20)),
    min_size=1, max_size=300))
@settings(max_examples=100, deadline=None)
def test_btb_single_set_matches_reference(operations):
    """With full-width tags and one set, the BTB is a pure LRU."""
    btb = BranchTargetBuffer(entries=4, assoc=4, tag_bits=30)
    assert btb.n_sets == 1
    reference = ReferenceLRUSet(4)
    for op, key in operations:
        pc = key * 2
        tag = btb._index_tag(pc)[1]
        if op == "lookup":
            hit = btb.lookup(pc) is not None
            assert hit == reference.touch(tag)
        else:
            btb.insert(pc, BranchKind.CALL, pc)
            reference.insert(tag)


@given(operations=st.lists(
    st.tuples(st.sampled_from(["lookup", "insert", "retire"]),
              st.integers(0, 20)),
    min_size=1, max_size=300))
@settings(max_examples=100, deadline=None)
def test_sbb_occupancy_and_consistency(operations):
    """SBB never exceeds capacity; retired entries survive non-retired
    ones under pressure; lookups return what was inserted."""
    structure = SBBStructure(4, 4, tag_bits=30, entry_bits=78, name="p")
    payloads: dict[int, int] = {}
    for op, key in operations:
        pc = key * 2
        tag = structure._index_tag(pc)[1]
        if op == "insert":
            structure.insert(pc, key)
            payloads[tag] = key
        elif op == "retire":
            structure.mark_retired(pc)
        else:
            entry = structure.lookup(pc)
            if entry is not None:
                assert entry.payload == payloads[tag]
        assert structure.occupancy() <= 4


@given(seed=st.integers(0, 10_000))
@settings(max_examples=50, deadline=None)
def test_multi_set_cache_inclusion_of_recent(seed):
    """The most recent `assoc` fills of any set are always resident."""
    rng = random.Random(seed)
    cache = SetAssociativeCache(8 * 64 * 4, 2, 64)  # 16 sets, 2 ways
    recent: dict[int, list[int]] = {}
    for _ in range(200):
        line = rng.randrange(200) * 64
        cache.fill(line, 0.0)
        bucket = recent.setdefault((line // 64) % cache.n_sets, [])
        if line in bucket:
            bucket.remove(line)
        bucket.append(line)
        del bucket[:-2]
    for bucket in recent.values():
        for line in bucket:
            assert cache.probe(line)
