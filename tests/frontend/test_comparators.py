"""Section 7.1 baseline mechanisms."""

import pytest

from repro.frontend.comparators import AirBTBLite, BoomerangLite
from repro.frontend.config import FrontEndConfig, SkiaConfig
from repro.frontend.engine import simulate
from repro.isa.branch import BranchKind


class TestAirBTBLite:
    def test_record_then_hit_while_resident(self):
        airbtb = AirBTBLite()
        airbtb.record(0x1000, BranchKind.CALL, 0x2000)
        entry = airbtb.lookup(0x1000, line_resident=True)
        assert entry is not None
        assert entry.target == 0x2000

    def test_miss_when_line_evicted(self):
        """The defining property: contents are only usable while the
        line is L1-I resident."""
        airbtb = AirBTBLite()
        airbtb.record(0x1000, BranchKind.CALL, 0x2000)
        assert airbtb.lookup(0x1000, line_resident=False) is None

    def test_never_learns_unexecuted_branches(self):
        """AirBTB has no decode path: a branch that never committed is
        invisible -- the cold-branch blind spot."""
        airbtb = AirBTBLite()
        assert airbtb.lookup(0x5000, line_resident=True) is None

    def test_per_line_capacity(self):
        airbtb = AirBTBLite(entries_per_line=2)
        for offset in (0, 8, 16):
            airbtb.record(0x1000 + offset, BranchKind.CALL, offset)
        assert airbtb.lookup(0x1000, True) is None  # oldest dropped
        assert airbtb.lookup(0x1008, True) is not None
        assert airbtb.lookup(0x1010, True) is not None

    def test_line_lru(self):
        airbtb = AirBTBLite(max_lines=2)
        airbtb.record(0x0000, BranchKind.CALL, 1)
        airbtb.record(0x1000, BranchKind.CALL, 2)
        airbtb.record(0x2000, BranchKind.CALL, 3)
        assert airbtb.lookup(0x0000, True) is None

    def test_update_existing(self):
        airbtb = AirBTBLite()
        airbtb.record(0x1000, BranchKind.DIRECT_COND, 0xA)
        airbtb.record(0x1000, BranchKind.DIRECT_COND, 0xB)
        assert airbtb.lookup(0x1000, True).target == 0xB


class TestBoomerangLite:
    def make(self) -> BoomerangLite:
        line = bytearray(64)
        line[0:2] = bytes([0xEB, 0x10])                     # jmp (exit)
        line[2:7] = bytes([0xE8, 0x20, 0x00, 0x00, 0x00])   # call
        line[7] = 0xC3                                      # ret
        line[8:] = bytes([0x90] * 56)
        return BoomerangLite(bytes(line), base_address=0)

    def test_predecode_fills_buffer(self):
        boomerang = self.make()
        boomerang.on_btb_miss(entry_pc=0)
        assert boomerang.lookup(0).kind is BranchKind.DIRECT_UNCOND
        boomerang.on_btb_miss(entry_pc=0)
        assert boomerang.lookup(2).kind is BranchKind.CALL

    def test_lookup_consumes_entry(self):
        boomerang = self.make()
        boomerang.on_btb_miss(entry_pc=0)
        assert boomerang.lookup(0) is not None
        assert boomerang.lookup(0) is None  # migrated away

    def test_forward_only_from_entry(self):
        """Bytes before the entry point are never predecoded -- the
        variable-length limitation Skia's head decoding overcomes."""
        boomerang = self.make()
        boomerang.on_btb_miss(entry_pc=2)
        assert boomerang.lookup(0) is None   # jmp before the entry
        assert boomerang.lookup(2) is not None

    def test_buffer_fifo(self):
        boomerang = self.make()
        boomerang.buffer_entries = 1
        boomerang.on_btb_miss(entry_pc=0)
        assert boomerang.lookup(0) is None   # evicted by later inserts
        assert boomerang.lookup(7) is not None


class TestEndToEnd:
    @pytest.mark.parametrize("name", ["airbtb", "boomerang"])
    def test_comparator_never_hurts_much(self, micro_program, micro_trace,
                                         name):
        # A small BTB creates the capacity re-misses these schemes cover
        # (the micro program fits entirely in the default 8K BTB).
        base_config = FrontEndConfig().with_btb_entries(256)
        base = simulate(micro_program, micro_trace, base_config,
                        warmup=2_000)
        enhanced = simulate(micro_program, micro_trace,
                            base_config.with_comparator(name), warmup=2_000)
        assert enhanced.ipc >= base.ipc * 0.995
        assert enhanced.comparator_hits > 0

    def test_skia_beats_airbtb(self, micro_program, micro_trace):
        """The paper's qualitative claim, measured: shadow decoding
        covers branches the L1-coupled scheme cannot."""
        airbtb = simulate(micro_program, micro_trace,
                          FrontEndConfig(comparator="airbtb"), warmup=2_000)
        skia = simulate(micro_program, micro_trace,
                        FrontEndConfig(skia=SkiaConfig()), warmup=2_000)
        assert skia.ipc >= airbtb.ipc

    def test_unknown_comparator_rejected(self, micro_program, micro_trace):
        with pytest.raises(ValueError):
            simulate(micro_program, micro_trace,
                     FrontEndConfig(comparator="nope"), warmup=0)

    def test_with_comparator_helper(self):
        config = FrontEndConfig().with_comparator("airbtb")
        assert config.comparator == "airbtb"
        with pytest.raises(ValueError):
            FrontEndConfig().with_comparator("bad")
