"""Section 7.1 baseline mechanisms."""

import inspect

import pytest

from repro.frontend.comparators import (COMPARATOR_NAMES, COMPARATORS,
                                        AirBTBLite, BoomerangLite, Comparator,
                                        FDIPDepthLite, MicroBTBLite,
                                        build_comparator,
                                        comparator_size_bytes)
from repro.frontend.config import FrontEndConfig, SkiaConfig
from repro.frontend.engine import simulate
from repro.isa.branch import BranchKind


class TestAirBTBLite:
    def test_record_then_hit_while_resident(self):
        airbtb = AirBTBLite()
        airbtb.record(0x1000, BranchKind.CALL, 0x2000)
        entry = airbtb.lookup(0x1000, line_resident=True)
        assert entry is not None
        assert entry.target == 0x2000

    def test_miss_when_line_evicted(self):
        """The defining property: contents are only usable while the
        line is L1-I resident."""
        airbtb = AirBTBLite()
        airbtb.record(0x1000, BranchKind.CALL, 0x2000)
        assert airbtb.lookup(0x1000, line_resident=False) is None

    def test_never_learns_unexecuted_branches(self):
        """AirBTB has no decode path: a branch that never committed is
        invisible -- the cold-branch blind spot."""
        airbtb = AirBTBLite()
        assert airbtb.lookup(0x5000, line_resident=True) is None

    def test_per_line_capacity(self):
        airbtb = AirBTBLite(entries_per_line=2)
        for offset in (0, 8, 16):
            airbtb.record(0x1000 + offset, BranchKind.CALL, offset)
        assert airbtb.lookup(0x1000, True) is None  # oldest dropped
        assert airbtb.lookup(0x1008, True) is not None
        assert airbtb.lookup(0x1010, True) is not None

    def test_line_lru(self):
        airbtb = AirBTBLite(max_lines=2)
        airbtb.record(0x0000, BranchKind.CALL, 1)
        airbtb.record(0x1000, BranchKind.CALL, 2)
        airbtb.record(0x2000, BranchKind.CALL, 3)
        assert airbtb.lookup(0x0000, True) is None

    def test_update_existing(self):
        airbtb = AirBTBLite()
        airbtb.record(0x1000, BranchKind.DIRECT_COND, 0xA)
        airbtb.record(0x1000, BranchKind.DIRECT_COND, 0xB)
        assert airbtb.lookup(0x1000, True).target == 0xB


class TestBoomerangLite:
    def make(self) -> BoomerangLite:
        line = bytearray(64)
        line[0:2] = bytes([0xEB, 0x10])                     # jmp (exit)
        line[2:7] = bytes([0xE8, 0x20, 0x00, 0x00, 0x00])   # call
        line[7] = 0xC3                                      # ret
        line[8:] = bytes([0x90] * 56)
        return BoomerangLite(bytes(line), base_address=0)

    def test_predecode_fills_buffer(self):
        boomerang = self.make()
        boomerang.on_btb_miss(entry_pc=0)
        assert boomerang.lookup(0, True).kind is BranchKind.DIRECT_UNCOND
        boomerang.on_btb_miss(entry_pc=0)
        assert boomerang.lookup(2, True).kind is BranchKind.CALL

    def test_lookup_consumes_entry(self):
        boomerang = self.make()
        boomerang.on_btb_miss(entry_pc=0)
        assert boomerang.lookup(0, True) is not None
        assert boomerang.lookup(0, True) is None  # migrated away

    def test_forward_only_from_entry(self):
        """Bytes before the entry point are never predecoded -- the
        variable-length limitation Skia's head decoding overcomes."""
        boomerang = self.make()
        boomerang.on_btb_miss(entry_pc=2)
        assert boomerang.lookup(0, True) is None   # jmp before the entry
        assert boomerang.lookup(2, True) is not None

    def test_buffer_fifo(self):
        boomerang = self.make()
        boomerang.buffer_entries = 1
        boomerang.on_btb_miss(entry_pc=0)
        assert boomerang.lookup(0, True) is None  # evicted by later inserts
        assert boomerang.lookup(7, True) is not None

    def test_residency_ignored(self):
        """The prefetch buffer is its own storage: unlike AirBTB, a hit
        does not depend on L1-I residency."""
        boomerang = self.make()
        boomerang.on_btb_miss(entry_pc=0)
        assert boomerang.lookup(0, False) is not None


class TestMicroBTBLite:
    def test_record_then_demand_hit_migrates_line(self):
        micro = MicroBTBLite()
        micro.record(0x1000, BranchKind.CALL, 0x2000)
        micro.record(0x1008, BranchKind.DIRECT_COND, 0x3000)
        # First probe misses the move-in buffer, hits the last level,
        # and batch-fills the whole line group.
        assert micro.lookup(0x1000, True) is not None
        assert micro.line_fills == 1
        # The sibling branch on the same line is now a buffer hit: no
        # second fill needed -- the footprint property.
        assert micro.lookup(0x1008, True) is not None
        assert micro.line_fills == 1

    def test_never_learns_unexecuted_branches(self):
        """Like AirBTB, Micro-BTB only holds committed branches: a cold
        shadow branch is invisible to it."""
        micro = MicroBTBLite()
        assert micro.lookup(0x5000, True) is None
        assert micro.hits == 0

    def test_fill_buffer_line_lru(self):
        micro = MicroBTBLite(fill_lines=2)
        for line in (0x0000, 0x1000, 0x2000):
            micro.record(line, BranchKind.CALL, 1)
            assert micro.lookup(line, True) is not None  # migrate each
        assert micro.line_fills == 3
        # Line 0 was evicted from the move-in buffer but survives in the
        # last level: the next probe re-migrates instead of missing.
        assert micro.lookup(0x0000, True) is not None
        assert micro.line_fills == 4

    def test_last_level_eviction_invalidates_fill_copy(self):
        micro = MicroBTBLite(max_lines=2)
        micro.record(0x0000, BranchKind.CALL, 1)
        assert micro.lookup(0x0000, True) is not None  # migrated
        micro.record(0x1000, BranchKind.CALL, 2)
        micro.record(0x2000, BranchKind.CALL, 3)  # evicts line 0
        assert micro.lookup(0x0000, True) is None

    def test_record_updates_migrated_copy(self):
        micro = MicroBTBLite()
        micro.record(0x1000, BranchKind.DIRECT_COND, 0xA)
        assert micro.lookup(0x1000, True).target == 0xA
        micro.record(0x1000, BranchKind.DIRECT_COND, 0xB)
        assert micro.lookup(0x1000, True).target == 0xB

    def test_size_accounts_both_levels(self):
        micro = MicroBTBLite(max_lines=100, entries_per_line=2,
                             fill_lines=10)
        assert micro.size_bytes == (100 + 10) * 2 * 78 / 8


class TestFDIPDepthLite:
    def make(self, depth: int, lines: int = 4) -> FDIPDepthLite:
        image = bytearray(64 * lines)
        for line in range(lines):
            image[64 * line] = 0xC3  # one ret at the top of each line
            for offset in range(1, 64):
                image[64 * line + offset] = 0x90
        return FDIPDepthLite(bytes(image), base_address=0, depth=depth)

    def test_depth_one_matches_boomerang(self):
        """depth=1 stops at the first line boundary, like BoomerangLite."""
        fdip = self.make(depth=1)
        fdip.on_btb_miss(entry_pc=0)
        assert fdip.lookup(0, True) is not None
        assert fdip.lookup(64, True) is None  # next line untouched

    def test_deeper_walk_covers_more_lines(self):
        fdip = self.make(depth=3)
        fdip.on_btb_miss(entry_pc=0)
        assert fdip.lookup(0, True) is not None
        assert fdip.lookup(64, True) is not None
        assert fdip.lookup(128, True) is not None
        assert fdip.lookup(192, True) is None  # beyond the depth

    def test_walk_clamped_to_image(self):
        fdip = self.make(depth=8, lines=2)  # walk end past the image
        fdip.on_btb_miss(entry_pc=0)
        assert fdip.lookup(64, True) is not None

    def test_depth_validated(self):
        with pytest.raises(ValueError):
            self.make(depth=0)


class TestComparatorProtocol:
    """Satellite: every registered design satisfies one contract, so
    call sites never need defaults or duck-typing again."""

    def _instances(self, micro_program, config=None):
        config = config or FrontEndConfig()
        return {name: build_comparator(name, micro_program, config)
                for name in COMPARATOR_NAMES}

    def test_registry_names_sorted_and_complete(self):
        assert COMPARATOR_NAMES == tuple(sorted(COMPARATORS))
        assert set(COMPARATOR_NAMES) == {"airbtb", "boomerang", "microbtb",
                                         "fdip"}

    def test_every_design_satisfies_protocol(self, micro_program):
        for name, comparator in self._instances(micro_program).items():
            assert isinstance(comparator, Comparator), name
            assert comparator.lookups == 0 and comparator.hits == 0

    def test_lookup_requires_line_resident(self, micro_program):
        """The unified signature: ``line_resident`` has no default, so a
        call site can never silently drop the residency signal."""
        for name, comparator in self._instances(micro_program).items():
            parameters = inspect.signature(comparator.lookup).parameters
            assert list(parameters) == ["pc", "line_resident"], name
            resident = parameters["line_resident"]
            assert resident.default is inspect.Parameter.empty, name
            with pytest.raises(TypeError):
                comparator.lookup(0x1000)

    def test_hooks_always_callable(self, micro_program):
        """record/on_btb_miss exist on every design (no-ops where the
        design has no such behaviour) -- no hasattr at call sites."""
        for comparator in self._instances(micro_program).values():
            comparator.on_btb_miss(0x1000)
            comparator.record(0x1000, BranchKind.CALL, 0x2000)

    def test_size_bytes_positive(self, micro_program):
        for name, comparator in self._instances(micro_program).items():
            assert comparator.size_bytes > 0, name
            config = FrontEndConfig()
            assert (comparator_size_bytes(name, config)
                    == comparator.size_bytes), name

    def test_register_metrics_exposes_counters(self, micro_program):
        from repro.obs.registry import MetricsRegistry
        for name, comparator in self._instances(micro_program).items():
            registry = MetricsRegistry()
            comparator.register_metrics(registry.scope("comparator"))
            snapshot = registry.snapshot()
            assert snapshot["comparator.lookups"] == 0, name
            assert snapshot["comparator.hits"] == 0, name

    def test_build_comparator_rejects_unknown(self, micro_program):
        with pytest.raises(ValueError, match="unknown comparator"):
            build_comparator("nope", micro_program, FrontEndConfig())


class TestEndToEnd:
    @pytest.mark.parametrize("name", sorted(COMPARATOR_NAMES))
    def test_comparator_never_hurts_much(self, micro_program, micro_trace,
                                         name):
        # A small BTB creates the capacity re-misses these schemes cover
        # (the micro program fits entirely in the default 8K BTB).
        base_config = FrontEndConfig().with_btb_entries(256)
        base = simulate(micro_program, micro_trace, base_config,
                        warmup=2_000)
        enhanced = simulate(micro_program, micro_trace,
                            base_config.with_comparator(name), warmup=2_000)
        assert enhanced.ipc >= base.ipc * 0.995
        assert enhanced.comparator_hits > 0

    def test_skia_beats_airbtb(self, micro_program, micro_trace):
        """The paper's qualitative claim, measured: shadow decoding
        covers branches the L1-coupled scheme cannot."""
        airbtb = simulate(micro_program, micro_trace,
                          FrontEndConfig(comparator="airbtb"), warmup=2_000)
        skia = simulate(micro_program, micro_trace,
                        FrontEndConfig(skia=SkiaConfig()), warmup=2_000)
        assert skia.ipc >= airbtb.ipc

    def test_unknown_comparator_rejected(self, micro_program, micro_trace):
        with pytest.raises(ValueError):
            simulate(micro_program, micro_trace,
                     FrontEndConfig(comparator="nope"), warmup=0)

    def test_with_comparator_helper(self):
        config = FrontEndConfig().with_comparator("airbtb")
        assert config.comparator == "airbtb"
        with pytest.raises(ValueError):
            FrontEndConfig().with_comparator("bad")
