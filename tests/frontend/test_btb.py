"""Branch Target Buffer unit tests."""

import pytest

from repro.frontend.btb import BranchTargetBuffer
from repro.isa.branch import BranchKind


class TestBasics:
    def test_miss_then_hit(self):
        btb = BranchTargetBuffer(entries=64, assoc=4)
        assert btb.lookup(0x1000) is None
        btb.insert(0x1000, BranchKind.CALL, 0x2000)
        entry = btb.lookup(0x1000)
        assert entry is not None
        assert entry.kind is BranchKind.CALL
        assert entry.target == 0x2000

    def test_update_in_place(self):
        btb = BranchTargetBuffer(entries=64, assoc=4)
        btb.insert(0x1000, BranchKind.DIRECT_COND, 0x2000)
        btb.insert(0x1000, BranchKind.DIRECT_COND, 0x3000)
        assert btb.lookup(0x1000).target == 0x3000
        assert btb.occupancy() == 1

    def test_contains_no_lru_side_effect(self):
        btb = BranchTargetBuffer(entries=8, assoc=2)
        # Two PCs in the same set; touch with contains, then verify LRU
        # order unchanged by inserting a third conflicting entry.
        pcs = [0x10, 0x10 + 2 * btb.n_sets * 2]
        btb.insert(pcs[0], BranchKind.CALL, 1)
        btb.insert(pcs[1], BranchKind.CALL, 2)
        assert btb.contains(pcs[0])
        third = pcs[0] + 4 * btb.n_sets * 2
        btb.insert(third, BranchKind.CALL, 3)
        assert not btb.contains(pcs[0])  # still LRU despite contains()
        assert btb.contains(pcs[1])

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            BranchTargetBuffer(entries=0)
        with pytest.raises(ValueError):
            BranchTargetBuffer(entries=8, assoc=0)


class TestLRU:
    def _same_set_pcs(self, btb, count):
        return [0x40 + way * 2 * btb.n_sets for way in range(count)]

    def test_eviction_order(self):
        btb = BranchTargetBuffer(entries=16, assoc=4)
        pcs = self._same_set_pcs(btb, 5)
        for pc in pcs[:4]:
            btb.insert(pc, BranchKind.CALL, pc)
        btb.insert(pcs[4], BranchKind.CALL, pcs[4])
        assert not btb.contains(pcs[0])
        for pc in pcs[1:]:
            assert btb.contains(pc)

    def test_lookup_refreshes(self):
        btb = BranchTargetBuffer(entries=16, assoc=4)
        pcs = self._same_set_pcs(btb, 5)
        for pc in pcs[:4]:
            btb.insert(pc, BranchKind.CALL, pc)
        btb.lookup(pcs[0])  # refresh LRU
        btb.insert(pcs[4], BranchKind.CALL, pcs[4])
        assert btb.contains(pcs[0])
        assert not btb.contains(pcs[1])


class TestCapacity:
    def test_occupancy_capped(self):
        btb = BranchTargetBuffer(entries=64, assoc=4)
        for pc in range(0, 64 * 40, 2):
            btb.insert(pc, BranchKind.DIRECT_COND, pc)
        assert btb.occupancy() <= btb.entries

    def test_non_power_of_two_entries(self):
        btb = BranchTargetBuffer(entries=9286, assoc=4)
        assert btb.n_sets == (9286 + 3) // 4
        btb.insert(0x1234, BranchKind.CALL, 1)
        assert btb.contains(0x1234)

    def test_size_accounting_matches_paper(self):
        # 8K entries x 78 bits = 78KB (Table 1 / Figure 12).
        btb = BranchTargetBuffer(entries=8192, assoc=4, entry_bits=78)
        assert btb.size_bytes == 78 * 1024


class TestPartialTags:
    def test_aliasing_possible_with_narrow_tags(self):
        btb = BranchTargetBuffer(entries=16, assoc=4, tag_bits=2)
        btb.insert(0x100, BranchKind.CALL, 0xAA)
        # Find a different PC with the same (set, tag).
        reference = btb._index_tag(0x100)
        alias = next(candidate for candidate in range(0x102, 0x100000, 2)
                     if btb._index_tag(candidate) == reference)
        entry = btb.lookup(alias)
        assert entry is not None  # false hit: the aliased entry
        assert entry.target == 0xAA


class TestInfinite:
    def test_never_evicts(self):
        btb = BranchTargetBuffer(entries=4, assoc=2, infinite=True)
        for pc in range(0, 10_000, 2):
            btb.insert(pc, BranchKind.CALL, pc)
        for pc in range(0, 10_000, 2):
            assert btb.contains(pc)

    def test_full_tags_no_alias(self):
        btb = BranchTargetBuffer(entries=4, infinite=True)
        btb.insert(0x100, BranchKind.CALL, 1)
        assert btb.lookup(0x101) is None

    def test_flush(self):
        btb = BranchTargetBuffer(entries=16, assoc=4)
        btb.insert(0x10, BranchKind.CALL, 1)
        btb.flush()
        assert btb.occupancy() == 0
