"""Cycle fast-forwarding: detection, digests, exactness, fallbacks.

The contract under test: with ``REPRO_FASTFORWARD`` on (the default),
every engine -- object loop, compiled loop, batched lane kernel --
produces byte-identical ``SimStats``, metric snapshots and interval
series to a non-fast-forwarded oracle run, whether or not a skip
engages; and every ineligible run falls back to plain stepping with a
counted reason instead of wrong numbers.
"""

import dataclasses

import pytest

from repro.frontend import fastforward
from repro.frontend.batch import run_compiled_batched
from repro.frontend.config import FrontEndConfig, SkiaConfig
from repro.frontend.engine import FrontEndSimulator
from repro.harness.parallel import Cell, ParallelRunner
from repro.harness.scale import Scale
from repro.obs import digests, divergence
from repro.workloads import (
    WORKLOAD_NAMES,
    build_program,
    build_trace,
    compile_trace,
)
from repro.workloads.compiled import period_of_records

#: The exactly-periodic workload (round-robin dispatch, no stochastic
#: branches) whose cells actually engage a skip.
STEADY = "steady-stream"
RECORDS = 24_000
WARMUP = 500

CONFIGS = {
    "base": FrontEndConfig(),
    "skia": FrontEndConfig(skia=SkiaConfig()),
}


@pytest.fixture(scope="module")
def steady():
    program = build_program(STEADY, seed=0)
    records = build_trace(STEADY, RECORDS, seed=0)
    return program, records, compile_trace(records)


def _run(program, records, compiled, config, engine, monkeypatch, on,
         warmup=WARMUP):
    monkeypatch.setenv("REPRO_FASTFORWARD", "1" if on else "0")
    simulator = FrontEndSimulator(program, config, seed=0)
    if engine == "object":
        stats = simulator.run(records, warmup=warmup)
    elif engine == "compiled":
        stats = simulator.run_compiled(compiled, warmup=warmup)
    else:
        stats = run_compiled_batched(simulator, compiled, warmup=warmup)
    series = (simulator.intervals.series().to_json_text()
              if simulator.intervals is not None else None)
    return (dataclasses.asdict(stats), simulator.metrics_snapshot(),
            series, simulator.fastforward_summary)


# ----------------------------------------------------------------------
# Period detection
# ----------------------------------------------------------------------

class TestPeriodDetection:
    def test_steady_trace_is_exactly_periodic(self, steady):
        _, records, compiled = steady
        detected = compiled.period()
        assert detected is not None
        period, preamble = detected
        assert preamble == 0
        # The detected period really is a column-level cycle.
        for index in range(period, min(len(records), 2 * period + 64)):
            assert records[index] == records[index - period]

    def test_record_and_column_paths_agree(self, steady):
        _, records, compiled = steady
        assert period_of_records(records) == compiled.period()

    def test_period_is_cached_on_the_trace(self, steady):
        _, _, compiled = steady
        assert compiled.period() is not None
        assert compiled._period_cache == compiled.period()

    def test_aperiodic_stock_trace_has_no_period(self):
        records = build_trace("voter", 6_000, seed=0)
        assert period_of_records(records) is None

    def test_trace_shorter_than_two_periods_has_no_period(self):
        records = build_trace(STEADY, 24_000, seed=0)
        period, _ = period_of_records(records)
        assert period_of_records(records[:period + period // 2]) is None


# ----------------------------------------------------------------------
# Digests
# ----------------------------------------------------------------------

class TestDigests:
    def test_divergence_reexports_the_same_state_digest(self):
        # The promotion to obs.digests must not change a single hash:
        # the re-export *is* the promoted function.
        assert divergence.state_digest is digests.state_digest

    def test_state_digest_identical_across_import_paths(self, steady):
        program, records, _ = steady
        simulator = FrontEndSimulator(program, CONFIGS["skia"], seed=0)
        simulator.run(records[:500], warmup=100)
        assert (divergence.state_digest(simulator)
                == digests.state_digest(simulator))

    def test_probe_digest_reflects_structure_state(self, steady):
        program, records, _ = steady

        def probe(n_records):
            simulator = FrontEndSimulator(program, CONFIGS["skia"], seed=0)
            simulator.run(records[:n_records], warmup=0)
            state = fastforward.ProbeState(
                0.0, 0.0, 0.0, 0.0, [], True, 0, 0, 0)
            return digests.probe_digest(simulator, state, 0.0,
                                        digests.StructureDigest())

        assert probe(400) == probe(400)
        assert probe(400) != probe(401)


# ----------------------------------------------------------------------
# SimStats periodic advance
# ----------------------------------------------------------------------

class TestAdvancePeriodic:
    def test_scalars_and_dicts_scale_exactly(self):
        from repro.frontend.stats import SimStats
        from repro.isa.branch import BranchKind

        stats = SimStats()
        stats.btb_lookups = 10
        stats.cycles = 2.5
        stats.branches[BranchKind.CALL] = 4
        stats.resteer_causes["cond_mispredict"] = 3
        snapshot = stats.snapshot_state()
        stats.btb_lookups = 16
        stats.cycles = 4.0
        stats.branches[BranchKind.CALL] = 7
        stats.resteer_causes["cond_mispredict"] = 5
        stats.resteer_causes["btb_alias"] = 2  # born inside the period
        stats.advance_periodic(snapshot, 3)
        assert stats.btb_lookups == 16 + 3 * 6
        assert stats.cycles == 4.0 + 3 * 1.5
        assert stats.branches[BranchKind.CALL] == 7 + 3 * 3
        assert stats.resteer_causes["cond_mispredict"] == 5 + 3 * 2
        assert stats.resteer_causes["btb_alias"] == 2 + 3 * 2


# ----------------------------------------------------------------------
# On/off identity with an engaged skip
# ----------------------------------------------------------------------

class TestEngagedIdentity:
    @pytest.mark.parametrize("engine", ["object", "compiled", "batched"])
    @pytest.mark.parametrize("config_name", sorted(CONFIGS))
    def test_identity_and_skip(self, steady, engine, config_name,
                               monkeypatch):
        program, records, compiled = steady
        config = CONFIGS[config_name]
        on = _run(program, records, compiled, config, engine,
                  monkeypatch, True)
        off = _run(program, records, compiled, config, engine,
                   monkeypatch, False)
        assert on[0] == off[0], "SimStats diverged"
        assert on[1] == off[1], "metric snapshot diverged"
        summary = on[3]
        assert summary["engaged"] is True
        assert summary["skipped_records"] > 0
        assert off[3] == {"engaged": False, "reason": "disabled by env"}

    def test_interval_series_identity_window_divides_period(
            self, steady, monkeypatch):
        # Window 5 divides the steady period, so the quantum stays one
        # period and the skip synthesises whole windows.
        program, records, compiled = steady
        config = FrontEndConfig(interval_size=5)
        on = _run(program, records, compiled, config, "compiled",
                  monkeypatch, True)
        off = _run(program, records, compiled, config, "compiled",
                   monkeypatch, False)
        assert on[3]["engaged"] and on[3]["skipped_records"] > 0
        assert on[0] == off[0]
        assert on[2] == off[2], "interval series diverged"

    def test_interval_series_identity_window_not_dividing_period(
            self, steady, monkeypatch):
        # Window 2 does not divide the (odd) period: the quantum widens
        # to lcm(period, 2) = 2 periods so probes keep landing at the
        # same window offset.  Identity must hold whether or not the
        # wider quantum still finds a repeat in this trace.
        program, records, compiled = steady
        period, _ = compiled.period()
        assert period % 2 == 1
        config = FrontEndConfig(interval_size=2)
        on = _run(program, records, compiled, config, "compiled",
                  monkeypatch, True)
        off = _run(program, records, compiled, config, "compiled",
                   monkeypatch, False)
        assert on[3]["engaged"] is True
        assert on[3]["quantum"] == 2 * period
        assert on[0] == off[0]
        assert on[2] == off[2]

    def test_warmup_boundary_inside_first_period(self, steady,
                                                 monkeypatch):
        program, records, compiled = steady
        period, _ = compiled.period()
        warmup = period // 3
        on = _run(program, records, compiled, CONFIGS["base"], "compiled",
                  monkeypatch, True, warmup=warmup)
        off = _run(program, records, compiled, CONFIGS["base"], "compiled",
                   monkeypatch, False, warmup=warmup)
        assert on[3]["engaged"] and on[3]["skipped_records"] > 0
        assert on[0] == off[0]
        assert on[1] == off[1]


# ----------------------------------------------------------------------
# Fallbacks
# ----------------------------------------------------------------------

class TestFallbacks:
    def test_env_kill_switch(self, steady, monkeypatch):
        program, records, compiled = steady
        _, _, _, summary = _run(program, records, compiled,
                                CONFIGS["base"], "compiled",
                                monkeypatch, False)
        assert summary == {"engaged": False, "reason": "disabled by env"}

    def test_trace_too_short_for_the_probe_quantum(self, steady,
                                                   monkeypatch):
        program, records, compiled = steady
        period, _ = compiled.period()
        monkeypatch.setenv("REPRO_FASTFORWARD", "1")
        short = records[:period * 2]  # periodic, but no room to probe
        simulator = FrontEndSimulator(program, CONFIGS["base"], seed=0)
        stats = simulator.run(short, warmup=period)
        reason = simulator.fastforward_summary["reason"]
        assert reason in ("trace too short for the probe quantum",
                          "no detected period")
        monkeypatch.setenv("REPRO_FASTFORWARD", "0")
        oracle = FrontEndSimulator(program, CONFIGS["base"], seed=0)
        expected = oracle.run(short, warmup=period)
        assert dataclasses.asdict(stats) == dataclasses.asdict(expected)

    def test_digest_never_repeats_falls_back_cleanly(self, steady,
                                                     monkeypatch):
        program, records, compiled = steady
        off = _run(program, records, compiled, CONFIGS["base"],
                   "compiled", monkeypatch, False)
        counter = iter(range(10 ** 9))

        def unique_digest(simulator, state, base, acc):
            return next(counter).to_bytes(8, "little")

        monkeypatch.setattr(fastforward, "probe_digest", unique_digest)
        on = _run(program, records, compiled, CONFIGS["base"],
                  "compiled", monkeypatch, True)
        summary = on[3]
        assert summary["engaged"] is True
        assert summary["reason"] == "digest never repeated"
        assert summary["skipped_records"] == 0
        assert on[0] == off[0]
        assert on[1] == off[1]

    def test_generator_input_falls_back(self, steady, monkeypatch):
        program, records, _ = steady
        monkeypatch.setenv("REPRO_FASTFORWARD", "1")
        simulator = FrontEndSimulator(program, CONFIGS["base"], seed=0)
        stats = simulator.run(record_iter=iter(records), warmup=WARMUP)
        assert simulator.fastforward_summary == {
            "engaged": False, "reason": "generator input"}
        oracle = FrontEndSimulator(program, CONFIGS["base"], seed=0)
        expected = oracle.run(records, warmup=WARMUP)
        assert dataclasses.asdict(stats) == dataclasses.asdict(expected)

    def test_dense_artifacts_disable_fast_forward(self, steady,
                                                  monkeypatch):
        from repro.obs import EventTrace

        program, records, compiled = steady
        monkeypatch.setenv("REPRO_FASTFORWARD", "1")
        simulator = FrontEndSimulator(program, CONFIGS["base"], seed=0)
        simulator.attach_trace(EventTrace())
        simulator.run_compiled(compiled, warmup=WARMUP)
        assert simulator.fastforward_summary == {
            "engaged": False, "reason": "event trace attached"}

    def test_fallbacks_are_counted(self, steady, monkeypatch):
        program, records, compiled = steady
        fastforward.reset_fallbacks()
        _run(program, records, compiled, CONFIGS["base"], "compiled",
             monkeypatch, False)
        assert fastforward.fallback_counts() == {"disabled by env": 1}
        fastforward.reset_fallbacks()


# ----------------------------------------------------------------------
# Full Figure-14 grid, fast-forward on vs off, serial and parallel
# ----------------------------------------------------------------------

GRID_CONFIGS = (
    FrontEndConfig(),
    FrontEndConfig(skia=SkiaConfig(decode_tails=False)),
    FrontEndConfig(skia=SkiaConfig(decode_heads=False)),
    FrontEndConfig(skia=SkiaConfig()),
)
GRID_RECORDS = 1_000
GRID_WARMUP = 150


@pytest.mark.parametrize("workload", WORKLOAD_NAMES + (STEADY,))
def test_fig14_grid_on_off_identity(workload, monkeypatch):
    """Stats + metrics + interval series identical, on vs off, per cell."""
    program = build_program(workload, seed=0)
    records = build_trace(workload, GRID_RECORDS, seed=0)
    compiled = compile_trace(records)
    for config in GRID_CONFIGS:
        config = dataclasses.replace(config, interval_size=100)
        for engine in ("object", "compiled", "batched"):
            on = _run(program, records, compiled, config, engine,
                      monkeypatch, True, warmup=GRID_WARMUP)
            off = _run(program, records, compiled, config, engine,
                       monkeypatch, False, warmup=GRID_WARMUP)
            assert on[0] == off[0], (workload, engine)
            assert on[1] == off[1], (workload, engine)
            assert on[2] == off[2], (workload, engine)


class TestHarnessGrid:
    """The harness plumbing preserves on/off identity, serial + parallel."""

    SCALE = Scale("ff-equiv", records=GRID_RECORDS, warmup=GRID_WARMUP)
    CELLS = [Cell(workload, config, 0, False)
             for workload in WORKLOAD_NAMES[:3] + (STEADY,)
             for config in GRID_CONFIGS]

    def _stats(self, jobs, monkeypatch, on):
        monkeypatch.setenv("REPRO_FASTFORWARD", "1" if on else "0")
        runner = ParallelRunner(scale=self.SCALE, jobs=jobs, store=None)
        return runner.run_batch(self.CELLS)

    def test_serial_identity(self, monkeypatch):
        reference = self._stats(1, monkeypatch, False)
        fast = self._stats(1, monkeypatch, True)
        for expect, got, cell in zip(reference, fast, self.CELLS):
            assert dataclasses.asdict(got) == dataclasses.asdict(expect), \
                cell

    def test_parallel_identity(self, monkeypatch):
        reference = self._stats(1, monkeypatch, False)
        fast = self._stats(2, monkeypatch, True)
        for expect, got, cell in zip(reference, fast, self.CELLS):
            assert dataclasses.asdict(got) == dataclasses.asdict(expect), \
                cell
