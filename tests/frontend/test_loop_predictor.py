"""Loop termination predictor (the L of TAGE-SC-L)."""

from repro.frontend.predictor import LoopPredictor


def run_loop(predictor, pc, trip, visits):
    """Feed `visits` executions of a trip-`trip` loop; returns accuracy
    over the final visit."""
    correct = total = 0
    for visit in range(visits):
        for iteration in range(trip + 1):
            taken = iteration < trip
            prediction = predictor.predict(pc)
            if visit == visits - 1 and prediction is not None:
                correct += prediction == taken
                total += 1
            predictor.update(pc, taken)
    return correct, total


class TestLearning:
    def test_learns_fixed_trip(self):
        predictor = LoopPredictor(confidence_threshold=3)
        correct, total = run_loop(predictor, 0x1000, trip=7, visits=10)
        assert total == 8          # confident on every iteration
        assert correct == 8        # including the exit

    def test_not_confident_before_threshold(self):
        predictor = LoopPredictor(confidence_threshold=3)
        run_loop(predictor, 0x1000, trip=5, visits=2)
        assert predictor.predict(0x1000) is None

    def test_unknown_pc_returns_none(self):
        assert LoopPredictor().predict(0x42) is None

    def test_relearn_after_trip_change(self):
        predictor = LoopPredictor(confidence_threshold=2)
        run_loop(predictor, 0x1000, trip=4, visits=6)
        # Trip changes: confidence resets, then re-learns.
        run_loop(predictor, 0x1000, trip=9, visits=1)
        assert predictor.predict(0x1000) is None
        correct, total = run_loop(predictor, 0x1000, trip=9, visits=5)
        assert total and correct == total

    def test_irregular_branch_never_confident(self):
        predictor = LoopPredictor(confidence_threshold=3)
        outcomes = [True, True, False, True, False, True, True, True,
                    False, False]
        for _ in range(20):
            for taken in outcomes:
                predictor.update(0x2000, taken)
        assert predictor.predict(0x2000) is None

    def test_runaway_taken_resets(self):
        predictor = LoopPredictor(max_trip=16)
        for _ in range(100):
            predictor.update(0x3000, True)  # never exits
        entry = predictor._table[0x3000]
        assert entry.current <= 16
        assert predictor.predict(0x3000) is None


class TestCapacity:
    def test_lru_eviction(self):
        predictor = LoopPredictor(entries=2, confidence_threshold=1)
        run_loop(predictor, 0x1, trip=3, visits=4)
        run_loop(predictor, 0x2, trip=3, visits=4)
        run_loop(predictor, 0x3, trip=3, visits=4)  # evicts 0x1
        assert 0x1 not in predictor._table
        assert predictor.predict(0x3) is not None
