"""BPU outcome logic, case by case, with crafted BlockRecords."""

import pytest

from repro.core.skia import Skia
from repro.frontend.bpu import BranchPredictionUnit
from repro.frontend.config import FrontEndConfig, SkiaConfig
from repro.frontend.stats import SimStats
from repro.isa.branch import BranchKind
from repro.workloads.trace import BlockRecord


def record(kind, pc=0x1000, taken=True, target=0x2000, branch_len=5,
           n_instr=3):
    return BlockRecord(block_start=pc - 10, n_instr=n_instr, branch_pc=pc,
                       branch_len=branch_len, kind=kind, taken=taken,
                       target=target, fallthrough=pc + branch_len,
                       next_pc=target if taken else pc + branch_len)


@pytest.fixture()
def bpu():
    return BranchPredictionUnit(FrontEndConfig())


@pytest.fixture()
def stats():
    return SimStats()


class TestUndetected:
    def test_uncond_miss_is_decode_resteer(self, bpu, stats):
        prediction = bpu.process(record(BranchKind.DIRECT_UNCOND), True, stats)
        assert not prediction.btb_hit
        assert prediction.resteer == "decode"
        assert prediction.wrong_path_pc == 0x1005
        assert stats.btb_misses[BranchKind.DIRECT_UNCOND] == 1
        assert stats.btb_miss_l1i_hit == 1

    def test_l1i_presence_flag_recorded(self, bpu, stats):
        bpu.process(record(BranchKind.DIRECT_UNCOND), False, stats)
        assert stats.btb_miss_l1i_hit == 0

    def test_call_miss_is_decode_resteer_and_pushes_ras(self, bpu, stats):
        prediction = bpu.process(record(BranchKind.CALL), True, stats)
        assert prediction.resteer == "decode"
        assert bpu.ras.peek() == 0x1005

    def test_return_miss_with_good_ras(self, bpu, stats):
        bpu.process(record(BranchKind.CALL, pc=0x900, target=0x1000), True,
                    stats)
        ret = record(BranchKind.RETURN, pc=0x1000, target=0x905,
                     branch_len=1)
        prediction = bpu.process(ret, True, stats)
        assert prediction.resteer == "decode"  # identified at decode
        assert stats.ras_mispredicts == 0

    def test_return_miss_with_empty_ras_is_exec(self, bpu, stats):
        prediction = bpu.process(
            record(BranchKind.RETURN, branch_len=1), True, stats)
        assert prediction.resteer == "exec"
        assert stats.ras_mispredicts == 1

    def test_not_taken_cond_costs_nothing_when_predicted_not_taken(
            self, bpu, stats):
        # Train not-taken first so the direction predictor agrees.
        for _ in range(50):
            bpu.process(record(BranchKind.DIRECT_COND, taken=False), True,
                        stats)
        prediction = bpu.process(
            record(BranchKind.DIRECT_COND, taken=False), True, stats)
        assert prediction.resteer is None

    def test_taken_cond_miss_resteers(self, bpu, stats):
        prediction = bpu.process(
            record(BranchKind.DIRECT_COND, pc=0x7770, taken=True), True,
            stats)
        assert prediction.resteer in ("decode", "exec")

    def test_indirect_miss(self, bpu, stats):
        prediction = bpu.process(
            record(BranchKind.INDIRECT_UNCOND, branch_len=2), True, stats)
        # First sight: ITTAGE cannot know the target -> exec resteer.
        assert prediction.resteer == "exec"


class TestBTBHit:
    def test_uncond_hit_no_resteer(self, bpu, stats):
        rec = record(BranchKind.DIRECT_UNCOND)
        bpu.process(rec, True, stats)       # inserts into BTB
        prediction = bpu.process(rec, True, stats)
        assert prediction.btb_hit
        assert prediction.resteer is None

    def test_call_hit_no_resteer(self, bpu, stats):
        rec = record(BranchKind.CALL)
        bpu.process(rec, True, stats)
        prediction = bpu.process(rec, True, stats)
        assert prediction.resteer is None

    def test_cond_hit_correct_direction(self, bpu, stats):
        rec = record(BranchKind.DIRECT_COND, taken=True)
        for _ in range(50):
            bpu.process(rec, True, stats)
        prediction = bpu.process(rec, True, stats)
        assert prediction.btb_hit
        assert prediction.resteer is None

    def test_cond_hit_mispredict_is_exec(self, bpu, stats):
        rec_taken = record(BranchKind.DIRECT_COND, taken=True)
        for _ in range(50):
            bpu.process(rec_taken, True, stats)
        flipped = record(BranchKind.DIRECT_COND, taken=False)
        prediction = bpu.process(flipped, True, stats)
        assert prediction.btb_hit
        assert prediction.resteer == "exec"
        assert prediction.wrong_path_pc == flipped.target

    def test_return_hit_good_ras(self, bpu, stats):
        bpu.process(record(BranchKind.CALL, pc=0x900, target=0x1000), True,
                    stats)
        ret = record(BranchKind.RETURN, pc=0x1000, target=0x905,
                     branch_len=1)
        bpu.process(ret, True, stats)
        bpu.process(record(BranchKind.CALL, pc=0x900, target=0x1000), True,
                    stats)
        prediction = bpu.process(ret, True, stats)
        assert prediction.btb_hit
        assert prediction.resteer is None

    def test_indirect_hit_with_stable_target(self, bpu, stats):
        rec = record(BranchKind.INDIRECT_UNCOND, branch_len=2)
        for _ in range(5):
            bpu.process(rec, True, stats)
        prediction = bpu.process(rec, True, stats)
        assert prediction.btb_hit
        assert prediction.resteer is None

    def test_miss_counting_stops_after_insert(self, bpu, stats):
        rec = record(BranchKind.DIRECT_UNCOND)
        bpu.process(rec, True, stats)
        bpu.process(rec, True, stats)
        assert stats.btb_misses[BranchKind.DIRECT_UNCOND] == 1
        assert stats.btb_lookups == 2


class TestSBBHit:
    def make_skia_bpu(self):
        config = FrontEndConfig(skia=SkiaConfig())
        skia = Skia(image=b"\x90" * 64, base_address=0,
                    config=config.skia)
        return BranchPredictionUnit(config, skia=skia), skia

    def test_correct_usbb_hit_avoids_resteer(self, stats):
        bpu, skia = self.make_skia_bpu()
        skia.sbb.insert_unconditional(0x1000, 0x2000)
        prediction = bpu.process(record(BranchKind.DIRECT_UNCOND), True,
                                 stats)
        assert not prediction.btb_hit
        assert prediction.sbb_hit == "u"
        assert prediction.resteer is None
        assert prediction.used_sbb
        assert stats.sbb_hits_u == 1
        # The miss is still a BTB miss for MPKI accounting.
        assert stats.btb_misses[BranchKind.DIRECT_UNCOND] == 1

    def test_usbb_hit_marks_retired_on_commit(self, stats):
        bpu, skia = self.make_skia_bpu()
        skia.sbb.insert_unconditional(0x1000, 0x2000)
        bpu.process(record(BranchKind.DIRECT_UNCOND), True, stats)
        entry = skia.sbb.usbb.lookup(0x1000)
        assert entry.retired
        assert stats.sbb_retired_marks == 1

    def test_wrong_target_usbb_hit_is_decode_resteer(self, stats):
        bpu, skia = self.make_skia_bpu()
        skia.sbb.insert_unconditional(0x1000, 0xBAD)
        prediction = bpu.process(record(BranchKind.DIRECT_UNCOND), True,
                                 stats)
        assert prediction.resteer == "decode"
        assert not prediction.used_sbb
        assert stats.sbb_wrong_target == 1

    def test_rsbb_hit_with_good_ras(self, stats):
        bpu, skia = self.make_skia_bpu()
        bpu.process(record(BranchKind.CALL, pc=0x900, target=0x1000), True,
                    stats)
        skia.sbb.insert_return(0x1000)
        ret = record(BranchKind.RETURN, pc=0x1000, target=0x905,
                     branch_len=1)
        prediction = bpu.process(ret, True, stats)
        assert prediction.sbb_hit == "r"
        assert prediction.resteer is None
        assert prediction.used_sbb

    def test_rsbb_hit_on_non_return_is_bogus(self, stats):
        bpu, skia = self.make_skia_bpu()
        skia.sbb.insert_return(0x1000)
        prediction = bpu.process(record(BranchKind.DIRECT_COND, taken=True),
                                 True, stats)
        assert prediction.sbb_hit == "r"
        assert prediction.resteer == "decode"
        assert stats.sbb_wrong_target == 1

    def test_btb_hit_shadows_sbb(self, stats):
        bpu, skia = self.make_skia_bpu()
        rec = record(BranchKind.DIRECT_UNCOND)
        bpu.process(rec, True, stats)   # now in BTB
        skia.sbb.insert_unconditional(0x1000, 0x2000)
        prediction = bpu.process(rec, True, stats)
        assert prediction.btb_hit
        assert prediction.sbb_hit is None


class TestWarmupGating:
    def test_no_stats_when_none(self, bpu):
        prediction = bpu.process(record(BranchKind.DIRECT_UNCOND), True,
                                 None)
        assert prediction.resteer == "decode"
        # Structures still trained: second time hits.
        prediction = bpu.process(record(BranchKind.DIRECT_UNCOND), True,
                                 None)
        assert prediction.btb_hit
