"""Bit-identity of the batched lane kernel against the object path.

The batched kernel (:mod:`repro.frontend.batch`) re-implements the
replay loop with inlined structures and chunk-local counters; the object
path (``FrontEndSimulator.run``) stays the oracle.  These tests pin the
contract: for every cell of the Figure-14 grid, the kernel's
``SimStats`` *and* metric snapshot (structure counters, cache gauges,
SBB/RAS/predictor state) are bit-identical to the object path -- across
seeds, with and without numpy, through lane sharing, and through the
harness plumbing that routes cells onto the kernel.
"""

import dataclasses

import pytest

import repro.workloads.compiled as compiled_mod
from repro.frontend.batch import (
    BatchedFrontEndSimulator,
    BatchUnsupported,
    batch_supported,
    run_compiled_batched,
)
from repro.frontend.config import FrontEndConfig, SkiaConfig
from repro.frontend.engine import FrontEndSimulator
from repro.harness.parallel import Cell, ParallelRunner
from repro.harness.runner import ExperimentRunner
from repro.harness.scale import Scale
from repro.obs import EventTrace
from repro.workloads import (
    WORKLOAD_NAMES,
    build_program,
    build_trace,
    compile_trace,
)

RECORDS = 1_000
WARMUP = 150

#: The four Figure-14 configurations: FDIP baseline, Skia with only one
#: shadow-branch half enabled, and full Skia.
CONFIGS = {
    "base": FrontEndConfig(),
    "head": FrontEndConfig(skia=SkiaConfig(decode_tails=False)),
    "tail": FrontEndConfig(skia=SkiaConfig(decode_heads=False)),
    "both": FrontEndConfig(skia=SkiaConfig()),
}


def _object_run(program, records, config, seed=0, warmup=WARMUP):
    simulator = FrontEndSimulator(program, config, seed=seed)
    stats = simulator.run(records, warmup=warmup)
    return dataclasses.asdict(stats), simulator.metrics_snapshot()


def _batched_run(program, compiled, config, seed=0, warmup=WARMUP):
    simulator = FrontEndSimulator(program, config, seed=seed)
    stats = run_compiled_batched(simulator, compiled, warmup=warmup)
    return dataclasses.asdict(stats), simulator.metrics_snapshot()


@pytest.mark.parametrize("workload", WORKLOAD_NAMES)
def test_fig14_grid_bit_identity(workload):
    """Every (workload, config) cell: object path == batched kernel."""
    program = build_program(workload, seed=0)
    records = build_trace(workload, RECORDS, seed=0)
    compiled = compile_trace(records)
    for name, config in CONFIGS.items():
        obj_stats, obj_metrics = _object_run(program, records, config)
        bat_stats, bat_metrics = _batched_run(program, compiled, config)
        assert bat_stats == obj_stats, (workload, name)
        assert bat_metrics == obj_metrics, (workload, name)


@pytest.mark.parametrize("seed", [1, 2, 3])
def test_seed_sweep_bit_identity(seed):
    """Seeds beyond the grid default stay bit-identical too."""
    for workload in ("voter", "kafka"):
        program = build_program(workload, seed=seed)
        records = build_trace(workload, RECORDS, seed=seed)
        compiled = compile_trace(records)
        for name, config in CONFIGS.items():
            assert (_batched_run(program, compiled, config, seed=seed)
                    == _object_run(program, records, config, seed=seed)), \
                (workload, name, seed)


def test_lane_sharing_matches_independent_runs():
    """N lanes over one shared table == N independent kernel runs."""
    program = build_program("voter", seed=0)
    records = build_trace("voter", RECORDS, seed=0)
    compiled = compile_trace(records)
    batch = BatchedFrontEndSimulator(chunk_records=257)  # force many chunks
    simulators = [FrontEndSimulator(program, config, seed=0)
                  for config in CONFIGS.values()]
    for simulator in simulators:
        batch.add_lane(simulator, compiled, warmup=WARMUP)
    shared = batch.run()
    for simulator, stats, (name, config) in zip(simulators, shared,
                                                CONFIGS.items()):
        expect_stats, expect_metrics = _object_run(program, records, config)
        assert dataclasses.asdict(stats) == expect_stats, name
        assert simulator.metrics_snapshot() == expect_metrics, name


class TestEdgeCases:
    CONFIG = FrontEndConfig(skia=SkiaConfig())

    def _both_paths(self, records, warmup):
        program = build_program("voter", seed=0)
        compiled = compile_trace(records)
        return (_object_run(program, records, self.CONFIG, warmup=warmup),
                _batched_run(program, compiled, self.CONFIG, warmup=warmup))

    def test_empty_trace(self):
        obj, bat = self._both_paths([], warmup=0)
        assert bat == obj

    def test_single_record_trace(self):
        records = build_trace("voter", 1, seed=0)
        obj, bat = self._both_paths(records, warmup=0)
        assert bat == obj

    def test_warmup_exceeds_trace_length(self):
        records = build_trace("voter", 50, seed=0)
        obj, bat = self._both_paths(records, warmup=500)
        assert bat == obj

    def test_warmup_equals_trace_length(self):
        records = build_trace("voter", 50, seed=0)
        obj, bat = self._both_paths(records, warmup=50)
        assert bat == obj

    def test_warmup_boundary_mid_chunk(self):
        """The advance() warmup split, exercised inside one chunk."""
        program = build_program("voter", seed=0)
        records = build_trace("voter", 300, seed=0)
        compiled = compile_trace(records)
        simulator = FrontEndSimulator(program, self.CONFIG, seed=0)
        batch = BatchedFrontEndSimulator(chunk_records=128)
        batch.add_lane(simulator, compiled, warmup=200)
        stats = batch.run()[0]
        expect_stats, expect_metrics = _object_run(
            program, records, self.CONFIG, warmup=200)
        assert dataclasses.asdict(stats) == expect_stats
        assert simulator.metrics_snapshot() == expect_metrics


def test_numpy_absent_fallback(monkeypatch):
    """Pure-Python row derivation is bit-identical to the numpy path."""
    program = build_program("voter", seed=0)
    records = build_trace("voter", RECORDS, seed=0)
    expected = {
        name: _object_run(program, records, config)
        for name, config in CONFIGS.items()
    }
    monkeypatch.setattr(compiled_mod, "_np", None)
    compiled = compile_trace(records)  # fresh tables, built without numpy
    for name, config in CONFIGS.items():
        assert _batched_run(program, compiled, config) == expected[name], \
            name


class TestSupportGating:
    """Lanes the kernel cannot replicate exactly are refused."""

    def _simulator(self):
        program = build_program("voter", seed=0)
        return FrontEndSimulator(program, FrontEndConfig(), seed=0)

    def test_plain_simulator_is_supported(self):
        assert batch_supported(self._simulator())

    def test_event_trace_unsupported(self):
        simulator = self._simulator()
        simulator.attach_trace(EventTrace())
        assert not batch_supported(simulator)

    def test_attribution_unsupported(self):
        simulator = self._simulator()
        simulator.attach_attribution()
        assert not batch_supported(simulator)

    def test_add_lane_raises_on_unsupported(self):
        simulator = self._simulator()
        simulator.attach_attribution()
        compiled = compile_trace(build_trace("voter", 10, seed=0))
        batch = BatchedFrontEndSimulator()
        with pytest.raises(BatchUnsupported):
            batch.add_lane(simulator, compiled, warmup=0)


class TestHarnessPaths:
    """REPRO_BATCH routing keeps serial/parallel results bit-identical."""

    SCALE = Scale("batchequiv", records=RECORDS, warmup=WARMUP)
    CELLS = [Cell(workload, config, seed, False)
             for workload in WORKLOAD_NAMES[:2]
             for config in CONFIGS.values()
             for seed in (0, 1)]

    def _reference(self, monkeypatch):
        monkeypatch.setenv("REPRO_BATCH", "0")
        try:
            runner = ParallelRunner(scale=self.SCALE, jobs=1, store=None)
            return runner.run_batch(self.CELLS)
        finally:
            monkeypatch.delenv("REPRO_BATCH")

    def test_serial_batched_matches_object_path(self, monkeypatch):
        reference = self._reference(monkeypatch)
        runner = ExperimentRunner(scale=self.SCALE, store=None)
        batched = runner.run_cells(self.CELLS)
        for expect, got, cell in zip(reference, batched, self.CELLS):
            assert dataclasses.asdict(got) == dataclasses.asdict(expect), \
                cell

    def test_worker_batched_matches_object_path(self, monkeypatch):
        reference = self._reference(monkeypatch)
        runner = ParallelRunner(scale=self.SCALE, jobs=2, store=None)
        batched = runner.run_batch(self.CELLS)
        for expect, got, cell in zip(reference, batched, self.CELLS):
            assert dataclasses.asdict(got) == dataclasses.asdict(expect), \
                cell

    def test_attribution_falls_back_to_object_path(self, tmp_path):
        """record_attribution cells bypass the kernel but still succeed."""
        runner = ExperimentRunner(scale=self.SCALE, store=None,
                                  record_attribution=True)
        stats, aggregator = runner.run_with_attribution(
            "voter", FrontEndConfig(skia=SkiaConfig()))
        assert stats.blocks > 0
        assert aggregator is not None
