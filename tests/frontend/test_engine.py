"""Engine integration tests on the micro workload."""

import pytest

from repro.frontend.config import FrontEndConfig, SkiaConfig
from repro.frontend.engine import FrontEndSimulator, simulate


@pytest.fixture(scope="module")
def baseline_stats(micro_program, micro_trace):
    return simulate(micro_program, micro_trace, FrontEndConfig(),
                    warmup=2_000)


@pytest.fixture(scope="module")
def skia_stats(micro_program, micro_trace):
    return simulate(micro_program, micro_trace,
                    FrontEndConfig(skia=SkiaConfig()), warmup=2_000)


class TestAccounting:
    def test_counts_post_warmup_records_only(self, micro_trace,
                                             baseline_stats):
        measured = micro_trace[2_000:]
        assert baseline_stats.blocks == len(measured)
        assert baseline_stats.instructions == sum(
            record.n_instr for record in measured)

    def test_ipc_in_sane_range(self, baseline_stats):
        assert 0.1 < baseline_stats.ipc < 12.0

    def test_branch_counts_match_records(self, micro_trace, baseline_stats):
        total = sum(baseline_stats.branches.values())
        assert total == len(micro_trace) - 2_000

    def test_misses_bounded_by_lookups(self, baseline_stats):
        assert baseline_stats.total_btb_misses <= baseline_stats.btb_lookups

    def test_l1i_hit_subset_of_misses(self, baseline_stats):
        assert (baseline_stats.btb_miss_l1i_hit
                <= baseline_stats.total_btb_misses)

    def test_resteers_bounded_by_branches(self, baseline_stats):
        resteers = (baseline_stats.decode_resteers
                    + baseline_stats.exec_resteers)
        assert resteers <= sum(baseline_stats.branches.values())

    def test_decoder_idle_positive(self, baseline_stats):
        assert baseline_stats.decoder_idle_cycles > 0


class TestDeterminism:
    def test_same_run_same_stats(self, micro_program, micro_trace):
        first = simulate(micro_program, micro_trace, FrontEndConfig(),
                         warmup=1_000)
        second = simulate(micro_program, micro_trace, FrontEndConfig(),
                          warmup=1_000)
        assert first.cycles == second.cycles
        assert first.total_btb_misses == second.total_btb_misses


class TestSkiaEffects:
    def test_skia_never_slower(self, baseline_stats, skia_stats):
        # On shadow-friendly synthetic workloads Skia should not lose.
        assert skia_stats.ipc >= baseline_stats.ipc * 0.999

    def test_skia_reduces_decode_resteers(self, baseline_stats, skia_stats):
        assert skia_stats.decode_resteers < baseline_stats.decode_resteers

    def test_skia_reduces_decoder_idle(self, baseline_stats, skia_stats):
        assert (skia_stats.decoder_idle_cycles
                < baseline_stats.decoder_idle_cycles)

    def test_sbb_activity(self, skia_stats):
        assert skia_stats.total_sbb_insertions > 0
        assert skia_stats.total_sbb_hits > 0
        assert skia_stats.sbd_tail_decodes > 0
        assert skia_stats.sbd_head_decodes > 0

    def test_same_btb_miss_count(self, baseline_stats, skia_stats):
        """The SBB does not change raw BTB miss accounting."""
        assert (skia_stats.total_btb_misses
                == baseline_stats.total_btb_misses)

    def test_bogus_rate_small(self, skia_stats):
        assert skia_stats.bogus_insertion_rate < 0.05


class TestConfigurationEffects:
    def test_bigger_btb_fewer_misses(self, micro_program, micro_trace):
        small = simulate(micro_program, micro_trace,
                         FrontEndConfig().with_btb_entries(256),
                         warmup=2_000)
        large = simulate(micro_program, micro_trace,
                         FrontEndConfig().with_btb_entries(8192),
                         warmup=2_000)
        assert large.total_btb_misses < small.total_btb_misses

    def test_infinite_btb_floor(self, micro_program, micro_trace):
        infinite = simulate(micro_program, micro_trace,
                            FrontEndConfig().with_btb_entries(
                                1 << 20, infinite=True),
                            warmup=2_000)
        finite = simulate(micro_program, micro_trace, FrontEndConfig(),
                          warmup=2_000)
        assert infinite.total_btb_misses <= finite.total_btb_misses

    def test_tiny_l1i_more_misses(self, micro_program, micro_trace):
        small_cache = FrontEndConfig(l1i_size=4 * 1024)
        small = simulate(micro_program, micro_trace, small_cache,
                         warmup=2_000)
        large = simulate(micro_program, micro_trace, FrontEndConfig(),
                         warmup=2_000)
        assert small.l1i_misses >= large.l1i_misses

    def test_head_only_and_tail_only_both_help(self, micro_program,
                                               micro_trace, baseline_stats):
        head = simulate(micro_program, micro_trace,
                        FrontEndConfig(skia=SkiaConfig(decode_tails=False)),
                        warmup=2_000)
        tail = simulate(micro_program, micro_trace,
                        FrontEndConfig(skia=SkiaConfig(decode_heads=False)),
                        warmup=2_000)
        # The micro workload is tiny; head-only coverage is marginal
        # there (hits ~1), so assert activity rather than hit counts for
        # the head configuration.
        assert head.total_sbb_insertions > 0
        assert tail.total_sbb_hits > 0
        assert head.sbd_tail_decodes == 0
        assert tail.sbd_head_decodes == 0


class TestRunArguments:
    def test_requires_records(self, micro_program):
        simulator = FrontEndSimulator(micro_program, FrontEndConfig())
        with pytest.raises(ValueError):
            simulator.run()

    def test_record_iter_equivalent(self, micro_program, micro_trace):
        from_list = simulate(micro_program, micro_trace, FrontEndConfig(),
                             warmup=500)
        simulator = FrontEndSimulator(micro_program, FrontEndConfig())
        from_iter = simulator.run(record_iter=iter(micro_trace), warmup=500)
        assert from_list.cycles == from_iter.cycles

    def test_zero_warmup(self, micro_program, micro_trace):
        stats = simulate(micro_program, micro_trace[:1000], FrontEndConfig())
        assert stats.blocks == 1000
