"""BPU corner cases: partial-tag aliasing, SBB/BTB interactions."""

import pytest

from repro.core.skia import Skia
from repro.frontend.bpu import BranchPredictionUnit
from repro.frontend.config import FrontEndConfig, SkiaConfig
from repro.frontend.stats import SimStats
from repro.isa.branch import BranchKind
from repro.workloads.trace import BlockRecord


def record(kind, pc=0x1000, taken=True, target=0x2000, branch_len=5):
    return BlockRecord(block_start=pc - 10, n_instr=3, branch_pc=pc,
                       branch_len=branch_len, kind=kind, taken=taken,
                       target=target, fallthrough=pc + branch_len,
                       next_pc=target if taken else pc + branch_len)


class TestBTBAliasing:
    def make_narrow_bpu(self):
        """A BPU whose BTB has 1-bit tags: aliasing is easy to force."""
        config = FrontEndConfig(btb_entries=8, btb_assoc=2, btb_tag_bits=1)
        return BranchPredictionUnit(config)

    def find_alias(self, bpu, pc):
        reference = bpu.btb._index_tag(pc)
        return next(candidate for candidate in range(pc + 2, pc + 100_000, 2)
                    if bpu.btb._index_tag(candidate) == reference)

    def test_false_hit_wrong_kind_counts(self):
        bpu = self.make_narrow_bpu()
        stats = SimStats()
        bpu.process(record(BranchKind.DIRECT_UNCOND, pc=0x1000), True, stats)
        alias = self.find_alias(bpu, 0x1000)
        prediction = bpu.process(
            record(BranchKind.RETURN, pc=alias, branch_len=1), True, stats)
        assert stats.btb_false_hits == 1
        assert prediction.btb_hit
        assert prediction.resteer == "decode"

    def test_false_hit_same_kind_wrong_target(self):
        bpu = self.make_narrow_bpu()
        stats = SimStats()
        bpu.process(record(BranchKind.DIRECT_UNCOND, pc=0x1000,
                           target=0xAAAA), True, stats)
        alias = self.find_alias(bpu, 0x1000)
        prediction = bpu.process(
            record(BranchKind.DIRECT_UNCOND, pc=alias, target=0xBBBB),
            True, stats)
        # Same kind, different target: the decoder catches the wrong
        # target (not counted as a kind-mismatch false hit).
        assert prediction.resteer == "decode"

    def test_false_hit_on_not_taken_cond_costs_nothing(self):
        bpu = self.make_narrow_bpu()
        stats = SimStats()
        bpu.process(record(BranchKind.DIRECT_UNCOND, pc=0x1000), True, stats)
        alias = self.find_alias(bpu, 0x1000)
        prediction = bpu.process(
            record(BranchKind.DIRECT_COND, pc=alias, taken=False),
            True, stats)
        assert prediction.resteer is None


class TestSBBAliasInteractions:
    def make_skia_bpu(self):
        config = FrontEndConfig(skia=SkiaConfig())
        skia = Skia(image=b"\x90" * 64, base_address=0, config=config.skia)
        return BranchPredictionUnit(config, skia=skia), skia

    def test_usbb_hit_on_conditional_is_bogus_redirect(self):
        bpu, skia = self.make_skia_bpu()
        stats = SimStats()
        skia.sbb.insert_unconditional(0x1000, 0x2000)
        prediction = bpu.process(
            record(BranchKind.DIRECT_COND, pc=0x1000, taken=True),
            True, stats)
        assert prediction.sbb_hit == "u"
        assert prediction.resteer == "decode"
        assert stats.sbb_wrong_target == 1
        # The conditional still trained the direction predictor.
        assert stats.cond_predictions == 1

    def test_usbb_hit_on_indirect_trains_ittage(self):
        bpu, skia = self.make_skia_bpu()
        stats = SimStats()
        skia.sbb.insert_unconditional(0x1000, 0x2000)
        bpu.process(record(BranchKind.INDIRECT_UNCOND, pc=0x1000,
                           branch_len=2), True, stats)
        assert stats.indirect_predictions == 1

    def test_sbb_entry_becomes_shadowed_after_commit(self):
        """After the branch commits it enters the BTB; the SBB entry is
        no longer consulted on later executions."""
        bpu, skia = self.make_skia_bpu()
        stats = SimStats()
        skia.sbb.insert_unconditional(0x1000, 0x2000)
        first = bpu.process(record(BranchKind.DIRECT_UNCOND), True, stats)
        second = bpu.process(record(BranchKind.DIRECT_UNCOND), True, stats)
        assert first.used_sbb and not second.used_sbb
        assert second.btb_hit

    def test_ras_protected_from_bogus_usbb_returns(self):
        """A u-hit on an actual return must still pop the RAS exactly
        once (stack discipline survives bogus redirects)."""
        bpu, skia = self.make_skia_bpu()
        stats = SimStats()
        bpu.process(record(BranchKind.CALL, pc=0x900, target=0x1000),
                    True, stats)
        assert len(bpu.ras) == 1
        skia.sbb.insert_unconditional(0x1000, 0xBAD)
        ret = record(BranchKind.RETURN, pc=0x1000, target=0x905,
                     branch_len=1)
        bpu.process(ret, True, stats)
        assert len(bpu.ras) == 0


class TestCommitBehaviour:
    def test_not_taken_cond_still_inserted_into_btb(self):
        bpu = BranchPredictionUnit(FrontEndConfig())
        stats = SimStats()
        rec = record(BranchKind.DIRECT_COND, taken=False)
        bpu.process(rec, True, stats)
        assert bpu.btb.contains(rec.branch_pc)

    def test_indirect_btb_entry_stores_last_target(self):
        bpu = BranchPredictionUnit(FrontEndConfig())
        stats = SimStats()
        rec = record(BranchKind.INDIRECT_UNCOND, branch_len=2)
        bpu.process(rec, True, stats)
        entry = bpu.btb.lookup(rec.branch_pc)
        assert entry.target == rec.target

    def test_return_btb_entry_has_no_target(self):
        bpu = BranchPredictionUnit(FrontEndConfig())
        stats = SimStats()
        rec = record(BranchKind.RETURN, branch_len=1)
        bpu.process(rec, True, stats)
        assert bpu.btb.lookup(rec.branch_pc).target is None
