"""Progress reporting: ETA arithmetic, straggler flags, TTY awareness.

Everything runs on a synthetic monotonic clock -- no sleeping, no
timing sensitivity.  The straggler tests cross-check the live reporter
path against the post-hoc :func:`repro.obs.ledger.flag_stragglers`
pass: both must converge on the same flags.
"""

from __future__ import annotations

import io

import pytest

from repro.harness.progress import (ProgressReporter, _format_eta,
                                    progress_enabled)
from repro.obs.ledger import RunLedger, read_manifest


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class TtyStream(io.StringIO):
    def isatty(self) -> bool:  # noqa: A003 - mirrors TextIO
        return True


def make_reporter(total=10, stream=None, **kwargs):
    clock = FakeClock()
    stream = stream if stream is not None else io.StringIO()
    reporter = ProgressReporter(total, stream=stream, clock=clock,
                                **kwargs)
    return reporter, clock, stream


class TestEtaMath:
    def test_format_eta(self):
        assert _format_eta(12) == "12s"
        assert _format_eta(200) == "3m20s"
        assert _format_eta(3720) == "1h02m"
        assert _format_eta(-5) == "0s"

    def test_rate_and_eta_from_synthetic_clock(self):
        reporter, clock, _ = make_reporter(total=10)
        clock.advance(8.0)
        reporter.update(4)
        assert reporter.rate == pytest.approx(0.5)
        assert reporter.eta_seconds == pytest.approx(12.0)

    def test_eta_unknown_before_first_completion(self):
        reporter, clock, _ = make_reporter(total=10)
        clock.advance(5.0)
        assert reporter.rate == 0.0
        assert reporter.eta_seconds is None

    def test_render_line(self):
        reporter, clock, _ = make_reporter(total=10)
        clock.advance(8.0)
        reporter.update(4)
        assert reporter.render() == "4/10 cells  0.5/s  ETA 12s"


class TestStragglers:
    def test_flagged_live_after_min_samples(self, tmp_path):
        ledger = RunLedger.create("t", root=tmp_path)
        reporter, clock, _ = make_reporter(total=10, ledger=ledger,
                                           min_samples=5,
                                           straggler_factor=4.0)
        for index in range(5):
            clock.advance(1.0)
            reporter.update(1, cell_id=f"c{index}", wall_s=1.0)
        clock.advance(10.0)
        reporter.update(1, cell_id="slow", wall_s=10.0)
        assert reporter.stragglers == ["slow"]
        records = read_manifest(ledger.manifest_path)
        flags = [r for r in records if r.get("phase") == "straggler"]
        assert [f["cell"] for f in flags] == ["slow"]
        assert flags[0]["median_s"] == 1.0
        ledger.close()

    def test_not_flagged_below_min_samples(self):
        reporter, clock, _ = make_reporter(total=10, min_samples=5)
        reporter.update(1, cell_id="a", wall_s=1.0)
        reporter.update(1, cell_id="slow", wall_s=100.0)
        assert reporter.stragglers == []

    def test_live_and_posthoc_agree(self, tmp_path):
        # The reporter flags live; flag_stragglers over the same walls
        # (written as done records) must add nothing new.
        from repro.obs.ledger import flag_stragglers

        ledger = RunLedger.create("t", root=tmp_path)
        reporter, clock, _ = make_reporter(total=6, ledger=ledger,
                                           min_samples=5)
        walls = [1.0, 1.0, 1.0, 1.0, 1.0, 10.0]
        for index, wall in enumerate(walls):
            cell = "slow" if wall > 1.0 else f"c{index}"
            ledger.cell(cell, "done", result="simulated", wall_s=wall)
            reporter.update(1, cell_id=cell, wall_s=wall)
        assert reporter.stragglers == ["slow"]
        assert flag_stragglers(ledger) == []  # already flagged live
        ledger.close()

    def test_straggler_count_rendered(self):
        reporter, clock, _ = make_reporter(total=6, min_samples=2)
        for index in range(2):
            reporter.update(1, cell_id=f"c{index}", wall_s=1.0)
        clock.advance(1.0)
        reporter.update(1, cell_id="slow", wall_s=50.0)
        assert "1 straggler" in reporter.render()

    def test_heartbeat_forwards_to_ledger(self, tmp_path):
        ledger = RunLedger.create("t", root=tmp_path)
        reporter, _, _ = make_reporter(total=4, ledger=ledger)
        reporter.completed = 2
        reporter.heartbeat(cell="c1")
        ledger.close()
        beats = [r for r in read_manifest(ledger.manifest_path)
                 if r["kind"] == "heartbeat"]
        assert beats and beats[0]["completed"] == 2
        assert beats[0]["total"] == 4


class TestRendering:
    def test_tty_rewrites_one_line(self):
        reporter, clock, stream = make_reporter(total=4,
                                                stream=TtyStream())
        reporter.update(1)
        clock.advance(5.0)
        reporter.update(1)
        reporter.finish()
        output = stream.getvalue()
        assert "\r\x1b[K" in output
        assert output.endswith("\n")

    def test_non_tty_prints_plain_lines(self):
        reporter, clock, stream = make_reporter(total=4)
        reporter.update(1)
        clock.advance(5.0)
        reporter.update(1)
        output = stream.getvalue()
        assert "\r" not in output
        assert all(line for line in output.strip().splitlines())

    def test_interval_rate_limits_emission(self):
        reporter, clock, stream = make_reporter(total=100, interval=2.0)
        reporter.update(1)          # first emission
        reporter.update(1)          # same instant: suppressed
        clock.advance(0.5)
        reporter.update(1)          # still inside interval
        clock.advance(2.0)
        reporter.update(1)          # interval passed
        assert len(stream.getvalue().strip().splitlines()) == 2

    def test_finish_forces_final_line(self):
        reporter, clock, stream = make_reporter(total=2, interval=60.0)
        reporter.update(2)
        reporter.finish()
        lines = stream.getvalue().strip().splitlines()
        assert lines[-1].startswith("2/2 cells")


class TestEnablement:
    def test_enabled_by_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_NO_PROGRESS", raising=False)
        assert progress_enabled()

    @pytest.mark.parametrize("value", ["1", "true", "yes", "on"])
    def test_suppressed_by_env(self, monkeypatch, value):
        monkeypatch.setenv("REPRO_NO_PROGRESS", value)
        assert not progress_enabled()
