"""End-to-end run-ledger integration: serial == parallel, conserved.

Runs a real (tiny) cell grid under ``start_run`` both serially and with
a two-worker pool and asserts the acceptance contract of the ledger
layer:

* every cell reaches a terminal state in both modes;
* serial and parallel manifests are **semantically identical** once
  normalised (ordering and host-specific fields aside): same cell ids,
  same lifecycle phases, same outcomes;
* span rollups equal profiler section totals and the ``harness.cell``
  span population covers exactly the spanned terminal cells, in both
  modes (the conservation invariants of :mod:`repro.obs.spans`).
"""

from __future__ import annotations

import json

import pytest

from repro.frontend.config import FrontEndConfig, SkiaConfig
from repro.harness.parallel import Cell
from repro.harness.runner import ExperimentRunner
from repro.harness.scale import Scale
from repro.obs import ledger as ledger_mod
from repro.obs.spans import (check_cell_conservation,
                             check_span_conservation, read_spans)
from repro.workloads.cache import WorkloadCache

TINY = Scale("test", records=6_000, warmup=2_000)

GRID = [Cell(workload, config)
        for workload in ("noop", "voter")
        for config in (FrontEndConfig(), FrontEndConfig(skia=SkiaConfig()))]

#: Fields that legitimately differ between serial and parallel runs
#: (host-specific measurements and execution-strategy choices).
VARIANT_FIELDS = frozenset({
    "wall_s", "shared_wall", "source", "mode", "hit", "store",
    "group_wall_s",
})


def _ledgered_run(tmp_path, monkeypatch, jobs: int):
    monkeypatch.setenv("REPRO_LEDGER", "1")
    monkeypatch.setenv("REPRO_NO_PROGRESS", "1")
    root = tmp_path / f"runs-j{jobs}"
    with ledger_mod.start_run(f"test jobs={jobs}", root=root) as ledger:
        runner = ExperimentRunner(scale=TINY, cache=WorkloadCache(),
                                  store=None)
        stats = runner.run_cells(GRID, jobs=jobs)
        run_dir = ledger.run_dir
    return stats, run_dir


@pytest.fixture(scope="module")
def ledgered_runs(tmp_path_factory):
    with pytest.MonkeyPatch.context() as monkeypatch:
        tmp_path = tmp_path_factory.mktemp("ledger-agreement")
        serial = _ledgered_run(tmp_path, monkeypatch, jobs=1)
        parallel = _ledgered_run(tmp_path, monkeypatch, jobs=2)
    return {"serial": serial, "parallel": parallel}


def _summary(run_dir):
    return ledger_mod.summarize(
        ledger_mod.read_manifest(run_dir / "manifest.jsonl"), run_dir)


def _normalised_cells(run_dir):
    """Per-cell (phases, outcome-fields) with host-variant fields removed."""
    summary = _summary(run_dir)
    out = {}
    for cell_id, state in summary.cells.items():
        fields = {key: value for key, value in state.fields.items()
                  if key not in VARIANT_FIELDS}
        out[cell_id] = (tuple(sorted(state.phases)), fields)
    return out


def _profiles(run_dir):
    profiles = {}
    for path in run_dir.glob("profile-*.json"):
        pid = int(path.stem.rsplit("-", 1)[1])
        profiles[pid] = json.loads(path.read_text(encoding="utf-8"))
    return profiles


class TestCompleteness:
    @pytest.mark.parametrize("mode", ["serial", "parallel"])
    def test_every_cell_terminal(self, ledgered_runs, mode):
        _, run_dir = ledgered_runs[mode]
        summary = _summary(run_dir)
        assert len(summary.cells) == len(GRID)
        assert summary.incomplete == []
        assert summary.status == "complete"

    @pytest.mark.parametrize("mode", ["serial", "parallel"])
    def test_all_cells_simulated(self, ledgered_runs, mode):
        _, run_dir = ledgered_runs[mode]
        assert _summary(run_dir).results() == {"simulated": len(GRID)}

    def test_parallel_run_heartbeats(self, ledgered_runs):
        _, run_dir = ledgered_runs["parallel"]
        assert _summary(run_dir).heartbeat_pids


class TestSerialParallelAgreement:
    def test_stats_bit_identical(self, ledgered_runs):
        serial_stats, _ = ledgered_runs["serial"]
        parallel_stats, _ = ledgered_runs["parallel"]
        assert serial_stats == parallel_stats

    def test_manifests_semantically_identical(self, ledgered_runs):
        _, serial_dir = ledgered_runs["serial"]
        _, parallel_dir = ledgered_runs["parallel"]
        assert (_normalised_cells(serial_dir)
                == _normalised_cells(parallel_dir))

    def test_grid_shape_recorded_identically(self, ledgered_runs):
        shapes = []
        for mode in ("serial", "parallel"):
            _, run_dir = ledgered_runs[mode]
            summary = _summary(run_dir)
            shapes.append((summary.grid_cells, summary.group_cells))
        assert shapes[0][0] == shapes[1][0] == len(GRID)
        # Every cell is covered by exactly one harness.cell section in
        # both modes (groups batch differently, coverage is identical).
        assert shapes[0][1] == shapes[1][1] == len(GRID)


class TestConservation:
    @pytest.mark.parametrize("mode", ["serial", "parallel"])
    def test_span_profiler_conservation(self, ledgered_runs, mode):
        _, run_dir = ledgered_runs[mode]
        spans = read_spans(run_dir / "spans.jsonl")
        profiles = _profiles(run_dir)
        assert spans and profiles
        assert check_span_conservation(spans, profiles) == []

    @pytest.mark.parametrize("mode", ["serial", "parallel"])
    def test_span_cell_conservation(self, ledgered_runs, mode):
        _, run_dir = ledgered_runs[mode]
        records = ledger_mod.read_manifest(run_dir / "manifest.jsonl")
        spans = read_spans(run_dir / "spans.jsonl")
        assert check_cell_conservation(records, spans) == []

    def test_parallel_spans_from_multiple_processes(self, ledgered_runs):
        _, run_dir = ledgered_runs["parallel"]
        spans = read_spans(run_dir / "spans.jsonl")
        assert len({span["pid"] for span in spans}) >= 2
