"""Interval-series artifacts through the harness plumbing.

The series rides the result-store payload next to stats/metrics; these
tests pin the persistence contract (store round-trip, backfill of
pre-series entries) and the tier-1 guarantee that serial and parallel
runs hand back byte-identical artifacts.
"""

import dataclasses

import pytest

from repro.frontend.config import FrontEndConfig, SkiaConfig
from repro.frontend.stats import SimStats
from repro.harness.parallel import Cell, ParallelRunner
from repro.harness.runner import ExperimentRunner
from repro.harness.scale import Scale
from repro.harness.store import ResultStore
from repro.obs.intervals import IntervalSeries

SCALE = Scale("ivtest", records=1_000, warmup=150)
WINDOW = 100

CONFIGS = {
    "base": FrontEndConfig(interval_size=WINDOW),
    "head": FrontEndConfig(skia=SkiaConfig(decode_tails=False),
                           interval_size=WINDOW),
    "tail": FrontEndConfig(skia=SkiaConfig(decode_heads=False),
                           interval_size=WINDOW),
    "skia": FrontEndConfig(skia=SkiaConfig(), interval_size=WINDOW),
}


class TestStoreArtifact:
    def test_round_trip_next_to_stats(self, tmp_path):
        store = ResultStore(tmp_path)
        config = CONFIGS["skia"]
        key = store.key("noop", config, 0, SCALE)
        payload = {"schema_version": 1, "interval_size": WINDOW,
                   "warmup": 150, "ends": [100], "columns": {"blocks": [7]}}
        store.put(key, SimStats(), intervals=payload)
        assert store.get(key) is not None
        assert store.get_intervals(key) == payload
        series = IntervalSeries.from_jsonable(store.get_intervals(key))
        assert series.ends == [100]

    def test_absent_for_entries_without_series(self, tmp_path):
        store = ResultStore(tmp_path)
        key = store.key("noop", FrontEndConfig(), 0, SCALE)
        store.put(key, SimStats())
        assert store.get_intervals(key) is None

    def test_interval_size_lands_in_store_key(self, tmp_path):
        store = ResultStore(tmp_path)
        plain = store.key("noop", FrontEndConfig(), 0, SCALE)
        windowed = store.key(
            "noop", FrontEndConfig(interval_size=WINDOW), 0, SCALE)
        assert plain != windowed


class TestRunnerPlumbing:
    def test_run_with_intervals_returns_series(self, tmp_path):
        runner = ExperimentRunner(scale=SCALE, store=ResultStore(tmp_path))
        stats, series = runner.run_with_intervals(
            "noop", FrontEndConfig(skia=SkiaConfig()), window=WINDOW)
        assert stats.blocks > 0
        assert series.interval_size == WINDOW
        assert series.windows == SCALE.records // WINDOW
        assert series.totals()["blocks"] == stats.blocks

    def test_window_required_when_config_disables(self):
        runner = ExperimentRunner(scale=SCALE, store=None)
        with pytest.raises(ValueError):
            runner.run_with_intervals("noop", FrontEndConfig())

    def test_store_hit_without_artifact_backfills(self, tmp_path):
        """A stats-only store entry is evicted and re-simulated once."""
        store = ResultStore(tmp_path)
        config = FrontEndConfig(skia=SkiaConfig(), interval_size=WINDOW)
        first = ExperimentRunner(scale=SCALE, store=store)
        reference = first.run("noop", config)
        key = store.key("noop", config, 0, SCALE)
        payload = store.get_intervals(key)
        assert payload is not None
        # Strip the artifact, keeping the stats -- simulates an entry
        # written before interval telemetry existed.
        store.put(key, reference)
        assert store.get_intervals(key) is None
        second = ExperimentRunner(scale=SCALE, store=store)
        stats, series = second.run_with_intervals("noop", config)
        assert dataclasses.asdict(stats) == dataclasses.asdict(reference)
        assert series.to_jsonable() == payload

    def test_intervals_for_reads_memo_and_store(self, tmp_path):
        store = ResultStore(tmp_path)
        config = FrontEndConfig(interval_size=WINDOW)
        runner = ExperimentRunner(scale=SCALE, store=store)
        runner.run("noop", config)
        payload = runner.intervals_for("noop", config)
        assert payload is not None
        # A fresh runner sharing the store reads it back cold.
        other = ExperimentRunner(scale=SCALE, store=ResultStore(tmp_path))
        assert other.intervals_for("noop", config) == payload

    def test_disabled_cells_record_nothing(self, tmp_path):
        runner = ExperimentRunner(scale=SCALE, store=ResultStore(tmp_path))
        runner.run("noop", FrontEndConfig())
        assert runner.intervals_for("noop", FrontEndConfig()) is None


class TestSerialParallelIdentity:
    CELLS = [Cell("voter", config) for config in CONFIGS.values()]

    def _series_texts(self, runner, store):
        texts = {}
        for cell in self.CELLS:
            seed = cell.seed if cell.seed is not None else 0
            key = store.key(cell.workload, cell.config, seed, SCALE,
                            bolted=cell.bolted)
            payload = store.get_intervals(key)
            assert payload is not None, cell
            texts[cell.identity(SCALE)] = IntervalSeries.from_jsonable(
                payload).to_json_text()
        return texts

    def test_serial_and_parallel_artifacts_byte_identical(self, tmp_path):
        serial_store = ResultStore(tmp_path / "serial")
        serial = ExperimentRunner(scale=SCALE, store=serial_store)
        serial.run_cells(self.CELLS, jobs=1)
        serial_texts = self._series_texts(serial, serial_store)

        parallel_store = ResultStore(tmp_path / "parallel")
        parallel = ParallelRunner(scale=SCALE, jobs=2,
                                  store=parallel_store)
        parallel.run_batch(self.CELLS)
        parallel_texts = self._series_texts(parallel, parallel_store)

        assert parallel_texts == serial_texts
