"""Experiment runner memoisation and scale selection."""

import pytest

from repro.frontend.config import FrontEndConfig, SkiaConfig
from repro.harness.runner import ExperimentRunner, config_key
from repro.harness.scale import SCALES, Scale, current_scale
from repro.workloads.cache import WorkloadCache


@pytest.fixture(scope="module")
def runner():
    return ExperimentRunner(scale=Scale("test", records=6_000, warmup=2_000),
                            cache=WorkloadCache())


class TestConfigKey:
    def test_equal_configs_equal_keys(self):
        assert config_key(FrontEndConfig()) == config_key(FrontEndConfig())

    def test_different_configs_differ(self):
        assert config_key(FrontEndConfig()) != config_key(
            FrontEndConfig(btb_entries=4096))

    def test_skia_included(self):
        assert config_key(FrontEndConfig()) != config_key(
            FrontEndConfig(skia=SkiaConfig()))

    def test_hashable(self):
        hash(config_key(FrontEndConfig()))


class TestRunner:
    def test_memoises(self, runner):
        first = runner.run("noop", FrontEndConfig())
        second = runner.run("noop", FrontEndConfig())
        assert first is second

    def test_distinct_configs_run_separately(self, runner):
        base = runner.run("noop", FrontEndConfig())
        skia = runner.run("noop", FrontEndConfig(skia=SkiaConfig()))
        assert base is not skia

    def test_run_many(self, runner):
        results = runner.run_many(["noop", "voter"], FrontEndConfig())
        assert set(results) == {"noop", "voter"}

    def test_measured_records_accounted(self, runner):
        stats = runner.run("noop", FrontEndConfig())
        assert stats.blocks == runner.scale.measured_records

    def test_clear(self, runner):
        first = runner.run("noop", FrontEndConfig())
        runner.clear()
        assert runner.run("noop", FrontEndConfig()) is not first


class TestScale:
    def test_default_quick(self, monkeypatch):
        monkeypatch.delenv("REPRO_SCALE", raising=False)
        assert current_scale().name == "quick"

    def test_env_selection(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "smoke")
        assert current_scale().name == "smoke"

    def test_unknown_scale_raises(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "bogus")
        with pytest.raises(ValueError):
            current_scale()

    def test_all_scales_warmup_below_records(self):
        for scale in SCALES.values():
            assert 0 < scale.warmup < scale.records
