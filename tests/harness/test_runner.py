"""Experiment runner memoisation and scale selection."""

from dataclasses import replace

import pytest

from repro.frontend.config import FrontEndConfig, SkiaConfig
from repro.frontend.stats import SimStats
from repro.harness.runner import ExperimentRunner, config_key
from repro.harness.scale import SCALES, Scale, current_scale
from repro.harness.store import ResultStore
from repro.workloads.cache import WorkloadCache


@pytest.fixture(scope="module")
def runner():
    return ExperimentRunner(scale=Scale("test", records=6_000, warmup=2_000),
                            cache=WorkloadCache())


class TestConfigKey:
    def test_equal_configs_equal_keys(self):
        assert config_key(FrontEndConfig()) == config_key(FrontEndConfig())

    def test_different_configs_differ(self):
        assert config_key(FrontEndConfig()) != config_key(
            FrontEndConfig(btb_entries=4096))

    def test_skia_included(self):
        assert config_key(FrontEndConfig()) != config_key(
            FrontEndConfig(skia=SkiaConfig()))

    def test_hashable(self):
        hash(config_key(FrontEndConfig()))


class TestComparatorKeyFingerprinting:
    """Satellite audit: the comparator type AND every comparator knob
    land in the content-addressed key, so flipping one can never alias
    a cached result from a different design."""

    def test_comparator_type_in_key(self):
        base = FrontEndConfig()
        keys = {config_key(base)}
        for name in ("airbtb", "boomerang", "microbtb", "fdip"):
            keys.add(config_key(base.with_comparator(name)))
        assert len(keys) == 5  # all distinct

    @pytest.mark.parametrize("field, value", [
        ("airbtb_max_lines", 1024),
        ("airbtb_entries_per_line", 2),
        ("boomerang_buffer_entries", 32),
        ("microbtb_max_lines", 4096),
        ("microbtb_entries_per_line", 2),
        ("microbtb_fill_lines", 32),
        ("fdip_depth", 4),
        ("fdip_buffer_entries", 32),
    ])
    def test_every_comparator_knob_changes_key(self, field, value):
        config = FrontEndConfig().with_comparator("microbtb")
        assert config_key(config) != config_key(
            replace(config, **{field: value}))

    def test_fdip_depth_sweep_distinct_keys(self):
        keys = {config_key(FrontEndConfig().with_fdip_depth(depth))
                for depth in (1, 2, 4, 8)}
        assert len(keys) == 4

    def test_knob_flip_is_a_store_miss(self, tmp_path):
        """Flipping one comparator knob must miss in the result store."""
        store = ResultStore(tmp_path)
        scale = Scale("keytest", records=1_000, warmup=100)
        config = FrontEndConfig().with_fdip_depth(2)
        key = store.key("noop", config, 0, scale)
        store.put(key, SimStats())
        assert store.get(key) is not None
        flipped = store.key("noop", config.with_fdip_depth(4), 0, scale)
        assert flipped != key
        assert store.get(flipped) is None


class TestRunner:
    def test_memoises(self, runner):
        first = runner.run("noop", FrontEndConfig())
        second = runner.run("noop", FrontEndConfig())
        assert first is second

    def test_distinct_configs_run_separately(self, runner):
        base = runner.run("noop", FrontEndConfig())
        skia = runner.run("noop", FrontEndConfig(skia=SkiaConfig()))
        assert base is not skia

    def test_run_many(self, runner):
        results = runner.run_many(["noop", "voter"], FrontEndConfig())
        assert set(results) == {"noop", "voter"}

    def test_measured_records_accounted(self, runner):
        stats = runner.run("noop", FrontEndConfig())
        assert stats.blocks == runner.scale.measured_records

    def test_clear(self, runner):
        first = runner.run("noop", FrontEndConfig())
        runner.clear()
        assert runner.run("noop", FrontEndConfig()) is not first


class TestScale:
    def test_default_quick(self, monkeypatch):
        monkeypatch.delenv("REPRO_SCALE", raising=False)
        assert current_scale().name == "quick"

    def test_env_selection(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "smoke")
        assert current_scale().name == "smoke"

    def test_unknown_scale_raises(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "bogus")
        with pytest.raises(ValueError):
            current_scale()

    def test_all_scales_warmup_below_records(self):
        for scale in SCALES.values():
            assert 0 < scale.warmup < scale.records
