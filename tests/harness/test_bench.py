"""Benchmark trajectory: payload schema, compare gate, CLI exit codes."""

import copy
import json

import pytest

from repro.cli import build_parser, main
from repro.harness import bench
from repro.harness.bench import (
    BENCH_SCHEMA_VERSION,
    BenchSchemaMismatch,
    bench_grid,
    compare_bench,
    latest_bench_file,
    load_bench,
    run_bench,
)
from repro.harness.scale import Scale

TINY = Scale("tiny", records=3_000, warmup=800)


@pytest.fixture(scope="module")
def bench_run(tmp_path_factory):
    out = tmp_path_factory.mktemp("bench") / "BENCH_test.json"
    payload, path = run_bench(TINY, workloads=("noop",), out=out)
    return payload, path


class TestGrid:
    def test_grid_shape(self):
        figures = bench_grid(("noop",))
        assert len(figures["fig14_grid"]) == 4
        assert len(figures["fig3_btb_sweep"]) == 2

    def test_default_workloads(self):
        figures = bench_grid()
        assert len(figures["fig14_grid"]) == 12


class TestRun:
    def test_payload_schema(self, bench_run):
        payload, _ = bench_run
        assert payload["schema_version"] == BENCH_SCHEMA_VERSION
        assert payload["scale"] == "tiny"
        assert payload["cells"] == 6
        throughput = payload["throughput"]
        assert throughput["records_per_sec"] > 0
        assert throughput["cycles_per_sec"] > 0
        assert throughput["cold_wall_s"] > 0
        assert set(payload["figures"]) == {"fig14_grid", "fig3_btb_sweep"}

    def test_cache_and_profiler_fields(self, bench_run):
        payload, _ = bench_run
        caches = payload["caches"]
        # Warm phase replays entirely out of the just-filled store.
        assert caches["store_hit_rate"] == 1.0
        assert caches["store_misses"] == 0
        assert "sbd_line_cache_hit_rate" in caches
        sections = payload["profiler"]
        assert "harness.simulate" in sections
        assert sections["harness.cell"]["calls"] >= 6

    def test_compiled_trace_fields(self, bench_run):
        payload, _ = bench_run
        caches = payload["caches"]
        assert caches["compiled_traces_enabled"] is True
        # One compilation (miss) for the single workload.  The batched
        # serial path consults the cache once per (workload, seed,
        # bolted) group rather than once per cell, so later figure
        # groups are hits but the exact count is a routing detail.
        assert caches["compiled_trace_misses"] == 1
        assert caches["compiled_trace_hits"] >= 1
        # Hit *rates* are per figure group: the first group carries the
        # unavoidable first-touch compilations, later groups reuse them
        # perfectly -- a cumulative rate would blend the two.
        fig14 = payload["figures"]["fig14_grid"]
        assert fig14["compiled_trace_misses"] == 1
        assert fig14["compiled_trace_hit_rate"] == pytest.approx(
            fig14["compiled_trace_hits"]
            / (fig14["compiled_trace_hits"] + 1))
        fig3 = payload["figures"]["fig3_btb_sweep"]
        assert fig3["compiled_trace_misses"] == 0
        assert fig3["compiled_trace_hits"] >= 1
        assert fig3["compiled_trace_hit_rate"] == 1.0

    def test_fastforward_fields(self, bench_run):
        payload, _ = bench_run
        ff = payload["fastforward"]
        assert ff["enabled"] is True
        assert ff["workload"] == "steady-stream"
        assert ff["records"] >= payload["records_per_cell"]
        assert ff["period"] and ff["period"] > 0
        assert ff["skipped_records"] > 0
        assert ff["on_wall_s"] > 0 and ff["off_wall_s"] > 0
        assert ff["speedup"] > 1.0

    def test_trace_compile_fires_once_per_workload(self, bench_run):
        payload, _ = bench_run
        sections = payload["profiler"]
        # Single bench workload -> one grid compilation, plus the
        # dedicated phase-5 fast-forward cell's.
        assert sections["trace.compile"]["calls"] == 2

    def test_file_written_atomically(self, bench_run):
        payload, path = bench_run
        assert load_bench(path) == json.loads(json.dumps(payload))
        assert not path.with_name(path.name + ".tmp").exists()

    def test_profiler_restored_after_run(self, bench_run):
        from repro.obs.profiler import PROFILER
        assert PROFILER.enabled is False

    def test_load_rejects_non_bench_json(self, tmp_path):
        bogus = tmp_path / "x.json"
        bogus.write_text("[1, 2]", encoding="utf-8")
        with pytest.raises(ValueError):
            load_bench(bogus)

    def test_latest_bench_file_prefers_newest_date(self, tmp_path):
        assert latest_bench_file(tmp_path) is None
        (tmp_path / "BENCH_20260101.json").write_text("{}")
        (tmp_path / "BENCH_20260301.json").write_text("{}")
        assert latest_bench_file(tmp_path).name == "BENCH_20260301.json"


class TestCompare:
    def test_self_compare_is_clean(self, bench_run):
        payload, _ = bench_run
        regressions, lines = compare_bench(payload, payload)
        assert regressions == []
        assert any(line.startswith("throughput:") for line in lines)

    def test_throughput_regression_detected(self, bench_run):
        payload, _ = bench_run
        slower = copy.deepcopy(payload)
        slower["throughput"]["records_per_sec"] *= 0.5
        regressions, _ = compare_bench(payload, slower, threshold_pct=25.0)
        assert len(regressions) == 1
        assert "REGRESSION" in regressions[0]

    def test_drop_within_threshold_passes(self, bench_run):
        payload, _ = bench_run
        slower = copy.deepcopy(payload)
        slower["throughput"]["records_per_sec"] *= 0.9
        regressions, _ = compare_bench(payload, slower, threshold_pct=25.0)
        assert regressions == []

    def test_figure_threshold_is_opt_in(self, bench_run):
        payload, _ = bench_run
        slower = copy.deepcopy(payload)
        slower["figures"]["fig14_grid"]["seconds"] *= 3.0
        regressions, _ = compare_bench(payload, slower)
        assert regressions == []
        regressions, _ = compare_bench(payload, slower,
                                       figure_threshold_pct=50.0)
        assert any("fig14_grid" in r for r in regressions)

    def test_schema_mismatch_raises(self, bench_run):
        payload, _ = bench_run
        other = copy.deepcopy(payload)
        other["schema_version"] = BENCH_SCHEMA_VERSION + 1
        with pytest.raises(BenchSchemaMismatch) as excinfo:
            compare_bench(payload, other)
        assert excinfo.value.before_schema == BENCH_SCHEMA_VERSION
        assert excinfo.value.after_schema == BENCH_SCHEMA_VERSION + 1

    def test_hit_rate_changes_inform_but_never_gate(self, bench_run):
        payload, _ = bench_run
        other = copy.deepcopy(payload)
        other["caches"]["store_hit_rate"] = 0.0
        regressions, lines = compare_bench(payload, other)
        assert regressions == []
        assert any("store_hit_rate" in line for line in lines)


class TestCli:
    def test_parser_accepts_bench_run(self):
        args = build_parser().parse_args(
            ["bench", "run", "--out", "B.json", "--workloads", "noop"])
        assert args.bench_command == "run"
        assert args.workloads == ["noop"]

    def test_parser_accepts_bench_compare(self):
        args = build_parser().parse_args(
            ["bench", "compare", "a.json", "b.json",
             "--threshold", "10", "--figure-threshold", "40"])
        assert (args.before, args.after) == ("a.json", "b.json")
        assert args.threshold == 10.0

    def test_parser_accepts_stats_trace(self):
        args = build_parser().parse_args(
            ["stats", "trace", "events.jsonl", "--chrome", "out.json"])
        assert args.stats_command == "trace"
        assert args.chrome == "out.json"

    def test_compare_exit_codes(self, bench_run, tmp_path, capsys):
        payload, path = bench_run
        slower = copy.deepcopy(payload)
        slower["throughput"]["records_per_sec"] *= 0.5
        doctored = tmp_path / "BENCH_doctored.json"
        doctored.write_text(json.dumps(slower), encoding="utf-8")

        assert main(["bench", "compare", str(path), str(path)]) == 0
        assert main(["bench", "compare", str(path), str(doctored)]) == 1
        out = capsys.readouterr().out
        assert "REGRESSION" in out

    def test_compare_schema_mismatch_is_a_diagnostic(self, bench_run,
                                                     tmp_path, capsys):
        payload, path = bench_run
        future = copy.deepcopy(payload)
        future["schema_version"] = BENCH_SCHEMA_VERSION + 1
        doctored = tmp_path / "BENCH_future.json"
        doctored.write_text(json.dumps(future), encoding="utf-8")

        code = main(["bench", "compare", str(path), str(doctored)])
        out = capsys.readouterr().out
        assert code == 2
        assert "schema" in out
        assert str(BENCH_SCHEMA_VERSION + 1) in out
        assert "Traceback" not in out

    def test_compare_without_baseline_is_first_run(self, bench_run,
                                                   tmp_path, capsys):
        _, path = bench_run
        code = main(["bench", "compare", str(path),
                     "--baseline", str(tmp_path / "missing.json")])
        assert code == 0
        assert "first run" in capsys.readouterr().out

    def test_compare_without_any_bench_file(self, tmp_path, monkeypatch,
                                            capsys):
        monkeypatch.chdir(tmp_path)
        assert main(["bench", "compare"]) == 2
        assert "bench run" in capsys.readouterr().out
