"""Reporting helpers."""

import pytest

from repro.harness.reporting import format_table, geomean, geomean_speedup, pct


class TestGeomean:
    def test_basic(self):
        assert geomean([2.0, 8.0]) == pytest.approx(4.0)

    def test_single(self):
        assert geomean([3.0]) == pytest.approx(3.0)

    def test_empty_raises(self):
        # Regression: geomean([]) used to return 0.0, which turned into a
        # silent -100% "speedup" whenever a caller filtered out every
        # workload.
        with pytest.raises(ValueError, match="empty"):
            geomean([])

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            geomean([1.0, 0.0])

    def test_rejects_nan(self):
        # Regression: NaN <= 0 is False, so NaN used to pass the
        # positivity check and silently poison the mean.
        with pytest.raises(ValueError, match="finite"):
            geomean([1.0, float("nan")])

    def test_rejects_inf(self):
        with pytest.raises(ValueError, match="finite"):
            geomean([1.0, float("inf")])

    def test_speedup(self):
        assert geomean_speedup([1.1, 1.1]) == pytest.approx(0.1)

    def test_speedup_identity(self):
        assert geomean_speedup([1.0, 1.0]) == pytest.approx(0.0)

    def test_speedup_empty_raises(self):
        # Regression: used to silently report -1.0 (a -100% speedup).
        with pytest.raises(ValueError, match="empty"):
            geomean_speedup([])


class TestPct:
    def test_format(self):
        assert pct(0.0564) == "5.64%"
        assert pct(0.0564, 0) == "6%"
        assert pct(-0.01) == "-1.00%"


class TestFormatTable:
    def test_alignment(self):
        table = format_table(["a", "bbbb"], [["x", 1], ["yyyy", 22]])
        lines = table.splitlines()
        assert lines[0].startswith("a")
        assert all(len(line) <= len(max(lines, key=len)) for line in lines)

    def test_title(self):
        table = format_table(["h"], [["v"]], title="My Title")
        assert table.splitlines()[0] == "My Title"

    def test_float_formatting(self):
        table = format_table(["v"], [[1.23456]])
        assert "1.235" in table

    def test_empty_rows(self):
        table = format_table(["a", "b"], [])
        assert len(table.splitlines()) == 2
