"""ASCII chart helpers."""

import pytest

from repro.harness.figures import (
    bar_chart,
    grouped_bar_chart,
    normalise,
    series_chart,
)


class TestBarChart:
    def test_basic(self):
        chart = bar_chart(["a", "bb"], [0.1, 0.05], title="T")
        lines = chart.splitlines()
        assert lines[0] == "T"
        assert lines[1].count("#") > lines[2].count("#")

    def test_peak_gets_full_width(self):
        chart = bar_chart(["x"], [0.5], width=10)
        assert chart.count("#") == 10

    def test_mismatched_lengths(self):
        with pytest.raises(ValueError):
            bar_chart(["a"], [1.0, 2.0])

    def test_empty(self):
        assert bar_chart([], [], title="empty") == "empty"

    def test_negative_values_render_empty_bars(self):
        chart = bar_chart(["neg", "pos"], [-0.1, 0.1])
        neg_line = chart.splitlines()[0]
        assert neg_line.endswith("|")


class TestGroupedBarChart:
    def test_groups(self):
        chart = grouped_bar_chart(
            ["w1", "w2"], {"head": [0.1, 0.2], "tail": [0.3, 0.1]})
        assert "head" in chart and "tail" in chart
        assert "w1" in chart and "w2" in chart

    def test_alignment_error(self):
        with pytest.raises(ValueError):
            grouped_bar_chart(["a"], {"s": [1.0, 2.0]})


class TestSeriesChart:
    def test_contains_markers_and_legend(self):
        chart = series_chart(["2K", "4K"],
                             {"BTB": [1.0, 1.1], "SBB": [1.05, 1.2]})
        assert "legend:" in chart
        assert "o=BTB" in chart
        assert "x=SBB" in chart

    def test_extremes_on_grid(self):
        chart = series_chart(["a", "b"], {"s": [0.0, 1.0]}, height=5)
        rows = chart.splitlines()
        assert "o" in rows[0]    # max at the top
        assert "o" in rows[4]    # min at the bottom


class TestNormalise:
    def test_basic(self):
        assert normalise([2.0, 4.0], 2.0) == [1.0, 2.0]

    def test_zero_reference(self):
        with pytest.raises(ValueError):
            normalise([1.0], 0.0)
