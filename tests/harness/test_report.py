"""EXPERIMENTS.md generation."""

import pathlib

from repro.harness.report import EXHIBITS, generate


class TestGenerate:
    def test_includes_saved_renders(self, tmp_path):
        results = tmp_path / "results"
        results.mkdir()
        (results / "fig01_btb_misses.txt").write_text("FAKE FIG 1 RENDER")
        output = tmp_path / "EXPERIMENTS.md"
        text = generate(results_dir=results, output=output)
        assert "FAKE FIG 1 RENDER" in text
        assert output.read_text() == text

    def test_missing_renders_noted(self, tmp_path):
        results = tmp_path / "empty"
        results.mkdir()
        text = generate(results_dir=results,
                        output=tmp_path / "EXPERIMENTS.md")
        assert "no saved render" in text

    def test_every_exhibit_has_heading(self, tmp_path):
        results = tmp_path / "empty"
        results.mkdir()
        text = generate(results_dir=results,
                        output=tmp_path / "EXPERIMENTS.md")
        for _, heading, _, _ in EXHIBITS:
            assert heading in text

    def test_known_gaps_section(self, tmp_path):
        results = tmp_path / "empty"
        results.mkdir()
        text = generate(results_dir=results,
                        output=tmp_path / "EXPERIMENTS.md")
        assert "## Known gaps" in text

    def test_cli_command(self, tmp_path, capsys):
        from repro.cli import main
        results = tmp_path / "results"
        results.mkdir()
        output = tmp_path / "EXP.md"
        assert main(["report", "--results", str(results),
                     "--output", str(output)]) == 0
        assert pathlib.Path(output).exists()
