"""Seed-stability machinery."""

import pytest

from repro.frontend.config import FrontEndConfig, SkiaConfig
from repro.harness.multiseed import (
    SeedSweepResult,
    speedup_metric,
    sweep_seeds,
)
from repro.harness.scale import Scale


class TestSeedSweepResult:
    def test_summary_stats(self):
        result = SeedSweepResult(values=(1.0, 2.0, 3.0), seeds=(0, 1, 2))
        assert result.mean == 2.0
        assert result.std == pytest.approx(1.0)
        assert result.minimum == 1.0
        assert result.maximum == 3.0

    def test_single_value_std_zero(self):
        result = SeedSweepResult(values=(5.0,), seeds=(0,))
        assert result.std == 0.0

    def test_render(self):
        result = SeedSweepResult(values=(0.02, 0.03), seeds=(0, 1))
        text = result.render("gain")
        assert "gain" in text and "mean=" in text


class TestSweep:
    def test_skia_gain_positive_across_seeds(self):
        """The headline effect is not a single-seed artifact."""
        result = sweep_seeds(
            "voter", speedup_metric,
            FrontEndConfig(), FrontEndConfig(skia=SkiaConfig()),
            seeds=(0, 1),
            scale=Scale("test", records=30_000, warmup=10_000))
        assert len(result.values) == 2
        assert all(value > 0 for value in result.values)

    def test_different_seeds_differ(self):
        result = sweep_seeds(
            "noop", lambda a, b: a.ipc,
            FrontEndConfig(), FrontEndConfig(),
            seeds=(0, 1),
            scale=Scale("test", records=10_000, warmup=3_000))
        assert result.values[0] != result.values[1]
