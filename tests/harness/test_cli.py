"""Command-line interface tests."""

import pytest

from repro.cli import EXPERIMENTS, build_parser, main


class TestParser:
    def test_compare_defaults(self):
        args = build_parser().parse_args(["compare"])
        assert args.workload == "voter"

    def test_rejects_unknown_workload(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["compare", "bogus-workload"])

    def test_experiment_names_cover_all_figures(self):
        for name in ("fig1", "fig3", "fig6", "fig13", "fig14", "fig15",
                     "fig16", "fig17", "fig18", "bolt", "bogus",
                     "comparator-zoo"):
            assert name in EXPERIMENTS

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_scale_choices(self):
        args = build_parser().parse_args(["--scale", "smoke", "workloads"])
        assert args.scale == "smoke"


class TestCommands:
    def test_workloads(self, capsys):
        assert main(["workloads"]) == 0
        out = capsys.readouterr().out
        assert "voter" in out and "kafka" in out

    def test_table1(self, capsys):
        assert main(["table", "1"]) == 0
        assert "8K-entry/78KB" in capsys.readouterr().out

    def test_table2(self, capsys):
        assert main(["table", "2"]) == 0
        assert "OLTPBench" in capsys.readouterr().out

    def test_describe(self, capsys):
        assert main(["describe", "noop"]) == 0
        assert "Program noop" in capsys.readouterr().out

    def test_experiment_with_restricted_workloads(self, capsys):
        code = main(["--scale", "smoke", "experiment", "fig15",
                     "--workloads", "noop"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Figure 15" in out
        assert "noop" in out

    def test_compare_smoke(self, capsys):
        assert main(["--scale", "smoke", "compare", "noop"]) == 0
        assert "speedup" in capsys.readouterr().out


class TestStatsParser:
    def test_run_defaults(self):
        args = build_parser().parse_args(["stats", "run", "voter"])
        assert args.config == "skia"
        assert args.trace_capacity == 65536

    def test_rejects_unknown_config(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["stats", "run", "voter",
                                       "--config", "bogus"])

    def test_comparator_configs_accepted(self):
        """Both run parsers expose the Section 7.1 comparator configs."""
        for name in ("airbtb", "boomerang", "microbtb", "fdip", "fdip4"):
            args = build_parser().parse_args(
                ["stats", "run", "voter", "--config", name])
            assert args.config == name
            args = build_parser().parse_args(
                ["attrib", "run", "voter", "--config", name])
            assert args.config == name

    def test_comparator_config_resolution(self):
        from repro.cli import _stats_config
        assert _stats_config("microbtb").comparator == "microbtb"
        fdip8 = _stats_config("fdip8")
        assert fdip8.comparator == "fdip"
        assert fdip8.fdip_depth == 8

    def test_check_validates_workload_names(self):
        # Regression: --workloads used to accept any string silently.
        with pytest.raises(SystemExit):
            build_parser().parse_args(["stats", "check",
                                       "--workloads", "not-a-workload"])

    def test_experiment_workloads_validated_too(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiment", "fig14",
                                       "--workloads", "not-a-workload"])


class TestStatsCommands:
    def test_run_reports_invariants(self, capsys, tmp_path):
        dump = tmp_path / "snap.json"
        trace_out = tmp_path / "trace.jsonl"
        code = main(["--scale", "smoke", "stats", "run", "noop",
                     "--config", "skia", "--dump", str(dump),
                     "--trace-out", str(trace_out)])
        out = capsys.readouterr().out
        assert code == 0
        assert "invariants:" in out and "all passing" in out
        assert "[btb]" in out and "[sbb]" in out
        assert dump.exists() and trace_out.exists()

    def test_diff_two_snapshots(self, capsys, tmp_path):
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        for path, config in ((a, "base"), (b, "skia")):
            assert main(["--scale", "smoke", "stats", "run", "noop",
                         "--config", config, "--dump", str(path)]) == 0
        capsys.readouterr()
        assert main(["stats", "diff", str(a), str(b)]) == 0
        out = capsys.readouterr().out
        assert "metric" in out

    def test_diff_identical(self, capsys, tmp_path):
        a = tmp_path / "a.json"
        assert main(["--scale", "smoke", "stats", "run", "noop",
                     "--dump", str(a)]) == 0
        capsys.readouterr()
        assert main(["stats", "diff", str(a), str(a)]) == 0
        assert "identical" in capsys.readouterr().out

    def test_check_small_grid(self, capsys):
        code = main(["--scale", "smoke", "stats", "check",
                     "--workloads", "noop", "--no-store"])
        out = capsys.readouterr().out
        assert code == 0
        assert "checked 4 cells" in out
        assert "0 failing" in out


class TestAttribParser:
    def test_run_defaults(self):
        args = build_parser().parse_args(["attrib", "run", "voter"])
        assert args.config == "skia"
        assert args.top == 20

    def test_rejects_unknown_workload(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["attrib", "run", "bogus"])

    def test_rejects_unknown_config(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["attrib", "run", "voter",
                                       "--config", "bogus"])

    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["attrib"])

    def test_stats_check_snapshot_files(self):
        args = build_parser().parse_args(["stats", "check",
                                          "--snapshot", "a.json", "b.json"])
        assert args.snapshot == ["a.json", "b.json"]


class TestAttribCommands:
    @pytest.fixture(scope="class")
    def artifacts(self, tmp_path_factory):
        """One `attrib run` producing artifact + HTML report + snapshot."""
        root = tmp_path_factory.mktemp("attrib")
        paths = {"artifact": root / "noop.json",
                 "report": root / "noop.html",
                 "snapshot": root / "noop-snap.json"}
        code = main(["--scale", "smoke", "attrib", "run", "noop",
                     "--config", "skia", "--no-store",
                     "--out", str(paths["artifact"]),
                     "--report", str(paths["report"]),
                     "--snapshot-out", str(paths["snapshot"])])
        assert code == 0
        return paths

    def test_run_writes_all_outputs(self, artifacts, capsys):
        for path in artifacts.values():
            assert path.exists()
        assert artifacts["report"].read_text(
            encoding="utf-8").startswith("<!DOCTYPE html>")

    def test_run_summary_and_invariants(self, capsys):
        code = main(["--scale", "smoke", "attrib", "run", "noop",
                     "--config", "base", "--no-store"])
        out = capsys.readouterr().out
        assert code == 0
        assert "branches over" in out
        assert "all passing" in out

    def test_snapshot_checkable_by_stats_check(self, artifacts, capsys):
        code = main(["stats", "check", "--snapshot",
                     str(artifacts["snapshot"])])
        out = capsys.readouterr().out
        assert code == 0
        assert "invariants checked, all passing" in out

    def test_report_renders_markdown(self, artifacts, capsys):
        assert main(["attrib", "report", str(artifacts["artifact"])]) == 0
        out = capsys.readouterr().out
        assert "# Attribution report" in out
        assert "Resteer causes" in out

    def test_diff_identical_artifact_exits_zero(self, artifacts, capsys):
        code = main(["attrib", "diff", str(artifacts["artifact"]),
                     str(artifacts["artifact"])])
        assert code == 0
        assert "no per-branch attribution movement" in (
            capsys.readouterr().out)

    def test_diff_flags_regression_nonzero(self, tmp_path, capsys):
        from repro.obs import AttributionAggregator

        before = AttributionAggregator(workload="synthetic")
        after = AttributionAggregator(workload="synthetic")
        after.observe({"kind": "resteer", "record": 0, "pc": 0x40,
                       "stage": "exec", "cause": "cond_mispredict",
                       "latency": 500.0})
        before_path = before.save(tmp_path / "before.json")
        after_path = after.save(tmp_path / "after.json")
        code = main(["attrib", "diff", str(before_path), str(after_path),
                     "--min-cycles", "100"])
        out = capsys.readouterr().out
        assert code == 1
        assert "REGRESSED" in out
        assert "1 regressed past thresholds" in out


class TestRunsCommands:
    @pytest.fixture()
    def recorded_run(self, tmp_path, monkeypatch):
        """An end-to-end ledgered `stats run` into an isolated cache."""
        monkeypatch.setenv("REPRO_LEDGER", "1")
        monkeypatch.setenv("REPRO_NO_PROGRESS", "1")
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        assert main(["--scale", "smoke", "stats", "run", "noop",
                     "--config", "base"]) == 0
        return tmp_path / "cache" / "runs"

    def test_stats_run_records_a_complete_run(self, recorded_run, capsys):
        capsys.readouterr()
        assert main(["runs", "list", "--root", str(recorded_run)]) == 0
        out = capsys.readouterr().out
        assert "complete" in out
        assert "stats run noop" in out

    def test_show_latest_check_passes(self, recorded_run, capsys):
        capsys.readouterr()
        code = main(["runs", "show", "--latest", "--cells", "--check",
                     "--root", str(recorded_run)])
        out = capsys.readouterr().out
        assert code == 0
        assert "status:   complete" in out
        assert "queued>store_probe>prepare>simulate>invariants>done" in out
        assert "conservation:" in out

    def test_show_perfetto_merges_trace(self, recorded_run, tmp_path,
                                        capsys):
        import json

        merged = tmp_path / "merged.json"
        assert main(["runs", "show", "--latest", "--root",
                     str(recorded_run), "--perfetto", str(merged)]) == 0
        payload = json.loads(merged.read_text(encoding="utf-8"))
        assert any(event.get("pid") == 3
                   for event in payload["traceEvents"])

    def test_ledger_disabled_records_nothing(self, tmp_path, monkeypatch,
                                             capsys):
        monkeypatch.setenv("REPRO_LEDGER", "0")
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        assert main(["--scale", "smoke", "stats", "run", "noop",
                     "--config", "base"]) == 0
        assert not (tmp_path / "cache" / "runs").exists()

    def test_show_incomplete_run_exits_nonzero(self, tmp_path, capsys):
        from repro.obs.ledger import RunLedger

        ledger = RunLedger.create("crashed", root=tmp_path)
        ledger.cell("stuck", "queued")
        ledger.close()  # no terminal record, no finish
        code = main(["runs", "show", ledger.run_id, "--root",
                     str(tmp_path)])
        out = capsys.readouterr().out
        assert code == 1
        assert "INCOMPLETE" in out
        assert "running/crashed" in out

    def test_show_unknown_run_exits_two(self, tmp_path, capsys):
        assert main(["runs", "show", "nope", "--root",
                     str(tmp_path)]) == 2

    def test_list_empty_root(self, tmp_path, capsys):
        assert main(["runs", "list", "--root", str(tmp_path)]) == 0
        assert "no runs" in capsys.readouterr().out

    def test_list_json_is_machine_readable(self, recorded_run, capsys):
        import json

        capsys.readouterr()
        assert main(["runs", "list", "--json", "--root",
                     str(recorded_run)]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert isinstance(payload, list) and payload
        entry = payload[0]
        assert entry["status"] == "complete"
        assert entry["command"].startswith("stats run noop")
        assert {"run_id", "created", "schema_version", "cells_seen",
                "results", "incomplete"} <= entry.keys()

    def test_show_json_carries_per_cell_lifecycle(self, recorded_run,
                                                  capsys):
        import json

        capsys.readouterr()
        assert main(["runs", "show", "--latest", "--json", "--root",
                     str(recorded_run)]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["status"] == "complete"
        assert payload["cells"]
        cell = next(iter(payload["cells"].values()))
        assert "phases" in cell and "result" in cell

    def test_check_detects_tampered_spans(self, recorded_run, capsys):
        run_dir = next(d for d in recorded_run.iterdir() if d.is_dir())
        spans_path = run_dir / "spans.jsonl"
        lines = spans_path.read_text(encoding="utf-8").splitlines()
        spans_path.write_text("\n".join(lines[:-1]) + "\n",
                              encoding="utf-8")
        capsys.readouterr()
        code = main(["runs", "show", "--latest", "--check", "--root",
                     str(recorded_run)])
        out = capsys.readouterr().out
        assert code == 1
        assert "INVARIANT VIOLATION" in out


class TestMetricsCommands:
    @pytest.fixture()
    def snapshot_file(self, tmp_path):
        from repro.obs import save_snapshot

        path = tmp_path / "snap.json"
        save_snapshot(path, {"btb.hits": 5, "btb.misses": 2},
                      meta={"workload": "noop", "config": "base",
                            "scale": "smoke"})
        return path

    def test_export_single_snapshot_with_labels(self, snapshot_file,
                                                capsys):
        assert main(["metrics", "export", str(snapshot_file)]) == 0
        out = capsys.readouterr().out
        assert "# TYPE repro_btb_hits gauge" in out
        assert 'repro_btb_hits{config="base",scale="smoke",' \
               'workload="noop"} 5' in out

    def test_export_merges_multiple(self, snapshot_file, tmp_path, capsys):
        from repro.obs import save_snapshot

        other = tmp_path / "other.json"
        save_snapshot(other, {"btb.hits": 10})
        assert main(["metrics", "export", str(snapshot_file),
                     str(other)]) == 0
        out = capsys.readouterr().out
        assert "# merged from 2 snapshots" in out
        assert "repro_btb_hits 15" in out

    def test_export_to_file(self, snapshot_file, tmp_path, capsys):
        out_path = tmp_path / "metrics.prom"
        assert main(["metrics", "export", str(snapshot_file),
                     "--out", str(out_path)]) == 0
        assert "prometheus text ->" in capsys.readouterr().out
        assert out_path.read_text(encoding="utf-8").endswith("\n")


class TestIntervalsCommands:
    @pytest.fixture()
    def saved_series(self, tmp_path, capsys):
        path = tmp_path / "series.json"
        assert main(["--scale", "smoke", "intervals", "run", "noop",
                     "--no-store", "--window", "4000",
                     "--out", str(path)]) == 0
        capsys.readouterr()
        return path

    def test_parser_defaults(self):
        args = build_parser().parse_args(["intervals", "run", "noop"])
        assert args.config == "skia"
        assert args.window == 1000
        assert args.out is None and args.markdown is None

    def test_run_reports_conservation(self, capsys):
        assert main(["--scale", "smoke", "intervals", "run", "noop",
                     "--no-store", "--window", "4000",
                     "--metrics", "ipc"]) == 0
        out = capsys.readouterr().out
        assert "10 windows x 4000 records" in out
        assert "fingerprint" in out
        assert "interval conservation" in out

    def test_plot_renders_markdown_table(self, saved_series, capsys):
        assert main(["intervals", "plot", str(saved_series),
                     "--metrics", "ipc"]) == 0
        out = capsys.readouterr().out
        assert "| window | start | end | ipc |" in out

    def test_diff_identical_then_mutated(self, saved_series, tmp_path,
                                         capsys):
        from repro.obs.intervals import IntervalSeries

        assert main(["intervals", "diff", str(saved_series),
                     str(saved_series)]) == 0
        assert "identical" in capsys.readouterr().out
        mutated = IntervalSeries.load(saved_series)
        mutated.columns["blocks"][0] += 1
        other = tmp_path / "other.json"
        mutated.save(other)
        assert main(["intervals", "diff", str(saved_series),
                     str(other)]) == 1
        assert "window 0" in capsys.readouterr().out


class TestDivergenceCommands:
    def test_parser_defaults(self):
        args = build_parser().parse_args(["divergence", "bisect", "noop"])
        assert args.engine_a == "object"
        assert args.engine_b == "batched"
        assert args.config == "skia"
        assert args.config_b is None

    def test_identical_engines_exit_zero(self, capsys):
        code = main(["--scale", "smoke", "divergence", "bisect", "noop",
                     "--window", "8000"])
        out = capsys.readouterr().out
        assert code == 0
        assert "identical" in out

    def test_seeded_divergence_exits_one(self, tmp_path, capsys):
        import json

        report_path = tmp_path / "report.json"
        code = main(["--scale", "smoke", "divergence", "bisect", "voter",
                     "--config", "skia", "--config-b", "base",
                     "--window", "8000", "--no-events",
                     "--json", str(report_path)])
        out = capsys.readouterr().out
        assert code == 1
        assert "first divergent window" in out
        payload = json.loads(report_path.read_text(encoding="utf-8"))
        assert payload["identical"] is False
        assert payload["record_index"] is not None
