"""Command-line interface tests."""

import pytest

from repro.cli import EXPERIMENTS, build_parser, main


class TestParser:
    def test_compare_defaults(self):
        args = build_parser().parse_args(["compare"])
        assert args.workload == "voter"

    def test_rejects_unknown_workload(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["compare", "bogus-workload"])

    def test_experiment_names_cover_all_figures(self):
        for name in ("fig1", "fig3", "fig6", "fig13", "fig14", "fig15",
                     "fig16", "fig17", "fig18", "bolt", "bogus"):
            assert name in EXPERIMENTS

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_scale_choices(self):
        args = build_parser().parse_args(["--scale", "smoke", "workloads"])
        assert args.scale == "smoke"


class TestCommands:
    def test_workloads(self, capsys):
        assert main(["workloads"]) == 0
        out = capsys.readouterr().out
        assert "voter" in out and "kafka" in out

    def test_table1(self, capsys):
        assert main(["table", "1"]) == 0
        assert "8K-entry/78KB" in capsys.readouterr().out

    def test_table2(self, capsys):
        assert main(["table", "2"]) == 0
        assert "OLTPBench" in capsys.readouterr().out

    def test_describe(self, capsys):
        assert main(["describe", "noop"]) == 0
        assert "Program noop" in capsys.readouterr().out

    def test_experiment_with_restricted_workloads(self, capsys):
        code = main(["--scale", "smoke", "experiment", "fig15",
                     "--workloads", "noop"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Figure 15" in out
        assert "noop" in out

    def test_compare_smoke(self, capsys):
        assert main(["--scale", "smoke", "compare", "noop"]) == 0
        assert "speedup" in capsys.readouterr().out


class TestStatsParser:
    def test_run_defaults(self):
        args = build_parser().parse_args(["stats", "run", "voter"])
        assert args.config == "skia"
        assert args.trace_capacity == 65536

    def test_rejects_unknown_config(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["stats", "run", "voter",
                                       "--config", "bogus"])

    def test_check_validates_workload_names(self):
        # Regression: --workloads used to accept any string silently.
        with pytest.raises(SystemExit):
            build_parser().parse_args(["stats", "check",
                                       "--workloads", "not-a-workload"])

    def test_experiment_workloads_validated_too(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiment", "fig14",
                                       "--workloads", "not-a-workload"])


class TestStatsCommands:
    def test_run_reports_invariants(self, capsys, tmp_path):
        dump = tmp_path / "snap.json"
        trace_out = tmp_path / "trace.jsonl"
        code = main(["--scale", "smoke", "stats", "run", "noop",
                     "--config", "skia", "--dump", str(dump),
                     "--trace-out", str(trace_out)])
        out = capsys.readouterr().out
        assert code == 0
        assert "invariants:" in out and "all passing" in out
        assert "[btb]" in out and "[sbb]" in out
        assert dump.exists() and trace_out.exists()

    def test_diff_two_snapshots(self, capsys, tmp_path):
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        for path, config in ((a, "base"), (b, "skia")):
            assert main(["--scale", "smoke", "stats", "run", "noop",
                         "--config", config, "--dump", str(path)]) == 0
        capsys.readouterr()
        assert main(["stats", "diff", str(a), str(b)]) == 0
        out = capsys.readouterr().out
        assert "metric" in out

    def test_diff_identical(self, capsys, tmp_path):
        a = tmp_path / "a.json"
        assert main(["--scale", "smoke", "stats", "run", "noop",
                     "--dump", str(a)]) == 0
        capsys.readouterr()
        assert main(["stats", "diff", str(a), str(a)]) == 0
        assert "identical" in capsys.readouterr().out

    def test_check_small_grid(self, capsys):
        code = main(["--scale", "smoke", "stats", "check",
                     "--workloads", "noop", "--no-store"])
        out = capsys.readouterr().out
        assert code == 0
        assert "checked 4 cells" in out
        assert "0 failing" in out
