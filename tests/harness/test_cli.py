"""Command-line interface tests."""

import pytest

from repro.cli import EXPERIMENTS, build_parser, main


class TestParser:
    def test_compare_defaults(self):
        args = build_parser().parse_args(["compare"])
        assert args.workload == "voter"

    def test_rejects_unknown_workload(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["compare", "bogus-workload"])

    def test_experiment_names_cover_all_figures(self):
        for name in ("fig1", "fig3", "fig6", "fig13", "fig14", "fig15",
                     "fig16", "fig17", "fig18", "bolt", "bogus"):
            assert name in EXPERIMENTS

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_scale_choices(self):
        args = build_parser().parse_args(["--scale", "smoke", "workloads"])
        assert args.scale == "smoke"


class TestCommands:
    def test_workloads(self, capsys):
        assert main(["workloads"]) == 0
        out = capsys.readouterr().out
        assert "voter" in out and "kafka" in out

    def test_table1(self, capsys):
        assert main(["table", "1"]) == 0
        assert "8K-entry/78KB" in capsys.readouterr().out

    def test_table2(self, capsys):
        assert main(["table", "2"]) == 0
        assert "OLTPBench" in capsys.readouterr().out

    def test_describe(self, capsys):
        assert main(["describe", "noop"]) == 0
        assert "Program noop" in capsys.readouterr().out

    def test_experiment_with_restricted_workloads(self, capsys):
        code = main(["--scale", "smoke", "experiment", "fig15",
                     "--workloads", "noop"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Figure 15" in out
        assert "noop" in out

    def test_compare_smoke(self, capsys):
        assert main(["--scale", "smoke", "compare", "noop"]) == 0
        assert "speedup" in capsys.readouterr().out
