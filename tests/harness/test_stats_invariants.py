"""Tier-1 invariant cross-checks over the Figure 14 quick grid.

Every (workload, config) cell of the paper's headline figure must yield
a metric snapshot in which all applicable counter identities hold.  The
grid runs at the quick scale through the default persistent store, so a
warmed ``.repro_cache/`` makes this an O(file-read) pass; a cold cache
simulates each cell once and warms it for everyone else.

A second grid runs the same sixteen workloads x four configurations
with per-branch attribution recording at a much smaller dedicated scale
(attribution roughly doubles simulation time, so the quick grid stays
attribution-free) and checks the ``attribution_*_conservation``
invariants: the per-branch/per-line rollup sums must equal the
aggregate ``SimStats`` counters *exactly*, cell by cell.  It shares the
default persistent store, so only the first run after a source change
simulates anything.

A last group checks that serial and parallel execution persist
byte-identical snapshots -- and byte-identical attribution artifacts --
(the aggregation-correctness criterion), at a tiny scale with
throwaway stores.
"""

import json

import pytest

from repro.frontend.config import FrontEndConfig, SkiaConfig
from repro.harness.parallel import Cell
from repro.harness.runner import ExperimentRunner
from repro.harness.scale import SCALES, Scale
from repro.harness.store import ResultStore
from repro.obs import AttributionAggregator, applicable_invariants, check_snapshot
from repro.workloads.profiles import WORKLOAD_NAMES


def _skia(heads: bool, tails: bool) -> FrontEndConfig:
    return FrontEndConfig(skia=SkiaConfig(decode_heads=heads,
                                          decode_tails=tails))


FIG14_CONFIGS = {
    "base": FrontEndConfig(),
    "head": _skia(heads=True, tails=False),
    "tail": _skia(heads=False, tails=True),
    "both": _skia(heads=True, tails=True),
}


@pytest.fixture(scope="module")
def quick_runner():
    return ExperimentRunner(scale=SCALES["quick"])


@pytest.fixture(scope="module")
def grid_metrics(quick_runner):
    """Run (or load) the full grid, returning {(workload, config): snapshot}."""
    cells = [Cell(workload, config)
             for workload in WORKLOAD_NAMES
             for config in FIG14_CONFIGS.values()]
    quick_runner.run_cells(cells, jobs=1)
    metrics = {}
    for workload in WORKLOAD_NAMES:
        for name, config in FIG14_CONFIGS.items():
            metrics[(workload, name)] = quick_runner.metrics_for(
                workload, config)
    return metrics


class TestFig14Grid:
    def test_grid_is_complete(self, grid_metrics):
        assert len(grid_metrics) == len(WORKLOAD_NAMES) * len(FIG14_CONFIGS)
        missing = [key for key, snapshot in grid_metrics.items()
                   if snapshot is None]
        assert missing == [], f"cells without metric snapshots: {missing}"

    def test_every_cell_passes_every_invariant(self, grid_metrics):
        failures = []
        for (workload, name), snapshot in grid_metrics.items():
            for violation in check_snapshot(snapshot):
                failures.append(
                    f"{workload}/{name}: {violation.invariant}: "
                    f"{violation.message}")
        assert failures == [], "\n".join(failures)

    def test_skia_cells_exercise_skia_invariants(self, grid_metrics):
        snapshot = grid_metrics[(WORKLOAD_NAMES[0], "both")]
        names = applicable_invariants(snapshot)
        assert "sbb_probe_partition" in names
        assert "sbb_structure_accounting" in names
        baseline = grid_metrics[(WORKLOAD_NAMES[0], "base")]
        assert "sbb_probe_partition" not in applicable_invariants(baseline)

    def test_resteer_causes_nonempty_everywhere(self, grid_metrics):
        for (workload, name), snapshot in grid_metrics.items():
            causes = sum(value for key, value in snapshot.items()
                         if key.startswith("sim.resteer_causes."))
            assert causes == snapshot["sim.resteers_total"], (
                f"{workload}/{name}")
            assert causes > 0, f"{workload}/{name} recorded no resteers"


#: Attribution roughly doubles a cell's simulation time, so the
#: conservation grid runs at a dedicated small scale instead of
#: piggybacking on the quick grid.  Conservation is an exact integer
#: identity at *any* scale; scale only buys event volume.
ATTRIB_SCALE = Scale("attrib", records=3_000, warmup=1_000)


@pytest.fixture(scope="module")
def attribution_grid():
    """{(workload, config): (metrics, attribution payload)} per cell."""
    runner = ExperimentRunner(scale=ATTRIB_SCALE, record_attribution=True)
    cells = [Cell(workload, config)
             for workload in WORKLOAD_NAMES
             for config in FIG14_CONFIGS.values()]
    runner.run_cells(cells, jobs=1)
    grid = {}
    for workload in WORKLOAD_NAMES:
        for name, config in FIG14_CONFIGS.items():
            grid[(workload, name)] = (
                runner.metrics_for(workload, config),
                runner.attribution_for(workload, config))
    return grid


class TestAttributionGrid:
    """Per-branch rollups must conserve the aggregate counters, cell by
    cell, over the whole Figure 14 grid."""

    def test_every_cell_has_an_artifact(self, attribution_grid):
        missing = [key for key, (metrics, payload) in
                   attribution_grid.items()
                   if metrics is None or payload is None]
        assert missing == []

    def test_conservation_invariants_hold_everywhere(self, attribution_grid):
        failures = []
        for (workload, name), (metrics, payload) in attribution_grid.items():
            aggregator = AttributionAggregator.from_jsonable(payload)
            merged = dict(metrics)
            merged.update(aggregator.snapshot())
            for violation in check_snapshot(merged):
                failures.append(
                    f"{workload}/{name}: {violation.invariant}: "
                    f"{violation.message}")
        assert failures == [], "\n".join(failures)

    def test_attribution_invariants_are_exercised(self, attribution_grid):
        metrics, payload = attribution_grid[(WORKLOAD_NAMES[0], "both")]
        merged = dict(metrics)
        merged.update(AttributionAggregator.from_jsonable(payload).snapshot())
        names = applicable_invariants(merged)
        assert "attribution_btb_conservation" in names
        assert "attribution_sbb_conservation" in names
        assert "attribution_resteer_conservation" in names
        assert "attribution_sbd_conservation" in names
        # Base cells have no SBB/SBD counters, but BTB and resteer
        # conservation still applies.
        metrics, payload = attribution_grid[(WORKLOAD_NAMES[0], "base")]
        merged = dict(metrics)
        merged.update(AttributionAggregator.from_jsonable(payload).snapshot())
        names = applicable_invariants(merged)
        assert "attribution_btb_conservation" in names
        assert "attribution_resteer_conservation" in names

    def test_shadow_resident_fraction_identity(self, attribution_grid):
        # The per-branch reconstruction of the Figure 1/15 fraction is
        # *equal* to the aggregate one -- same integers, not "close".
        for (workload, name), (metrics, payload) in attribution_grid.items():
            aggregator = AttributionAggregator.from_jsonable(payload)
            misses = metrics["sim.btb_misses_total"]
            expected = (metrics["sim.btb_miss_l1i_hit"] / misses
                        if misses else 0.0)
            assert aggregator.shadow_resident_fraction == expected, (
                f"{workload}/{name}")

    def test_artifact_roundtrip_is_stable(self, attribution_grid):
        _, payload = attribution_grid[(WORKLOAD_NAMES[0], "both")]
        rebuilt = AttributionAggregator.from_jsonable(payload)
        assert json.dumps(rebuilt.to_jsonable(), sort_keys=True) == (
            json.dumps(payload, sort_keys=True))


#: Comparator grid: every Section 7.1 design over two workloads, at a
#: BTB small enough that the designs actually rescue misses.  Dedicated
#: scale for the same reason as the attribution grid.
COMPARATOR_SCALE = Scale("comparator-grid", records=3_000, warmup=1_000)

COMPARATOR_CONFIGS = {
    name: FrontEndConfig().with_btb_entries(256).with_comparator(name)
    for name in ("airbtb", "boomerang", "microbtb", "fdip")
}

COMPARATOR_WORKLOADS = ("voter", "kafka")


@pytest.fixture(scope="module")
def comparator_grid():
    """{(workload, design): (metrics, attribution payload)} per cell."""
    runner = ExperimentRunner(scale=COMPARATOR_SCALE,
                              record_attribution=True)
    cells = [Cell(workload, config)
             for workload in COMPARATOR_WORKLOADS
             for config in COMPARATOR_CONFIGS.values()]
    runner.run_cells(cells, jobs=1)
    grid = {}
    for workload in COMPARATOR_WORKLOADS:
        for name, config in COMPARATOR_CONFIGS.items():
            grid[(workload, name)] = (
                runner.metrics_for(workload, config),
                runner.attribution_for(workload, config))
    return grid


class TestComparatorGrid:
    """Comparator cells register their metrics and satisfy the
    comparator conservation invariants over a Fig-14-style grid."""

    def test_comparator_metrics_registered(self, comparator_grid):
        for (workload, name), (metrics, _) in comparator_grid.items():
            assert metrics is not None, (workload, name)
            assert "comparator.lookups" in metrics, (workload, name)
            assert "comparator.hits" in metrics, (workload, name)
            assert metrics["config.comparator_enabled"] == 1.0

    def test_design_specific_gauges_present(self, comparator_grid):
        metrics, _ = comparator_grid[("voter", "microbtb")]
        assert "comparator.line_fills" in metrics
        assert "comparator.ll_hits" in metrics
        metrics, _ = comparator_grid[("voter", "fdip")]
        assert metrics["comparator.depth"] == 2.0
        assert "comparator.predecodes" in metrics

    def test_every_cell_passes_every_invariant(self, comparator_grid):
        failures = []
        for (workload, name), (metrics, payload) in comparator_grid.items():
            merged = dict(metrics)
            merged.update(
                AttributionAggregator.from_jsonable(payload).snapshot())
            for violation in check_snapshot(merged):
                failures.append(
                    f"{workload}/{name}: {violation.invariant}: "
                    f"{violation.message}")
        assert failures == [], "\n".join(failures)

    def test_comparator_invariants_are_exercised(self, comparator_grid):
        metrics, payload = comparator_grid[("voter", "fdip")]
        merged = dict(metrics)
        merged.update(AttributionAggregator.from_jsonable(payload).snapshot())
        names = applicable_invariants(merged)
        assert "comparator_hits_bounded" in names
        assert "comparator_structure_bounds" in names
        assert "attribution_comparator_conservation" in names
        # Comparator-less cells never see these invariants.
        base_runner = ExperimentRunner(scale=COMPARATOR_SCALE)
        base_runner.run("voter", FrontEndConfig())
        base_metrics = base_runner.metrics_for("voter", FrontEndConfig())
        base_names = applicable_invariants(base_metrics)
        assert "comparator_structure_bounds" not in base_names
        assert "attribution_comparator_conservation" not in base_names

    def test_predecode_designs_rescue_misses(self, comparator_grid):
        """The grid is not vacuous: the predecode designs produce hits,
        and the per-branch rollup attributes exactly that many."""
        for design in ("boomerang", "fdip"):
            metrics, payload = comparator_grid[("voter", design)]
            assert metrics["sim.comparator_hits"] > 0, design
            totals = AttributionAggregator.from_jsonable(payload).totals()
            assert (totals["comparator_hits"]
                    == metrics["sim.comparator_hits"]), design

    def test_cross_design_attrib_diff(self, comparator_grid):
        """Offender tables compare *across designs*: a comparator's
        rescues count against the same per-branch population as Skia's."""
        from repro.obs.attribution import diff_attributions

        _, before_payload = comparator_grid[("voter", "airbtb")]
        _, after_payload = comparator_grid[("voter", "fdip")]
        before = AttributionAggregator.from_jsonable(before_payload)
        after = AttributionAggregator.from_jsonable(after_payload)
        diff = diff_attributions(before, after)
        render = diff.render()
        assert "d_rescue" in render
        # fdip rescues branches airbtb cannot, so some branch moved.
        assert diff.deltas


class TestSerialParallelAgreement:
    """Persisted snapshots and attribution artifacts must not depend on
    the execution strategy."""

    SCALE = Scale("sp-test", records=6_000, warmup=2_000)
    WORKLOADS = ("voter", "kafka")

    def run_grid(self, tmp_path, label, jobs):
        store = ResultStore(tmp_path / label)
        runner = ExperimentRunner(scale=self.SCALE, store=store,
                                  record_attribution=True)
        cells = [Cell(workload, config)
                 for workload in self.WORKLOADS
                 for config in FIG14_CONFIGS.values()]
        runner.run_cells(cells, jobs=jobs)
        out = {}
        for workload in self.WORKLOADS:
            for name, config in FIG14_CONFIGS.items():
                out[(workload, name)] = (
                    runner.metrics_for(workload, config),
                    runner.attribution_for(workload, config))
        return out

    def test_serial_and_parallel_results_identical(self, tmp_path):
        serial = self.run_grid(tmp_path, "serial", jobs=1)
        parallel = self.run_grid(tmp_path, "parallel", jobs=2)
        assert set(serial) == set(parallel)
        for key in serial:
            serial_metrics, serial_attrib = serial[key]
            parallel_metrics, parallel_attrib = parallel[key]
            assert serial_metrics is not None
            assert serial_attrib is not None
            # Compare through JSON: exactly what the store persists.
            assert json.dumps(serial_metrics, sort_keys=True) == (
                json.dumps(parallel_metrics, sort_keys=True)), key
            assert json.dumps(serial_attrib, sort_keys=True) == (
                json.dumps(parallel_attrib, sort_keys=True)), key
