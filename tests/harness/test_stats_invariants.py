"""Tier-1 invariant cross-checks over the Figure 14 quick grid.

Every (workload, config) cell of the paper's headline figure must yield
a metric snapshot in which all applicable counter identities hold.  The
grid runs at the quick scale through the default persistent store, so a
warmed ``.repro_cache/`` makes this an O(file-read) pass; a cold cache
simulates each cell once and warms it for everyone else.

A second group checks that serial and parallel execution persist
byte-identical snapshots (the aggregation-correctness criterion), at a
tiny scale with throwaway stores.
"""

import json

import pytest

from repro.frontend.config import FrontEndConfig, SkiaConfig
from repro.harness.parallel import Cell
from repro.harness.runner import ExperimentRunner
from repro.harness.scale import SCALES, Scale
from repro.harness.store import ResultStore
from repro.obs import applicable_invariants, check_snapshot
from repro.workloads.profiles import WORKLOAD_NAMES


def _skia(heads: bool, tails: bool) -> FrontEndConfig:
    return FrontEndConfig(skia=SkiaConfig(decode_heads=heads,
                                          decode_tails=tails))


FIG14_CONFIGS = {
    "base": FrontEndConfig(),
    "head": _skia(heads=True, tails=False),
    "tail": _skia(heads=False, tails=True),
    "both": _skia(heads=True, tails=True),
}


@pytest.fixture(scope="module")
def quick_runner():
    return ExperimentRunner(scale=SCALES["quick"])


@pytest.fixture(scope="module")
def grid_metrics(quick_runner):
    """Run (or load) the full grid, returning {(workload, config): snapshot}."""
    cells = [Cell(workload, config)
             for workload in WORKLOAD_NAMES
             for config in FIG14_CONFIGS.values()]
    quick_runner.run_cells(cells, jobs=1)
    metrics = {}
    for workload in WORKLOAD_NAMES:
        for name, config in FIG14_CONFIGS.items():
            metrics[(workload, name)] = quick_runner.metrics_for(
                workload, config)
    return metrics


class TestFig14Grid:
    def test_grid_is_complete(self, grid_metrics):
        assert len(grid_metrics) == len(WORKLOAD_NAMES) * len(FIG14_CONFIGS)
        missing = [key for key, snapshot in grid_metrics.items()
                   if snapshot is None]
        assert missing == [], f"cells without metric snapshots: {missing}"

    def test_every_cell_passes_every_invariant(self, grid_metrics):
        failures = []
        for (workload, name), snapshot in grid_metrics.items():
            for violation in check_snapshot(snapshot):
                failures.append(
                    f"{workload}/{name}: {violation.invariant}: "
                    f"{violation.message}")
        assert failures == [], "\n".join(failures)

    def test_skia_cells_exercise_skia_invariants(self, grid_metrics):
        snapshot = grid_metrics[(WORKLOAD_NAMES[0], "both")]
        names = applicable_invariants(snapshot)
        assert "sbb_probe_partition" in names
        assert "sbb_structure_accounting" in names
        baseline = grid_metrics[(WORKLOAD_NAMES[0], "base")]
        assert "sbb_probe_partition" not in applicable_invariants(baseline)

    def test_resteer_causes_nonempty_everywhere(self, grid_metrics):
        for (workload, name), snapshot in grid_metrics.items():
            causes = sum(value for key, value in snapshot.items()
                         if key.startswith("sim.resteer_causes."))
            assert causes == snapshot["sim.resteers_total"], (
                f"{workload}/{name}")
            assert causes > 0, f"{workload}/{name} recorded no resteers"


class TestSerialParallelAgreement:
    """Persisted snapshots must not depend on the execution strategy."""

    SCALE = Scale("sp-test", records=6_000, warmup=2_000)
    WORKLOADS = ("voter", "kafka")

    def run_grid(self, tmp_path, label, jobs):
        store = ResultStore(tmp_path / label)
        runner = ExperimentRunner(scale=self.SCALE, store=store)
        cells = [Cell(workload, config)
                 for workload in self.WORKLOADS
                 for config in FIG14_CONFIGS.values()]
        runner.run_cells(cells, jobs=jobs)
        out = {}
        for workload in self.WORKLOADS:
            for name, config in FIG14_CONFIGS.items():
                out[(workload, name)] = runner.metrics_for(workload, config)
        return out

    def test_serial_and_parallel_snapshots_identical(self, tmp_path):
        serial = self.run_grid(tmp_path, "serial", jobs=1)
        parallel = self.run_grid(tmp_path, "parallel", jobs=2)
        assert set(serial) == set(parallel)
        for key in serial:
            assert serial[key] is not None
            # Compare through JSON: exactly what the store persists.
            assert json.dumps(serial[key], sort_keys=True) == (
                json.dumps(parallel[key], sort_keys=True)), key
