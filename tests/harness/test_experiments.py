"""Experiment functions: smoke-run each exhibit on two tiny workloads."""

import pytest

from repro.harness import experiments
from repro.harness.runner import ExperimentRunner
from repro.harness.scale import Scale
from repro.workloads.cache import WorkloadCache

WORKLOADS = ["noop", "voter"]


@pytest.fixture(scope="module")
def runner():
    return ExperimentRunner(scale=Scale("test", records=8_000, warmup=3_000),
                            cache=WorkloadCache())


class TestFigures:
    def test_fig1(self, runner):
        result = experiments.fig1_btb_miss_l1i_hit(
            runner, btb_sizes=(1024, 8192), workloads=WORKLOADS)
        assert set(result["data"]) == {1024, 8192}
        for entry in result["data"].values():
            assert entry["l1i_hit_mpki"] <= entry["total_mpki"]
        assert "Figure 1" in result["render"]

    def test_fig3(self, runner):
        result = experiments.fig3_speedup_vs_btb_size(
            runner, btb_sizes=(1024, 8192), workloads=WORKLOADS)
        data = result["data"]
        # Reference point normalises to 1.0.
        assert data["btb"][1024] == pytest.approx(1.0)
        # Bigger BTBs never slower than the small reference.
        assert data["btb"][8192] >= 1.0
        assert "infinite" in data

    def test_fig6(self, runner):
        result = experiments.fig6_miss_breakdown(runner, workloads=WORKLOADS)
        for breakdown in result["data"].values():
            assert sum(breakdown.values()) == pytest.approx(1.0, abs=1e-6)

    def test_fig13(self, runner):
        result = experiments.fig13_l1i_mpki(runner, workloads=WORKLOADS)
        for entry in result["data"].values():
            assert entry["measured"] >= 0
            assert entry["paper_real"] > 0

    def test_fig14(self, runner):
        result = experiments.fig14_ipc_gain(runner, workloads=WORKLOADS)
        assert set(result["geomean"]) == {"head", "tail", "both"}
        for gains in result["data"].values():
            assert set(gains) == set(WORKLOADS)

    def test_fig15(self, runner):
        result = experiments.fig15_btb_miss_l1i_hit(runner,
                                                    workloads=WORKLOADS)
        for entry in result["data"].values():
            assert 0.0 <= entry["fraction"] <= 1.0

    def test_fig16(self, runner):
        result = experiments.fig16_mpki_reduction(runner,
                                                  workloads=WORKLOADS)
        for entry in result["data"].values():
            assert entry["skia"] <= entry["baseline"]

    def test_fig17(self, runner):
        result = experiments.fig17_sbb_sensitivity(
            runner, workloads=WORKLOADS,
            splits=((768, 2024), (1024, 1024)),
            scales=(0.5, 1.0))
        assert (768, 2024) in result["splits"]
        assert 1.0 in result["scales"]

    def test_fig18(self, runner):
        result = experiments.fig18_decoder_idle(runner, workloads=WORKLOADS)
        for reduction in result["data"].values():
            assert reduction <= 1.0


class TestTables:
    def test_table1(self):
        result = experiments.table1_config()
        assert "78KB" in result["render"]
        assert "Table 1" in result["render"]

    def test_table2(self):
        result = experiments.table2_benchmarks()
        assert "OLTPBench" in result["suites"]
        assert sum(len(v) for v in result["suites"].values()) == 16


class TestSectionExperiments:
    def test_bogus_rate(self, runner):
        result = experiments.bogus_rate_audit(runner, workloads=WORKLOADS)
        assert 0.0 <= result["average"] < 0.05

    def test_ablation_index_policy(self, runner):
        result = experiments.ablation_index_policy(runner,
                                                   workloads=WORKLOADS)
        assert set(result["data"]) == {"first", "zero", "merge"}

    def test_ablation_max_paths(self, runner):
        result = experiments.ablation_max_paths(runner, workloads=WORKLOADS,
                                                limits=(1, 6))
        assert set(result["data"]) == {1, 6}

    def test_ablation_retired_bit(self, runner):
        result = experiments.ablation_retired_bit(runner,
                                                  workloads=WORKLOADS)
        assert set(result["data"]) == {"retired-first", "plain LRU"}
