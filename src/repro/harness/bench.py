"""Benchmark trajectory: measure, persist, compare.

``repro bench run`` times a fixed grid of simulation cells and writes a
schema-versioned ``BENCH_<YYYYMMDD>.json`` at the repository root:
simulation throughput (records and simulated cycles per host second),
per-figure runtime, decode-cache and result-store hit rates, and the
host-side profiler sections (:mod:`repro.obs.profiler`).  ``repro bench
compare`` diffs two such files against configurable thresholds and exits
non-zero on regression -- CI gates on it, and the checked-in
``benchmarks/baseline_smoke.json`` is the blessed reference point.

Methodology
-----------
The run is two-phase over a *private* temporary result store (the user's
``.repro_cache`` is never consulted, so numbers always reflect fresh
simulation):

1. **cold** -- every cell simulates; per-figure wall-clock and the
   throughput figures come from this phase;
2. **warm** -- the same grid replays out of the just-filled store; its
   wall-clock and hit rate characterise the store read path.

Throughput numbers are machine-specific: a baseline blessed on one host
gates only runs on comparable hosts (see ``docs/performance.md`` for the
blessing workflow and why the checked-in baseline carries headroom).
"""

from __future__ import annotations

import dataclasses
import json
import os
import platform
import tempfile
import time
from pathlib import Path
from typing import Mapping, Sequence

from repro.frontend.config import FrontEndConfig, SkiaConfig
from repro.harness.parallel import Cell
from repro.harness.runner import ExperimentRunner
from repro.harness.scale import Scale
from repro.harness.store import ResultStore
from repro.obs.profiler import PROFILER
from repro.workloads.cache import WorkloadCache
from repro.workloads.compiled import batch_enabled, compiled_traces_enabled

#: Bump when the payload shape changes; ``compare`` refuses to diff
#: files with mismatched schema versions.
BENCH_SCHEMA_VERSION = 1

#: Workloads of the fixed bench grid: one high-gain OLTP workload, one
#: mid-gain one, and the no-op control (near-zero front-end pressure).
DEFAULT_BENCH_WORKLOADS = ("voter", "tatp", "noop")

#: Default throughput regression gate (percent drop in records/sec).
DEFAULT_THRESHOLD_PCT = 25.0

DEFAULT_BASELINE = Path("benchmarks") / "baseline_smoke.json"


def bench_grid(workloads: Sequence[str] | None = None
               ) -> dict[str, list[Cell]]:
    """The fixed cell grid, grouped by the figure family it exercises."""
    workloads = tuple(workloads or DEFAULT_BENCH_WORKLOADS)
    base = FrontEndConfig()
    skia = FrontEndConfig(skia=SkiaConfig())
    head = FrontEndConfig(skia=SkiaConfig(decode_tails=False))
    tail = FrontEndConfig(skia=SkiaConfig(decode_heads=False))
    return {
        "fig14_grid": [Cell(workload, config)
                       for workload in workloads
                       for config in (base, skia, head, tail)],
        "fig3_btb_sweep": [Cell(workloads[0], base.with_btb_entries(n))
                           for n in (4096, 16384)],
    }


def _hit_rate(hits: float, misses: float) -> float:
    total = hits + misses
    return hits / total if total else 0.0


def _decode_cache_rates(runner: ExperimentRunner,
                        cells: Sequence[Cell]) -> dict[str, float]:
    """Aggregate SBD cache hit rates over the grid's Skia cells."""
    sums: dict[str, float] = {}
    for cell in cells:
        if not cell.config.skia.enabled:
            continue
        metrics = runner.metrics_for(cell.workload, cell.config,
                                     bolted=cell.bolted)
        if not metrics:
            continue
        for key, value in metrics.items():
            if key.startswith("sbd."):
                sums[key] = sums.get(key, 0.0) + value
    rates = {}
    for cache in ("head_memo", "tail_memo", "line_cache"):
        rates[f"sbd_{cache}_hit_rate"] = _hit_rate(
            sums.get(f"sbd.{cache}.hits", 0.0),
            sums.get(f"sbd.{cache}.misses", 0.0))
    return rates


#: The phase-5 fast-forward cell: a workload whose trace is exactly
#: periodic (round-robin dispatch, no stochastic branches), replayed
#: over far more records than the grid cells so skipped whole periods
#: dominate the wall clock.
FASTFORWARD_WORKLOAD = "steady-stream"


def _bench_fastforward(scale: Scale, repeats: int = 3) -> dict:
    """Time one long periodic cell with fast-forwarding on and off.

    Walls are min-of-``repeats`` in one process (warm caches, so the
    ratio is immune to cold-start noise); the trace/program build is
    excluded from both.  Returns the ``fastforward`` payload section.
    """
    from repro.frontend.engine import FrontEndSimulator
    from repro.workloads.cache import WorkloadCache
    from repro.workloads.compiled import fastforward_enabled

    records = max(scale.records * 8, 48_000)
    warmup = max(min(scale.warmup, records // 12), 256)
    out = {
        "enabled": fastforward_enabled() and compiled_traces_enabled(),
        "workload": FASTFORWARD_WORKLOAD,
        "records": records,
        "warmup": warmup,
    }
    if not out["enabled"]:
        return out
    cache = WorkloadCache()
    program = cache.program(FASTFORWARD_WORKLOAD, seed=0)
    compiled = cache.compiled(FASTFORWARD_WORKLOAD, records, seed=0)

    def _wall() -> tuple[float, dict | None]:
        simulator = FrontEndSimulator(program, FrontEndConfig(), seed=0)
        start = time.perf_counter()
        simulator.run_compiled(compiled, warmup=warmup)
        return (time.perf_counter() - start,
                getattr(simulator, "fastforward_summary", None))

    previous = os.environ.get("REPRO_FASTFORWARD")
    try:
        os.environ["REPRO_FASTFORWARD"] = "1"
        on_runs = [_wall() for _ in range(repeats)]
        os.environ["REPRO_FASTFORWARD"] = "0"
        off_runs = [_wall() for _ in range(repeats)]
    finally:
        if previous is None:
            os.environ.pop("REPRO_FASTFORWARD", None)
        else:
            os.environ["REPRO_FASTFORWARD"] = previous
    on_wall = min(wall for wall, _ in on_runs)
    off_wall = min(wall for wall, _ in off_runs)
    summary = on_runs[0][1] or {}
    out.update({
        "on_wall_s": round(on_wall, 4),
        "off_wall_s": round(off_wall, 4),
        "speedup": round(off_wall / on_wall, 3) if on_wall else 0.0,
        "period": summary.get("period"),
        "probes": summary.get("probes"),
        "skipped_records": summary.get("skipped_records"),
    })
    return out


def run_bench(scale: Scale, workloads: Sequence[str] | None = None,
              jobs: int = 1, out: str | os.PathLike | None = None,
              ) -> tuple[dict, Path]:
    """Run the bench grid at ``scale``; write and return the payload."""
    from repro.frontend.batch import fallback_counts
    from repro.obs import ledger as ledger_mod

    figures = bench_grid(workloads)
    all_cells = [cell for cells in figures.values() for cell in cells]

    ledger = ledger_mod.active_ledger()
    was_enabled = PROFILER.enabled
    if ledger is None:
        # Exclusive profiler ownership: reset so payload sections cover
        # exactly this bench run.  Under a run ledger the profiler is
        # already recording spans whose conservation check compares
        # against the run-start baseline -- resetting would corrupt it,
        # so the payload uses the baselined delta instead (equivalent:
        # the ledger opened right before the bench started).
        PROFILER.reset()
    PROFILER.enabled = True
    fallbacks_before = fallback_counts()
    try:
        with tempfile.TemporaryDirectory(prefix="repro-bench-") as tmp:
            # Phase 1: cold — every cell is fresh simulation.  The cold
            # runner gets a private WorkloadCache so trace generation and
            # compilation are measured from scratch: ``trace.compile``
            # fires exactly once per workload per bench run regardless of
            # what the process did beforehand.
            cold_cache = WorkloadCache()
            cold_runner = ExperimentRunner(scale=scale, cache=cold_cache,
                                           store=ResultStore(tmp))
            figure_out: dict[str, dict] = {}
            total_cycles = 0.0
            cold_wall = 0.0
            # Compiled-trace cache accounting is *per figure group*: a
            # cumulative rate would blend fig14's unavoidable first-touch
            # compilations (all misses) with fig3's perfect reuse of the
            # same traces, reading as poor reuse (e.g. 0.25) when reuse
            # is in fact total.
            compiled_counts = cold_cache.stats()["compiled"]
            prev_hits = compiled_counts.hits
            prev_misses = compiled_counts.misses
            for name, cells in figures.items():
                start = time.perf_counter()
                stats_list = cold_runner.run_cells(cells, jobs=jobs)
                seconds = time.perf_counter() - start
                cold_wall += seconds
                total_cycles += sum(stats.cycles for stats in stats_list)
                compiled_counts = cold_cache.stats()["compiled"]
                phase_hits = compiled_counts.hits - prev_hits
                phase_misses = compiled_counts.misses - prev_misses
                prev_hits = compiled_counts.hits
                prev_misses = compiled_counts.misses
                figure_out[name] = {
                    "seconds": round(seconds, 4),
                    "cells": len(cells),
                    "compiled_trace_hits": phase_hits,
                    "compiled_trace_misses": phase_misses,
                    "compiled_trace_hit_rate": round(
                        _hit_rate(phase_hits, phase_misses), 6),
                }
            cache_rates = _decode_cache_rates(cold_runner, all_cells)
            compiled_stats = cold_cache.stats()["compiled"]

            # Phase 2: warm — the grid replays out of the filled store.
            warm_store = ResultStore(tmp)
            warm_runner = ExperimentRunner(scale=scale, store=warm_store)
            start = time.perf_counter()
            warm_runner.run_cells(all_cells, jobs=1)
            warm_wall = time.perf_counter() - start

            # Phase 3: kernel comparison — the Figure-14 grid replayed
            # with the batched lane kernel on and off, over the traces
            # phase 1 already built (store disabled, fresh memo each
            # time), so the ratio isolates replay-loop cost from trace
            # generation/compilation.  Skipped when compiled traces are
            # off: both flag states would take the same object path.
            batch_out = {"enabled": batch_enabled() and
                         compiled_traces_enabled()}
            if compiled_traces_enabled():
                grid = figures["fig14_grid"]
                grid_records = scale.records * len(grid)

                def _grid_wall() -> float:
                    runner = ExperimentRunner(scale=scale, cache=cold_cache,
                                              store=None)
                    start = time.perf_counter()
                    runner.run_cells(grid, jobs=1)
                    return time.perf_counter() - start

                previous = os.environ.get("REPRO_BATCH")
                try:
                    os.environ["REPRO_BATCH"] = "1"
                    batched_wall = _grid_wall()
                    os.environ["REPRO_BATCH"] = "0"
                    unbatched_wall = _grid_wall()
                finally:
                    if previous is None:
                        os.environ.pop("REPRO_BATCH", None)
                    else:
                        os.environ["REPRO_BATCH"] = previous
                batch_out.update({
                    "batched_wall_s": round(batched_wall, 4),
                    "unbatched_wall_s": round(unbatched_wall, 4),
                    "batched_records_per_sec": round(
                        grid_records / batched_wall, 2),
                    "unbatched_records_per_sec": round(
                        grid_records / unbatched_wall, 2),
                    "speedup": round(unbatched_wall / batched_wall, 3),
                })

            # Phase 4: interval-telemetry overhead — the Figure-14 grid
            # replayed with per-window telemetry on and off, over the
            # traces phase 1 already built (store disabled, fresh memo
            # each time).  The on-grid swaps each config for its
            # interval_size=N variant; disabled telemetry is a single
            # None-check per record, so the ratio should stay ~1.
            interval_window = max(scale.records // 10, 1)
            plain_grid = figures["fig14_grid"]
            interval_grid = [
                Cell(cell.workload,
                     dataclasses.replace(cell.config,
                                         interval_size=interval_window),
                     bolted=cell.bolted)
                for cell in plain_grid]

            def _cells_wall(cells: Sequence[Cell]) -> float:
                runner = ExperimentRunner(scale=scale, cache=cold_cache,
                                          store=None)
                start = time.perf_counter()
                runner.run_cells(cells, jobs=1)
                return time.perf_counter() - start

            enabled_wall = _cells_wall(interval_grid)
            disabled_wall = _cells_wall(plain_grid)
            intervals_out = {
                "window": interval_window,
                "enabled_wall_s": round(enabled_wall, 4),
                "disabled_wall_s": round(disabled_wall, 4),
                "overhead_factor": (round(enabled_wall / disabled_wall, 3)
                                    if disabled_wall else 0.0),
            }

            # Phase 5: cycle fast-forward — one long periodic cell
            # (the steady-stream workload's trace repeats exactly, so
            # the fast-forward layer skips almost all of it) replayed
            # with REPRO_FASTFORWARD on and off, min of 3 each.  The
            # trace is deliberately longer than the grid cells and the
            # warm-up short: skippable whole periods, not detection
            # cost, must dominate for the measured speedup to reflect
            # the layer (CI gates this cell at >= 5x).
            fastforward_out = _bench_fastforward(scale)
    finally:
        profiler_snapshot = (ledger_mod.profile_delta() if ledger is not None
                             else PROFILER.snapshot())
        PROFILER.enabled = was_enabled

    # Object-path fallbacks this bench run caused, keyed by reason
    # (delta over the process-wide counts).  The fig14 comparison phase
    # intentionally forces the object path via REPRO_BATCH=0; those
    # cells never consult the fallback accounting, so any count here is
    # a genuine degradation (e.g. an attached sink).
    fallbacks_after = fallback_counts()
    batch_out["object_path_fallbacks"] = {
        reason: count - fallbacks_before.get(reason, 0)
        for reason, count in sorted(fallbacks_after.items())
        if count - fallbacks_before.get(reason, 0)
    }

    total_records = scale.records * len(all_cells)
    payload = {
        "schema_version": BENCH_SCHEMA_VERSION,
        "created": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "scale": scale.name,
        "records_per_cell": scale.records,
        "cells": len(all_cells),
        "workloads": list(workloads or DEFAULT_BENCH_WORKLOADS),
        "host": {
            "python": platform.python_version(),
            "platform": platform.platform(),
            "cpu_count": os.cpu_count(),
            "jobs": jobs,
        },
        "throughput": {
            "records_per_sec": round(total_records / cold_wall, 2),
            "cycles_per_sec": round(total_cycles / cold_wall, 2),
            "cold_wall_s": round(cold_wall, 4),
            "warm_wall_s": round(warm_wall, 4),
        },
        "figures": figure_out,
        # Additive since schema 1: batched-kernel vs per-record replay
        # of the Figure-14 grid (phase 3 above).
        "batch": batch_out,
        # Additive since schema 1: interval telemetry on/off over the
        # Figure-14 grid (phase 4 above).
        "intervals": intervals_out,
        # Additive since schema 1: cycle fast-forward on/off over one
        # long periodic cell (phase 5 above).
        "fastforward": fastforward_out,
        "caches": {
            **{key: round(value, 6)
               for key, value in cache_rates.items()},
            "store_hit_rate": round(
                _hit_rate(warm_store.hits, warm_store.misses), 6),
            "store_hits": warm_store.hits,
            "store_misses": warm_store.misses,
            # Additive since schema 1: cold-phase compiled-trace reuse.
            # One miss per distinct workload (the single compilation),
            # everything else hits -- unless the layer is disabled.
            # Totals only; the meaningful hit *rates* are per figure
            # group (``figures.<name>.compiled_trace_hit_rate``), since
            # first-touch compilations all land in the first group.
            "compiled_traces_enabled": compiled_traces_enabled(),
            "compiled_trace_hits": compiled_stats.hits,
            "compiled_trace_misses": compiled_stats.misses,
        },
        "profiler": profiler_snapshot,
    }

    if out is None:
        out = Path(f"BENCH_{time.strftime('%Y%m%d')}.json")
    path = _write_atomic(Path(out), payload)
    return payload, path


def _write_atomic(path: Path, payload: Mapping) -> Path:
    """Write via ``<path>.tmp`` + rename (``make clean`` sweeps strays)."""
    tmp = Path(str(path) + ".tmp")
    tmp.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n",
                   encoding="utf-8")
    os.replace(tmp, path)
    return path


def load_bench(path: str | os.PathLike) -> dict:
    payload = json.loads(Path(path).read_text(encoding="utf-8"))
    if not isinstance(payload, dict) or "schema_version" not in payload:
        raise ValueError(f"{path}: not a bench trajectory file")
    return payload


def latest_bench_file(root: str | os.PathLike = ".") -> Path | None:
    """The newest ``BENCH_*.json`` under ``root`` (date-named, so the
    lexicographic maximum; ties broken by mtime)."""
    candidates = sorted(Path(root).glob("BENCH_*.json"),
                        key=lambda p: (p.name, p.stat().st_mtime))
    return candidates[-1] if candidates else None


# ----------------------------------------------------------------------
# Comparison
# ----------------------------------------------------------------------

class BenchSchemaMismatch(ValueError):
    """Two bench files use different payload schemas.

    Not a performance regression: the files cannot be meaningfully
    diffed at all.  Carries both versions so callers can print a
    diagnostic (the CLI exits 2 with one) instead of either a spurious
    gate trip or a ``KeyError`` traceback from missing payload keys.
    """

    def __init__(self, before_schema, after_schema):
        self.before_schema = before_schema
        self.after_schema = after_schema
        super().__init__(
            f"bench schema mismatch: before={before_schema!r} "
            f"after={after_schema!r}")


def compare_bench(before: Mapping, after: Mapping,
                  threshold_pct: float = DEFAULT_THRESHOLD_PCT,
                  figure_threshold_pct: float | None = None,
                  ) -> tuple[list[str], list[str]]:
    """Diff two bench payloads.

    Returns ``(regressions, report_lines)``.  ``threshold_pct`` gates
    the cold-run throughput (records/sec); ``figure_threshold_pct``,
    when given, additionally gates each figure group's wall-clock.
    Hit-rate and profiler changes are reported but never gate (they are
    host-load sensitive).  Raises :class:`BenchSchemaMismatch` when the
    schema versions differ -- incomparable files are a usage error, not
    a regression.
    """
    regressions: list[str] = []
    lines: list[str] = []

    before_schema = before.get("schema_version")
    after_schema = after.get("schema_version")
    if before_schema != after_schema:
        raise BenchSchemaMismatch(before_schema, after_schema)

    if before.get("scale") != after.get("scale"):
        lines.append(f"note: comparing different scales "
                     f"({before.get('scale')} vs {after.get('scale')})")

    b_tp = float(before.get("throughput", {}).get("records_per_sec", 0.0))
    a_tp = float(after.get("throughput", {}).get("records_per_sec", 0.0))
    delta_pct = 100.0 * (a_tp - b_tp) / b_tp if b_tp else 0.0
    line = (f"throughput: {b_tp:.0f} -> {a_tp:.0f} records/sec "
            f"({delta_pct:+.1f}%)")
    if b_tp and a_tp < b_tp * (1.0 - threshold_pct / 100.0):
        regressions.append(
            f"{line}  REGRESSION (> {threshold_pct:.0f}% drop)")
        lines.append(regressions[-1])
    else:
        lines.append(line)

    b_figures = before.get("figures", {})
    a_figures = after.get("figures", {})
    for name in sorted(set(b_figures) | set(a_figures)):
        if name not in b_figures or name not in a_figures:
            lines.append(f"figure {name}: only in "
                         f"{'after' if name in a_figures else 'before'}")
            continue
        b_s = float(b_figures[name].get("seconds", 0.0))
        a_s = float(a_figures[name].get("seconds", 0.0))
        delta_pct = 100.0 * (a_s - b_s) / b_s if b_s else 0.0
        line = f"figure {name}: {b_s:.2f}s -> {a_s:.2f}s ({delta_pct:+.1f}%)"
        if (figure_threshold_pct is not None and b_s
                and a_s > b_s * (1.0 + figure_threshold_pct / 100.0)):
            regressions.append(
                f"{line}  REGRESSION (> {figure_threshold_pct:.0f}% slower)")
            lines.append(regressions[-1])
        else:
            lines.append(line)

    b_batch = before.get("batch", {}).get("speedup")
    a_batch = after.get("batch", {}).get("speedup")
    if b_batch is not None or a_batch is not None:
        # Reported, never gating here: the hard >= 2x floor lives in the
        # component-throughput benchmark job (see benchmarks/).
        lines.append(f"batch speedup: {b_batch} -> {a_batch}")

    b_iv = before.get("intervals", {}).get("overhead_factor")
    a_iv = after.get("intervals", {}).get("overhead_factor")
    if b_iv is not None or a_iv is not None:
        # Reported, never gating here: the hard <= 1.05x ceiling lives
        # in tests/obs/test_overhead.py.
        lines.append(f"interval telemetry overhead: {b_iv} -> {a_iv}")

    b_ff = before.get("fastforward", {}).get("speedup")
    a_ff = after.get("fastforward", {}).get("speedup")
    if b_ff is not None or a_ff is not None:
        # Reported, never gating here: the hard >= 5x floor lives in
        # the bench-trajectory CI job.
        lines.append(f"fast-forward speedup: {b_ff} -> {a_ff}")

    b_fallbacks = before.get("batch", {}).get("object_path_fallbacks")
    a_fallbacks = after.get("batch", {}).get("object_path_fallbacks")
    if b_fallbacks != a_fallbacks and (b_fallbacks or a_fallbacks):
        lines.append(f"object-path fallbacks: {b_fallbacks or {}} -> "
                     f"{a_fallbacks or {}}")

    b_caches = before.get("caches", {})
    a_caches = after.get("caches", {})
    for key in sorted(set(b_caches) | set(a_caches)):
        if not key.endswith("_hit_rate"):
            continue
        b_v, a_v = b_caches.get(key), a_caches.get(key)
        if b_v != a_v:
            lines.append(f"{key}: {b_v} -> {a_v}")

    return regressions, lines
