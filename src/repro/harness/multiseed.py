"""Multi-seed experiment aggregation.

Synthetic workloads are stochastic in (program seed, trace seed); a
credible result reports stability across seeds.  This module runs a
metric over several seeds and reports mean, standard deviation and range
-- used by the seed-stability benchmark and available to users studying
their own configurations.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable

from repro.frontend.config import FrontEndConfig
from repro.frontend.stats import SimStats
from repro.harness.parallel import Cell, ParallelRunner
from repro.harness.runner import ExperimentRunner
from repro.harness.scale import Scale, current_scale
from repro.workloads.cache import WorkloadCache


@dataclass(frozen=True)
class SeedSweepResult:
    """Per-seed values plus summary statistics."""

    values: tuple[float, ...]
    seeds: tuple[int, ...]

    @property
    def mean(self) -> float:
        return sum(self.values) / len(self.values)

    @property
    def std(self) -> float:
        if len(self.values) < 2:
            return 0.0
        mean = self.mean
        variance = (sum((value - mean) ** 2 for value in self.values)
                    / (len(self.values) - 1))
        return math.sqrt(variance)

    @property
    def minimum(self) -> float:
        return min(self.values)

    @property
    def maximum(self) -> float:
        return max(self.values)

    def render(self, label: str = "metric") -> str:
        return (f"{label}: mean={self.mean:.4f} std={self.std:.4f} "
                f"range=[{self.minimum:.4f}, {self.maximum:.4f}] "
                f"over seeds {list(self.seeds)}")


def sweep_seeds(workload: str, metric: Callable[[SimStats, SimStats], float],
                config_a: FrontEndConfig, config_b: FrontEndConfig,
                seeds: tuple[int, ...] = (0, 1, 2),
                scale: Scale | None = None,
                jobs: int | None = 1) -> SeedSweepResult:
    """Evaluate ``metric(stats_a, stats_b)`` per seed.

    Each seed gets its own program *and* trace (both derive from the
    seed), so the sweep measures workload-generation variance, not just
    trace noise.  Seeds are independent simulations, so ``jobs != 1``
    fans the 2 x len(seeds) cells out over a process pool with results
    bit-identical to the serial sweep.
    """
    scale = scale or current_scale()
    if jobs != 1:
        parallel = ParallelRunner(scale=scale, jobs=jobs)
        cells = [Cell(workload, config, seed)
                 for seed in seeds
                 for config in (config_a, config_b)]
        stats = parallel.run_batch(cells)
        values = [metric(stats[index], stats[index + 1])
                  for index in range(0, len(stats), 2)]
        return SeedSweepResult(values=tuple(values), seeds=tuple(seeds))
    values = []
    for seed in seeds:
        runner = ExperimentRunner(scale=scale, seed=seed,
                                  cache=WorkloadCache())
        stats_a = runner.run(workload, config_a)
        stats_b = runner.run(workload, config_b)
        values.append(metric(stats_a, stats_b))
    return SeedSweepResult(values=tuple(values), seeds=tuple(seeds))


def speedup_metric(base: SimStats, enhanced: SimStats) -> float:
    """The Figure 14 metric: IPC gain of ``enhanced`` over ``base``."""
    return enhanced.ipc / base.ipc - 1.0
