"""Process-pool experiment execution.

The figure suite sweeps dozens of (workload, config, seed) cells; each
cell is an independent, deterministic simulation, which makes the grid
embarrassingly parallel.  :class:`ParallelRunner` deduplicates a batch of
cells by their canonical identity (the same key the serial runner memos
on), fans the distinct cells out over a ``ProcessPoolExecutor``, and
returns ``SimStats`` in input order.

Determinism: a worker runs exactly the code the serial path runs -- same
program generation, same trace, same simulator seed -- so ``jobs>1``
results are bit-identical to ``jobs=1``.  Serial execution stays the
default (``jobs=1`` never spawns a pool).

Worker count comes from ``REPRO_JOBS`` (``0`` or unset means
``os.cpu_count()`` when parallelism is requested).  Workers share the
persistent :mod:`~repro.harness.store` when one is configured, so a cell
simulated by any worker is on disk for every later process.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Sequence

from repro.frontend.config import FrontEndConfig
from repro.frontend.stats import SimStats
from repro.harness.scale import Scale, current_scale
from repro.harness.store import (
    ResultStore,
    config_key,
    default_store,
    result_key,
)
from repro.obs.profiler import PROFILER


@dataclass(frozen=True)
class Cell:
    """One point of the evaluation grid.

    ``seed=None`` means "the runner's seed": batch APIs resolve it before
    execution, so planners can stay seed-agnostic.
    """

    workload: str
    config: FrontEndConfig
    seed: int | None = None
    bolted: bool = False

    def resolved(self, default_seed: int) -> "Cell":
        if self.seed is not None:
            return self
        return Cell(self.workload, self.config, default_seed, self.bolted)

    def identity(self, scale: Scale) -> tuple:
        """The dedup/memo key; matches ``ExperimentRunner``'s memo key."""
        return (self.workload, self.bolted, scale.name, self.seed,
                config_key(self.config))


def default_jobs() -> int:
    """Worker count from ``REPRO_JOBS``; 0/unset means all CPUs."""
    raw = os.environ.get("REPRO_JOBS", "").strip()
    if raw:
        try:
            jobs = int(raw)
        except ValueError:
            raise ValueError(
                f"REPRO_JOBS={raw!r}; expected an integer") from None
        if jobs > 0:
            return jobs
    return os.cpu_count() or 1


def resolve_jobs(jobs: int | None) -> int:
    """Normalise a jobs request: None/0 -> REPRO_JOBS/cpu_count."""
    if jobs is None or jobs <= 0:
        return default_jobs()
    return jobs


def simulate_cell(workload: str, config: FrontEndConfig, seed: int,
                  bolted: bool, scale: Scale,
                  store_root: str | None = None,
                  record_attribution: bool = False) -> SimStats:
    """Run one cell exactly as the serial runner would.

    Module-level so it pickles into pool workers.  Consults/fills the
    persistent store when ``store_root`` is given; uses the per-process
    workload cache so cells sharing a (workload, seed) reuse programs and
    traces within a worker.

    With ``record_attribution`` the per-branch/per-line attribution
    artifact is persisted alongside the stats; a store hit whose entry
    lacks attribution is *backfilled* (re-simulated and overwritten) so
    requesting attribution always produces it.  The aggregation is the
    same in-order event fold serial runs perform, so serial and parallel
    artifacts are byte-identical.
    """
    from repro.frontend.engine import FrontEndSimulator
    from repro.workloads.cache import GLOBAL_CACHE

    with PROFILER.section("harness.cell"):
        store = ResultStore(store_root) if store_root else None
        key = None
        if store is not None:
            key = result_key(workload, config, seed, scale, bolted=bolted)
            cached = store.get(key)
            if cached is not None and not (
                    record_attribution
                    and store.get_attribution(key) is None):
                return cached
        with PROFILER.section("harness.workload"):
            program = GLOBAL_CACHE.program(workload, seed=seed,
                                           bolted=bolted)
            trace = GLOBAL_CACHE.trace(workload, scale.records, seed=seed,
                                       bolted=bolted)
        with PROFILER.section("harness.simulate"):
            simulator = FrontEndSimulator(program, config, seed=seed)
            if record_attribution:
                simulator.attach_attribution()
            stats = simulator.run(trace, warmup=scale.warmup)
        if store is not None:
            # Persist the metric snapshot next to the result so serial and
            # parallel runs surface identical per-component counters.
            attribution = (simulator.attribution.to_jsonable()
                           if record_attribution else None)
            store.put(key, stats, metrics=simulator.metrics_snapshot(),
                      attribution=attribution)
    return stats


def _simulate_packed(packed: tuple) -> SimStats:
    return simulate_cell(*packed)


class ParallelRunner:
    """Fans a batch of cells out over a process pool.

    ``jobs=1`` runs every cell in-process (no pool, no pickling), which
    keeps the serial path bit-identical and debuggable; any other value
    resolves through :func:`resolve_jobs`.
    """

    def __init__(self, scale: Scale | None = None, jobs: int | None = None,
                 store: ResultStore | None | str = "default",
                 record_attribution: bool = False):
        self.scale = scale or current_scale()
        self.jobs = 1 if jobs == 1 else resolve_jobs(jobs)
        self.store = default_store() if store == "default" else store
        #: Workers hand attribution artifacts back through the store, so
        #: recording without a store silently discards them.
        self.record_attribution = record_attribution

    @property
    def _store_root(self) -> str | None:
        return None if self.store is None else str(self.store.root)

    def run_batch(self, cells: Sequence[Cell],
                  default_seed: int = 0) -> list[SimStats]:
        """Simulate ``cells``; returns stats aligned with the input.

        Duplicate cells (same canonical identity) are simulated once.
        """
        resolved = [cell.resolved(default_seed) for cell in cells]
        unique: dict[tuple, Cell] = {}
        for cell in resolved:
            unique.setdefault(cell.identity(self.scale), cell)

        # Group same-workload cells together so static chunks reuse each
        # worker's program/trace cache, but keep chunks small enough for
        # load balancing.
        ordered = sorted(
            unique.items(),
            key=lambda item: (item[1].workload, item[1].seed,
                              item[1].bolted))
        packed = [(cell.workload, cell.config, cell.seed, cell.bolted,
                   self.scale, self._store_root, self.record_attribution)
                  for _, cell in ordered]

        workers = min(self.jobs, len(packed)) if packed else 0
        if workers <= 1:
            stats_list = [_simulate_packed(item) for item in packed]
        else:
            # Workers profile into their own (discarded) PROFILER; this
            # section times the dispatch + result collection layer.
            chunksize = max(1, len(packed) // (workers * 4))
            with PROFILER.section("harness.parallel_batch"):
                with ProcessPoolExecutor(max_workers=workers) as pool:
                    stats_list = list(pool.map(_simulate_packed, packed,
                                               chunksize=chunksize))

        by_identity = {identity: stats for (identity, _), stats
                       in zip(ordered, stats_list)}
        return [by_identity[cell.identity(self.scale)] for cell in resolved]

    def run_grid(self, workloads: Sequence[str],
                 configs: Sequence[FrontEndConfig],
                 seeds: Sequence[int] = (0,),
                 bolted: bool = False) -> dict[tuple, SimStats]:
        """The full cartesian product, keyed by (workload, seed, index).

        ``index`` is the position of the config in ``configs`` (configs
        themselves are not hashable dict keys).
        """
        cells = [Cell(workload, config, seed, bolted)
                 for workload in workloads
                 for index, config in enumerate(configs)
                 for seed in seeds]
        stats = self.run_batch(cells)
        out: dict[tuple, SimStats] = {}
        position = 0
        for workload in workloads:
            for index, _ in enumerate(configs):
                for seed in seeds:
                    out[(workload, seed, index)] = stats[position]
                    position += 1
        return out
