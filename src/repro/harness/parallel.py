"""Process-pool experiment execution.

The figure suite sweeps dozens of (workload, config, seed) cells; each
cell is an independent, deterministic simulation, which makes the grid
embarrassingly parallel.  :class:`ParallelRunner` deduplicates a batch of
cells by their canonical identity (the same key the serial runner memos
on), fans the distinct cells out over a ``ProcessPoolExecutor``, and
returns ``SimStats`` in input order.

Determinism: a worker runs exactly the code the serial path runs -- same
program generation, same trace, same simulator seed -- so ``jobs>1``
results are bit-identical to ``jobs=1``.  Serial execution stays the
default (``jobs=1`` never spawns a pool).

Worker count comes from ``REPRO_JOBS`` (``0`` or unset means the CPUs
*available to this process* -- ``os.process_cpu_count()`` semantics, not
the machine total).  Workers share the persistent
:mod:`~repro.harness.store` when one is configured, so a cell simulated
by any worker is on disk for every later process.

Traces cross the process boundary zero-copy: the parent compiles each
distinct (workload, seed, bolted) trace once into flat
:class:`~repro.workloads.compiled.CompiledTrace` columns, publishes the
buffer through ``multiprocessing.shared_memory`` (or a cache-directory
spill file where ``/dev/shm`` is unavailable), and ships only the
segment *name* in the task tuple.  Workers attach read-only views and
memoise the attachment, so a grid run generates and compiles each trace
exactly once per host instead of once per worker.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Sequence

from repro.frontend.config import FrontEndConfig
from repro.frontend.stats import SimStats
from repro.harness.scale import Scale, current_scale
from repro.harness.store import (
    ResultStore,
    config_key,
    default_store,
    result_key,
)
from repro.obs import ledger as ledger_mod
from repro.obs import spans as spans_mod
from repro.obs.profiler import PROFILER


@dataclass(frozen=True)
class Cell:
    """One point of the evaluation grid.

    ``seed=None`` means "the runner's seed": batch APIs resolve it before
    execution, so planners can stay seed-agnostic.
    """

    workload: str
    config: FrontEndConfig
    seed: int | None = None
    bolted: bool = False

    def resolved(self, default_seed: int) -> "Cell":
        if self.seed is not None:
            return self
        return Cell(self.workload, self.config, default_seed, self.bolted)

    def identity(self, scale: Scale) -> tuple:
        """The dedup/memo key; matches ``ExperimentRunner``'s memo key."""
        return (self.workload, self.bolted, scale.name, self.seed,
                config_key(self.config))


def available_cpus() -> int:
    """CPUs *usable by this process* (cgroup/affinity aware).

    ``os.process_cpu_count`` (3.13+) when present; otherwise the
    scheduling affinity mask, falling back to the machine total only
    when neither is available.  Sizing pools by the machine total
    oversubscribes containers and ``taskset``-restricted CI runners.
    """
    counter = getattr(os, "process_cpu_count", None)
    if counter is not None:
        return counter() or 1
    try:
        return len(os.sched_getaffinity(0)) or 1
    except (AttributeError, OSError):  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def default_jobs() -> int:
    """Worker count from ``REPRO_JOBS``; 0/unset means available CPUs."""
    raw = os.environ.get("REPRO_JOBS", "").strip()
    if raw:
        try:
            jobs = int(raw)
        except ValueError:
            raise ValueError(
                f"REPRO_JOBS={raw!r}; expected an integer") from None
        if jobs > 0:
            return jobs
    return available_cpus()


def resolve_jobs(jobs: int | None) -> int:
    """Normalise a jobs request: None/0 -> REPRO_JOBS/cpu_count."""
    if jobs is None or jobs <= 0:
        return default_jobs()
    return jobs


#: Per-worker memo of attached compiled traces, keyed by shared ref.
#: A pool worker serves many cells of the same workload; attaching once
#: and reusing the views keeps the per-cell cost at dictionary lookup.
_ATTACHED_TRACES: dict[tuple[str, str], "object"] = {}


def _attached_trace(trace_ref: tuple[str, str]):
    """Attach (memoised) the parent's published compiled trace."""
    from repro.workloads.compiled import CompiledTrace

    cached = _ATTACHED_TRACES.get(trace_ref)
    if cached is None or cached.closed:
        cached = CompiledTrace.attach(trace_ref)
        _ATTACHED_TRACES[trace_ref] = cached
    return cached


#: Per-worker memo of attached run telemetry, keyed by (pid, run_dir);
#: the pid guards against a fork inheriting the parent's entry.
_WORKER_TELEMETRY: dict[tuple[int, str], "ledger_mod.RunLedger"] = {}


def _worker_telemetry(run_dir: str) -> "ledger_mod.RunLedger":
    """Attach this worker to the parent's run (memoised per process).

    Opens the worker's own manifest/span descriptors on the shared run
    directory (``O_APPEND`` writes interleave safely with every other
    process of the run), installs the span recorder as the profiler
    sink, and re-baselines the profiler so this worker's profile delta
    covers only its own sections -- a forked worker inherits the
    parent's accumulated sections, whose spans the *parent* already
    recorded under its pid.
    """
    key = (os.getpid(), run_dir)
    ledger = _WORKER_TELEMETRY.get(key)
    if ledger is None:
        ledger = ledger_mod.RunLedger.attach(run_dir)
        recorder = spans_mod.SpanRecorder(ledger.spans_path)
        ledger_mod.set_active(ledger)
        spans_mod.set_active_recorder(recorder)
        ledger_mod.set_profile_baseline(PROFILER.snapshot())
        PROFILER.enabled = True
        PROFILER.sink = recorder.on_section
        _WORKER_TELEMETRY[key] = ledger
    return ledger


def simulate_cell(workload: str, config: FrontEndConfig, seed: int,
                  bolted: bool, scale: Scale,
                  store_root: str | None = None,
                  record_attribution: bool = False,
                  trace_ref: tuple[str, str] | None = None,
                  run_dir: str | None = None) -> SimStats:
    """Run one cell exactly as the serial runner would.

    Module-level so it pickles into pool workers.  Consults/fills the
    persistent store when ``store_root`` is given; uses the per-process
    workload cache so cells sharing a (workload, seed) reuse programs and
    traces within a worker.

    ``trace_ref`` is the parent's published compiled trace (see
    :meth:`~repro.workloads.compiled.CompiledTrace.shared_ref`): when
    given, the worker attaches the shared columns -- zero-copy, memoised
    per worker -- instead of re-generating the trace.  Without a ref the
    worker compiles locally (or replays object records when compiled
    traces are disabled); all three paths are bit-identical.

    With ``record_attribution`` the per-branch/per-line attribution
    artifact is persisted alongside the stats; a store hit whose entry
    lacks attribution is *backfilled* (re-simulated and overwritten) so
    requesting attribution always produces it.  The aggregation is the
    same in-order event fold serial runs perform, so serial and parallel
    artifacts are byte-identical.

    ``run_dir`` carries the parent's active run directory: the worker
    attaches its own ledger/span telemetry to it (memoised per process)
    and emits the same cell lifecycle the serial runner does -- minus
    ``queued``, which the pool parent already recorded.
    """
    ledger = ledger_mod.active_ledger()
    if ledger is None and run_dir is not None:
        ledger = _worker_telemetry(run_dir)
    cell_id = None
    if ledger is not None:
        cell_id = ledger_mod.cell_id_for(workload, config, seed, bolted)
        spans_mod.set_cell(cell_id)
    started = time.monotonic()
    try:
        stats, outcome = _simulate_cell_body(
            workload, config, seed, bolted, scale, store_root,
            record_attribution, trace_ref, ledger, cell_id)
    except Exception as exc:
        if ledger is not None:
            ledger.cell(cell_id, "error",
                        error=f"{type(exc).__name__}: {exc}")
            ledger_mod.checkpoint_telemetry(ledger)
        raise
    finally:
        if ledger is not None:
            spans_mod.set_cell(None)
    if ledger is not None:
        ledger.group([cell_id], mode="worker")
        ledger.cell(cell_id, "done", spanned=True,
                    wall_s=round(time.monotonic() - started, 6), **outcome)
        ledger.heartbeat(cell=cell_id)
        # Flush spans + persist this pid's profile delta after every
        # cell, so a crashed worker leaves conservation-consistent
        # telemetry behind (the parent only checkpoints at run end).
        ledger_mod.checkpoint_telemetry(ledger)
    return stats


def _simulate_cell_body(workload: str, config: FrontEndConfig, seed: int,
                        bolted: bool, scale: Scale,
                        store_root: str | None,
                        record_attribution: bool,
                        trace_ref: tuple[str, str] | None,
                        ledger, cell_id: str | None
                        ) -> tuple[SimStats, dict]:
    from repro.frontend.batch import (
        batch_supported,
        note_object_fallback,
        run_compiled_batched,
    )
    from repro.frontend.engine import FrontEndSimulator
    from repro.obs.invariants import check_snapshot
    from repro.workloads.cache import GLOBAL_CACHE
    from repro.workloads.compiled import batch_enabled, compiled_traces_enabled

    with PROFILER.section("harness.cell"):
        store = ResultStore(store_root) if store_root else None
        key = None
        if store is not None:
            key = result_key(workload, config, seed, scale, bolted=bolted)
            cached = store.get(key)
            if ledger is not None:
                ledger.cell(cell_id, "store_probe", hit=cached is not None)
            if cached is not None and not (
                    record_attribution
                    and store.get_attribution(key) is None) and not (
                    config.interval_size > 0
                    and store.get_intervals(key) is None):
                return cached, {"result": "store_hit"}
        elif ledger is not None:
            ledger.cell(cell_id, "store_probe", hit=False, store=False)
        use_compiled = compiled_traces_enabled()
        compiled = None
        trace = None
        attached = False
        with PROFILER.section("harness.workload"):
            program = GLOBAL_CACHE.program(workload, seed=seed,
                                           bolted=bolted)
            if use_compiled and trace_ref is not None:
                try:
                    compiled = _attached_trace(trace_ref)
                    attached = True
                except (FileNotFoundError, OSError, ValueError):
                    # The parent's segment/spill vanished (e.g. evicted
                    # mid-batch); fall back to compiling locally.
                    compiled = None
            if use_compiled and compiled is None:
                compiled = GLOBAL_CACHE.compiled(
                    workload, scale.records, seed=seed, bolted=bolted)
            if not use_compiled:
                trace = GLOBAL_CACHE.trace(workload, scale.records,
                                           seed=seed, bolted=bolted)
        if ledger is not None:
            ledger.cell(cell_id, "prepare",
                        source=("attach" if attached
                                else "compile" if use_compiled
                                else "trace"))
        mode = "object"
        fallback_reason = None
        with PROFILER.section("harness.simulate"):
            simulator = FrontEndSimulator(program, config, seed=seed)
            if record_attribution:
                simulator.attach_attribution()
            if compiled is not None:
                # The batched kernel wins even with a single lane
                # (inlined loop, fused rows, local counters); cells the
                # kernel cannot replicate bit-exactly (trace, timeline
                # or attribution attached) fall back to the object loop,
                # with the degradation counted and logged.
                if batch_enabled() and batch_supported(simulator):
                    mode = "batched"
                    stats = run_compiled_batched(simulator, compiled,
                                                 warmup=scale.warmup)
                else:
                    if batch_enabled():
                        fallback_reason = note_object_fallback(simulator)
                    stats = simulator.run_compiled(compiled,
                                                   warmup=scale.warmup)
            else:
                stats = simulator.run(trace, warmup=scale.warmup)
        metrics = (simulator.metrics_snapshot()
                   if store is not None or ledger is not None else None)
        fastforward = getattr(simulator, "fastforward_summary", None)
        if ledger is not None:
            ledger.cell(cell_id, "simulate", mode=mode,
                        fallback_reason=fallback_reason,
                        fastforward=fastforward)
            ledger.cell(cell_id, "invariants",
                        violations=[v.invariant for v in
                                    check_snapshot(metrics)])
        if store is not None:
            # Persist the metric snapshot next to the result so serial and
            # parallel runs surface identical per-component counters.
            attribution = (simulator.attribution.to_jsonable()
                           if record_attribution else None)
            intervals = (simulator.intervals.series().to_jsonable()
                         if simulator.intervals is not None else None)
            store.put(key, stats, metrics=metrics,
                      attribution=attribution, intervals=intervals)
            if ledger is not None:
                ledger.cell(cell_id, "store_write", stored=True)
    outcome = {"result": "simulated", "mode": mode}
    if fallback_reason is not None:
        outcome["fallback_reason"] = fallback_reason
    if fastforward is not None:
        outcome["fastforward"] = fastforward
    return stats, outcome


def _simulate_packed(packed: tuple) -> SimStats:
    return simulate_cell(*packed)


class ParallelRunner:
    """Fans a batch of cells out over a process pool.

    ``jobs=1`` runs every cell in-process (no pool, no pickling), which
    keeps the serial path bit-identical and debuggable; any other value
    resolves through :func:`resolve_jobs`.
    """

    def __init__(self, scale: Scale | None = None, jobs: int | None = None,
                 store: ResultStore | None | str = "default",
                 record_attribution: bool = False):
        self.scale = scale or current_scale()
        self.jobs = 1 if jobs == 1 else resolve_jobs(jobs)
        self.store = default_store() if store == "default" else store
        #: Workers hand attribution artifacts back through the store, so
        #: recording without a store silently discards them.
        self.record_attribution = record_attribution

    @property
    def _store_root(self) -> str | None:
        return None if self.store is None else str(self.store.root)

    def _publish_traces(self, ordered: Sequence[tuple[tuple, Cell]],
                        workers: int) -> dict[tuple, tuple[str, str]]:
        """Compile + publish each distinct trace once, parent-side.

        Returns ``{(workload, seed, bolted): shared_ref}`` for every
        trace at least one pool worker will actually replay.  Groups
        whose cells are all already in the persistent store are skipped
        (workers short-circuit on the store before touching the trace),
        as is the whole step for in-process execution -- the worker path
        then reads the process-local cache directly.  Segments are owned
        by the global workload cache, so their lifetime follows normal
        LRU eviction rather than this batch.
        """
        from repro.workloads.cache import GLOBAL_CACHE
        from repro.workloads.compiled import compiled_traces_enabled

        if workers <= 1 or not compiled_traces_enabled():
            return {}
        needed: dict[tuple, Cell] = {}
        for _, cell in ordered:
            group = (cell.workload, cell.seed, cell.bolted)
            if group in needed:
                continue
            if self.store is not None:
                key = result_key(cell.workload, cell.config, cell.seed,
                                 self.scale, bolted=cell.bolted)
                if (self.store.contains(key)
                        and not self.record_attribution
                        and not (cell.config.interval_size > 0
                                 and self.store.get_intervals(key) is None)):
                    continue
            needed[group] = cell
        refs: dict[tuple, tuple[str, str]] = {}
        for group, cell in needed.items():
            compiled = GLOBAL_CACHE.compiled(
                cell.workload, self.scale.records, seed=cell.seed,
                bolted=cell.bolted)
            refs[group] = compiled.shared_ref()
        return refs

    def run_batch(self, cells: Sequence[Cell],
                  default_seed: int = 0) -> list[SimStats]:
        """Simulate ``cells``; returns stats aligned with the input.

        Duplicate cells (same canonical identity) are simulated once.
        """
        resolved = [cell.resolved(default_seed) for cell in cells]
        unique: dict[tuple, Cell] = {}
        for cell in resolved:
            unique.setdefault(cell.identity(self.scale), cell)

        # Group same-workload cells together so static chunks reuse each
        # worker's program/trace cache, but keep chunks small enough for
        # load balancing.
        ordered = sorted(
            unique.items(),
            key=lambda item: (item[1].workload, item[1].seed,
                              item[1].bolted))
        workers = min(self.jobs, len(ordered)) if ordered else 0
        trace_refs = self._publish_traces(ordered, workers)

        ledger = ledger_mod.active_ledger()
        progress = None
        run_dir = None
        if ledger is not None and ordered:
            run_dir = str(ledger.run_dir)
            ledger.grid(cells=len(ordered), submitted=len(resolved),
                        jobs=max(workers, 1))
            for _, cell in ordered:
                ledger.cell(ledger_mod.cell_id_for(
                    cell.workload, cell.config, cell.seed, cell.bolted),
                    "queued")
            from repro.harness.progress import (ProgressReporter,
                                                progress_enabled)
            if progress_enabled():
                progress = ProgressReporter(len(ordered), ledger=ledger)
            # Forked workers inherit the parent's span recorder; flush
            # it first so its buffer is empty at fork time and every
            # buffered parent span is written exactly once, by the
            # parent.
            recorder = spans_mod.active_recorder()
            if recorder is not None:
                recorder.flush()

        packed = [(cell.workload, cell.config, cell.seed, cell.bolted,
                   self.scale, self._store_root, self.record_attribution,
                   trace_refs.get((cell.workload, cell.seed, cell.bolted)),
                   run_dir)
                  for _, cell in ordered]

        if workers <= 1:
            stats_list = []
            for item in packed:
                stats_list.append(_simulate_packed(item))
                if progress is not None:
                    progress.update(1)
        else:
            # Workers profile into their own PROFILER (discarded unless
            # a run is active, in which case each worker persists its
            # own delta); this section times the dispatch + result
            # collection layer.
            chunksize = max(1, len(packed) // (workers * 4))
            with PROFILER.section("harness.parallel_batch"):
                with ProcessPoolExecutor(max_workers=workers) as pool:
                    stats_list = []
                    for stats in pool.map(_simulate_packed, packed,
                                          chunksize=chunksize):
                        stats_list.append(stats)
                        if progress is not None:
                            progress.update(1)
        if progress is not None:
            progress.finish()
        if ledger is not None and ordered:
            # Live per-cell walls live in the workers; flag stragglers
            # post-hoc from the ledger they appended to.
            ledger_mod.flag_stragglers(ledger)

        by_identity = {identity: stats for (identity, _), stats
                       in zip(ordered, stats_list)}
        return [by_identity[cell.identity(self.scale)] for cell in resolved]

    def run_grid(self, workloads: Sequence[str],
                 configs: Sequence[FrontEndConfig],
                 seeds: Sequence[int] = (0,),
                 bolted: bool = False) -> dict[tuple, SimStats]:
        """The full cartesian product, keyed by (workload, seed, index).

        ``index`` is the position of the config in ``configs`` (configs
        themselves are not hashable dict keys).
        """
        cells = [Cell(workload, config, seed, bolted)
                 for workload in workloads
                 for index, config in enumerate(configs)
                 for seed in seeds]
        stats = self.run_batch(cells)
        out: dict[tuple, SimStats] = {}
        position = 0
        for workload in workloads:
            for index, _ in enumerate(configs):
                for seed in seeds:
                    out[(workload, seed, index)] = stats[position]
                    position += 1
        return out
