"""One function per table/figure in the paper's evaluation.

Each ``figN`` function runs the required (workload x config) cells via a
shared :class:`~repro.harness.runner.ExperimentRunner`, returns the data
as a dict, and renders an ASCII version of the exhibit.  The benchmark
suite under ``benchmarks/`` calls these and prints the renders, so a
benchmark log is a full regeneration of the paper's evaluation section.

Paper-expected values (for the EXPERIMENTS.md comparison) come from
:class:`repro.workloads.profiles.PaperExpectations` and the constants
below, all read off the paper's text and figures.
"""

from __future__ import annotations

from dataclasses import replace

from repro.frontend.config import FrontEndConfig, IndexPolicy, SkiaConfig
from repro.harness.figures import bar_chart, series_chart
from repro.harness.parallel import Cell
from repro.harness.reporting import format_table, geomean_speedup, pct
from repro.harness.runner import ExperimentRunner
from repro.isa.branch import REPORTED_KINDS
from repro.workloads.profiles import WORKLOAD_NAMES, get_profile

#: Headline numbers from the paper (Section 6.1 and abstract).
PAPER_GEOMEAN_BOTH = 0.0564
PAPER_GEOMEAN_HEAD = 0.0368
PAPER_GEOMEAN_TAIL = 0.0439
PAPER_BTB_MISS_L1I_HIT_FRACTION = 0.75
PAPER_BOGUS_RATE = 0.000002  # 0.0002%
PAPER_VERILATOR_PREBOLT_GAIN = 0.1027

#: Default BTB sweep (entries) used by Figures 1 and 3.
BTB_SWEEP = (2048, 4096, 8192, 16384, 32768)

#: 12.25KB in bytes -- the SBB hardware budget (Section 6.2).
SBB_BUDGET_BYTES = 12.25 * 1024


def _skia(heads: bool = True, tails: bool = True, **kwargs) -> FrontEndConfig:
    return FrontEndConfig(skia=SkiaConfig(decode_heads=heads,
                                          decode_tails=tails, **kwargs))


def _ipc_ratios(runner: ExperimentRunner, config: FrontEndConfig,
                base: FrontEndConfig,
                workloads=WORKLOAD_NAMES) -> dict[str, float]:
    out = {}
    for workload in workloads:
        out[workload] = (runner.run(workload, config).ipc
                         / runner.run(workload, base).ipc)
    return out


# ----------------------------------------------------------------------
# Figure 1 -- BTB miss MPKI and the L1-I-resident fraction vs BTB size
# ----------------------------------------------------------------------

def fig1_btb_miss_l1i_hit(runner: ExperimentRunner,
                          btb_sizes=BTB_SWEEP,
                          workloads=WORKLOAD_NAMES) -> dict:
    """Average BTB-miss MPKI per BTB size, split into misses whose branch
    line was already L1-I resident (the paper's orange bars)."""
    rows = []
    data = {}
    for entries in btb_sizes:
        config = FrontEndConfig().with_btb_entries(entries)
        total = 0.0
        in_l1 = 0.0
        for workload in workloads:
            stats = runner.run(workload, config)
            total += stats.btb_miss_mpki
            in_l1 += stats.btb_miss_l1i_hit_mpki
        total /= len(workloads)
        in_l1 /= len(workloads)
        fraction = in_l1 / total if total else 0.0
        data[entries] = {"total_mpki": total, "l1i_hit_mpki": in_l1,
                         "l1i_hit_fraction": fraction}
        rows.append([f"{entries // 1024}K", f"{total:.2f}", f"{in_l1:.2f}",
                     pct(fraction)])
    render = format_table(
        ["BTB entries", "BTB miss MPKI", "miss w/ L1-I hit MPKI",
         "fraction"],
        rows,
        title=("Figure 1: BTB misses vs BTB size (average over "
               f"{len(workloads)} workloads); paper reports ~"
               f"{pct(PAPER_BTB_MISS_L1I_HIT_FRACTION, 0)} resident at 8K"))
    return {"data": data, "render": render}


# ----------------------------------------------------------------------
# Figure 3 -- geomean speedup vs BTB size for four configurations
# ----------------------------------------------------------------------

def fig3_speedup_vs_btb_size(runner: ExperimentRunner,
                             btb_sizes=BTB_SWEEP,
                             workloads=WORKLOAD_NAMES) -> dict:
    """BTB / BTB+12.25KB / BTB+SBB / infinite BTB, normalised to the
    smallest plain BTB (the paper normalises to a 4K BTB)."""
    reference = FrontEndConfig().with_btb_entries(btb_sizes[0])
    infinite = FrontEndConfig().with_btb_entries(1 << 22, infinite=True)

    def geomean_vs_reference(config: FrontEndConfig) -> float:
        ratios = _ipc_ratios(runner, config, reference, workloads)
        return 1.0 + geomean_speedup(list(ratios.values()))

    data: dict[str, dict[int, float]] = {"btb": {}, "btb_plus_state": {},
                                         "btb_plus_sbb": {}}
    for entries in btb_sizes:
        base = FrontEndConfig().with_btb_entries(entries)
        data["btb"][entries] = geomean_vs_reference(base)
        data["btb_plus_state"][entries] = geomean_vs_reference(
            base.with_extra_btb_state(SBB_BUDGET_BYTES))
        data["btb_plus_sbb"][entries] = geomean_vs_reference(
            base.with_skia(SkiaConfig()))
    data["infinite"] = geomean_vs_reference(infinite)

    rows = []
    for entries in btb_sizes:
        rows.append([
            f"{entries // 1024}K",
            f"{data['btb'][entries]:.4f}",
            f"{data['btb_plus_state'][entries]:.4f}",
            f"{data['btb_plus_sbb'][entries]:.4f}",
            f"{data['infinite']:.4f}",
        ])
    table = format_table(
        ["BTB entries", "BTB", "BTB+12.25KB", "BTB+SBB", "Infinite BTB"],
        rows,
        title=("Figure 3: geomean speedup vs BTB size (normalised to "
               f"{btb_sizes[0] // 1024}K BTB); paper: BTB+SBB ~2x the "
               "gain of BTB+12.25KB until saturation"))
    chart = series_chart(
        [f"{entries // 1024}K" for entries in btb_sizes],
        {
            "BTB": [data["btb"][entries] for entries in btb_sizes],
            "BTB+state": [data["btb_plus_state"][entries]
                          for entries in btb_sizes],
            "BTB+SBB": [data["btb_plus_sbb"][entries]
                        for entries in btb_sizes],
            "Infinite": [data["infinite"]] * len(btb_sizes),
        })
    return {"data": data, "render": table + "\n\n" + chart}


# ----------------------------------------------------------------------
# Figure 6 -- BTB misses by branch type (8K BTB)
# ----------------------------------------------------------------------

def fig6_miss_breakdown(runner: ExperimentRunner,
                        workloads=WORKLOAD_NAMES) -> dict:
    config = FrontEndConfig()
    data = {}
    rows = []
    for workload in workloads:
        stats = runner.run(workload, config)
        breakdown = stats.btb_miss_breakdown()
        data[workload] = breakdown
        rows.append([workload] + [pct(breakdown[kind.value], 1)
                                  for kind in REPORTED_KINDS])
    render = format_table(
        ["workload"] + [kind.value for kind in REPORTED_KINDS], rows,
        title=("Figure 6: BTB misses by branch type, 8K-entry BTB "
               "(paper: indirect misses vanishingly small everywhere)"))
    return {"data": data, "render": render}


# ----------------------------------------------------------------------
# Figure 13 -- L1-I MPKI, paper's real system vs this simulation
# ----------------------------------------------------------------------

def fig13_l1i_mpki(runner: ExperimentRunner,
                   workloads=WORKLOAD_NAMES) -> dict:
    config = FrontEndConfig()
    data = {}
    rows = []
    for workload in workloads:
        measured = runner.run(workload, config).l1i_mpki
        real = get_profile(workload).expected.l1i_mpki_real
        data[workload] = {"paper_real": real, "measured": measured}
        rows.append([workload, f"{real:.1f}", f"{measured:.1f}"])
    render = format_table(
        ["workload", "paper real-system MPKI", "simulated MPKI"], rows,
        title=("Figure 13: L1-I MPKI -- paper's VTune measurement vs this "
               "reproduction's synthetic workloads"))
    return {"data": data, "render": render}


# ----------------------------------------------------------------------
# Figure 14 -- IPC gain per benchmark: head / tail / both
# ----------------------------------------------------------------------

def fig14_ipc_gain(runner: ExperimentRunner,
                   workloads=WORKLOAD_NAMES) -> dict:
    base = FrontEndConfig()
    configs = {
        "head": _skia(heads=True, tails=False),
        "tail": _skia(heads=False, tails=True),
        "both": _skia(heads=True, tails=True),
    }
    data: dict[str, dict[str, float]] = {name: {} for name in configs}
    rows = []
    for workload in workloads:
        base_ipc = runner.run(workload, base).ipc
        gains = {}
        for name, config in configs.items():
            gains[name] = runner.run(workload, config).ipc / base_ipc - 1.0
            data[name][workload] = gains[name]
        expected = get_profile(workload).expected
        rows.append([workload, pct(gains["head"]), pct(gains["tail"]),
                     pct(gains["both"]),
                     f"{expected.ipc_gain_pct:.1f}% ({expected.gain_class})"])
    geo = {name: geomean_speedup([1.0 + gain for gain in values.values()])
           for name, values in data.items()}
    rows.append(["GEOMEAN", pct(geo["head"]), pct(geo["tail"]),
                 pct(geo["both"]),
                 f"paper: {PAPER_GEOMEAN_HEAD:.2%} / "
                 f"{PAPER_GEOMEAN_TAIL:.2%} / {PAPER_GEOMEAN_BOTH:.2%}"])
    table = format_table(
        ["workload", "head-only", "tail-only", "head+tail", "paper both"],
        rows,
        title="Figure 14: IPC gain over the 8K-BTB FDIP baseline")
    chart = bar_chart(list(workloads),
                      [data["both"][workload] for workload in workloads],
                      title="head+tail IPC gain per workload")
    return {"data": data, "geomean": geo, "render": table + "\n\n" + chart}


# ----------------------------------------------------------------------
# Figure 15 -- BTB misses with L1-I-resident lines, per benchmark
# ----------------------------------------------------------------------

def fig15_btb_miss_l1i_hit(runner: ExperimentRunner,
                           workloads=WORKLOAD_NAMES) -> dict:
    config = FrontEndConfig()
    data = {}
    rows = []
    for workload in workloads:
        stats = runner.run(workload, config)
        data[workload] = {
            "total_mpki": stats.btb_miss_mpki,
            "l1i_hit_mpki": stats.btb_miss_l1i_hit_mpki,
            "fraction": stats.btb_miss_l1i_hit_fraction,
        }
        rows.append([workload, f"{stats.btb_miss_mpki:.2f}",
                     f"{stats.btb_miss_l1i_hit_mpki:.2f}",
                     pct(stats.btb_miss_l1i_hit_fraction)])
    render = format_table(
        ["workload", "BTB miss MPKI", "w/ L1-I hit MPKI", "fraction"], rows,
        title="Figure 15: BTB miss with L1-I line hit, 8K-entry BTB")
    return {"data": data, "render": render}


# ----------------------------------------------------------------------
# Figure 16 -- BTB miss MPKI: baseline vs BTB+12.25KB vs Skia
# ----------------------------------------------------------------------

def fig16_mpki_reduction(runner: ExperimentRunner,
                         workloads=WORKLOAD_NAMES) -> dict:
    base = FrontEndConfig()
    bigger = base.with_extra_btb_state(SBB_BUDGET_BYTES)
    skia = base.with_skia(SkiaConfig())
    data = {}
    rows = []
    for workload in workloads:
        base_mpki = runner.run(workload, base).btb_miss_mpki
        big_mpki = runner.run(workload, bigger).btb_miss_mpki
        skia_stats = runner.run(workload, skia)
        # Skia's effective misses: BTB misses not covered by a correct
        # SBB-provided target.
        covered = skia_stats.total_sbb_hits - skia_stats.sbb_wrong_target
        effective = skia_stats.mpki(
            max(0, skia_stats.total_btb_misses - covered))
        data[workload] = {"baseline": base_mpki, "btb_plus_state": big_mpki,
                          "skia": effective}
        rows.append([workload, f"{base_mpki:.2f}", f"{big_mpki:.2f}",
                     f"{effective:.2f}"])

    def reduction(key: str) -> float:
        pairs = [(data[w]["baseline"], data[w][key]) for w in workloads]
        before = sum(p[0] for p in pairs)
        after = sum(p[1] for p in pairs)
        return before / after - 1.0 if after else float("inf")

    summary = {"skia_reduction": reduction("skia"),
               "btb_plus_state_reduction": reduction("btb_plus_state")}
    rows.append(["AVG REDUCTION", "-",
                 pct(summary["btb_plus_state_reduction"], 0),
                 pct(summary["skia_reduction"], 0)])
    render = format_table(
        ["workload", "baseline", "BTB+12.25KB", "Skia (uncovered)"], rows,
        title=("Figure 16: effective BTB miss MPKI (paper: Skia ~115% "
               "reduction vs ~35% for BTB+12.25KB)"))
    return {"data": data, "summary": summary, "render": render}


# ----------------------------------------------------------------------
# Figure 17 -- SBB sensitivity: U/R split at 12.25KB, then total scaling
# ----------------------------------------------------------------------

#: (usbb_entries, rsbb_entries) combinations totalling ~12.25KB
#: (u * 78b + r * 20b ~= 100352 bits), including the paper's chosen
#: 768/2024 point.
FIG17_SPLITS = ((0, 5016), (256, 4016), (512, 3020), (768, 2024),
                (1024, 1024), (1184, 400), (1284, 8))

FIG17_SCALES = (0.25, 0.5, 1.0, 2.0, 4.0, 8.0)


def fig17_sbb_sensitivity(runner: ExperimentRunner,
                          workloads=WORKLOAD_NAMES,
                          splits=FIG17_SPLITS,
                          scales=FIG17_SCALES) -> dict:
    base = FrontEndConfig()

    def gain(skia_config: SkiaConfig) -> float:
        ratios = _ipc_ratios(runner, base.with_skia(skia_config), base,
                             workloads)
        return geomean_speedup(list(ratios.values()))

    split_data = {}
    split_rows = []
    for usbb, rsbb in splits:
        config = replace(SkiaConfig(), usbb_entries=usbb, rsbb_entries=rsbb)
        value = gain(config)
        split_data[(usbb, rsbb)] = value
        marker = " <- paper's split" if (usbb, rsbb) == (768, 2024) else ""
        split_rows.append([f"{usbb}U/{rsbb}R",
                           f"{config.total_size_kib:.2f}KB",
                           pct(value) + marker])

    scale_data = {}
    scale_rows = []
    for factor in scales:
        config = SkiaConfig().scaled(factor)
        value = gain(config)
        scale_data[factor] = value
        scale_rows.append([f"{factor}x", f"{config.total_size_kib:.2f}KB",
                           pct(value)])

    render = (
        format_table(["U/R split", "state", "geomean gain"], split_rows,
                     title="Figure 17 (top): U-SBB/R-SBB split at ~12.25KB")
        + "\n\n"
        + format_table(["scale", "state", "geomean gain"], scale_rows,
                       title=("Figure 17 (bottom): total SBB size at the "
                              "default U:R ratio"))
    )
    return {"splits": split_data, "scales": scale_data, "render": render}


# ----------------------------------------------------------------------
# Figure 18 -- decoder idle-cycle reduction
# ----------------------------------------------------------------------

def fig18_decoder_idle(runner: ExperimentRunner,
                       workloads=WORKLOAD_NAMES) -> dict:
    base = FrontEndConfig()
    skia = base.with_skia(SkiaConfig())
    data = {}
    rows = []
    for workload in workloads:
        idle_base = runner.run(workload, base).decoder_idle_cycles
        idle_skia = runner.run(workload, skia).decoder_idle_cycles
        reduction = 1.0 - idle_skia / idle_base if idle_base else 0.0
        data[workload] = reduction
        rows.append([workload, f"{idle_base:.0f}", f"{idle_skia:.0f}",
                     pct(reduction)])
    render = format_table(
        ["workload", "baseline idle", "skia idle", "reduction"], rows,
        title=("Figure 18: decoder idle-cycle reduction (paper: voter and "
               "sibench show the largest reductions)"))
    return {"data": data, "render": render}


# ----------------------------------------------------------------------
# Tables 1 and 2
# ----------------------------------------------------------------------

def table1_config(config: FrontEndConfig | None = None) -> dict:
    config = config or FrontEndConfig()
    skia = SkiaConfig()
    rows = [
        ["ISA", "synthetic x86-like (variable length, 1-15B)"],
        ["L1-I cache", f"{config.l1i_size // 1024}KB "
                       f"({config.l1i_assoc}-way, {config.line_size}B)"],
        ["L2 cache", f"{config.l2_size // 1024}KB ({config.l2_assoc}-way)"],
        ["L3 cache", f"{config.l3_size // 1024}KB ({config.l3_assoc}-way)"],
        ["Branch predictor", "TAGE-lite + ITTAGE-lite"],
        ["BTB", f"{config.btb_entries // 1024}K-entry/"
                f"{config.btb_size_kib:.0f}KB ({config.btb_assoc}-way)"],
        ["U-SBB", f"{skia.usbb_size_bytes / 1024:.4f}KB "
                  f"({skia.usbb_entries} x {skia.usbb_entry_bits}b, "
                  f"{skia.usbb_assoc}-way)"],
        ["R-SBB", f"{skia.rsbb_size_bytes / 1024:.4f}KB "
                  f"({skia.rsbb_entries} x {skia.rsbb_entry_bits}b, "
                  f"{skia.rsbb_assoc}-way)"],
        ["FTQ", f"{config.ftq_size} entries"],
        ["Decode width", f"{config.decode_width} wide"],
    ]
    render = format_table(["Field / Model", "Alder Lake like"], rows,
                          title="Table 1: processor configuration")
    return {"rows": rows, "render": render}


def table2_benchmarks() -> dict:
    suites: dict[str, list[str]] = {}
    for name in WORKLOAD_NAMES:
        suites.setdefault(get_profile(name).suite, []).append(name)
    rows = [[suite, ", ".join(names)] for suite, names in suites.items()]
    render = format_table(["Suite", "Benchmarks"], rows,
                          title="Table 2: benchmarks used to evaluate Skia")
    return {"suites": suites, "render": render}


# ----------------------------------------------------------------------
# Section 6.1.4 -- Verilator bolted vs pre-bolt
# ----------------------------------------------------------------------

def verilator_bolt_comparison(runner: ExperimentRunner) -> dict:
    """Pre-bolt = the un-optimised binary texture; bolted = the
    BOLT-optimised texture plus the function-reordering pass (BOLT emits
    a different binary, so both sides are generated; see DESIGN.md)."""
    base = FrontEndConfig()
    skia = base.with_skia(SkiaConfig())
    data = {}
    for tag, workload, bolted in (("prebolt", "verilator-prebolt", False),
                                  ("bolted", "verilator-bolted", True)):
        base_stats = runner.run(workload, base, bolted=bolted)
        skia_stats = runner.run(workload, skia, bolted=bolted)
        data[tag] = {
            "base_ipc": base_stats.ipc,
            "skia_ipc": skia_stats.ipc,
            "gain": skia_stats.ipc / base_stats.ipc - 1.0,
            "btb_miss_mpki": base_stats.btb_miss_mpki,
        }
    rows = [
        [tag, f"{values['btb_miss_mpki']:.2f}", f"{values['base_ipc']:.3f}",
         pct(values["gain"])]
        for tag, values in data.items()
    ]
    render = format_table(
        ["binary", "BTB miss MPKI", "base IPC", "Skia gain"], rows,
        title=("Section 6.1.4: Verilator pre-bolt vs bolted (paper: "
               f"{PAPER_VERILATOR_PREBOLT_GAIN:.2%} pre-bolt gain, more "
               "BTB misses without BOLT)"))
    return {"data": data, "render": render}


# ----------------------------------------------------------------------
# Section 3.2.2 -- bogus branch rate audit
# ----------------------------------------------------------------------

def bogus_rate_audit(runner: ExperimentRunner,
                     workloads=WORKLOAD_NAMES) -> dict:
    config = FrontEndConfig().with_skia(SkiaConfig())
    data = {}
    rows = []
    for workload in workloads:
        stats = runner.run(workload, config)
        data[workload] = stats.bogus_insertion_rate
        rows.append([workload, f"{stats.total_sbb_insertions}",
                     f"{stats.sbb_bogus_insertions}",
                     f"{stats.bogus_insertion_rate:.6f}"])
    average = (sum(data.values()) / len(data)) if data else 0.0
    rows.append(["AVERAGE", "-", "-", f"{average:.6f}"])
    render = format_table(
        ["workload", "SBB insertions", "bogus", "rate"], rows,
        title=("Section 3.2.2: bogus shadow-branch insertions relative to "
               f"all SBB insertions (paper: ~{PAPER_BOGUS_RATE:.6f})"))
    return {"data": data, "average": average, "render": render}


# ----------------------------------------------------------------------
# Ablations called out in DESIGN.md
# ----------------------------------------------------------------------

def ablation_index_policy(runner: ExperimentRunner,
                          workloads=WORKLOAD_NAMES) -> dict:
    """Section 3.2.2 Valid Index: First vs Zero vs Merge."""
    base = FrontEndConfig()
    data = {}
    rows = []
    for policy in IndexPolicy:
        config = base.with_skia(SkiaConfig(index_policy=policy))
        ratios = _ipc_ratios(runner, config, base, workloads)
        data[policy.value] = geomean_speedup(list(ratios.values()))
        rows.append([policy.value, pct(data[policy.value])])
    render = format_table(
        ["index policy", "geomean gain"], rows,
        title=("Ablation: head-decode Valid Index policy (paper: First "
               "Index best)"))
    return {"data": data, "render": render}


def ablation_max_paths(runner: ExperimentRunner,
                       workloads=WORKLOAD_NAMES,
                       limits=(1, 2, 4, 6, 12, 64)) -> dict:
    """Section 3.2.2 Valid Encodings cutoff (paper uses 6)."""
    base = FrontEndConfig()
    data = {}
    rows = []
    for limit in limits:
        config = base.with_skia(SkiaConfig(max_valid_paths=limit))
        ratios = _ipc_ratios(runner, config, base, workloads)
        data[limit] = geomean_speedup(list(ratios.values()))
        rows.append([str(limit), pct(data[limit])])
    render = format_table(
        ["max valid paths", "geomean gain"], rows,
        title="Ablation: head-decode valid-path cutoff")
    return {"data": data, "render": render}


def ablation_retired_bit(runner: ExperimentRunner,
                         workloads=WORKLOAD_NAMES) -> dict:
    """Section 4.3 replacement policy: retired-first vs plain LRU."""
    base = FrontEndConfig()
    data = {}
    rows = []
    for label, flag in (("retired-first", True), ("plain LRU", False)):
        config = base.with_skia(SkiaConfig(use_retired_bit=flag))
        ratios = _ipc_ratios(runner, config, base, workloads)
        data[label] = geomean_speedup(list(ratios.values()))
        rows.append([label, pct(data[label])])
    render = format_table(
        ["replacement", "geomean gain"], rows,
        title="Ablation: SBB replacement policy")
    return {"data": data, "render": render}


# ----------------------------------------------------------------------
# Comparator zoo -- Section 7.1 measured as a cross-design grid
# ----------------------------------------------------------------------

#: FDIP-revisited prefetch-depth sweep (cache lines walked past the
#: missing entry point; depth 1 degenerates to Boomerang).
FDIP_DEPTHS = (1, 2, 4, 8)


def _zoo_configs(base: FrontEndConfig,
                 depths=FDIP_DEPTHS) -> dict[str, FrontEndConfig]:
    """Label -> config for every design in the comparator-zoo grid."""
    configs = {
        "baseline": base,
        "BTB+12.25KB": base.with_extra_btb_state(SBB_BUDGET_BYTES),
        "Skia": base.with_skia(SkiaConfig()),
        "AirBTB-lite": base.with_comparator("airbtb"),
        "Boomerang-lite": base.with_comparator("boomerang"),
        "MicroBTB-lite": base.with_comparator("microbtb"),
    }
    for depth in depths:
        configs[f"FDIP-depth{depth}"] = base.with_fdip_depth(depth)
    return configs


def _zoo_extra_state(config: FrontEndConfig, base: FrontEndConfig) -> float:
    """Front-end state (bytes) the design adds over the baseline BTB."""
    from repro.frontend.comparators import comparator_size_bytes
    if config.comparator is not None:
        return comparator_size_bytes(config.comparator, config)
    if config.skia is not None:
        return config.skia.total_size_kib * 1024
    return (config.btb_size_kib - base.btb_size_kib) * 1024


def comparator_zoo(runner: ExperimentRunner, workloads=WORKLOAD_NAMES,
                   depths=FDIP_DEPTHS) -> dict:
    """Skia vs bigger-BTB vs Micro-BTB vs FDIP-depth in one grid.

    The paper's Section 7.1 argues qualitatively that prior hardware
    schemes miss cold shadow branches; this grid measures every design
    on the same substrate, with each design's extra front-end state
    alongside its geomean IPC gain so the table reads as gain-per-KB.
    The FDIP rows sweep predecode depth to expose the
    timeliness-vs-buffer-pressure trade-off.
    """
    base = FrontEndConfig()
    data = {}
    rows = []
    for label, config in _zoo_configs(base, depths=depths).items():
        if config is base:
            continue
        ratios = _ipc_ratios(runner, config, base, workloads)
        gain = geomean_speedup(list(ratios.values()))
        extra = _zoo_extra_state(config, base)
        data[label] = {"ratios": ratios, "gain": gain,
                       "extra_state_bytes": extra}
        rows.append([label, f"{extra / 1024:.2f}KB", pct(gain)])
    render = format_table(
        ["design", "extra state", "geomean gain"], rows,
        title=("Comparator zoo: Skia vs bigger-BTB vs prior hardware "
               "schemes (Section 7.1, measured)"))
    return {"data": data, "render": render}


# ----------------------------------------------------------------------
# Batch planning -- enumerate the cells an exhibit will request
# ----------------------------------------------------------------------

def exhibit_cells(name: str, workloads=WORKLOAD_NAMES,
                  btb_sizes=BTB_SWEEP, splits=FIG17_SPLITS,
                  scales=FIG17_SCALES,
                  limits=(1, 2, 4, 6, 12, 64),
                  depths=FDIP_DEPTHS) -> list[Cell]:
    """The (workload, config, bolted) cells exhibit ``name`` simulates.

    Mirrors the config enumeration inside each ``figN`` function, so a
    batch run of these cells (``ExperimentRunner.run_cells`` with
    ``jobs > 1``, or a warm persistent store) turns the exhibit itself
    into pure memo hits.  Exhibits without simulation cells (the static
    tables) plan an empty batch.
    """
    base = FrontEndConfig()
    configs: list[FrontEndConfig] = []
    if name == "fig1":
        configs = [base.with_btb_entries(entries) for entries in btb_sizes]
    elif name == "fig3":
        configs = [base.with_btb_entries(btb_sizes[0]),
                   base.with_btb_entries(1 << 22, infinite=True)]
        for entries in btb_sizes:
            sized = base.with_btb_entries(entries)
            configs += [sized, sized.with_extra_btb_state(SBB_BUDGET_BYTES),
                        sized.with_skia(SkiaConfig())]
    elif name in ("fig6", "fig13", "fig15"):
        configs = [base]
    elif name == "fig14":
        configs = [base, _skia(heads=True, tails=False),
                   _skia(heads=False, tails=True),
                   _skia(heads=True, tails=True)]
    elif name == "fig16":
        configs = [base, base.with_extra_btb_state(SBB_BUDGET_BYTES),
                   base.with_skia(SkiaConfig())]
    elif name == "fig17":
        configs = [base]
        configs += [base.with_skia(replace(SkiaConfig(), usbb_entries=usbb,
                                           rsbb_entries=rsbb))
                    for usbb, rsbb in splits]
        configs += [base.with_skia(SkiaConfig().scaled(factor))
                    for factor in scales]
    elif name == "fig18":
        configs = [base, base.with_skia(SkiaConfig())]
    elif name == "bolt":
        return [Cell(workload, config, bolted=bolted)
                for workload, bolted in (("verilator-prebolt", False),
                                         ("verilator-bolted", True))
                for config in (base, base.with_skia(SkiaConfig()))]
    elif name == "bogus":
        configs = [base.with_skia(SkiaConfig())]
    elif name == "ablation-index":
        configs = [base] + [base.with_skia(SkiaConfig(index_policy=policy))
                            for policy in IndexPolicy]
    elif name == "ablation-paths":
        configs = [base] + [base.with_skia(SkiaConfig(max_valid_paths=limit))
                            for limit in limits]
    elif name == "comparator-zoo":
        configs = list(_zoo_configs(base, depths=depths).values())
    elif name == "ablation-retired":
        configs = [base] + [base.with_skia(SkiaConfig(use_retired_bit=flag))
                            for flag in (True, False)]
    elif name in ("table1", "table2"):
        return []
    else:
        raise KeyError(f"unknown exhibit {name!r}")
    return [Cell(workload, config)
            for config in configs for workload in workloads]


def prefetch_exhibit(runner: ExperimentRunner, name: str,
                     jobs: int | None = None, workloads=None,
                     **kwargs) -> int:
    """Batch-simulate every cell exhibit ``name`` needs; returns the
    cell count.  After this, calling the exhibit function on ``runner``
    performs no simulation."""
    if workloads is None:
        workloads = WORKLOAD_NAMES
    cells = exhibit_cells(name, workloads=workloads, **kwargs)
    if cells:
        runner.run_cells(cells, jobs=jobs)
    return len(cells)
