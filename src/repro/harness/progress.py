"""Live harness progress: throughput, ETA, straggler flagging.

The harness can run thousands of cells; this module is the line that
tells you where it is.  :class:`ProgressReporter` tracks completed
cells, derives throughput and an ETA from the observed rate, and is
**TTY-aware**: on an interactive stream it rewrites one status line in
place (``\\r``), in CI (or any non-TTY stream) it prints plain periodic
lines instead so logs stay readable.

Straggler detection: a completed cell whose wall time exceeds
``straggler_factor`` x the running median (with at least ``min_samples``
walls observed) is flagged -- a ``straggler`` record in the run ledger
plus a ``repro.progress`` log warning.  This live path covers serial
runs, where the reporter observes every wall as it lands; parallel runs
get the equivalent post-hoc pass (:func:`repro.obs.ledger.flag_stragglers`)
over worker-appended ledger walls, so both modes converge on the same
flags.

Both the wall clock and the monotonic clock are injectable, so ETA and
straggler arithmetic are tested with synthetic clocks -- no sleeping.
"""

from __future__ import annotations

import os
import statistics
import sys
import time
from typing import Callable, TextIO

from repro.obs.ledger import (RunLedger, STRAGGLER_FACTOR,
                              STRAGGLER_MIN_SAMPLES)


def _format_eta(seconds: float) -> str:
    """``1h02m``/``3m20s``/``12s`` -- coarse on purpose."""
    seconds = max(0, int(round(seconds)))
    if seconds >= 3600:
        return f"{seconds // 3600}h{(seconds % 3600) // 60:02d}m"
    if seconds >= 60:
        return f"{seconds // 60}m{seconds % 60:02d}s"
    return f"{seconds}s"


class ProgressReporter:
    """Throughput/ETA reporting plus live straggler flagging.

    Parameters mirror the testability conventions of the obs layer:
    ``clock`` is a monotonic-seconds callable, ``stream`` the output
    text stream (TTY detection via ``stream.isatty()``), ``interval``
    the minimum seconds between emitted lines.  ``ledger`` (optional)
    receives ``straggler`` cell records and heartbeats.
    """

    def __init__(self, total: int, *,
                 stream: TextIO | None = None,
                 clock: Callable[[], float] = time.monotonic,
                 interval: float = 2.0,
                 straggler_factor: float = STRAGGLER_FACTOR,
                 min_samples: int = STRAGGLER_MIN_SAMPLES,
                 ledger: RunLedger | None = None,
                 label: str = "cells"):
        self.total = total
        self.stream = stream if stream is not None else sys.stderr
        self.clock = clock
        self.interval = interval
        self.straggler_factor = straggler_factor
        self.min_samples = min_samples
        self.ledger = ledger
        self.label = label
        self.completed = 0
        self.stragglers: list[str] = []
        self._walls: list[float] = []
        self._started = clock()
        self._last_emit: float | None = None
        self._tty = bool(getattr(self.stream, "isatty", lambda: False)())
        self._line_open = False

    # -- bookkeeping -----------------------------------------------------

    @property
    def elapsed(self) -> float:
        return self.clock() - self._started

    @property
    def rate(self) -> float:
        """Completed cells per second (0 until the first completion)."""
        elapsed = self.elapsed
        if elapsed <= 0 or self.completed == 0:
            return 0.0
        return self.completed / elapsed

    @property
    def eta_seconds(self) -> float | None:
        """Seconds to completion at the observed rate; None until known."""
        rate = self.rate
        if rate <= 0:
            return None
        return (self.total - self.completed) / rate

    def update(self, n: int = 1, cell_id: str | None = None,
               wall_s: float | None = None) -> None:
        """Record ``n`` completed cells (and optionally one cell's wall).

        The wall feeds the running median; if the cell took more than
        ``straggler_factor`` x median it is flagged immediately.
        """
        self.completed += n
        if wall_s is not None and cell_id is not None:
            self._note_wall(cell_id, wall_s)
        self.maybe_emit()

    def _note_wall(self, cell_id: str, wall_s: float) -> None:
        if len(self._walls) >= self.min_samples:
            median = statistics.median(self._walls)
            if median > 0 and wall_s > self.straggler_factor * median:
                self.stragglers.append(cell_id)
                if self.ledger is not None:
                    self.ledger.cell(cell_id, "straggler",
                                     wall_s=round(wall_s, 6),
                                     median_s=round(median, 6),
                                     factor=self.straggler_factor)
                import logging
                logging.getLogger("repro.progress").warning(
                    "straggler cell %s: %.3fs vs median %.3fs (> %.1fx)",
                    cell_id, wall_s, median, self.straggler_factor)
        self._walls.append(wall_s)

    def heartbeat(self, **fields) -> None:
        """Forward a liveness signal to the ledger (rate-limited there)."""
        if self.ledger is not None:
            self.ledger.heartbeat(completed=self.completed,
                                  total=self.total, **fields)

    # -- rendering -------------------------------------------------------

    def render(self) -> str:
        parts = [f"{self.completed}/{self.total} {self.label}"]
        rate = self.rate
        if rate > 0:
            parts.append(f"{rate:.1f}/s")
            eta = self.eta_seconds
            if eta is not None:
                parts.append(f"ETA {_format_eta(eta)}")
        if self.stragglers:
            parts.append(f"{len(self.stragglers)} straggler"
                         + ("s" if len(self.stragglers) != 1 else ""))
        return "  ".join(parts)

    def maybe_emit(self, force: bool = False) -> None:
        """Emit a status line if ``interval`` has passed (or forced)."""
        now = self.clock()
        if (not force and self._last_emit is not None
                and now - self._last_emit < self.interval):
            return
        self._last_emit = now
        line = self.render()
        if self._tty:
            self.stream.write("\r\x1b[K" + line)
            self._line_open = True
        else:
            self.stream.write(line + "\n")
        self.stream.flush()

    def finish(self) -> None:
        """Final status line; closes the in-place TTY line."""
        self.maybe_emit(force=True)
        if self._tty and self._line_open:
            self.stream.write("\n")
            self.stream.flush()
            self._line_open = False


def progress_enabled(stream: TextIO | None = None) -> bool:
    """Progress lines are suppressed with ``REPRO_NO_PROGRESS=1``."""
    if os.environ.get("REPRO_NO_PROGRESS", "").lower() in (
            "1", "true", "yes", "on"):
        return False
    return True
