"""ASCII chart rendering for figure-like exhibits.

The paper's evaluation is mostly bar charts and line series; these
helpers render the same data as terminal charts so benchmark logs read
like the figures.  No plotting dependency: everything is plain text.
"""

from __future__ import annotations

from typing import Iterable, Sequence


def bar_chart(labels: Sequence[str], values: Sequence[float],
              title: str | None = None, width: int = 46,
              value_format: str = "{:.2%}") -> str:
    """Horizontal bar chart, one bar per label."""
    if len(labels) != len(values):
        raise ValueError("labels and values must align")
    if not values:
        return title or ""
    peak = max(max(values), 0.0)
    label_width = max((len(label) for label in labels), default=0)
    lines = [title] if title else []
    for label, value in zip(labels, values):
        filled = 0 if peak <= 0 else max(0, round(width * value / peak))
        bar = "#" * filled
        lines.append(f"{label:>{label_width}}  "
                     f"{value_format.format(value):>8} |{bar}")
    return "\n".join(lines)


def grouped_bar_chart(labels: Sequence[str],
                      series: dict[str, Sequence[float]],
                      title: str | None = None, width: int = 40,
                      value_format: str = "{:.2%}") -> str:
    """Groups of bars: one group per label, one bar per series."""
    lengths = {len(values) for values in series.values()}
    if lengths != {len(labels)}:
        raise ValueError("every series must align with labels")
    peak = max((max(values) for values in series.values()), default=0.0)
    peak = max(peak, 0.0)
    label_width = max((len(label) for label in labels), default=0)
    series_width = max((len(name) for name in series), default=0)
    lines = [title] if title else []
    for index, label in enumerate(labels):
        for position, (name, values) in enumerate(series.items()):
            value = values[index]
            filled = 0 if peak <= 0 else max(0, round(width * value / peak))
            prefix = label if position == 0 else ""
            lines.append(f"{prefix:>{label_width}}  {name:<{series_width}} "
                         f"{value_format.format(value):>8} |{'#' * filled}")
        lines.append("")
    return "\n".join(lines).rstrip()


def series_chart(x_labels: Sequence[str],
                 series: dict[str, Sequence[float]],
                 title: str | None = None, height: int = 12,
                 value_format: str = "{:.3f}") -> str:
    """Multi-series scatter over a categorical x axis (Figure-3 style).

    Each series gets a marker; coincident points show the later marker.
    """
    markers = "ox*+@%&"
    values_flat = [value for values in series.values() for value in values]
    if not values_flat:
        return title or ""
    low, high = min(values_flat), max(values_flat)
    span = (high - low) or 1.0
    grid = [[" "] * len(x_labels) for _ in range(height)]
    for series_index, (name, values) in enumerate(series.items()):
        marker = markers[series_index % len(markers)]
        for column, value in enumerate(values):
            row = round((value - low) / span * (height - 1))
            grid[height - 1 - row][column] = marker

    lines = [title] if title else []
    for row_index, row in enumerate(grid):
        level = high - span * row_index / (height - 1)
        lines.append(f"{value_format.format(level):>8} | "
                     + "   ".join(row))
    lines.append(" " * 9 + "+" + "-" * (4 * len(x_labels)))
    lines.append(" " * 10 + " ".join(f"{label:>3}" for label in x_labels))
    legend = "  ".join(f"{markers[i % len(markers)]}={name}"
                       for i, name in enumerate(series))
    lines.append(f"legend: {legend}")
    return "\n".join(lines)


def normalise(values: Iterable[float], reference: float) -> list[float]:
    """Values divided by a reference (for normalised-speedup charts)."""
    if reference == 0:
        raise ValueError("reference must be non-zero")
    return [value / reference for value in values]
