"""EXPERIMENTS.md generator.

Assembles the paper-vs-measured record from the exhibit renders the
benchmark suite saved under ``benchmarks/bench_results/``.  Regenerate
after a benchmark run with::

    pytest benchmarks/ --benchmark-only
    python -m repro report
"""

from __future__ import annotations

import pathlib

from repro.harness.scale import current_scale

#: Exhibit order and commentary: (result file stem, heading, paper claim,
#: reproduction verdict template).
EXHIBITS = [
    ("fig01_btb_misses", "Figure 1 — BTB misses vs BTB size",
     "Total BTB-miss MPKI falls with BTB size; ~75% of misses at 8K have "
     "their branch line already resident in the L1-I.",
     "Reproduced: monotone miss reduction with size and a ~0.75-0.85 "
     "L1-I-resident fraction at 8K (the suite's workloads run 0.76-0.91)."),
    ("fig03_speedup_vs_btb", "Figure 3 — speedup vs BTB size, 4 configs",
     "BTB+SBB consistently gains ~2x what BTB+12.25KB-of-state gains, at "
     "every size until saturation; infinite BTB is the ceiling.",
     "Reproduced with one twist: BTB+SBB beats BTB+12.25KB at every "
     "swept size (at 8K by ~6x the delta) and converges with the "
     "infinite BTB at 32K. At 8K it can even edge past the infinite "
     "BTB: at this trace scale a share of misses is compulsory "
     "(first-ever execution), which shadow decoding covers but no BTB "
     "capacity can -- a genuine Skia property the paper's 100M-instr "
     "runs de-emphasise."),
    ("fig06_miss_breakdown", "Figure 6 — BTB misses by branch type",
     "Indirect branches are a vanishing share of misses; per-workload "
     "mixes differ (kafka conditional-heavy; voter/sibench call/return "
     "heavy).",
     "Reproduced: indirect misses ~1%; kafka >70% conditional; "
     "voter/sibench >60% SBB-eligible (uncond+call+return)."),
    ("fig13_l1i_mpki", "Figure 13 — L1-I MPKI, real vs simulated",
     "gem5 tracks the real system within ~18% overall; all selected "
     "workloads have L1-I MPKI > 10.",
     "Substituted: the 'real' column is the paper's values; our "
     "synthetic workloads land in the same 1-25 MPKI band with the "
     "same front-end-bound character (chirper/speedometer deliberately "
     "low, matching their low-miss role in the paper)."),
    ("fig14_ipc_gain", "Figure 14 — IPC gain per benchmark "
     "(head / tail / both)",
     "Geomean 5.64% (both), 3.68% (head-only), 4.39% (tail-only); voter "
     "and sibench gain most; kafka, finagle-chirper, speedometer2.0 "
     "least.",
     "Shape reproduced: both >= tail-only > head-only; the per-workload "
     "ordering (voter/sibench high, kafka/chirper/speedometer low) "
     "holds. Absolute geomean is lower (~2-4%) -- see 'Known gaps'."),
    ("fig15_btbmiss_l1ihit", "Figure 15 — BTB misses with L1-I-resident "
     "lines",
     "A significant share of each workload's BTB misses have L1-resident "
     "lines; kafka especially high.",
     "Reproduced: suite average ~0.8; kafka is at the top, as in the "
     "paper."),
    ("fig16_mpki_reduction", "Figure 16 — effective BTB miss MPKI",
     "Skia reduces average BTB MPKI by ~115% (>2x) vs ~35% for handing "
     "the same 12.25KB to the BTB.",
     "Shape reproduced: Skia's reduction is several times the "
     "ISO-budget BTB's; absolute reduction is smaller (~25-40%), "
     "bounded by the synthetic workloads' shadow coverage."),
    ("fig17_sbb_sensitivity", "Figure 17 — SBB sensitivity",
     "Best fixed-budget split 768U/2024R; gains grow with total SBB "
     "size until saturation.",
     "Reproduced: mixed splits beat degenerate all-U/all-R splits, and "
     "capacity scaling saturates."),
    ("fig18_decoder_idle", "Figure 18 — decoder idle-cycle reduction",
     "Skia reduces decode-stage idle cycles across the suite; voter and "
     "sibench show the largest reductions.",
     "Reproduced: positive reductions nearly everywhere with "
     "voter/sibench at the top."),
    ("table1_config", "Table 1 — processor configuration",
     "Alder-Lake-like core: 32KB L1-I, 8K-entry/78KB BTB, TAGE-SC-L + "
     "ITTAGE, 24-entry FTQ, 12-wide.",
     "Matched structurally; TAGE-SC-L/ITTAGE are scaled-down but "
     "faithful (see DESIGN.md substitutions)."),
    ("table2_benchmarks", "Table 2 — benchmarks",
     "16 workloads across DaCapo, Renaissance, OLTPBench, Chipyard, "
     "BrowserBench.",
     "All 16 reproduced as calibrated synthetic profiles (plus "
     "verilator-prebolt for §6.1.4)."),
    ("verilator_bolt", "Section 6.1.4 — Verilator bolted vs pre-bolt",
     "The un-bolted binary has significantly more BTB misses; Skia "
     "gains 10.27% pre-bolt and still helps after BOLT.",
     "Shape reproduced: pre-bolt shows more misses, lower baseline IPC "
     "and a larger Skia gain; the bolted gain stays positive."),
    ("bogus_rate", "Section 3.2.2 — bogus branch rate",
     "~0.0002% of SBB insertions are bogus.",
     "Qualitatively reproduced: the rate stays well below 1% "
     "(typically 0.05-0.5%); our synthetic opcode map is denser in "
     "valid encodings at misaligned offsets than real x86-64, which "
     "raises the floor."),
    ("comparators", "Section 7.1 — prior hardware schemes (measured)",
     "Qualitative in the paper: Confluence/Boomerang-style schemes miss "
     "cold shadow branches.",
     "Quantified here: Skia >= Boomerang-lite > AirBTB-lite > baseline "
     "on the same substrate."),
    ("comparator_zoo", "Comparator zoo — Micro-BTB and FDIP-depth "
     "baselines",
     "(not in the paper; extends the Section 7.1 argument)",
     "Cross-design grid on the shared substrate: execution-history "
     "designs (AirBTB-lite, MicroBTB-lite) and predecode designs "
     "(Boomerang-lite, FDIP at depths 1/2/4/8) vs Skia and the "
     "ISO-budget bigger BTB, with each design's extra front-end state "
     "accounted next to its geomean gain."),
    ("ablation_index_policy", "Ablation — Valid Index policy",
     "First Index empirically best (Section 3.2.2).",
     "Reproduced: First at least ties Zero/Merge."),
    ("ablation_max_paths", "Ablation — valid-path cutoff",
     "Lines with more than six valid paths are discarded.",
     "Reproduced directionally: the paper's 6 beats a cutoff of 1, and "
     "relaxing the cutoff further buys a little more (our denser opcode "
     "map produces more valid paths per line than real x86-64, shifting "
     "the sweet spot upward)."),
    ("ablation_retired_bit", "Ablation — SBB replacement",
     "Retired-first eviction keeps useful branches longer (Section 4.3).",
     "A wash at this scale (within 0.1pp of plain LRU): our SBB hits are "
     "dominated by freshly-inserted entries used shortly after insertion, "
     "so eviction-priority rarely decides an outcome. The mechanism is "
     "implemented and unit-tested bit-exactly."),
    ("seed_stability", "Reproducibility — seed stability",
     "(not in the paper)",
     "The Skia gain is positive for every seed, and the voter-vs-kafka "
     "ordering is seed-invariant."),
]

KNOWN_GAPS = """\
## Known gaps (and why)

* **Absolute geomean speedup** is ~2-4% at `quick` scale versus the
  paper's 5.64%. Three quantified causes:
  1. *Shadow coverage*: synthetic programs give Skia ~35-50% coverage of
     eligible (direct-uncond/call/return) BTB misses; the paper's
     commercial binaries have richer within-line path diversity, so more
     of a line's bytes end up in some FTQ entry's shadow region.
  2. *Trace scale*: 160k-700k basic blocks versus the paper's 100M
     instructions; the cold-recurrence tail is correspondingly thinner
     (REPRO_SCALE=full narrows this).
  3. *Head decoding* contributes little here (~0.1% vs the paper's
     3.68% head-only geomean): our layout packs whole cold functions
     behind entry points, so head regions mostly contain the previous
     function's epilogue, whose branches tail-decoding already catches
     on its own line. The head/tail split is layout-sensitive; the
     tail-dominant ordering itself matches the paper.
* **Bogus-branch rate** is ~100x the paper's 0.0002% (still <1%): the
  synthetic opcode map decodes more misaligned byte sequences as valid
  instructions than real x86-64 does, and our image is a denser branch
  soup than compiler output.
* **BTB+12.25KB** occasionally dips below plain BTB at large sizes:
  the CACTI-style latency step penalises the grown BTB at the 16K
  boundary, mirroring the saturation behaviour in the paper's Figure 3
  more sharply than their smooth curve.
"""


def generate(results_dir: str | pathlib.Path = "benchmarks/bench_results",
             output: str | pathlib.Path = "EXPERIMENTS.md") -> str:
    results_dir = pathlib.Path(results_dir)
    scale = current_scale()
    sections = [
        "# EXPERIMENTS — paper vs reproduction",
        "",
        "Generated by `python -m repro report` from the exhibit renders "
        "saved by `pytest benchmarks/ --benchmark-only` "
        f"(REPRO_SCALE={scale.name}: {scale.records} records, "
        f"{scale.warmup} warm-up).",
        "",
        "Per DESIGN.md, the reproduction targets the paper's *shape* "
        "claims -- orderings, ratios and crossovers -- on a synthetic "
        "substrate; absolute numbers differ where the substitution "
        "table predicts they must.",
        "",
    ]
    for stem, heading, paper_claim, verdict in EXHIBITS:
        sections.append(f"## {heading}")
        sections.append("")
        sections.append(f"**Paper:** {paper_claim}")
        sections.append("")
        sections.append(f"**Reproduction:** {verdict}")
        sections.append("")
        path = results_dir / f"{stem}.txt"
        if path.exists():
            sections.append("```")
            sections.append(path.read_text().rstrip())
            sections.append("```")
        else:
            sections.append(f"*(no saved render; run the benchmark suite "
                            f"to produce {path})*")
        sections.append("")
    sections.append(KNOWN_GAPS)
    text = "\n".join(sections)
    pathlib.Path(output).write_text(text)
    return text
