"""Experiment harness.

Maps every table and figure in the paper's evaluation to a function that
regenerates it on the synthetic substrate:

* :mod:`repro.harness.runner` -- memoised (workload, config) -> stats
  execution, so figures sharing configurations share runs;
* :mod:`repro.harness.parallel` -- process-pool fan-out for batches of
  cells (``REPRO_JOBS`` / ``--jobs``), bit-identical to serial runs;
* :mod:`repro.harness.store` -- persistent, content-addressed SimStats
  storage under ``.repro_cache/`` (``REPRO_NO_STORE=1`` to disable);
* :mod:`repro.harness.experiments` -- one function per paper exhibit
  (fig1, fig3, fig6, fig13..fig18, table1, table2, the Section 6.1.4
  BOLT comparison, and the Section 3.2.2 bogus-rate audit);
* :mod:`repro.harness.reporting` -- ASCII rendering and geomean helpers;
* :mod:`repro.harness.scale` -- REPRO_SCALE-controlled trace sizes.
"""

from repro.harness.scale import Scale, current_scale
from repro.harness.parallel import Cell, ParallelRunner, default_jobs
from repro.harness.runner import ExperimentRunner
from repro.harness.store import ResultStore, default_store
from repro.harness.reporting import format_table, geomean, pct
from repro.harness import experiments

__all__ = [
    "Scale",
    "current_scale",
    "Cell",
    "ParallelRunner",
    "default_jobs",
    "ExperimentRunner",
    "ResultStore",
    "default_store",
    "format_table",
    "geomean",
    "pct",
    "experiments",
]
