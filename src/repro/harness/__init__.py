"""Experiment harness.

Maps every table and figure in the paper's evaluation to a function that
regenerates it on the synthetic substrate:

* :mod:`repro.harness.runner` -- memoised (workload, config) -> stats
  execution, so figures sharing configurations share runs;
* :mod:`repro.harness.experiments` -- one function per paper exhibit
  (fig1, fig3, fig6, fig13..fig18, table1, table2, the Section 6.1.4
  BOLT comparison, and the Section 3.2.2 bogus-rate audit);
* :mod:`repro.harness.reporting` -- ASCII rendering and geomean helpers;
* :mod:`repro.harness.scale` -- REPRO_SCALE-controlled trace sizes.
"""

from repro.harness.scale import Scale, current_scale
from repro.harness.runner import ExperimentRunner
from repro.harness.reporting import format_table, geomean, pct
from repro.harness import experiments

__all__ = [
    "Scale",
    "current_scale",
    "ExperimentRunner",
    "format_table",
    "geomean",
    "pct",
    "experiments",
]
