"""Experiment scale control.

Paper runs are 100M instructions after a 10M warm-up in gem5 (Section 5).
A pure-Python simulator cannot afford that per (workload x config) cell,
so experiments run at a scaled trace length with the same structure:
deterministic warm-up prefix, measurement suffix.  ``REPRO_SCALE``
selects the point on the fidelity/runtime curve:

* ``smoke``   -- seconds; CI sanity only, numbers noisy.
* ``quick``   -- the default; a full figure suite in tens of minutes.
* ``full``    -- closest to the paper's regime; hours.
"""

from __future__ import annotations

import os
from dataclasses import dataclass


@dataclass(frozen=True)
class Scale:
    name: str
    records: int
    warmup: int

    @property
    def measured_records(self) -> int:
        return self.records - self.warmup


SCALES = {
    "smoke": Scale("smoke", records=40_000, warmup=12_000),
    "quick": Scale("quick", records=160_000, warmup=50_000),
    "default": Scale("default", records=300_000, warmup=80_000),
    "full": Scale("full", records=700_000, warmup=180_000),
}


def current_scale() -> Scale:
    """The scale selected by ``REPRO_SCALE`` (default ``quick``)."""
    name = os.environ.get("REPRO_SCALE", "quick")
    try:
        return SCALES[name]
    except KeyError:
        known = ", ".join(SCALES)
        raise ValueError(f"REPRO_SCALE={name!r}; expected one of {known}") from None
