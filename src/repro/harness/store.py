"""Persistent, content-addressed experiment result store.

The in-memory memo in :class:`~repro.harness.runner.ExperimentRunner`
dies with the process, so every pytest/bench invocation used to
re-simulate the whole evaluation grid from scratch.  This module keeps
finished :class:`~repro.frontend.stats.SimStats` on disk, keyed by a
SHA-256 of everything that determines the result:

* the repro package version, a schema fingerprint (the sorted
  ``SimStats`` field names plus the branch-kind vocabulary), and a code
  fingerprint (a hash of every simulator source file) -- so stale
  entries self-invalidate whenever the counters change shape *or* any
  behaviour-affecting code changes, with no migration logic;
* the workload name, program seed, ``bolted`` flag;
* the scale's record/warm-up counts (the name is just a label);
* :func:`config_key`, the order-stable identity of the configuration.

Values are plain JSON under ``.repro_cache/`` (override with
``REPRO_CACHE_DIR``), written atomically so parallel workers can share
one store.  ``REPRO_NO_STORE=1`` disables the layer entirely.
"""

from __future__ import annotations

import functools
import hashlib
import json
import os
import tempfile
from dataclasses import asdict, fields
from pathlib import Path

from repro import __version__
from repro.frontend.stats import SimStats
from repro.harness.scale import Scale
from repro.isa.branch import BranchKind
from repro.obs.profiler import PROFILER

#: Bump to invalidate every stored result regardless of schema shape
#: (e.g. after a simulator behaviour fix that keeps the counters).
STORE_VERSION = 1

#: Default on-disk location, relative to the current working directory.
DEFAULT_ROOT = ".repro_cache"


def config_key(config) -> tuple:
    """A hashable, order-stable identity for a configuration.

    Dict fields are flattened in sorted-key order and list fields become
    tuples, so two configs that compare equal produce equal keys no
    matter how their mappings were built up.
    """
    def flatten(mapping: dict) -> tuple:
        items = []
        for key in sorted(mapping):
            value = mapping[key]
            if isinstance(value, dict):
                value = flatten(value)
            elif isinstance(value, list):
                value = tuple(value)
            items.append((key, value))
        return tuple(items)

    return flatten(asdict(config))


# ----------------------------------------------------------------------
# SimStats (de)serialisation
# ----------------------------------------------------------------------

def _kind_fields() -> tuple[str, ...]:
    """SimStats fields holding per-BranchKind counter dicts."""
    probe = SimStats()
    names = []
    for field in fields(SimStats):
        value = getattr(probe, field.name)
        if isinstance(value, dict) and value and all(
                isinstance(key, BranchKind) for key in value):
            names.append(field.name)
    return tuple(names)


def stats_to_jsonable(stats: SimStats) -> dict:
    """A JSON-safe dict round-trippable via :func:`stats_from_jsonable`."""
    data = asdict(stats)
    for name in _kind_fields():
        data[name] = {kind.value: count for kind, count in data[name].items()}
    return data


def stats_from_jsonable(data: dict) -> SimStats:
    kwargs = dict(data)
    for name in _kind_fields():
        kwargs[name] = {BranchKind(value): count
                        for value, count in data[name].items()}
    return SimStats(**kwargs)


@functools.lru_cache(maxsize=1)
def code_fingerprint() -> str:
    """A hash of every simulator source file that can affect results.

    Covers the ISA, workload generation, front-end and Skia packages (not
    the harness itself: rendering or orchestration changes do not change
    simulation output).  Any edit to those files re-addresses the whole
    store, so a stale entry can never be read back as current.
    """
    import repro.core
    import repro.frontend
    import repro.isa
    import repro.workloads

    digest = hashlib.sha256()
    for package in (repro.isa, repro.workloads, repro.frontend, repro.core):
        root = Path(package.__file__).parent
        for path in sorted(root.glob("*.py")):
            digest.update(path.name.encode())
            digest.update(path.read_bytes())
    return digest.hexdigest()[:16]


def schema_fingerprint(store_version: int = STORE_VERSION) -> str:
    """Identity of the stored value's shape.

    Any change to the ``SimStats`` field set or the branch-kind
    vocabulary changes the fingerprint, so old entries simply stop being
    addressed -- no migration logic, no stale reads.
    """
    shape = [store_version,
             sorted(field.name for field in fields(SimStats)),
             sorted(kind.value for kind in BranchKind)]
    digest = hashlib.sha256(json.dumps(shape).encode())
    return digest.hexdigest()[:16]


def result_key(workload: str, config, seed: int, scale: Scale,
               bolted: bool = False, version: str | None = None,
               store_version: int = STORE_VERSION) -> str:
    """The content address of one (workload, config, seed, scale) cell."""
    payload = {
        "repro": version if version is not None else __version__,
        "code": code_fingerprint(),
        "schema": schema_fingerprint(store_version),
        "workload": workload,
        "seed": seed,
        "bolted": bolted,
        "records": scale.records,
        "warmup": scale.warmup,
        "config": repr(config_key(config)),
    }
    digest = hashlib.sha256(
        json.dumps(payload, sort_keys=True).encode())
    return digest.hexdigest()


# ----------------------------------------------------------------------
# The store
# ----------------------------------------------------------------------

class ResultStore:
    """Content-addressed SimStats storage under one root directory.

    Files live two levels deep (``<root>/<key[:2]>/<key>.json``) to keep
    directory fan-out sane on big grids.  Reads tolerate missing or
    corrupt files (they count as misses); writes are atomic
    (temp file + ``os.replace``) so concurrent workers never expose a
    half-written entry.
    """

    def __init__(self, root: str | os.PathLike = DEFAULT_ROOT):
        self.root = Path(root)
        self.hits = 0
        self.misses = 0
        self.writes = 0

    def _path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    def key(self, workload: str, config, seed: int, scale: Scale,
            bolted: bool = False, version: str | None = None) -> str:
        return result_key(workload, config, seed, scale, bolted=bolted,
                          version=version)

    def contains(self, key: str) -> bool:
        """Cheap existence probe (no parse, no hit/miss accounting).

        Used by the batch dispatcher to decide whether a workload's
        compiled trace must be published to workers at all; ``get`` is
        still the authority on readability.
        """
        return self._path(key).is_file()

    def get(self, key: str) -> SimStats | None:
        path = self._path(key)
        with PROFILER.section("store.get"):
            try:
                with open(path, encoding="utf-8") as handle:
                    payload = json.load(handle)
                stats = stats_from_jsonable(payload["stats"])
            except (OSError, ValueError, KeyError, TypeError):
                self.misses += 1
                return None
        self.hits += 1
        return stats

    def get_metrics(self, key: str) -> dict[str, float] | None:
        """The metric snapshot stored alongside a result, if any.

        Uncounted (piggy-backs on a result already addressed by ``get``);
        returns ``None`` for entries written before snapshots existed or
        by callers that had none to persist.
        """
        path = self._path(key)
        try:
            with open(path, encoding="utf-8") as handle:
                payload = json.load(handle)
            metrics = payload.get("metrics")
        except (OSError, ValueError):
            return None
        if not isinstance(metrics, dict):
            return None
        return metrics

    def get_attribution(self, key: str) -> dict | None:
        """The attribution artifact stored alongside a result, if any.

        Returns the JSON-able aggregator payload (rebuild it with
        ``AttributionAggregator.from_jsonable``); ``None`` for entries
        written without attribution recording.  Uncounted, like
        :meth:`get_metrics`.
        """
        path = self._path(key)
        try:
            with open(path, encoding="utf-8") as handle:
                payload = json.load(handle)
            attribution = payload.get("attribution")
        except (OSError, ValueError):
            return None
        if not isinstance(attribution, dict):
            return None
        return attribution

    def get_intervals(self, key: str) -> dict | None:
        """The interval series stored alongside a result, if any.

        Returns the JSON-able series payload (rebuild it with
        ``IntervalSeries.from_jsonable``); ``None`` for entries written
        without interval telemetry.  Uncounted, like :meth:`get_metrics`.
        """
        path = self._path(key)
        try:
            with open(path, encoding="utf-8") as handle:
                payload = json.load(handle)
            intervals = payload.get("intervals")
        except (OSError, ValueError):
            return None
        if not isinstance(intervals, dict):
            return None
        return intervals

    def put(self, key: str, stats: SimStats,
            metrics: dict[str, float] | None = None,
            attribution: dict | None = None,
            intervals: dict | None = None) -> Path:
        with PROFILER.section("store.put"):
            path = self._path(key)
            path.parent.mkdir(parents=True, exist_ok=True)
            payload = {
                "repro": __version__,
                "schema": schema_fingerprint(),
                "stats": stats_to_jsonable(stats),
            }
            if metrics is not None:
                payload["metrics"] = dict(metrics)
            if attribution is not None:
                payload["attribution"] = attribution
            if intervals is not None:
                payload["intervals"] = intervals
            descriptor, tmp_name = tempfile.mkstemp(
                dir=path.parent, prefix=".tmp-", suffix=".json")
            try:
                with os.fdopen(descriptor, "w", encoding="utf-8") as handle:
                    json.dump(payload, handle)
                os.replace(tmp_name, path)
            except BaseException:
                try:
                    os.unlink(tmp_name)
                except OSError:
                    pass
                raise
        self.writes += 1
        return path

    def __len__(self) -> int:
        if not self.root.is_dir():
            return 0
        return sum(1 for _ in self.root.glob("*/*.json"))

    def clear(self) -> None:
        """Delete every stored entry (leaves the root directory)."""
        if not self.root.is_dir():
            return
        for path in self.root.glob("*/*.json"):
            try:
                path.unlink()
            except OSError:
                pass

    def render_stats(self) -> str:
        return (f"result store at {self.root}: {self.hits} hits / "
                f"{self.misses} misses, {self.writes} writes, "
                f"{len(self)} entries")


def store_enabled() -> bool:
    """False when ``REPRO_NO_STORE`` is set to a truthy value."""
    return os.environ.get("REPRO_NO_STORE", "").lower() not in (
        "1", "true", "yes", "on")


def default_store(root: str | os.PathLike | None = None) -> ResultStore | None:
    """The store the harness should use, or ``None`` when opted out."""
    if not store_enabled():
        return None
    if root is None:
        root = os.environ.get("REPRO_CACHE_DIR", DEFAULT_ROOT)
    return ResultStore(root)
