"""Memoised experiment execution.

Different figures reuse the same (workload, configuration) cells -- e.g.
the 8K-BTB baseline appears in Figures 1, 6, 14, 15, 16 and 18.  The
runner hashes a canonical key for each cell and runs each distinct cell
once per process.

Two layers sit under the in-memory memo:

* the **persistent result store** (:mod:`repro.harness.store`): finished
  ``SimStats`` are kept on disk keyed by content, so a cell simulated in
  *any* earlier process is an O(file-read) hit.  Disable with
  ``REPRO_NO_STORE=1`` or ``store=None``.
* the **process pool** (:mod:`repro.harness.parallel`): the batch APIs
  (:meth:`ExperimentRunner.run_cells` / :meth:`run_many`) fan distinct
  cells out over workers when ``jobs != 1``.  ``jobs=1`` (the default)
  never spawns a pool and stays bit-identical to the historical serial
  behaviour.
"""

from __future__ import annotations

import dataclasses
import time
from typing import Sequence

from repro.frontend.batch import (
    BatchedFrontEndSimulator,
    batch_supported,
    note_object_fallback,
    run_compiled_batched,
)
from repro.frontend.config import FrontEndConfig
from repro.frontend.engine import FrontEndSimulator
from repro.frontend.stats import SimStats
from repro.harness.parallel import Cell, ParallelRunner
from repro.harness.progress import ProgressReporter, progress_enabled
from repro.harness.scale import Scale, current_scale
from repro.harness.store import ResultStore, config_key, default_store
from repro.obs import ledger as ledger_mod
from repro.obs import spans as spans_mod
from repro.obs.invariants import check_snapshot
from repro.obs.profiler import PROFILER
from repro.workloads.cache import GLOBAL_CACHE, WorkloadCache
from repro.workloads.compiled import batch_enabled, compiled_traces_enabled

__all__ = ["ExperimentRunner", "config_key"]


class ExperimentRunner:
    """Runs (workload, config) cells with memoisation.

    ``store`` defaults to the environment-selected persistent store
    (pass ``None`` to keep results purely in-memory).  ``jobs`` sets the
    default parallelism of the batch APIs; ``run`` itself is always
    serial.
    """

    def __init__(self, scale: Scale | None = None, seed: int = 0,
                 cache: WorkloadCache | None = None,
                 store: ResultStore | None | str = "default",
                 jobs: int | None = None,
                 record_attribution: bool = False):
        self.scale = scale or current_scale()
        self.seed = seed
        self.cache = cache or GLOBAL_CACHE
        self.store = default_store() if store == "default" else store
        self.jobs = jobs
        #: When set, every uncached cell runs with an attribution
        #: aggregator attached and persists the per-branch/per-line
        #: artifact alongside its stats; a store hit lacking attribution
        #: is re-simulated (backfilled) so the artifact always exists.
        self.record_attribution = record_attribution
        self._results: dict[tuple, SimStats] = {}
        self._metrics: dict[tuple, dict[str, float]] = {}
        self._attribution: dict[tuple, dict] = {}
        self._intervals: dict[tuple, dict] = {}

    def _memo_key(self, workload: str, config: FrontEndConfig,
                  bolted: bool, seed: int) -> tuple:
        return (workload, bolted, self.scale.name, seed, config_key(config))

    def run(self, workload: str, config: FrontEndConfig,
            bolted: bool = False) -> SimStats:
        return self.run_with_metrics(workload, config, bolted=bolted)[0]

    def run_with_metrics(
            self, workload: str, config: FrontEndConfig,
            bolted: bool = False) -> tuple[SimStats, dict[str, float] | None]:
        """Like :meth:`run`, but also returns the metric snapshot.

        The snapshot is ``None`` only for results loaded from a store
        entry written before snapshots were persisted.
        """
        key = self._memo_key(workload, config, bolted, self.seed)
        cached = self._results.get(key)
        if cached is not None:
            return cached, self.metrics_for(workload, config, bolted=bolted)
        stats, metrics = self._run_uncached(workload, config, bolted,
                                            self.seed)
        self._results[key] = stats
        if metrics is not None:
            self._metrics[key] = metrics
        return stats, metrics

    def metrics_for(self, workload: str, config: FrontEndConfig,
                    bolted: bool = False) -> dict[str, float] | None:
        """The metric snapshot of an already-run cell (memo, then store)."""
        key = self._memo_key(workload, config, bolted, self.seed)
        metrics = self._metrics.get(key)
        if metrics is None and self.store is not None:
            store_key = self.store.key(workload, config, self.seed,
                                       self.scale, bolted=bolted)
            metrics = self.store.get_metrics(store_key)
            if metrics is not None:
                self._metrics[key] = metrics
        return metrics

    def attribution_for(self, workload: str, config: FrontEndConfig,
                        bolted: bool = False) -> dict | None:
        """The attribution artifact of an already-run cell (memo, store).

        Returns the JSON-able aggregator payload, or ``None`` when the
        cell ran without attribution recording (use
        :meth:`run_with_attribution` to force one into existence).
        """
        key = self._memo_key(workload, config, bolted, self.seed)
        attribution = self._attribution.get(key)
        if attribution is None and self.store is not None:
            store_key = self.store.key(workload, config, self.seed,
                                       self.scale, bolted=bolted)
            attribution = self.store.get_attribution(store_key)
            if attribution is not None:
                self._attribution[key] = attribution
        return attribution

    def run_with_attribution(self, workload: str, config: FrontEndConfig,
                             bolted: bool = False):
        """Run one cell and return ``(stats, AttributionAggregator)``.

        Forces attribution recording for this cell regardless of the
        runner's default, evicting a memoised attribution-less result if
        necessary (the store entry is backfilled in the process).
        """
        from repro.obs.attribution import AttributionAggregator

        previous = self.record_attribution
        self.record_attribution = True
        try:
            stats = self.run(workload, config, bolted=bolted)
            payload = self.attribution_for(workload, config, bolted=bolted)
            if payload is None:
                # Memoised earlier without attribution; drop and re-run.
                key = self._memo_key(workload, config, bolted, self.seed)
                self._results.pop(key, None)
                stats = self.run(workload, config, bolted=bolted)
                payload = self.attribution_for(workload, config,
                                               bolted=bolted)
        finally:
            self.record_attribution = previous
        if payload is None:  # pragma: no cover - store-less parallel only
            raise RuntimeError(
                "attribution artifact unavailable; parallel runs need a "
                "result store to hand artifacts back")
        return stats, AttributionAggregator.from_jsonable(payload)

    def intervals_for(self, workload: str, config: FrontEndConfig,
                      bolted: bool = False) -> dict | None:
        """The interval series of an already-run cell (memo, then store).

        Returns the JSON-able series payload, or ``None`` when the cell
        ran without interval telemetry (``config.interval_size == 0``,
        or a store entry that predates the series artifact -- use
        :meth:`run_with_intervals` to force one into existence).
        """
        key = self._memo_key(workload, config, bolted, self.seed)
        intervals = self._intervals.get(key)
        if intervals is None and self.store is not None:
            store_key = self.store.key(workload, config, self.seed,
                                       self.scale, bolted=bolted)
            intervals = self.store.get_intervals(store_key)
            if intervals is not None:
                self._intervals[key] = intervals
        return intervals

    def run_with_intervals(self, workload: str, config: FrontEndConfig,
                           bolted: bool = False, window: int | None = None):
        """Run one cell and return ``(stats, IntervalSeries)``.

        When ``config.interval_size`` is zero, ``window`` supplies it
        (the adjusted config addresses its own store cell, like any
        other knob change).  A memoised or stored result lacking the
        series artifact is evicted and re-simulated once.
        """
        from repro.obs.intervals import IntervalSeries

        if config.interval_size <= 0:
            if not window:
                raise ValueError(
                    "interval telemetry disabled: set config.interval_size "
                    "or pass window=")
            config = dataclasses.replace(config, interval_size=window)
        stats = self.run(workload, config, bolted=bolted)
        payload = self.intervals_for(workload, config, bolted=bolted)
        if payload is None:
            # Memoised earlier without the artifact; drop and re-run.
            key = self._memo_key(workload, config, bolted, self.seed)
            self._results.pop(key, None)
            stats = self.run(workload, config, bolted=bolted)
            payload = self.intervals_for(workload, config, bolted=bolted)
        if payload is None:  # pragma: no cover - store-less parallel only
            raise RuntimeError(
                "interval series unavailable; parallel runs need a result "
                "store to hand artifacts back")
        return stats, IntervalSeries.from_jsonable(payload)

    def _run_uncached(
            self, workload: str, config: FrontEndConfig, bolted: bool,
            seed: int, queued: bool = True
    ) -> tuple[SimStats, dict[str, float] | None]:
        """One cell, end to end, with full run-ledger lifecycle.

        ``queued`` is False when a batch entry point (``run_cells`` or
        the pool parent) already emitted the cell's ``queued`` record;
        standalone :meth:`run` calls emit it here.  With no active
        ledger the added cost is a handful of ``is None`` checks.
        """
        ledger = ledger_mod.active_ledger()
        cell_id = None
        if ledger is not None:
            cell_id = ledger_mod.cell_id_for(workload, config, seed, bolted)
            if queued:
                ledger.cell(cell_id, "queued")
            spans_mod.set_cell(cell_id)
        started = time.monotonic()
        try:
            stats, metrics, outcome = self._simulate_one(
                workload, config, bolted, seed, ledger, cell_id)
        except Exception as exc:
            if ledger is not None:
                ledger.cell(cell_id, "error",
                            error=f"{type(exc).__name__}: {exc}")
            raise
        finally:
            if ledger is not None:
                # The harness.cell section popped (with the cell stamp)
                # when _simulate_one returned; clear the stamp so later
                # sections are not mis-attributed.
                spans_mod.set_cell(None)
        if ledger is not None:
            # One group record per harness.cell span opened above.
            ledger.group([cell_id], mode="serial")
            ledger.cell(cell_id, "done", spanned=True,
                        wall_s=round(time.monotonic() - started, 6),
                        **outcome)
        return stats, metrics

    def _simulate_one(
            self, workload: str, config: FrontEndConfig, bolted: bool,
            seed: int, ledger, cell_id: str | None
    ) -> tuple[SimStats, dict[str, float] | None, dict]:
        """The cell body: store probe, prepare, simulate, store-write.

        Returns ``(stats, metrics, outcome_fields)``; the caller folds
        ``outcome_fields`` into the terminal ledger record.
        """
        with PROFILER.section("harness.cell"):
            store_key = None
            if self.store is not None:
                store_key = self.store.key(workload, config, seed,
                                           self.scale, bolted=bolted)
                stored = self.store.get(store_key)
                if ledger is not None:
                    ledger.cell(cell_id, "store_probe",
                                hit=stored is not None)
                if stored is not None:
                    # A hit only short-circuits when every artifact this
                    # run needs is present; an entry predating one falls
                    # through and re-simulates to backfill it.
                    backfill = None
                    if self.record_attribution:
                        attribution = self.store.get_attribution(store_key)
                        if attribution is None:
                            backfill = "attribution"
                        else:
                            self._attribution[self._memo_key(
                                workload, config, bolted, seed)] = attribution
                    if backfill is None and config.interval_size > 0:
                        intervals = self.store.get_intervals(store_key)
                        if intervals is None:
                            backfill = "intervals"
                        else:
                            self._intervals[self._memo_key(
                                workload, config, bolted, seed)] = intervals
                    if backfill is None:
                        return (stored, self.store.get_metrics(store_key),
                                {"result": "store_hit"})
            elif ledger is not None:
                ledger.cell(cell_id, "store_probe", hit=False, store=False)
            use_compiled = compiled_traces_enabled()
            with PROFILER.section("harness.workload"):
                program = self.cache.program(workload, seed=seed,
                                             bolted=bolted)
                if use_compiled:
                    compiled = self.cache.compiled(
                        workload, self.scale.records, seed=seed,
                        bolted=bolted)
                else:
                    trace = self.cache.trace(workload, self.scale.records,
                                             seed=seed, bolted=bolted)
            if ledger is not None:
                ledger.cell(cell_id, "prepare",
                            source="compile" if use_compiled else "trace")
            mode = "object"
            fallback_reason = None
            with PROFILER.section("harness.simulate"):
                simulator = FrontEndSimulator(program, config, seed=seed)
                if self.record_attribution:
                    simulator.attach_attribution()
                if use_compiled:
                    # Prefer the batched kernel even for one cell; the
                    # object/compiled loops remain the fallback (and the
                    # oracle) for cells with instrumentation attached.
                    if batch_enabled() and batch_supported(simulator):
                        mode = "batched"
                        stats = run_compiled_batched(
                            simulator, compiled, warmup=self.scale.warmup)
                    else:
                        if batch_enabled():
                            fallback_reason = note_object_fallback(simulator)
                        stats = simulator.run_compiled(
                            compiled, warmup=self.scale.warmup)
                else:
                    stats = simulator.run(trace, warmup=self.scale.warmup)
                metrics = simulator.metrics_snapshot()
            fastforward = getattr(simulator, "fastforward_summary", None)
            outcome = {"result": "simulated", "mode": mode}
            if fallback_reason is not None:
                outcome["fallback_reason"] = fallback_reason
            if fastforward is not None:
                outcome["fastforward"] = fastforward
            if ledger is not None:
                ledger.cell(cell_id, "simulate", mode=mode,
                            fallback_reason=fallback_reason,
                            fastforward=fastforward)
                violations = check_snapshot(metrics)
                ledger.cell(cell_id, "invariants",
                            violations=[v.invariant for v in violations])
            attribution = None
            if self.record_attribution:
                attribution = simulator.attribution.to_jsonable()
                self._attribution[self._memo_key(
                    workload, config, bolted, seed)] = attribution
            intervals = None
            if simulator.intervals is not None:
                intervals = simulator.intervals.series().to_jsonable()
                self._intervals[self._memo_key(
                    workload, config, bolted, seed)] = intervals
            if self.store is not None:
                self.store.put(store_key, stats, metrics=metrics,
                               attribution=attribution, intervals=intervals)
                if ledger is not None:
                    ledger.cell(cell_id, "store_write", stored=True)
        return stats, metrics, outcome

    # ------------------------------------------------------------------
    # Batch execution
    # ------------------------------------------------------------------

    def run_cells(self, cells: Sequence[Cell],
                  jobs: int | None = None) -> list[SimStats]:
        """Simulate a batch of cells, in parallel when ``jobs != 1``.

        Results merge into the in-memory memo, so subsequent ``run``
        calls for the same cells are hits.  ``jobs`` falls back to the
        runner's default, then to serial.
        """
        jobs = jobs if jobs is not None else (self.jobs or 1)
        resolved = [cell.resolved(self.seed) for cell in cells]
        missing = [cell for cell in resolved
                   if cell.identity(self.scale) not in self._results]
        if missing:
            ledger = ledger_mod.active_ledger()
            progress = None
            if jobs == 1:
                if ledger is not None:
                    unique: dict[tuple, Cell] = {}
                    for cell in missing:
                        unique.setdefault(cell.identity(self.scale), cell)
                    ledger.grid(cells=len(unique), submitted=len(resolved),
                                jobs=1)
                    for cell in unique.values():
                        ledger.cell(ledger_mod.cell_id_for(
                            cell.workload, cell.config, cell.seed,
                            cell.bolted), "queued")
                    if progress_enabled():
                        progress = ProgressReporter(len(unique),
                                                    ledger=ledger)
                if (batch_enabled() and compiled_traces_enabled()
                        and not self.record_attribution):
                    self._run_missing_batched(missing, progress=progress)
                else:
                    for cell in missing:
                        key = cell.identity(self.scale)
                        if key not in self._results:
                            started = time.monotonic()
                            stats, metrics = self._run_uncached(
                                cell.workload, cell.config, cell.bolted,
                                cell.seed, queued=False)
                            self._results[key] = stats
                            if metrics is not None:
                                self._metrics[key] = metrics
                            if progress is not None:
                                progress.update(
                                    1,
                                    cell_id=ledger_mod.cell_id_for(
                                        cell.workload, cell.config,
                                        cell.seed, cell.bolted),
                                    wall_s=time.monotonic() - started)
                if progress is not None:
                    progress.finish()
            else:
                parallel = ParallelRunner(
                    scale=self.scale, jobs=jobs, store=self.store,
                    record_attribution=self.record_attribution)
                for cell, stats in zip(missing,
                                       parallel.run_batch(missing)):
                    self._results.setdefault(cell.identity(self.scale),
                                             stats)
        return [self._results[cell.identity(self.scale)]
                for cell in resolved]

    def _run_missing_batched(self, missing: Sequence[Cell],
                             progress: ProgressReporter | None = None
                             ) -> None:
        """Serial batch path: multi-lane kernel per shared trace.

        Groups uncached cells by (workload, seed, bolted) so every lane
        of a group replays one shared decode table in chunked lockstep
        -- the table rows and the process-wide shadow-decode tables stay
        hot across lanes instead of being streamed N times.  Store hits
        short-circuit exactly as :meth:`_run_uncached` does; the
        produced stats and metric snapshots are bit-identical to the
        serial object path.

        Ledger semantics: each multi-lane group opens *one*
        ``harness.cell`` section, so it logs one ``group`` record
        covering its lanes; lane ``done`` records carry the shared group
        wall (``shared_wall=True``, excluded from straggler medians).
        Store hits short-circuit *before* the section and are therefore
        terminal with ``spanned=False``.
        """
        ledger = ledger_mod.active_ledger()
        groups: dict[tuple, list[Cell]] = {}
        seen: set[tuple] = set()
        for cell in missing:
            key = cell.identity(self.scale)
            if key in self._results or key in seen:
                continue
            seen.add(key)
            groups.setdefault(
                (cell.workload, cell.seed, cell.bolted), []).append(cell)
        for (workload, seed, bolted), cells in groups.items():
            pending: list[tuple[Cell, str | None]] = []
            for cell in cells:
                key = cell.identity(self.scale)
                cell_id = (ledger_mod.cell_id_for(workload, cell.config,
                                                  seed, bolted)
                           if ledger is not None else None)
                if self.store is not None:
                    store_key = self.store.key(workload, cell.config, seed,
                                               self.scale, bolted=bolted)
                    stored = self.store.get(store_key)
                    if (stored is not None and cell.config.interval_size > 0
                            and self.store.get_intervals(store_key) is None):
                        # Entry predates interval telemetry: treat as a
                        # miss and re-simulate to backfill the series.
                        stored = None
                    if ledger is not None:
                        ledger.cell(cell_id, "store_probe",
                                    hit=stored is not None)
                    if stored is not None:
                        self._results[key] = stored
                        metrics = self.store.get_metrics(store_key)
                        if metrics is not None:
                            self._metrics[key] = metrics
                        if ledger is not None:
                            ledger.cell(cell_id, "done", result="store_hit",
                                        spanned=False)
                        if progress is not None:
                            progress.update(1)
                        continue
                elif ledger is not None:
                    ledger.cell(cell_id, "store_probe", hit=False,
                                store=False)
                pending.append((cell, cell_id))
            if not pending:
                continue
            group_started = time.monotonic()
            if ledger is not None:
                spans_mod.set_cell(
                    f"group:{workload}:s{seed}"
                    + ("+bolt" if bolted else ""))
            finished: list = []
            try:
                with PROFILER.section("harness.cell"):
                    if ledger is not None:
                        ledger.group([cell_id for _, cell_id in pending],
                                     mode="batched-group")
                    with PROFILER.section("harness.workload"):
                        program = self.cache.program(workload, seed=seed,
                                                     bolted=bolted)
                        compiled = self.cache.compiled(
                            workload, self.scale.records, seed=seed,
                            bolted=bolted)
                    batch = BatchedFrontEndSimulator()
                    lanes: list[tuple[Cell, str | None,
                                      FrontEndSimulator]] = []
                    fallbacks: list[tuple[Cell, str | None,
                                          FrontEndSimulator, str]] = []
                    for cell, cell_id in pending:
                        if ledger is not None:
                            ledger.cell(cell_id, "prepare",
                                        source="compile")
                        simulator = FrontEndSimulator(program, cell.config,
                                                      seed=seed)
                        if batch_supported(simulator):
                            batch.add_lane(simulator, compiled,
                                           warmup=self.scale.warmup)
                            lanes.append((cell, cell_id, simulator))
                        else:
                            # e.g. config.record_timeline attaches a
                            # recorder at init; the kernel cannot
                            # replicate it, so the cell runs the
                            # compiled object loop instead.
                            reason = note_object_fallback(simulator)
                            fallbacks.append((cell, cell_id, simulator,
                                              reason))
                    with PROFILER.section("harness.simulate"):
                        stats_list = batch.run()
                        finished = [
                            (cell, cell_id, simulator, stats,
                             "batched", None)
                            for (cell, cell_id, simulator), stats
                            in zip(lanes, stats_list)]
                        finished += [
                            (cell, cell_id, simulator,
                             simulator.run_compiled(
                                 compiled, warmup=self.scale.warmup),
                             "object", reason)
                            for cell, cell_id, simulator, reason
                            in fallbacks]
                    for (cell, cell_id, simulator, stats, mode,
                         reason) in finished:
                        metrics = simulator.metrics_snapshot()
                        self._results[cell.identity(self.scale)] = stats
                        self._metrics[cell.identity(self.scale)] = metrics
                        intervals = None
                        if simulator.intervals is not None:
                            intervals = (
                                simulator.intervals.series().to_jsonable())
                            self._intervals[
                                cell.identity(self.scale)] = intervals
                        if ledger is not None:
                            ledger.cell(
                                cell_id, "simulate", mode=mode,
                                fallback_reason=reason,
                                fastforward=getattr(
                                    simulator, "fastforward_summary", None))
                            ledger.cell(cell_id, "invariants",
                                        violations=[v.invariant for v in
                                                    check_snapshot(metrics)])
                        if self.store is not None:
                            store_key = self.store.key(
                                workload, cell.config, seed, self.scale,
                                bolted=bolted)
                            self.store.put(store_key, stats,
                                           metrics=metrics,
                                           intervals=intervals)
                            if ledger is not None:
                                ledger.cell(cell_id, "store_write",
                                            stored=True)
            except Exception as exc:
                if ledger is not None:
                    for cell, cell_id in pending:
                        ledger.cell(cell_id, "error",
                                    error=f"{type(exc).__name__}: {exc}")
                raise
            finally:
                if ledger is not None:
                    spans_mod.set_cell(None)
            if ledger is not None:
                group_wall = round(time.monotonic() - group_started, 6)
                for (cell, cell_id, simulator, stats, mode,
                     reason) in finished:
                    outcome = {"result": "simulated", "mode": mode}
                    if reason is not None:
                        outcome["fallback_reason"] = reason
                    fastforward = getattr(simulator, "fastforward_summary",
                                          None)
                    if fastforward is not None:
                        outcome["fastforward"] = fastforward
                    ledger.cell(cell_id, "done", spanned=True,
                                wall_s=group_wall, shared_wall=True,
                                **outcome)
            if progress is not None:
                progress.update(len(pending))

    def run_many(self, workloads: list[str], config: FrontEndConfig,
                 bolted: bool = False,
                 jobs: int | None = None) -> dict[str, SimStats]:
        cells = [Cell(workload, config, self.seed, bolted)
                 for workload in workloads]
        stats = self.run_cells(cells, jobs=jobs)
        return dict(zip(workloads, stats))

    def clear(self) -> None:
        self._results.clear()
        self._metrics.clear()
        self._attribution.clear()
        self._intervals.clear()
