"""Memoised experiment execution.

Different figures reuse the same (workload, configuration) cells -- e.g.
the 8K-BTB baseline appears in Figures 1, 6, 14, 15, 16 and 18.  The
runner hashes a canonical key for each cell and runs each distinct cell
once per process.
"""

from __future__ import annotations

from dataclasses import asdict

from repro.frontend.config import FrontEndConfig
from repro.frontend.engine import FrontEndSimulator
from repro.frontend.stats import SimStats
from repro.harness.scale import Scale, current_scale
from repro.workloads.cache import GLOBAL_CACHE, WorkloadCache


def config_key(config: FrontEndConfig) -> tuple:
    """A hashable, order-stable identity for a configuration."""
    def flatten(mapping: dict) -> tuple:
        items = []
        for key in sorted(mapping):
            value = mapping[key]
            if isinstance(value, dict):
                value = flatten(value)
            elif isinstance(value, list):
                value = tuple(value)
            items.append((key, value))
        return tuple(items)

    return flatten(asdict(config))


class ExperimentRunner:
    """Runs (workload, config) cells with memoisation."""

    def __init__(self, scale: Scale | None = None, seed: int = 0,
                 cache: WorkloadCache | None = None):
        self.scale = scale or current_scale()
        self.seed = seed
        self.cache = cache or GLOBAL_CACHE
        self._results: dict[tuple, SimStats] = {}

    def run(self, workload: str, config: FrontEndConfig,
            bolted: bool = False) -> SimStats:
        key = (workload, bolted, self.scale.name, self.seed,
               config_key(config))
        cached = self._results.get(key)
        if cached is not None:
            return cached
        program = self.cache.program(workload, seed=self.seed, bolted=bolted)
        trace = self.cache.trace(workload, self.scale.records,
                                 seed=self.seed, bolted=bolted)
        simulator = FrontEndSimulator(program, config, seed=self.seed)
        stats = simulator.run(trace, warmup=self.scale.warmup)
        self._results[key] = stats
        return stats

    def run_many(self, workloads: list[str], config: FrontEndConfig,
                 bolted: bool = False) -> dict[str, SimStats]:
        return {workload: self.run(workload, config, bolted=bolted)
                for workload in workloads}

    def clear(self) -> None:
        self._results.clear()
