"""Rendering helpers for experiment output.

Everything prints as plain ASCII tables so benchmark logs double as the
regenerated exhibits.
"""

from __future__ import annotations

import math
from typing import Iterable, Sequence


def geomean(values: Iterable[float]) -> float:
    """Geometric mean of positive values.

    Empty input raises rather than returning a sentinel: a 0.0 (and the
    -100% "speedup" it implied downstream) silently corrupted summary
    tables whenever a caller filtered every workload out.  Non-finite
    values (NaN/inf) raise for the same reason -- ``NaN <= 0`` is False,
    so they used to sail through the positivity check and poison the
    mean.
    """
    values = list(values)
    if not values:
        raise ValueError("geomean of an empty sequence is undefined")
    if any(not math.isfinite(value) for value in values):
        raise ValueError(f"geomean requires finite values, got {values!r}")
    if any(value <= 0 for value in values):
        raise ValueError("geomean requires positive values")
    return math.exp(sum(math.log(value) for value in values) / len(values))


def geomean_speedup(ratios: Iterable[float]) -> float:
    """Geometric-mean speedup, expressed as a fraction (0.057 = 5.7%).

    ``ratios`` are per-workload IPC ratios (skia/base), i.e. 1 + gain.
    Raises ``ValueError`` on an empty ratio list (see :func:`geomean`).
    """
    return geomean(ratios) - 1.0


def pct(fraction: float, digits: int = 2) -> str:
    return f"{100.0 * fraction:.{digits}f}%"


def format_table(headers: Sequence[str], rows: Sequence[Sequence],
                 title: str | None = None) -> str:
    """Fixed-width ASCII table."""
    rendered_rows = [[_cell(value) for value in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in rendered_rows:
        for column, value in enumerate(row):
            widths[column] = max(widths[column], len(value))

    def line(cells: Sequence[str]) -> str:
        return "  ".join(cell.ljust(width)
                         for cell, width in zip(cells, widths)).rstrip()

    out = []
    if title:
        out.append(title)
    out.append(line(headers))
    out.append(line(["-" * width for width in widths]))
    out.extend(line(row) for row in rendered_rows)
    return "\n".join(out)


def _cell(value) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)


def format_markdown_table(headers: Sequence[str],
                          rows: Sequence[Sequence]) -> str:
    """GitHub-flavoured markdown table (pipes escaped in cells)."""
    def md_cell(value) -> str:
        return _cell(value).replace("|", "\\|")

    lines = ["| " + " | ".join(md_cell(header) for header in headers) + " |",
             "|" + "|".join(" --- " for _ in headers) + "|"]
    for row in rows:
        lines.append("| " + " | ".join(md_cell(value) for value in row)
                     + " |")
    return "\n".join(lines)
