"""Bounded LRU caching with observable statistics.

Several hot paths memoise aggressively -- the byte decoder, the Shadow
Branch Decoder, the workload cache -- and long sweeps (hundreds of
(workload, config) cells) previously let those memos grow without limit.
:class:`LRUCache` is the shared bounded replacement: a dict with
least-recently-used eviction, hit/miss/eviction counters, and the small
mapping surface the memo call-sites need.

Python dicts preserve insertion order, so recency is tracked by deleting
and re-inserting a key on every touch; both operations are O(1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Hashable, Iterator

_MISSING = object()


@dataclass(frozen=True)
class CacheStats:
    """A point-in-time snapshot of one cache's counters."""

    hits: int
    misses: int
    evictions: int
    size: int
    maxsize: int | None

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0

    def render(self, label: str = "cache") -> str:
        bound = "unbounded" if self.maxsize is None else str(self.maxsize)
        return (f"{label}: {self.hits} hits / {self.misses} misses "
                f"({self.hit_rate:.1%}), {self.evictions} evictions, "
                f"size {self.size}/{bound}")


class LRUCache:
    """A bounded mapping with least-recently-used eviction.

    ``maxsize=None`` disables eviction (counters still work), which lets
    call-sites expose one knob for both bounded and unbounded modes.
    ``maxsize=0`` is a degenerate but valid cache: every store is
    immediately evicted and every get misses, with the same counter
    accounting as any other capacity (so sweeping a cache size down to
    zero needs no special-casing at call sites).

    Counter invariants, at every capacity and under touch-on-hit
    re-ordering (property-tested in tests/test_caching.py):
    ``hits + misses == gets``, ``evictions == new-key stores - size``,
    and ``size <= maxsize``.

    ``on_evict`` (when given) is called as ``on_evict(key, value)`` for
    every value displaced from the cache -- capacity evictions and
    overwrites of an existing key with a *different* value -- so values
    owning external resources (e.g. shared-memory segments) can release
    them.  ``clear()`` does not invoke it; call-sites that clear must
    dispose of live values themselves (see ``WorkloadCache.clear``).
    """

    def __init__(self, maxsize: int | None = None,
                 on_evict: Callable[[Hashable, Any], None] | None = None):
        if maxsize is not None and maxsize < 0:
            raise ValueError("maxsize must be non-negative or None")
        self.maxsize = maxsize
        self.on_evict = on_evict
        self._data: dict[Hashable, Any] = {}
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    # -- mapping surface used by the memo call-sites --------------------

    def get(self, key: Hashable, default: Any = None) -> Any:
        """Counted, recency-touching lookup."""
        value = self._data.get(key, _MISSING)
        if value is _MISSING:
            self.misses += 1
            return default
        self.hits += 1
        # Re-insert to mark as most recently used.
        del self._data[key]
        self._data[key] = value
        return value

    def __setitem__(self, key: Hashable, value: Any) -> None:
        if key in self._data:
            displaced = self._data.pop(key)
            if self.on_evict is not None and displaced is not value:
                self.on_evict(key, displaced)
        self._data[key] = value
        if self.maxsize is not None and len(self._data) > self.maxsize:
            oldest = next(iter(self._data))
            evicted = self._data.pop(oldest)
            self.evictions += 1
            if self.on_evict is not None:
                self.on_evict(oldest, evicted)

    def __contains__(self, key: Hashable) -> bool:
        """Uncounted, recency-neutral membership probe."""
        return key in self._data

    def __len__(self) -> int:
        return len(self._data)

    def __iter__(self) -> Iterator[Hashable]:
        """Keys, least- to most-recently used."""
        return iter(self._data)

    def peek(self, key: Hashable, default: Any = None) -> Any:
        """Uncounted lookup that does not touch recency."""
        return self._data.get(key, default)

    def clear(self) -> None:
        """Drop all entries; counters are preserved."""
        self._data.clear()

    def reset_stats(self) -> None:
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    @property
    def stats(self) -> CacheStats:
        return CacheStats(hits=self.hits, misses=self.misses,
                          evictions=self.evictions, size=len(self._data),
                          maxsize=self.maxsize)
