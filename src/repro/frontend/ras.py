"""Return Address Stack.

A fixed-depth circular stack: pushes beyond capacity overwrite the oldest
entry (the standard hardware behaviour), so deeply nested call chains
corrupt the bottom of the stack and later returns mispredict -- exactly
the overflow failure mode real RASes exhibit.

Audited edge cases (locked in by tests/frontend/test_ras.py):

* pop on empty counts an underflow, returns ``None``, and leaves the
  stack state untouched (no pointer movement, no occupancy change);
* push on full overwrites the *oldest* entry (the slot ``_top`` points
  at is, circularly, the oldest when occupancy == depth) and counts an
  ``overflow_overwrites`` -- occupancy stays at depth;
* conservation: ``occupancy == pushes - overflow_overwrites -
  (pops - underflows)`` at all times (the ``ras_structure_accounting``
  invariant).
"""

from __future__ import annotations


class ReturnAddressStack:
    """Circular return-address stack."""

    def __init__(self, depth: int = 32):
        if depth <= 0:
            raise ValueError("RAS depth must be positive")
        self.depth = depth
        self._buffer: list[int | None] = [None] * depth
        self._top = 0          # index of next push slot
        self._occupancy = 0
        self.pushes = 0
        self.pops = 0
        self.underflows = 0
        self.overflow_overwrites = 0

    def push(self, return_address: int) -> None:
        if self._occupancy == self.depth:
            self.overflow_overwrites += 1
        else:
            self._occupancy += 1
        self._buffer[self._top] = return_address
        self._top = (self._top + 1) % self.depth
        self.pushes += 1

    def pop(self) -> int | None:
        """Pop the predicted return address; None on underflow."""
        self.pops += 1
        if self._occupancy == 0:
            self.underflows += 1
            return None
        self._top = (self._top - 1) % self.depth
        self._occupancy -= 1
        value = self._buffer[self._top]
        self._buffer[self._top] = None
        return value

    def peek(self) -> int | None:
        if self._occupancy == 0:
            return None
        return self._buffer[(self._top - 1) % self.depth]

    def __len__(self) -> int:
        return self._occupancy

    def clear(self) -> None:
        self._buffer = [None] * self.depth
        self._top = 0
        self._occupancy = 0

    def register_metrics(self, scope) -> None:
        """Expose counters as lazily-sampled gauges (repro.obs)."""
        scope.gauge("pushes", lambda: self.pushes)
        scope.gauge("pops", lambda: self.pops)
        scope.gauge("underflows", lambda: self.underflows)
        scope.gauge("overflow_overwrites", lambda: self.overflow_overwrites)
        scope.gauge("occupancy", lambda: self._occupancy)
        scope.gauge("depth", lambda: self.depth)
