"""Simulation statistics.

Every counter the paper's figures need, collected in one place.  The
simulator increments raw counters; derived metrics (IPC, MPKI, reduction
percentages) are computed on demand so tests can assert exact counter
arithmetic.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields

from repro.isa.branch import BranchKind


def _kind_counter() -> dict[BranchKind, int]:
    return {kind: 0 for kind in BranchKind if kind.is_branch}


@dataclass
class SimStats:
    """Counters for one simulation run (post-warm-up region only)."""

    # Progress.
    instructions: int = 0
    blocks: int = 0
    cycles: float = 0.0

    # Dynamic branch mix.
    branches: dict[BranchKind, int] = field(default_factory=_kind_counter)
    taken_branches: int = 0

    # BTB.
    btb_lookups: int = 0
    btb_misses: dict[BranchKind, int] = field(default_factory=_kind_counter)
    btb_miss_l1i_hit: int = 0
    btb_false_hits: int = 0

    # Instruction cache hierarchy.
    l1i_accesses: int = 0
    l1i_misses: int = 0
    l2_misses: int = 0
    l3_misses: int = 0
    wrong_path_fills: int = 0
    fetch_stall_cycles: float = 0.0

    # Predictors.
    cond_predictions: int = 0
    cond_mispredicts: int = 0
    indirect_predictions: int = 0
    indirect_mispredicts: int = 0
    ras_predictions: int = 0
    ras_mispredicts: int = 0
    ras_underflows: int = 0

    # Resteers.
    decode_resteers: int = 0
    exec_resteers: int = 0
    decoder_idle_cycles: float = 0.0
    # Per-cause attribution; causes partition decode+exec resteers.
    resteer_causes: dict[str, int] = field(default_factory=dict)

    # Related-work comparators.
    comparator_hits: int = 0

    # Skia.
    sbb_lookups: int = 0
    sbb_misses: int = 0
    sbd_head_decodes: int = 0
    sbd_tail_decodes: int = 0
    sbd_head_discarded: int = 0
    sbb_insertions_u: int = 0
    sbb_insertions_r: int = 0
    sbb_bogus_insertions: int = 0
    sbb_hits_u: int = 0
    sbb_hits_r: int = 0
    sbb_wrong_target: int = 0
    sbb_retired_marks: int = 0

    # ------------------------------------------------------------------
    # Interval telemetry (repro.obs.intervals)
    # ------------------------------------------------------------------

    def snapshot_row(self) -> dict[str, float]:
        """Cumulative counters as one flat ``{name: value}`` row.

        Dict-valued fields flatten to ``<field>.<key>`` (enum keys use
        their ``.value``).  The key set only ever grows within a run
        (``resteer_causes`` gains keys as causes first fire), which is
        what lets :meth:`delta` treat a missing previous key as zero.
        """
        row: dict[str, float] = {}
        for spec in fields(self):
            value = getattr(self, spec.name)
            if isinstance(value, dict):
                for key, count in value.items():
                    name = key.value if isinstance(key, BranchKind) else key
                    row[f"{spec.name}.{name}"] = count
            else:
                row[spec.name] = value
        return row

    def delta(self, prev: dict[str, float] | None) -> dict[str, float]:
        """Counter advance since ``prev`` (a :meth:`snapshot_row` dict).

        Every counter is monotone within a run, so the difference of two
        cumulative rows is exact; ``prev=None`` means "since reset".
        """
        row = self.snapshot_row()
        if not prev:
            return row
        return {name: value - prev.get(name, 0) for name, value in row.items()}

    # ------------------------------------------------------------------
    # Fast-forward bookkeeping (repro.frontend.fastforward)
    # ------------------------------------------------------------------

    def snapshot_state(self) -> tuple[dict, dict]:
        """Structured copy of every field: ``(scalars, dict_fields)``.

        The fast-forward layer snapshots this at each probe so a skip
        can scale counters exactly (see :meth:`advance_periodic`).
        """
        scalars: dict[str, float] = {}
        dict_fields: dict[str, dict] = {}
        for spec in fields(self):
            value = getattr(self, spec.name)
            if isinstance(value, dict):
                dict_fields[spec.name] = dict(value)
            else:
                scalars[spec.name] = value
        return scalars, dict_fields

    def advance_periodic(self, snapshot: tuple[dict, dict], n: int) -> None:
        """Apply ``n`` repetitions of the advance since ``snapshot``.

        Every counter ``c`` becomes ``c + n * (c - prior)`` -- exact
        for ints and for the dyadic cycle counters, and equal to what
        ``n`` more identical periods of stepping would accumulate.
        Keys missing from the prior snapshot count as zero (the key
        set only grows within a run).
        """
        prior_scalars, prior_dicts = snapshot
        for name, before in prior_scalars.items():
            now = getattr(self, name)
            setattr(self, name, now + n * (now - before))
        for name, before_dict in prior_dicts.items():
            live = getattr(self, name)
            for key, now in list(live.items()):
                live[key] = now + n * (now - before_dict.get(key, 0))

    # ------------------------------------------------------------------
    # Derived metrics
    # ------------------------------------------------------------------

    @property
    def ipc(self) -> float:
        return self.instructions / self.cycles if self.cycles else 0.0

    def mpki(self, events: float) -> float:
        """Events per kilo-instruction."""
        return 1000.0 * events / self.instructions if self.instructions else 0.0

    @property
    def total_btb_misses(self) -> int:
        return sum(self.btb_misses.values())

    @property
    def btb_miss_mpki(self) -> float:
        return self.mpki(self.total_btb_misses)

    @property
    def btb_miss_l1i_hit_mpki(self) -> float:
        return self.mpki(self.btb_miss_l1i_hit)

    @property
    def btb_miss_l1i_hit_fraction(self) -> float:
        total = self.total_btb_misses
        return self.btb_miss_l1i_hit / total if total else 0.0

    @property
    def l1i_mpki(self) -> float:
        return self.mpki(self.l1i_misses)

    @property
    def cond_accuracy(self) -> float:
        if not self.cond_predictions:
            return 1.0
        return 1.0 - self.cond_mispredicts / self.cond_predictions

    @property
    def total_sbb_insertions(self) -> int:
        return self.sbb_insertions_u + self.sbb_insertions_r

    @property
    def total_sbb_hits(self) -> int:
        return self.sbb_hits_u + self.sbb_hits_r

    @property
    def bogus_insertion_rate(self) -> float:
        """Bogus insertions relative to total SBB insertions (S3.2.2)."""
        total = self.total_sbb_insertions
        return self.sbb_bogus_insertions / total if total else 0.0

    def btb_miss_breakdown(self) -> dict[str, float]:
        """Per-kind fractions of all BTB misses (Figure 6)."""
        total = self.total_btb_misses
        if not total:
            return {kind.value: 0.0 for kind in self.btb_misses}
        return {kind.value: count / total
                for kind, count in self.btb_misses.items()}

    def summary(self) -> dict[str, float]:
        """Flat metric dict used by reports and regression tests."""
        return {
            "instructions": self.instructions,
            "blocks": self.blocks,
            "cycles": self.cycles,
            "ipc": self.ipc,
            "l1i_mpki": self.l1i_mpki,
            "btb_miss_mpki": self.btb_miss_mpki,
            "btb_miss_l1i_hit_mpki": self.btb_miss_l1i_hit_mpki,
            "btb_miss_l1i_hit_fraction": self.btb_miss_l1i_hit_fraction,
            "cond_accuracy": self.cond_accuracy,
            "decode_resteers": self.decode_resteers,
            "exec_resteers": self.exec_resteers,
            "decoder_idle_cycles": self.decoder_idle_cycles,
            "sbb_hits": self.total_sbb_hits,
            "sbb_insertions": self.total_sbb_insertions,
            "bogus_insertion_rate": self.bogus_insertion_rate,
        }
