"""Decoupled FDIP front-end simulator.

Models the generic decoupled front-end of the paper's Figure 4: a Branch
Prediction Unit (BTB + TAGE-lite conditional predictor + ITTAGE-lite
indirect predictor + return address stack) feeding a Fetch Target Queue,
FDIP prefetching FTQ lines into a three-level instruction cache hierarchy,
a fetch/decode pipeline with decode-early and execute-late resteers, and
wrong-path fetch that pollutes the L1-I.  The back-end is abstracted into
a retire-bandwidth model, which is sufficient for the *relative* IPC
measurements the paper reports (its workloads are front-end bound).

The simulator is timeline-algebraic: it replays the correct-path trace one
basic block at a time, maintaining per-stage clocks (IAG, fetch, decode,
retire) and charging resteer bubbles and cache-fill latencies where a
cycle-by-cycle gem5 model would stall.  See DESIGN.md section 5.
"""

from repro.frontend.config import FrontEndConfig, SkiaConfig
from repro.frontend.stats import SimStats
from repro.frontend.btb import BranchTargetBuffer, BTBEntry
from repro.frontend.caches import CacheHierarchy, SetAssociativeCache
from repro.frontend.predictor import ITTageLite, LoopPredictor, TageLite
from repro.frontend.ras import ReturnAddressStack
from repro.frontend.comparators import AirBTBLite, BoomerangLite
from repro.frontend.bpu import BranchPredictionUnit, Prediction
from repro.frontend.engine import FrontEndSimulator, simulate

__all__ = [
    "FrontEndConfig",
    "SkiaConfig",
    "SimStats",
    "BranchTargetBuffer",
    "BTBEntry",
    "CacheHierarchy",
    "SetAssociativeCache",
    "TageLite",
    "ITTageLite",
    "LoopPredictor",
    "ReturnAddressStack",
    "AirBTBLite",
    "BoomerangLite",
    "BranchPredictionUnit",
    "Prediction",
    "FrontEndSimulator",
    "simulate",
]
