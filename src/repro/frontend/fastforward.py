"""Steady-state cycle detection and exact fast-forward replay.

The harness's synthetic traces are often *periodic*: after a preamble,
the column stream repeats exactly every ``period`` records.  The
simulator is deterministic, so once its microarchitectural state at
trace phase ``φ`` repeats -- same structures, same relative clocks --
every subsequent period produces byte-identical counter deltas and a
uniform clock shift.  This module detects that fixed point and replays
the remaining whole periods analytically:

1. **Plan** -- :func:`plan_compiled` / :func:`plan_records` gate on the
   run's artefacts (dense artefacts like event traces need every
   record; see :func:`unsupported_reason`) and on
   :meth:`CompiledTrace.period`; ineligible runs fall back to plain
   stepping with a counted reason (:func:`note_fallback`).
2. **Probe** -- the engine calls :meth:`FastForward.on_probe` between
   records at indices ``r0 + k*quantum`` (``r0`` past both warm-up and
   the preamble; ``quantum`` a common multiple of the period and the
   interval size so every probe lands at the same trace phase *and*
   the same interval offset).  Each probe hashes the behavioural state
   relative to its own clock base (:func:`repro.obs.digests.probe_digest`,
   memoised per structure so quiescent structures hash once).
3. **Skip** -- the first repeated digest at indices ``A < B`` proves
   ``state(B) == state(A)`` shifted by ``Δ = base_B - base_A``.  The
   remaining ``N = (n - B) // (B - A)`` whole strides are applied in
   O(structures): clocks and future-dated timestamps shift by ``N*Δ``,
   every counter ``c`` becomes ``c + N*(c_B - c_A)``, interval rows are
   synthesised by replicating the ``(A, B]`` window deltas, and the
   engine resumes at ``B + N*(B - A)`` for the epilogue.

Exactness notes (why the skip is *byte*-identical, not approximate):

* All clocks are multiples of ``1 / backend_effective_width``, so the
  per-period shift ``Δ`` is an exact dyadic float and ``N*Δ`` equals
  ``Δ`` added ``N`` times.
* Timestamps at or before the probe's clock base are behaviourally one
  class (consumers ``max()`` them against a later *now* or drain them
  unread), so only future-dated values are shifted.
* The resteer-latency histogram's bucket counts and total scale
  (skipped periods repeat the latency multiset of ``(A, B]``); its
  min/max are already fixed points of that multiset and stay put.

Disable with ``REPRO_FASTFORWARD=0``.  Fallbacks are counted process-
wide (the PR 8 pattern) and surfaced through the simulator's
``fastforward_summary`` attribute -- never as metric gauges, which
would break fast-forward on/off snapshot identity.
"""

from __future__ import annotations

import logging
import math
from collections import deque

from repro.obs.digests import StructureDigest, probe_digest
from repro.workloads.compiled import (
    fastforward_enabled,
    period_of_records,
)

logger = logging.getLogger(__name__)

#: Stop probing after this many unmatched digests: a state orbit that
#: has not closed within 64 quanta is treated as non-converging.
MAX_PROBES = 64

# ----------------------------------------------------------------------
# Fallback accounting (process-wide; mirrors repro.frontend.batch but
# deliberately registers no metric gauge -- snapshots must be identical
# with fast-forward on and off).
# ----------------------------------------------------------------------

_fallback_counts: dict[str, int] = {}
_fallback_logged: set[str] = set()


def note_fallback(reason: str) -> None:
    """Count a fast-forward fallback; log each distinct reason once."""
    _fallback_counts[reason] = _fallback_counts.get(reason, 0) + 1
    if reason not in _fallback_logged:
        _fallback_logged.add(reason)
        logger.info("fast-forward disabled: %s", reason)


def fallback_counts() -> dict[str, int]:
    """Snapshot of ``{reason: count}`` accumulated in this process."""
    return dict(_fallback_counts)


def reset_fallbacks() -> None:
    """Clear fallback counts and the once-per-reason log guard."""
    _fallback_counts.clear()
    _fallback_logged.clear()


def unsupported_reason(simulator) -> str | None:
    """Why this run must step every record, or None if eligible.

    Dense artefacts (event trace, timeline, attribution) and the
    divergence bisector's per-window state probe observe individual
    records, so skipping any would change their output; comparator
    baselines keep state the probe digest does not cover.
    """
    if not fastforward_enabled():
        return "disabled by env"
    if simulator.attribution is not None:
        return "attribution sink attached"
    if simulator.trace is not None:
        return "event trace attached"
    if simulator.timeline is not None:
        return "timeline recorder attached"
    if simulator.bpu.comparator is not None:
        return "comparator attached"
    intervals = simulator.intervals
    if intervals is not None and intervals.state_probe is not None:
        return "state probe attached"
    return None


def _declined(simulator, reason: str) -> None:
    note_fallback(reason)
    simulator.fastforward_summary = {"engaged": False, "reason": reason}


def plan_compiled(simulator, compiled, warmup: int) -> "FastForward | None":
    """A :class:`FastForward` for one ``run_compiled``-style run, or None."""
    reason = unsupported_reason(simulator)
    if reason is not None:
        _declined(simulator, reason)
        return None
    detected = compiled.period()
    return _plan(simulator, detected, compiled.n_records, warmup)


def plan_records(simulator, records, warmup: int) -> "FastForward | None":
    """Object-loop counterpart of :func:`plan_compiled`.

    ``records`` must be a materialised sequence; generator streams are
    ineligible (their length is unknown and they cannot be indexed past
    a skip).
    """
    reason = unsupported_reason(simulator)
    if reason is not None:
        _declined(simulator, reason)
        return None
    detected = period_of_records(records)
    return _plan(simulator, detected, len(records), warmup)


def _plan(simulator, detected, n_records: int,
          warmup: int) -> "FastForward | None":
    if detected is None:
        _declined(simulator, "no detected period")
        return None
    period, preamble = detected
    controller = FastForward(simulator, n_records, warmup, period, preamble)
    if not controller.active:
        _declined(simulator, "trace too short for the probe quantum")
        return None
    return controller


class ProbeState:
    """Mutable carrier of one engine's scheduler locals across a probe.

    Attribute names match the batched lane kernel's (``_Lane`` passes
    itself directly); the scalar loops pack their locals into one of
    these, let :meth:`FastForward.on_probe` translate it, and unpack.
    """

    __slots__ = ("iag_free", "fetch_free", "decode_free", "retire_free",
                 "ftq_inflight", "prev_taken", "counted_instructions",
                 "counted_blocks", "next_boundary")

    def __init__(self, iag_free, fetch_free, decode_free, retire_free,
                 ftq_inflight, prev_taken, counted_instructions,
                 counted_blocks, next_boundary):
        self.iag_free = iag_free
        self.fetch_free = fetch_free
        self.decode_free = decode_free
        self.retire_free = retire_free
        self.ftq_inflight = ftq_inflight
        self.prev_taken = prev_taken
        self.counted_instructions = counted_instructions
        self.counted_blocks = counted_blocks
        self.next_boundary = next_boundary


class _Probe:
    """Everything :meth:`FastForward.on_probe` needs to replay a stride."""

    __slots__ = ("index", "base", "counters", "counted", "stats",
                 "hist", "interval_len", "interval_prev")

    def __init__(self, index, base, counters, counted, stats, hist,
                 interval_len, interval_prev):
        self.index = index
        self.base = base
        self.counters = counters
        self.counted = counted
        self.stats = stats
        self.hist = hist
        self.interval_len = interval_len
        self.interval_prev = interval_prev


def _counter_sites(simulator) -> list[tuple[object, str]]:
    """Every plain-int/float counter that must scale across a skip.

    Covers everything a metric snapshot can observe plus the engine's
    internal consistency anchors (cache counters feed stats deltas;
    ``hierarchy.wrong_path_fills`` feeds ``stats.wrong_path_fills``).
    """
    bpu = simulator.bpu
    hierarchy = simulator.hierarchy
    sites = [
        (bpu.btb, "lookups"), (bpu.btb, "hits"),
        (bpu.btb, "false_hits_detected"),
        (bpu.tage, "predictions"), (bpu.tage, "mispredictions"),
        (bpu.ittage, "predictions"), (bpu.ittage, "mispredictions"),
        (bpu.ras, "pushes"), (bpu.ras, "pops"),
        (bpu.ras, "underflows"), (bpu.ras, "overflow_overwrites"),
        (hierarchy, "wrong_path_fills"),
        (hierarchy.l1i, "accesses"), (hierarchy.l1i, "misses"),
        (hierarchy.l2, "accesses"), (hierarchy.l2, "misses"),
        (hierarchy.l3, "accesses"), (hierarchy.l3, "misses"),
    ]
    if bpu.loop is not None:
        sites += [(bpu.loop, "predictions"), (bpu.loop, "overrides")]
    if simulator.skia is not None:
        for half in (simulator.skia.sbb.usbb, simulator.skia.sbb.rsbb):
            sites += [(half, name) for name in (
                "insertions", "evictions_bogus_first", "evictions_lru",
                "lookups", "hits", "retired_marks")]
        sbd = simulator.skia.sbd
        for cache in (sbd._head_memo, sbd._tail_memo, sbd._line_cache):
            sites += [(cache, name) for name in
                      ("hits", "misses", "evictions")]
    return sites


class FastForward:
    """Per-run probe/skip controller shared by all three engines.

    The engine steps records in segments bounded by :attr:`next_probe`
    and calls :meth:`on_probe` between records, passing a *state
    carrier* exposing the scheduler locals by their lane-kernel names
    (``iag_free``/``fetch_free``/``decode_free``/``retire_free``,
    ``ftq_inflight``, ``prev_taken``, ``counted_instructions``,
    ``counted_blocks``, ``next_boundary``).  ``on_probe`` returns the
    record index to resume from -- the same index, or past the skipped
    strides.  At most one skip happens per run; afterwards
    :attr:`active` is False and the engine steps the epilogue plainly.
    """

    def __init__(self, simulator, n_records: int, warmup: int,
                 period: int, preamble: int):
        self.sim = simulator
        self.n_records = n_records
        self.period = period
        self.preamble = preamble
        intervals = simulator.intervals
        interval_size = intervals.interval_size if intervals is not None \
            else 0
        quantum = period if interval_size <= 0 else \
            math.lcm(period, interval_size)
        self.quantum = quantum
        first = max(warmup + 1, preamble, 1)
        self.next_probe = first
        self.active = first + 2 * quantum <= n_records
        self.probes = 0
        self.matched = False
        self.skipped_records = 0
        self.skipped_strides = 0
        self.stride = 0
        self._seen: dict[bytes, _Probe] = {}
        self._digests = StructureDigest()
        self._sites = None

    # ------------------------------------------------------------------

    def on_probe(self, index: int, state) -> int:
        """Hash state between records; skip when a digest repeats."""
        sim = self.sim
        base = state.iag_free
        digest = probe_digest(sim, state, base, self._digests)
        self.probes += 1
        prior = self._seen.get(digest)
        if prior is None:
            self._seen[digest] = self._snapshot(index, base, state)
            self.next_probe = index + self.quantum
            if (self.probes >= MAX_PROBES
                    or self.next_probe + self.quantum > self.n_records):
                # No later probe could still skip a whole stride.
                self.active = False
            return index
        self.active = False
        self.matched = True
        stride = index - prior.index
        n_skips = (self.n_records - index) // stride
        if n_skips <= 0:
            return index
        self._apply_skip(state, prior, base, stride, n_skips)
        self.stride = stride
        self.skipped_strides = n_skips
        self.skipped_records = n_skips * stride
        return index + n_skips * stride

    def finalize(self) -> None:
        """Publish the run's fast-forward outcome on the simulator."""
        reason = None
        if not self.matched:
            reason = "digest never repeated"
            note_fallback(reason)
        self.sim.fastforward_summary = {
            "engaged": True,
            "reason": reason,
            "period": self.period,
            "preamble": self.preamble,
            "quantum": self.quantum,
            "probes": self.probes,
            "stride": self.stride,
            "skipped_records": self.skipped_records,
        }

    # ------------------------------------------------------------------

    def _snapshot(self, index: int, base: float, state) -> _Probe:
        sim = self.sim
        if self._sites is None:
            self._sites = _counter_sites(sim)
        counters = [getattr(obj, name) for obj, name in self._sites]
        hist = sim._resteer_latency
        intervals = sim.intervals
        return _Probe(
            index, base, counters,
            (state.counted_instructions, state.counted_blocks),
            sim.stats.snapshot_state(),
            (list(hist.buckets), hist.count, hist.total),
            len(intervals.rows) if intervals is not None else 0,
            dict(intervals._prev) if intervals is not None
            and intervals._prev is not None else None,
        )

    def _apply_skip(self, state, prior: _Probe, base: float,
                    stride: int, n: int) -> None:
        sim = self.sim
        shift = n * (base - prior.base)

        # Scheduler clocks: digest equality of the base-relative clocks
        # means each advanced exactly (base - prior.base) per stride.
        state.iag_free += shift
        state.fetch_free += shift
        state.decode_free += shift
        state.retire_free += shift
        # Future-dated FTQ completions shift with the clocks; past ones
        # are dead (drained unread or max()-ed against a later now).
        state.ftq_inflight = deque(
            done + shift if done > base else done
            for done in state.ftq_inflight)
        # Cache ready times, same rule.  In-place value updates keep
        # each set's LRU (insertion) order.
        for level in (sim.hierarchy.l1i, sim.hierarchy.l2,
                      sim.hierarchy.l3):
            for way in level._sets:
                for line, ready in way.items():
                    if ready > base:
                        way[line] = ready + shift

        # Counters: c -> c + n * (c_now - c_prior).
        for (obj, name), before in zip(self._sites, prior.counters):
            now = getattr(obj, name)
            setattr(obj, name, now + n * (now - before))

        sim.stats.advance_periodic(prior.stats, n)

        state.counted_instructions += n * (
            state.counted_instructions - prior.counted[0])
        state.counted_blocks += n * (state.counted_blocks - prior.counted[1])

        hist = sim._resteer_latency
        before_buckets, before_count, before_total = prior.hist
        for i, now in enumerate(hist.buckets):
            before = before_buckets[i] if i < len(before_buckets) else 0
            hist.buckets[i] = now + n * (now - before)
        hist.count += n * (hist.count - before_count)
        hist.total += n * (hist.total - before_total)
        # min/max untouched: the skipped strides repeat the latency
        # multiset of (prior, here], which already bounds them.

        intervals = sim.intervals
        if intervals is not None and intervals.interval_size > 0:
            # interval_size == 0 collectors only emit via finish(), whose
            # single window reads the already-scaled stats directly.
            self._synthesize_intervals(intervals, prior, stride, n)
            state.next_boundary += n * stride

    @staticmethod
    def _synthesize_intervals(intervals, prior: _Probe, stride: int,
                              n: int) -> None:
        """Replicate the (prior, here] window deltas across the skip.

        The stride is a multiple of the interval size, so each skipped
        stride contributes exactly the template's windows.  Rows are
        key-completed against the cumulative row at the probe (a key
        that first appears mid-template exists -- as an explicit zero
        delta -- in every later window the oracle would emit).
        """
        rows, ends = intervals.rows, intervals.ends
        template = rows[prior.interval_len:]
        template_ends = ends[prior.interval_len:]
        prev_now = intervals._prev
        keys = list(prev_now)
        for rep in range(1, n + 1):
            offset = rep * stride
            for row, end in zip(template, template_ends):
                rows.append({key: row.get(key, 0) for key in keys})
                ends.append(end + offset)
        before = prior.interval_prev or {}
        intervals._prev = {
            key: now + n * (now - before.get(key, 0))
            for key, now in prev_now.items()}
