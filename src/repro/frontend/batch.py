"""Batched simulation kernel over compiled-trace decode tables.

The per-record object loop (``FrontEndSimulator.run`` /
``run_compiled``) spends most of its time in interpreter dispatch:
attribute loads on the simulator, method calls into the BPU tree, a
``SimStats`` attribute store per counter event.  This module replaces
that loop on the hot path with a **lane kernel**: one fully inlined
replay loop per (workload, config, seed) cell that

* reads records from a shared :class:`~repro.workloads.compiled
  .TraceDecodeTable` (plain Python lists: kinds already objects, takens
  already bools, line arithmetic already done) instead of re-deriving
  fields per record per cell;
* inlines the BTB probe/insert, the L1-I hit path, the BPU decision
  tree, the Skia FTQ-entry gates and the SBB insert walk into one
  function body with locals-bound structures;
* accumulates every ``SimStats`` counter in function locals and flushes
  them once per chunk.

A :class:`BatchedFrontEndSimulator` steps N independent lanes in
**chunked lockstep** over their (typically shared) decode tables: all
lanes advance through records ``[k*C, (k+1)*C)`` before any lane moves
on.  Lanes over the same trace therefore touch the same table rows and
the same process-wide shadow-decode tables (:mod:`repro.core
.decode_tables`) while they are hot.

Bit-exactness contract: a lane performs *exactly* the same structure
operations, in the same order, with the same counter updates as
``run_compiled`` -- final ``SimStats`` and metric snapshots are
bit-identical (enforced over the full Figure-14 grid by
``tests/frontend/test_batch_equivalence.py``).  The object path remains
the oracle; the kernel refuses lanes it cannot replicate exactly
(attached event trace, timeline or attribution sink) via
:func:`batch_supported`, and the harness falls back to the object path
for those cells -- counting and logging each fallback via
:func:`note_fallback` so the ~4x slowdown is never silent.  Plain
Section 7.1 comparator cells (no instrumentation attached) run on the
kernel: the comparator's ``lookup``/``record``/``on_btb_miss`` hooks
are bound locals called at exactly the object path's call sites, so
comparator sweeps keep the fast path.

Enabled by default; ``REPRO_BATCH=0`` disables it everywhere (see
:func:`repro.workloads.compiled.batch_enabled`).
"""

from __future__ import annotations

import logging
from collections import deque

from repro.core.sbb import SBBEntry
from repro.frontend.btb import BTBEntry
from repro.frontend.engine import FrontEndSimulator
from repro.frontend.fastforward import plan_compiled
from repro.frontend.stats import SimStats
from repro.isa.branch import BranchKind
from repro.obs.profiler import PROFILER
from repro.workloads import compiled as _compiled
from repro.workloads.compiled import (  # noqa: F401
    KIND_BY_CODE,
    CompiledTrace,
    batch_enabled,
)

#: Records each lane advances per lockstep round.  Large enough to
#: amortise the per-chunk local bind/flush, small enough that lanes
#: sharing a trace revisit the same table rows while they are cached.
CHUNK_RECORDS = 4096

# Per-kind flags as tuples indexed by the compiled kind *code*: tuple
# indexing by small int skips the enum-hash a kind-keyed dict would pay
# on every record.
_TAKES_TARGET_BY_CODE = tuple(bool(kind.is_direct or kind.is_indirect)
                              for kind in KIND_BY_CODE)
_IS_CALL_BY_CODE = tuple(kind.is_call for kind in KIND_BY_CODE)
_N_KINDS = len(KIND_BY_CODE)

_K_COND = BranchKind.DIRECT_COND
_K_UNCOND = BranchKind.DIRECT_UNCOND
_K_CALL = BranchKind.CALL
_K_RETURN = BranchKind.RETURN


class BatchUnsupported(ValueError):
    """The lane needs a feature only the object loop replicates."""


def _lane_rows(table, simulator):
    """Pre-fused per-record row tuples, cached on the table per geometry.

    The kernel loop unpacks ONE tuple per record instead of indexing
    ~20 parallel columns: zip-fusing the table columns with the
    geometry-dependent derived columns (BTB set/tag fold, L1 set number
    of the branch / first / tail lines, decode cycles, retire delta)
    turns per-record address arithmetic into a single C-level
    ``UNPACK_SEQUENCE``.  Rows depend only on the trace and the
    structure geometry -- grid lanes over one trace share them -- and
    are derived vectorised when numpy is present.
    """
    btb = simulator.bpu.btb
    config = simulator.config
    l1_n_sets = simulator.hierarchy.l1i.n_sets
    decode_width = config.decode_width
    backend_width = config.backend_effective_width
    key = (btb.infinite, btb.n_sets, btb.tag_bits, l1_n_sets,
           decode_width, backend_width)
    rows = table._lane_cols.get(key)
    if rows is not None:
        return rows
    line_size = table.line_size
    n = table.n_records
    np = _compiled._np
    if np is not None:
        word = np.asarray(table.branch_pc, dtype=np.int64) >> 1
        if btb.infinite:
            bidx = btag = [0] * n
        else:
            bidx = (((word ^ (word >> 11) ^ (word >> 23))
                     % btb.n_sets).tolist())
            btag = ((word // btb.n_sets)
                    & ((1 << btb.tag_bits) - 1)).tolist()
        bls = ((np.asarray(table.branch_line, dtype=np.int64)
                // line_size) % l1_n_sets).tolist()
        fls = ((np.asarray(table.first_line, dtype=np.int64)
                // line_size) % l1_n_sets).tolist()
        tail_line = ((np.asarray(table.exit_pc, dtype=np.int64) - 1)
                     & ~(line_size - 1))
        tls = ((tail_line // line_size) % l1_n_sets).tolist()
        tl = tail_line.tolist()
        ni = np.asarray(table.n_instr, dtype=np.int64)
        dcyc = ((ni + (decode_width - 1)) // decode_width).tolist()
        nbw = (ni / backend_width).tolist()
    else:
        if btb.infinite:
            bidx = btag = [0] * n
        else:
            n_sets = btb.n_sets
            tag_mask = (1 << btb.tag_bits) - 1
            bidx = []
            btag = []
            for pc in table.branch_pc:
                word = pc >> 1
                bidx.append((word ^ (word >> 11) ^ (word >> 23)) % n_sets)
                btag.append((word // n_sets) & tag_mask)
        bls = [(line // line_size) % l1_n_sets
               for line in table.branch_line]
        fls = [(line // line_size) % l1_n_sets
               for line in table.first_line]
        mask = ~(line_size - 1)
        tl = [(pc - 1) & mask for pc in table.exit_pc]
        tls = [(line // line_size) % l1_n_sets for line in tl]
        dcyc = [(count + decode_width - 1) // decode_width
                for count in table.n_instr]
        nbw = [count / backend_width for count in table.n_instr]
    rows = list(zip(table.kind, table.kind_code, table.taken,
                    table.branch_pc, table.target, table.fallthrough,
                    table.n_instr, table.branch_line, bls, bidx, btag,
                    table.first_line, fls, table.n_lines,
                    table.entry_offset, table.tail_aligned,
                    table.exit_pc, tl, tls, dcyc, nbw))
    table._lane_cols[key] = rows
    return rows


def batch_unsupported_reason(simulator: FrontEndSimulator) -> str | None:
    """Why this cell cannot run on the batched kernel (None = it can).

    The kernel skips the per-record instrumentation branches outright,
    so any attached event trace, timeline or attribution sink must take
    the object path.  Section 7.1 comparator cells *are* supported: the
    comparator hooks are plain bound calls the kernel inlines at the
    object path's call sites.
    """
    # The attribution sink rides on an event trace, so check it first:
    # its reason is the more specific one.
    if simulator.attribution is not None:
        return "attribution sink attached"
    if simulator.trace is not None:
        return "event trace attached"
    if simulator.timeline is not None:
        return "timeline recorder attached"
    return None


def batch_supported(simulator: FrontEndSimulator) -> bool:
    """Can this simulator's cell run on the batched kernel?"""
    return batch_unsupported_reason(simulator) is None


# ----------------------------------------------------------------------
# Fallback observability: unsupported cells silently cost ~4x, so the
# harness reports every object-path fallback here (a process-wide count
# per reason plus a one-time log line per reason per run).
# ----------------------------------------------------------------------

_log = logging.getLogger("repro.batch")
_fallback_counts: dict[str, int] = {}
_fallback_logged: set[str] = set()


def note_fallback(reason: str) -> None:
    """Record one cell degrading to the object path for ``reason``."""
    _fallback_counts[reason] = _fallback_counts.get(reason, 0) + 1
    if reason not in _fallback_logged:
        _fallback_logged.add(reason)
        _log.info("batched kernel unavailable (%s); affected cells run "
                  "on the ~4x slower object path", reason)


def note_object_fallback(simulator: FrontEndSimulator) -> str:
    """Record that ``simulator``'s cell degraded to the object path.

    Counts the reason process-wide (:func:`fallback_counts`), logs it
    once per run, and registers a ``batch.object_path_fallback`` gauge
    in the cell's own metrics registry so the degradation shows up in
    its metric snapshot.  Returns the reason so callers (the harness)
    can attach it to the cell's run-ledger record.
    """
    reason = batch_unsupported_reason(simulator) or "unsupported cell"
    note_fallback(reason)
    simulator.metrics.scope("batch").gauge("object_path_fallback",
                                           lambda: 1.0)
    return reason


def fallback_counts() -> dict[str, int]:
    """Object-path fallbacks so far, keyed by reason."""
    return dict(_fallback_counts)


def reset_fallbacks() -> None:
    """Clear fallback counts and re-arm the one-time log lines."""
    _fallback_counts.clear()
    _fallback_logged.clear()


class _Lane:
    """One cell's replay state, advanced chunk by chunk."""

    def __init__(self, simulator: FrontEndSimulator, table, warmup: int,
                 ff=None):
        self.sim = simulator
        self.table = table
        self.warmup = warmup
        self.n_records = table.n_records
        self.rows = _lane_rows(table, simulator)

        # Fast-forward controller (repro.frontend.fastforward); the lane
        # passes *itself* as the probe's state carrier -- its attribute
        # names match ProbeState's.  ``_resume`` marks where a skip
        # landed: lockstep chunks before it are already accounted for.
        self.ff = ff
        self._resume = 0

        # Scheduler state (persists across chunks; mirrors the engine).
        self.iag_free = 0.0
        self.fetch_free = 0.0
        self.decode_free = 0.0
        self.retire_free = 0.0
        self.ftq_inflight: deque = deque()
        self.prev_taken = True
        self.counting = False
        self.counted_instructions = 0
        self.counted_blocks = 0
        self.cycles_at_count_start = 0.0
        self.wp_at_count_start = 0
        self.processed = 0

        # Interval telemetry: boundaries are record indices, so the lane
        # splits its chunks there and emits between kernel invocations
        # (the kernel flushes its chunk-local accumulators into
        # ``sim.stats`` at the end of every ``_advance``, so the stats
        # object is exact at each boundary).
        self.intervals = simulator.intervals
        self.next_boundary = 0
        if self.intervals is not None:
            self.intervals.warmup = warmup
            self.next_boundary = self.intervals.interval_size

    def advance(self, start: int, stop: int) -> None:
        """Advance through records [start, stop), probing for skips.

        Chunks at or before a fast-forward skip's landing point are
        already accounted for and no-op; otherwise the segment splits at
        the controller's probe indices.  The kernel flushes every
        chunk-local accumulator at the end of each ``_advance``, so the
        state a probe digests is exact.
        """
        if start < self._resume:
            start = self._resume
            if start >= stop:
                return
        ff = self.ff
        if ff is not None:
            while ff.active and start <= ff.next_probe < stop:
                probe = ff.next_probe
                if probe > start:
                    self._advance_segment(start, probe)
                start = ff.on_probe(probe, self)
                self.processed = start
                self._resume = start
                if start >= stop:
                    return
        self._advance_segment(start, stop)

    def _advance_segment(self, start: int, stop: int) -> None:
        """Advance through records [start, stop).

        Splits the segment at interval-window boundaries (emitting one
        telemetry row per crossing) and at the warmup boundary, so both
        transitions happen between kernel invocations -- the kernel then
        treats ``counting`` as segment-constant and the per-window rows
        cut at exactly the record indices the object engines use.
        """
        intervals = self.intervals
        if intervals is None:
            self._advance_warm(start, stop)
            return
        size = intervals.interval_size
        cursor = start
        while cursor < stop:
            boundary = self.next_boundary
            if boundary <= stop:
                self._advance_warm(cursor, boundary)
                intervals.boundary(
                    boundary, self.sim.stats, self.counted_instructions,
                    self.counted_blocks,
                    self.retire_free - self.cycles_at_count_start
                    if self.counting else 0.0)
                self.next_boundary = boundary + size
                cursor = boundary
            else:
                self._advance_warm(cursor, stop)
                cursor = stop

    def _advance_warm(self, start: int, stop: int) -> None:
        """One segment, split at the warmup boundary."""
        if not self.counting:
            warmup = self.warmup
            if start < warmup < stop:
                self._advance(start, warmup)
                self._advance(warmup, stop)
                return
        self._advance(start, stop)

    # The kernel: one fully inlined replay of records [start, stop).
    # Every structure operation and counter update below replicates the
    # object path (engine.run_compiled + bpu.process_fields +
    # skia.on_ftq_entry) operation-for-operation; only the dispatch
    # around them is flattened.
    def _advance(self, start: int, stop: int) -> None:
        sim = self.sim
        config = sim.config
        stats_obj = sim.stats
        hierarchy = sim.hierarchy
        bpu = sim.bpu
        btb = bpu.btb
        skia = sim.skia

        line_size = config.line_size
        line_mask = ~(line_size - 1)
        ftq_size = config.ftq_size
        iag_to_fetch = config.iag_to_fetch_delay
        fetch_to_decode = config.fetch_to_decode_delay
        repair = config.decode_repair_cycles
        btb_extra = config.btb_access_latency() - 1
        exec_resolve = config.exec_resolve_delay
        pollution_max = config.pollution_max_lines

        if not self.counting and start >= self.warmup:
            self.counting = True
            self.cycles_at_count_start = self.retire_free
            self.wp_at_count_start = hierarchy.wrong_path_fills

        # Pre-fused per-record rows (see _lane_rows).
        rows = self.rows[start:stop]

        # Structures, locals-bound.
        l1i = hierarchy.l1i
        l1_sets = l1i._sets
        l1_n_sets = l1i.n_sets
        fill_miss = hierarchy.fill_after_l1_miss
        btb_infinite = btb.infinite
        btb_full = btb._full
        btb_sets = btb._sets
        btb_assoc = btb.assoc
        tage_update = bpu.tage.update
        loop = bpu.loop
        loop_on = loop is not None
        loop_predict = loop.predict if loop_on else None
        loop_update = loop.update if loop_on else None
        ittage_update = bpu.ittage.update
        ras_pop = bpu.ras.pop
        ras_push = bpu.ras.push
        train_side = bpu._train_side_predictors
        comp = bpu.comparator
        comp_on = comp is not None
        comp_lookup = comp.lookup if comp_on else None
        comp_record = comp.record if comp_on else None
        comp_on_btb_miss = comp.on_btb_miss if comp_on else None
        skia_on = skia is not None
        heads_on = skia_on and skia.config.decode_heads
        tails_on = skia_on and skia.config.decode_tails
        sbb_lookup = skia.sbb.lookup if skia_on else None
        sbb_mark_retired = skia.sbb.mark_retired if skia_on else None
        oracle = skia.boundary_oracle if skia_on else None
        if skia_on:
            # Decode-memo internals: the hit path (raw dict get + LRU
            # re-insert + counter bump) is inlined below; misses fall
            # back to the decoder's _head_missing/_tail_missing with the
            # exact counter sequence of the decode_head/decode_tail
            # wrappers.
            sbd = skia.sbd
            head_memo = sbd._head_memo
            hm_data = head_memo._data
            head_missing = sbd._head_missing
            tail_memo = sbd._tail_memo
            tm_data = tail_memo._data
            tail_missing = sbd._tail_missing
            # SBB structure internals for the inlined insert walk.
            usbb = skia.sbb.usbb
            u_sets = usbb._sets
            u_n_sets = usbb.n_sets
            u_assoc = usbb.assoc
            u_tag_mask = (1 << usbb.tag_bits) - 1
            u_evict = usbb._evict
            rsbb = skia.sbb.rsbb
            r_sets = rsbb._sets
            r_n_sets = rsbb.n_sets
            r_assoc = rsbb.assoc
            r_tag_mask = (1 << rsbb.tag_bits) - 1
            r_evict = rsbb._evict
        sbb_entry_cls = SBBEntry
        takes_target = _TAKES_TARGET_BY_CODE
        is_call = _IS_CALL_BY_CODE
        k_cond = _K_COND
        k_uncond = _K_UNCOND
        k_call = _K_CALL
        k_return = _K_RETURN
        btb_entry_cls = BTBEntry

        branches_d = stats_obj.branches
        btb_misses_d = stats_obj.btb_misses
        resteer_causes_d = stats_obj.resteer_causes
        hist_record = sim._resteer_latency.record

        # Scheduler state, locals-bound.
        iag_free = self.iag_free
        fetch_free = self.fetch_free
        decode_free = self.decode_free
        retire_free = self.retire_free
        ftq_inflight = self.ftq_inflight
        ftq_popleft = ftq_inflight.popleft
        ftq_append = ftq_inflight.append
        prev_taken = self.prev_taken
        counting = self.counting
        counted_instructions = self.counted_instructions
        counted_blocks = self.counted_blocks

        # Chunk-local stat accumulators, flushed once at the end.
        s_btb_lookups = 0
        s_taken_branches = 0
        s_btb_miss_l1i_hit = 0
        s_sbb_lookups = 0
        s_sbb_misses = 0
        s_comparator_hits = 0
        s_btb_false_hits = 0
        s_cond_predictions = 0
        s_cond_mispredicts = 0
        s_ras_predictions = 0
        s_ras_underflows = 0
        s_ras_mispredicts = 0
        s_indirect_predictions = 0
        s_indirect_mispredicts = 0
        s_sbb_hits_u = 0
        s_sbb_hits_r = 0
        s_sbb_wrong_target = 0
        s_sbb_retired_marks = 0
        s_sbd_head_decodes = 0
        s_sbd_head_discarded = 0
        s_sbd_tail_decodes = 0
        s_sbb_insertions_u = 0
        s_sbb_insertions_r = 0
        s_sbb_bogus_insertions = 0
        s_l1i_accesses = 0
        s_l1i_misses = 0
        s_l2_misses = 0
        s_l3_misses = 0
        s_fetch_stall = 0.0
        s_decoder_idle = 0.0
        s_decode_resteers = 0
        s_exec_resteers = 0
        c_btb_lookups = 0
        c_btb_hits = 0
        c_l1_accesses = 0
        c_l1_misses = 0
        c_u_insertions = 0
        c_r_insertions = 0
        cnt_branches = [0] * _N_KINDS
        cnt_btb_misses = [0] * _N_KINDS

        for (kind, kcode, taken, branch_pc, target, fallthrough, n_instr,
             branch_line, bl_set, bidx, btag, first_line, fl_set, n_lines,
             entry_offset, tail_aligned, exit_pc, tail_line, tl_set,
             decode_cycles, retire_delta) in rows:
            # ----- IAG: allocate the FTQ entry ------------------------
            iag_t = iag_free
            while ftq_inflight and ftq_inflight[0] <= iag_t:
                ftq_popleft()
            if len(ftq_inflight) >= ftq_size:
                iag_t = ftq_popleft()

            # ----- BPU (bpu.process_fields, inlined) ------------------
            branch_line_present = branch_line in l1_sets[bl_set]

            c_btb_lookups += 1
            if btb_infinite:
                entry = btb_full.get(branch_pc)
                if entry is not None:
                    c_btb_hits += 1
            else:
                bway = btb_sets[bidx]
                entry = bway.get(btag)
                if entry is not None:
                    del bway[btag]
                    bway[btag] = entry
                    c_btb_hits += 1

            centry = None
            sbb_result = None
            if entry is None:
                if comp_on:
                    centry = comp_lookup(branch_pc, branch_line_present)
                if centry is None and skia_on:
                    sbb_result = sbb_lookup(branch_pc)

            if counting:
                s_btb_lookups += 1
                cnt_branches[kcode] += 1
                if taken:
                    s_taken_branches += 1
                if entry is None:
                    cnt_btb_misses[kcode] += 1
                    if branch_line_present:
                        s_btb_miss_l1i_hit += 1
                    if centry is not None:
                        s_comparator_hits += 1
                    elif skia_on:
                        s_sbb_lookups += 1
                        if sbb_result is None:
                            s_sbb_misses += 1

            resteer = None
            cause = None
            wrong_pc = None
            used_sbb = False
            sbb_which = None

            # A comparator hit rides the BTB-hit decision tree with the
            # comparator's entry (the object path routes both through
            # bpu._process_btb_hit); only the counting block above and
            # the structure counters distinguish the two.
            dentry = entry if entry is not None else centry
            if dentry is not None:
                if dentry.kind is not kind:
                    if counting:
                        s_btb_false_hits += 1
                    train_side(branch_pc, kind, taken, target,
                               stats_obj if counting else None)
                    if taken:
                        resteer = "decode"
                        cause = "btb_alias"
                        wrong_pc = fallthrough
                elif kind is k_cond:
                    predicted = tage_update(branch_pc, taken)
                    if loop_on:
                        lp = loop_predict(branch_pc)
                        loop_update(branch_pc, taken)
                        if lp is not None:
                            predicted = lp
                    if counting:
                        s_cond_predictions += 1
                        if predicted != taken:
                            s_cond_mispredicts += 1
                    if predicted != taken:
                        resteer = "exec"
                        cause = "cond_mispredict"
                        wrong_pc = target if not taken else fallthrough
                elif kind is k_uncond or kind is k_call:
                    if dentry.target != target:
                        resteer = "decode"
                        cause = "btb_stale_target"
                        wrong_pc = fallthrough
                elif kind is k_return:
                    predicted = ras_pop()
                    correct = predicted == target
                    if counting:
                        s_ras_predictions += 1
                        if predicted is None:
                            s_ras_underflows += 1
                        if not correct:
                            s_ras_mispredicts += 1
                    if not correct:
                        resteer = "exec"
                        cause = "ras_mispredict"
                        wrong_pc = fallthrough
                else:
                    predicted = ittage_update(branch_pc, target)
                    correct = predicted == target
                    if counting:
                        s_indirect_predictions += 1
                        if not correct:
                            s_indirect_mispredicts += 1
                    if not correct:
                        resteer = "exec"
                        cause = "indirect_mispredict"
                        wrong_pc = fallthrough
            elif sbb_result is not None:
                sbb_which, sentry = sbb_result
                if sbb_which == "u":
                    if counting:
                        s_sbb_hits_u += 1
                    if ((kind is k_uncond or kind is k_call)
                            and sentry.payload == target):
                        used_sbb = True
                    else:
                        if counting:
                            s_sbb_wrong_target += 1
                        train_side(branch_pc, kind, taken, target,
                                   stats_obj if counting else None)
                        resteer = "decode"
                        cause = "sbb_wrong_target"
                        wrong_pc = fallthrough
                else:
                    if counting:
                        s_sbb_hits_r += 1
                    if kind is k_return:
                        predicted = ras_pop()
                        correct = predicted == target
                        if counting:
                            s_ras_predictions += 1
                            if predicted is None:
                                s_ras_underflows += 1
                            if not correct:
                                s_ras_mispredicts += 1
                        if correct:
                            used_sbb = True
                        else:
                            resteer = "exec"
                            cause = "ras_mispredict"
                            wrong_pc = fallthrough
                    else:
                        if counting:
                            s_sbb_wrong_target += 1
                        train_side(branch_pc, kind, taken, target,
                                   stats_obj if counting else None)
                        resteer = "decode"
                        cause = "sbb_wrong_target"
                        wrong_pc = fallthrough
            else:
                if comp_on:
                    comp_on_btb_miss(first_line + entry_offset)
                if kind is k_cond:
                    predicted = tage_update(branch_pc, taken)
                    if loop_on:
                        lp = loop_predict(branch_pc)
                        loop_update(branch_pc, taken)
                        if lp is not None:
                            predicted = lp
                    if counting:
                        s_cond_predictions += 1
                        if predicted != taken:
                            s_cond_mispredicts += 1
                    if not taken:
                        if predicted:
                            resteer = "exec"
                            cause = "cond_mispredict"
                            wrong_pc = target
                    elif predicted:
                        resteer = "decode"
                        cause = "undetected_branch"
                        wrong_pc = fallthrough
                    else:
                        resteer = "exec"
                        cause = "cond_mispredict"
                        wrong_pc = fallthrough
                elif kind is k_uncond or kind is k_call:
                    resteer = "decode"
                    cause = "undetected_branch"
                    wrong_pc = fallthrough
                elif kind is k_return:
                    predicted = ras_pop()
                    correct = predicted == target
                    if counting:
                        s_ras_predictions += 1
                        if predicted is None:
                            s_ras_underflows += 1
                        if not correct:
                            s_ras_mispredicts += 1
                    if correct:
                        resteer = "decode"
                        cause = "undetected_branch"
                        wrong_pc = fallthrough
                    else:
                        resteer = "exec"
                        cause = "ras_mispredict"
                        wrong_pc = fallthrough
                else:
                    predicted = ittage_update(branch_pc, target)
                    correct = predicted == target
                    if counting:
                        s_indirect_predictions += 1
                        if not correct:
                            s_indirect_mispredicts += 1
                    if correct:
                        resteer = "decode"
                        cause = "undetected_branch"
                        wrong_pc = fallthrough
                    else:
                        resteer = "exec"
                        cause = "indirect_mispredict"
                        wrong_pc = fallthrough

            # Commit updates (bpu._commit_updates, inlined).
            btb_target = target if takes_target[kcode] else None
            if btb_infinite:
                ientry = btb_full.get(branch_pc)
                if ientry is not None:
                    ientry.kind = kind
                    ientry.target = btb_target
                else:
                    btb_full[branch_pc] = btb_entry_cls(
                        tag=branch_pc, kind=kind, target=btb_target)
            else:
                ientry = bway.pop(btag, None)
                if ientry is not None:
                    ientry.kind = kind
                    ientry.target = btb_target
                else:
                    if len(bway) >= btb_assoc:
                        bway.pop(next(iter(bway)))
                    ientry = btb_entry_cls(tag=btag, kind=kind,
                                           target=btb_target)
                bway[btag] = ientry
            if is_call[kcode]:
                ras_push(fallthrough)
            if comp_on:
                comp_record(branch_pc, kind, btb_target)
            if used_sbb:
                if sbb_mark_retired(branch_pc, sbb_which) and counting:
                    s_sbb_retired_marks += 1

            # ----- Prefetch the entry's lines -------------------------
            lines_ready = iag_t
            line = first_line
            lset = fl_set
            count = n_lines
            while count:
                way = l1_sets[lset]
                c_l1_accesses += 1
                ready = way.get(line)
                if ready is not None:
                    del way[line]
                    way[line] = ready
                    if ready > lines_ready:
                        lines_ready = ready
                    if counting:
                        s_l1i_accesses += 1
                else:
                    c_l1_misses += 1
                    fill_time, level = fill_miss(line, iag_t)
                    if fill_time > lines_ready:
                        lines_ready = fill_time
                    if counting:
                        s_l1i_accesses += 1
                        s_l1i_misses += 1
                        if level >= 3:
                            s_l2_misses += 1
                        if level >= 4:
                            s_l3_misses += 1
                count -= 1
                if count:
                    line += line_size
                    lset = (line // line_size) % l1_n_sets

            # ----- Skia (skia.on_ftq_entry, inlined) ------------------
            # Structurally-empty decodes (line-aligned entry/exit) are
            # skipped outright: the object path's decoder early-returns
            # for them with no cache or counter activity.
            if skia_on:
                if (heads_on and prev_taken and entry_offset != 0
                        and first_line in l1_sets[fl_set]):
                    hkey = (first_line, entry_offset)
                    hres = hm_data.get(hkey)
                    if hres is not None:
                        head_memo.hits += 1
                        del hm_data[hkey]
                        hm_data[hkey] = hres
                    else:
                        head_memo.misses += 1
                        hres = head_missing(hkey, first_line,
                                            entry_offset)
                        head_memo[hkey] = hres
                    if counting:
                        s_sbd_head_decodes += 1
                        if hres.discarded:
                            s_sbd_head_discarded += 1
                    for sb in hres.branches:
                        sb_pc = sb.pc
                        word = sb_pc >> 1
                        if sb.kind is k_return:
                            if r_n_sets:
                                stag = (word // r_n_sets) & r_tag_mask
                                way = r_sets[(word ^ (word >> 11)
                                              ^ (word >> 23)) % r_n_sets]
                                c_r_insertions += 1
                                existing = way.get(stag)
                                if existing is not None:
                                    del way[stag]
                                    existing.payload = sb_pc % line_size
                                    way[stag] = existing
                                else:
                                    if len(way) >= r_assoc:
                                        r_evict(way)
                                    way[stag] = sbb_entry_cls(
                                        tag=stag,
                                        payload=sb_pc % line_size)
                            if counting:
                                s_sbb_insertions_r += 1
                        else:
                            sb_target = sb.target
                            if sb_target is None:  # pragma: no cover
                                continue
                            if u_n_sets:
                                stag = (word // u_n_sets) & u_tag_mask
                                way = u_sets[(word ^ (word >> 11)
                                              ^ (word >> 23)) % u_n_sets]
                                c_u_insertions += 1
                                existing = way.get(stag)
                                if existing is not None:
                                    del way[stag]
                                    existing.payload = sb_target
                                    way[stag] = existing
                                else:
                                    if len(way) >= u_assoc:
                                        u_evict(way)
                                    way[stag] = sbb_entry_cls(
                                        tag=stag, payload=sb_target)
                            if counting:
                                s_sbb_insertions_u += 1
                        if (counting and oracle is not None
                                and not oracle(sb_pc)):
                            s_sbb_bogus_insertions += 1
                if tails_on and taken and not tail_aligned:
                    if tail_line in l1_sets[tl_set]:
                        tkey = (tail_line, exit_pc - tail_line)
                        tres = tm_data.get(tkey)
                        if tres is not None:
                            tail_memo.hits += 1
                            del tm_data[tkey]
                            tm_data[tkey] = tres
                        else:
                            tail_memo.misses += 1
                            tres = tail_missing(tkey, exit_pc,
                                                tail_line + line_size)
                            tail_memo[tkey] = tres
                        if counting:
                            s_sbd_tail_decodes += 1
                        for sb in tres.branches:
                            sb_pc = sb.pc
                            word = sb_pc >> 1
                            if sb.kind is k_return:
                                if r_n_sets:
                                    stag = (word // r_n_sets) & r_tag_mask
                                    way = r_sets[(word ^ (word >> 11)
                                                  ^ (word >> 23))
                                                 % r_n_sets]
                                    c_r_insertions += 1
                                    existing = way.get(stag)
                                    if existing is not None:
                                        del way[stag]
                                        existing.payload = (sb_pc
                                                            % line_size)
                                        way[stag] = existing
                                    else:
                                        if len(way) >= r_assoc:
                                            r_evict(way)
                                        way[stag] = sbb_entry_cls(
                                            tag=stag,
                                            payload=sb_pc % line_size)
                                if counting:
                                    s_sbb_insertions_r += 1
                            else:
                                sb_target = sb.target
                                if sb_target is None:  # pragma: no cover
                                    continue
                                if u_n_sets:
                                    stag = (word // u_n_sets) & u_tag_mask
                                    way = u_sets[(word ^ (word >> 11)
                                                  ^ (word >> 23))
                                                 % u_n_sets]
                                    c_u_insertions += 1
                                    existing = way.get(stag)
                                    if existing is not None:
                                        del way[stag]
                                        existing.payload = sb_target
                                        way[stag] = existing
                                    else:
                                        if len(way) >= u_assoc:
                                            u_evict(way)
                                        way[stag] = sbb_entry_cls(
                                            tag=stag, payload=sb_target)
                                if counting:
                                    s_sbb_insertions_u += 1
                            if (counting and oracle is not None
                                    and not oracle(sb_pc)):
                                s_sbb_bogus_insertions += 1

            # ----- Fetch ----------------------------------------------
            fetch_start = fetch_free
            other = iag_t + iag_to_fetch
            if other > fetch_start:
                fetch_start = other
            if lines_ready > fetch_start:
                if counting:
                    s_fetch_stall += lines_ready - fetch_start
                fetch_start = lines_ready
            fetch_done = fetch_start + n_lines
            fetch_free = fetch_done
            ftq_append(fetch_done)

            # ----- Decode ---------------------------------------------
            input_ready = fetch_done + fetch_to_decode
            decode_start = decode_free if decode_free > input_ready \
                else input_ready
            if counting:
                s_decoder_idle += decode_start - decode_free
            decode_done = decode_start + decode_cycles
            decode_free = decode_done

            # ----- Retire ---------------------------------------------
            retire_start = decode_done + 1
            if retire_free > retire_start:
                retire_start = retire_free
            retire_free = retire_start + retire_delta

            # ----- Resteer / next-entry scheduling --------------------
            if resteer is None:
                iag_free = iag_t + 1
            else:
                if resteer == "decode":
                    detect = decode_done
                    if counting:
                        s_decode_resteers += 1
                else:
                    detect = decode_done + exec_resolve
                    if counting:
                        s_exec_resteers += 1
                restart = detect + repair + btb_extra
                if counting:
                    ckey = cause or "unattributed"
                    resteer_causes_d[ckey] = (
                        resteer_causes_d.get(ckey, 0) + 1)
                    hist_record(restart - iag_t)
                if wrong_pc is not None:
                    wrong_line = wrong_pc & line_mask
                    depth = min(pollution_max, ftq_size,
                                int(restart - iag_t))
                    for step in range(1, depth + 1):
                        pline = wrong_line + step * line_size
                        way = l1_sets[(pline // line_size) % l1_n_sets]
                        c_l1_accesses += 1
                        ready = way.get(pline)
                        if ready is not None:
                            del way[pline]
                            way[pline] = ready
                        else:
                            c_l1_misses += 1
                            fill_miss(pline, iag_t + step, True)
                    if counting:
                        stats_obj.wrong_path_fills = (
                            hierarchy.wrong_path_fills
                            - self.wp_at_count_start)
                iag_free = restart
                ftq_inflight.clear()
                if restart > fetch_free:
                    fetch_free = restart

            if counting:
                counted_instructions += n_instr
                counted_blocks += 1
            prev_taken = taken

        # ----- Flush chunk-local accumulators -------------------------
        stats_obj.btb_lookups += s_btb_lookups
        stats_obj.taken_branches += s_taken_branches
        stats_obj.btb_miss_l1i_hit += s_btb_miss_l1i_hit
        stats_obj.sbb_lookups += s_sbb_lookups
        stats_obj.sbb_misses += s_sbb_misses
        stats_obj.comparator_hits += s_comparator_hits
        stats_obj.btb_false_hits += s_btb_false_hits
        stats_obj.cond_predictions += s_cond_predictions
        stats_obj.cond_mispredicts += s_cond_mispredicts
        stats_obj.ras_predictions += s_ras_predictions
        stats_obj.ras_underflows += s_ras_underflows
        stats_obj.ras_mispredicts += s_ras_mispredicts
        stats_obj.indirect_predictions += s_indirect_predictions
        stats_obj.indirect_mispredicts += s_indirect_mispredicts
        stats_obj.sbb_hits_u += s_sbb_hits_u
        stats_obj.sbb_hits_r += s_sbb_hits_r
        stats_obj.sbb_wrong_target += s_sbb_wrong_target
        stats_obj.sbb_retired_marks += s_sbb_retired_marks
        stats_obj.sbd_head_decodes += s_sbd_head_decodes
        stats_obj.sbd_head_discarded += s_sbd_head_discarded
        stats_obj.sbd_tail_decodes += s_sbd_tail_decodes
        stats_obj.sbb_insertions_u += s_sbb_insertions_u
        stats_obj.sbb_insertions_r += s_sbb_insertions_r
        stats_obj.sbb_bogus_insertions += s_sbb_bogus_insertions
        stats_obj.l1i_accesses += s_l1i_accesses
        stats_obj.l1i_misses += s_l1i_misses
        stats_obj.l2_misses += s_l2_misses
        stats_obj.l3_misses += s_l3_misses
        stats_obj.fetch_stall_cycles += s_fetch_stall
        stats_obj.decoder_idle_cycles += s_decoder_idle
        stats_obj.decode_resteers += s_decode_resteers
        stats_obj.exec_resteers += s_exec_resteers
        kind_by_code = KIND_BY_CODE
        for code in range(_N_KINDS):
            count = cnt_branches[code]
            if count:
                branches_d[kind_by_code[code]] += count
            count = cnt_btb_misses[code]
            if count:
                btb_misses_d[kind_by_code[code]] += count
        btb.lookups += c_btb_lookups
        btb.hits += c_btb_hits
        l1i.accesses += c_l1_accesses
        l1i.misses += c_l1_misses
        if skia_on:
            usbb.insertions += c_u_insertions
            rsbb.insertions += c_r_insertions

        self.iag_free = iag_free
        self.fetch_free = fetch_free
        self.decode_free = decode_free
        self.retire_free = retire_free
        self.prev_taken = prev_taken
        self.counting = counting
        self.counted_instructions = counted_instructions
        self.counted_blocks = counted_blocks
        self.processed += stop - start

    def finish(self) -> SimStats:
        """Final stats assembly; mirrors the engine's loop epilogue."""
        sim = self.sim
        stats = sim.stats
        if self.ff is not None:
            self.ff.finalize()
        if self.intervals is not None:
            self.intervals.finish(
                self.processed, stats, self.counted_instructions,
                self.counted_blocks,
                self.retire_free - self.cycles_at_count_start
                if self.counting else 0.0)
        sim._records_seen += self.processed
        stats.instructions = self.counted_instructions
        stats.blocks = self.counted_blocks
        stats.cycles = max(self.retire_free - self.cycles_at_count_start,
                           1e-9)
        return stats


class BatchedFrontEndSimulator:
    """Advance many independent cells in chunked lockstep.

    Add one lane per (workload, config, seed) cell with
    :meth:`add_lane`, then :meth:`run` steps every lane through records
    ``[0, C)``, ``[C, 2C)``, ... so lanes sharing a trace reuse its
    decode table and the process-wide shadow-decode tables while hot.
    Each lane's final ``SimStats`` is bit-identical to what
    ``FrontEndSimulator.run_compiled`` would have produced.
    """

    def __init__(self, chunk_records: int = CHUNK_RECORDS):
        if chunk_records <= 0:
            raise ValueError("chunk_records must be positive")
        self.chunk_records = chunk_records
        self._lanes: list[_Lane] = []

    def __len__(self) -> int:
        return len(self._lanes)

    def add_lane(self, simulator: FrontEndSimulator,
                 compiled: CompiledTrace, warmup: int = 0) -> None:
        """Register one cell; raises :class:`BatchUnsupported` when the
        cell needs per-record instrumentation only the object loop has."""
        reason = batch_unsupported_reason(simulator)
        if reason is not None:
            raise BatchUnsupported(
                f"{reason}; run the cell on the object path")
        table = compiled.decode_table(simulator.config.line_size)
        ff = plan_compiled(simulator, compiled, warmup)
        self._lanes.append(_Lane(simulator, table, warmup, ff=ff))

    def run(self) -> list[SimStats]:
        """Run every lane to completion; stats in ``add_lane`` order."""
        if PROFILER.enabled:
            with PROFILER.section("engine.run_batched"):
                return self._run()
        return self._run()

    def _run(self) -> list[SimStats]:
        lanes = self._lanes
        if lanes:
            longest = max(lane.n_records for lane in lanes)
            chunk = self.chunk_records
            start = 0
            while start < longest:
                stop = start + chunk
                for lane in lanes:
                    n = lane.n_records
                    if start < n:
                        lane.advance(start, stop if stop < n else n)
                start = stop
        return [lane.finish() for lane in lanes]


def run_compiled_batched(simulator: FrontEndSimulator,
                         compiled: CompiledTrace,
                         warmup: int = 0) -> SimStats:
    """Single-cell convenience: the kernel still wins without lane
    sharing (inlined loop, decode table, local counters)."""
    batch = BatchedFrontEndSimulator()
    batch.add_lane(simulator, compiled, warmup=warmup)
    return batch.run()[0]
