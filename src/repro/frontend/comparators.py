"""Hardware baselines from the paper's related work (Section 7.1).

Skia's quantitative comparisons in the paper are against BTB capacity
(Figure 3); the related-work section argues *qualitatively* against
hardware alternatives.  The alternatives are implemented here so the
argument can be measured on the same substrate:

* :class:`AirBTBLite` (Confluence, MICRO'15) -- tracks the branches of
  each cache line in metadata coupled to the L1-I: when a line's
  branches commit they are recorded; the record is usable only while the
  line is L1-I resident ("its design ensures that its contents are
  present in the L1-I").  Restores *previously executed* branches on
  refetched lines, but never discovers a branch that has not executed --
  exactly the cold-branch blind spot the paper calls out.

* :class:`BoomerangLite` (Boomerang, HPCA'17) -- on a BTB miss,
  predecodes the missing line into a BTB prefetch buffer.  On a
  variable-length ISA the predecoder can only walk forward from a known
  boundary (the FTQ entry point), so it sees the executed path but not
  the shadow bytes -- the paper's Section 7.1 critique, reproduced
  structurally.

* :class:`MicroBTBLite` (Micro-BTB, arXiv 2106.04205) -- a large
  last-level BTB behind a small move-in buffer.  Committed branches fill
  the last level grouped by cache line; a demand probe that misses the
  move-in buffer but finds its line in the last level migrates the whole
  line's entry group at once (a footprint-style batched fill), so one
  miss warms every branch on the line.  Like AirBTB it only ever holds
  branches that have executed, so shadow branches stay invisible to it.

* :class:`FDIPDepthLite` ("FDIP Revisited", arXiv 2006.13547) -- the
  Boomerang predecoder generalised with a prefetch *depth*: on a BTB
  miss the walk continues across ``depth`` cache lines rather than
  stopping at the first line boundary, trading predecode bandwidth for
  timeliness.  ``depth=1`` degenerates to :class:`BoomerangLite`; the
  harness sweeps depth to expose the timeliness/pollution trade-off.

All comparators implement the :class:`Comparator` protocol, are probed
in parallel with the BTB (like the SBB) and can be enabled via
``FrontEndConfig.comparator``; builders live in :data:`COMPARATORS`.
"""

from __future__ import annotations

from typing import Protocol, runtime_checkable

from repro.frontend.btb import BTBEntry
from repro.isa.branch import BranchKind
from repro.isa.decoder import decode_at

#: BTB entry cost in bits (Figure 12) used for size-budget accounting.
ENTRY_BITS = 78


@runtime_checkable
class Comparator(Protocol):
    """The contract every Section 7.1 baseline implements.

    ``lookup`` takes ``line_resident`` as a *required* positional so a
    call site can never silently drop the residency signal (AirBTB needs
    it; the others must still accept it).  ``record`` and
    ``on_btb_miss`` are always present -- no-ops where a design has no
    commit-time or miss-time behaviour -- so the BPU and the batched
    kernel call them unconditionally instead of duck-typing.
    """

    lookups: int
    hits: int

    def lookup(self, pc: int, line_resident: bool) -> BTBEntry | None:
        """Probe on a BTB miss; called in parallel with the BTB."""
        ...

    def record(self, pc: int, kind: BranchKind, target: int | None) -> None:
        """Commit-time hook: a branch retired at ``pc``."""
        ...

    def on_btb_miss(self, entry_pc: int) -> None:
        """Miss-time hook: the BTB had nothing for this fetch block."""
        ...

    @property
    def size_bytes(self) -> float:
        """Hardware budget of the structure, for ISO-budget tables."""
        ...

    def register_metrics(self, scope) -> None:
        """Expose counters as lazily-sampled gauges (repro.obs)."""
        ...


class ComparatorBase:
    """Shared counters plus no-op hooks for the optional protocol parts."""

    def __init__(self) -> None:
        self.lookups = 0
        self.hits = 0

    def record(self, pc: int, kind: BranchKind, target: int | None) -> None:
        pass

    def on_btb_miss(self, entry_pc: int) -> None:
        pass

    def register_metrics(self, scope) -> None:
        scope.gauge("lookups", lambda: self.lookups)
        scope.gauge("hits", lambda: self.hits)


class AirBTBLite(ComparatorBase):
    """Per-line branch metadata valid only while the line is L1-resident."""

    def __init__(self, line_size: int = 64, max_lines: int = 2048,
                 entries_per_line: int = 3):
        super().__init__()
        self.line_size = line_size
        self.max_lines = max_lines
        self.entries_per_line = entries_per_line
        # line address -> {pc: BTBEntry}, insertion-ordered for both
        # per-line capacity and whole-structure LRU.
        self._lines: dict[int, dict[int, BTBEntry]] = {}
        self.records = 0

    def _line_of(self, pc: int) -> int:
        return pc & ~(self.line_size - 1)

    def record(self, pc: int, kind: BranchKind, target: int | None) -> None:
        """Called at commit: remember this branch on its line."""
        line = self._line_of(pc)
        entries = self._lines.get(line)
        if entries is None:
            if len(self._lines) >= self.max_lines:
                self._lines.pop(next(iter(self._lines)))
            entries = {}
            self._lines[line] = entries
        else:
            # Touch for LRU.
            del self._lines[line]
            self._lines[line] = entries
        if pc in entries:
            del entries[pc]
        elif len(entries) >= self.entries_per_line:
            entries.pop(next(iter(entries)))
        entries[pc] = BTBEntry(tag=pc, kind=kind, target=target)
        self.records += 1

    def lookup(self, pc: int, line_resident: bool) -> BTBEntry | None:
        """Probe; valid only when the caller confirms L1-I residency."""
        self.lookups += 1
        if not line_resident:
            return None
        entries = self._lines.get(self._line_of(pc))
        if entries is None:
            return None
        entry = entries.get(pc)
        if entry is not None:
            self.hits += 1
        return entry

    @property
    def size_bytes(self) -> float:
        """78 bits per entry, as BTB entries (upper bound)."""
        return self.max_lines * self.entries_per_line * ENTRY_BITS / 8

    def register_metrics(self, scope) -> None:
        super().register_metrics(scope)
        scope.gauge("records", lambda: self.records)
        scope.gauge("lines", lambda: len(self._lines))


class BoomerangLite(ComparatorBase):
    """BTB prefetch buffer filled by miss-triggered line predecode."""

    def __init__(self, image: bytes, base_address: int,
                 line_size: int = 64, buffer_entries: int = 64):
        super().__init__()
        self.image = image
        self.base_address = base_address
        self.line_size = line_size
        self.buffer_entries = buffer_entries
        self._buffer: dict[int, BTBEntry] = {}  # insertion-ordered FIFO
        self.predecodes = 0

    def on_btb_miss(self, entry_pc: int) -> None:
        """Predecode forward from the FTQ entry point to the line end.

        Variable-length reality (the paper's Section 7.1 point): the
        only known boundary on the missing line is the entry point, so
        the walk covers the executed path, not the shadow bytes before
        the entry or after a taken exit.
        """
        self.predecodes += 1
        line_end = (entry_pc & ~(self.line_size - 1)) + self.line_size
        offset = entry_pc - self.base_address
        limit = line_end - self.base_address
        while offset < limit:
            decoded = decode_at(self.image, offset,
                                pc=self.base_address + offset, limit=limit)
            if decoded is None:
                break
            if decoded.kind.is_branch:
                self._insert(decoded.pc, decoded.kind, decoded.target)
            offset += decoded.length

    def _insert(self, pc: int, kind: BranchKind,
                target: int | None) -> None:
        if pc in self._buffer:
            del self._buffer[pc]
        elif len(self._buffer) >= self.buffer_entries:
            self._buffer.pop(next(iter(self._buffer)))
        self._buffer[pc] = BTBEntry(tag=pc, kind=kind, target=target)

    def lookup(self, pc: int, line_resident: bool) -> BTBEntry | None:
        """Probe the prefetch buffer (``line_resident`` is ignored; the
        buffer is its own storage, unlike AirBTB's L1-coupled metadata)."""
        self.lookups += 1
        entry = self._buffer.pop(pc, None)
        if entry is not None:
            # Boomerang migrates prefetch-buffer entries to the BTB on a
            # demand hit; the caller inserts it at commit anyway, so just
            # consume it here.
            self.hits += 1
        return entry

    @property
    def size_bytes(self) -> float:
        return self.buffer_entries * ENTRY_BITS / 8

    def register_metrics(self, scope) -> None:
        super().register_metrics(scope)
        scope.gauge("predecodes", lambda: self.predecodes)
        scope.gauge("buffered", lambda: len(self._buffer))


class MicroBTBLite(ComparatorBase):
    """Last-level BTB with footprint-style line-batched move-in fills.

    Committed branches land in a large last level grouped by cache line
    (whole-structure line LRU).  Demand probes see only the small
    move-in buffer; a probe whose line is absent there but present in
    the last level migrates the *entire* line group into the buffer --
    the Micro-BTB observation that branch footprints are line-clustered,
    so one fill warms every branch on the line, not just the missing pc.
    The migration is inclusive (the last level keeps its copy), keeping
    replacement deterministic.
    """

    def __init__(self, line_size: int = 64, max_lines: int = 8192,
                 entries_per_line: int = 3, fill_lines: int = 64):
        super().__init__()
        self.line_size = line_size
        self.max_lines = max_lines
        self.entries_per_line = entries_per_line
        self.fill_lines = fill_lines
        # Last level: line address -> {pc: BTBEntry}, line-LRU ordered.
        self._lines: dict[int, dict[int, BTBEntry]] = {}
        # Move-in buffer: same shape, capacity ``fill_lines`` lines.
        self._fill: dict[int, dict[int, BTBEntry]] = {}
        self.records = 0
        self.ll_hits = 0
        self.line_fills = 0

    def _line_of(self, pc: int) -> int:
        return pc & ~(self.line_size - 1)

    def record(self, pc: int, kind: BranchKind, target: int | None) -> None:
        """Called at commit: file this branch under its line's group."""
        line = self._line_of(pc)
        entries = self._lines.get(line)
        if entries is None:
            if len(self._lines) >= self.max_lines:
                evicted = next(iter(self._lines))
                self._lines.pop(evicted)
                # The move-in buffer is inclusive of the last level;
                # dropping the backing group invalidates the copy too.
                self._fill.pop(evicted, None)
            entries = {}
            self._lines[line] = entries
        else:
            del self._lines[line]  # touch for line LRU
            self._lines[line] = entries
        if pc in entries:
            del entries[pc]
        elif len(entries) >= self.entries_per_line:
            entries.pop(next(iter(entries)))
        entries[pc] = BTBEntry(tag=pc, kind=kind, target=target)
        # Keep an already-migrated line coherent with the last level.
        if line in self._fill:
            self._fill[line] = dict(entries)
        self.records += 1

    def lookup(self, pc: int, line_resident: bool) -> BTBEntry | None:
        """Probe the move-in buffer; on a line miss, batch-fill from the
        last level (``line_resident`` is ignored; the structure is its
        own storage)."""
        self.lookups += 1
        line = self._line_of(pc)
        group = self._fill.get(line)
        if group is None:
            backing = self._lines.get(line)
            if backing is None:
                return None
            # Footprint-style fill: migrate the whole line group.
            self.ll_hits += 1
            self.line_fills += 1
            if len(self._fill) >= self.fill_lines:
                self._fill.pop(next(iter(self._fill)))
            group = dict(backing)
            self._fill[line] = group
        else:
            del self._fill[line]  # touch for line LRU
            self._fill[line] = group
        entry = group.get(pc)
        if entry is not None:
            self.hits += 1
        return entry

    @property
    def size_bytes(self) -> float:
        """Last level plus move-in buffer, as 78-bit BTB entries."""
        return ((self.max_lines + self.fill_lines)
                * self.entries_per_line * ENTRY_BITS / 8)

    def register_metrics(self, scope) -> None:
        super().register_metrics(scope)
        scope.gauge("records", lambda: self.records)
        scope.gauge("ll_hits", lambda: self.ll_hits)
        scope.gauge("line_fills", lambda: self.line_fills)
        scope.gauge("lines", lambda: len(self._lines))
        scope.gauge("buffered_lines", lambda: len(self._fill))


class FDIPDepthLite(BoomerangLite):
    """Boomerang's predecoder with an FDIP-revisited prefetch depth.

    On a BTB miss the walk runs from the FTQ entry point across
    ``depth`` cache lines instead of stopping at the first boundary:
    deeper walks predecode branches further ahead of the fetch stream
    (better timeliness) at the cost of more predecode work and buffer
    pressure from lines the stream may never reach.  ``depth=1`` is
    exactly :class:`BoomerangLite`.
    """

    def __init__(self, image: bytes, base_address: int,
                 line_size: int = 64, buffer_entries: int = 64,
                 depth: int = 2):
        if depth < 1:
            raise ValueError(f"fdip depth must be >= 1, got {depth}")
        super().__init__(image, base_address,
                         line_size=line_size, buffer_entries=buffer_entries)
        self.depth = depth

    def on_btb_miss(self, entry_pc: int) -> None:
        """Predecode forward across ``depth`` lines from the entry point."""
        self.predecodes += 1
        walk_end = ((entry_pc & ~(self.line_size - 1))
                    + self.depth * self.line_size)
        offset = entry_pc - self.base_address
        limit = min(walk_end - self.base_address, len(self.image))
        while offset < limit:
            decoded = decode_at(self.image, offset,
                                pc=self.base_address + offset, limit=limit)
            if decoded is None:
                break
            if decoded.kind.is_branch:
                self._insert(decoded.pc, decoded.kind, decoded.target)
            offset += decoded.length

    def register_metrics(self, scope) -> None:
        super().register_metrics(scope)
        scope.gauge("depth", lambda: self.depth)


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------

def _build_airbtb(program, config) -> AirBTBLite:
    return AirBTBLite(line_size=config.line_size,
                      max_lines=config.airbtb_max_lines,
                      entries_per_line=config.airbtb_entries_per_line)


def _build_boomerang(program, config) -> BoomerangLite:
    return BoomerangLite(program.image, program.base_address,
                         line_size=config.line_size,
                         buffer_entries=config.boomerang_buffer_entries)


def _build_microbtb(program, config) -> MicroBTBLite:
    return MicroBTBLite(line_size=config.line_size,
                        max_lines=config.microbtb_max_lines,
                        entries_per_line=config.microbtb_entries_per_line,
                        fill_lines=config.microbtb_fill_lines)


def _build_fdip(program, config) -> FDIPDepthLite:
    return FDIPDepthLite(program.image, program.base_address,
                         line_size=config.line_size,
                         buffer_entries=config.fdip_buffer_entries,
                         depth=config.fdip_depth)


#: name -> builder(program, config); the single source of truth for
#: ``FrontEndConfig.comparator`` values.  Adding a design here makes it
#: available to the engine, the CLI and the comparator-zoo grid.
COMPARATORS = {
    "airbtb": _build_airbtb,
    "boomerang": _build_boomerang,
    "microbtb": _build_microbtb,
    "fdip": _build_fdip,
}

#: Valid ``FrontEndConfig.comparator`` names (sorted, for messages).
COMPARATOR_NAMES = tuple(sorted(COMPARATORS))


def build_comparator(name: str, program, config) -> Comparator:
    """Instantiate a registered comparator for ``program``/``config``."""
    try:
        builder = COMPARATORS[name]
    except KeyError:
        raise ValueError(
            f"unknown comparator {name!r}; known: {COMPARATOR_NAMES}"
        ) from None
    return builder(program, config)


class _NullProgram:
    """Stand-in program for size accounting; no design sizes by image."""

    image = b""
    base_address = 0


def comparator_size_bytes(name: str, config) -> float:
    """Hardware budget of comparator ``name`` under ``config``.

    Sizes depend only on the config knobs, so a workload program is not
    needed -- the zoo table uses this for its ISO-budget column.
    """
    return build_comparator(name, _NullProgram(), config).size_bytes
