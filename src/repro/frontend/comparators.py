"""Hardware baselines from the paper's related work (Section 7.1).

Skia's quantitative comparisons in the paper are against BTB capacity
(Figure 3); the related-work section argues *qualitatively* against two
hardware alternatives.  Both are implemented here so the argument can be
measured on the same substrate:

* :class:`AirBTBLite` (Confluence, MICRO'15) -- tracks the branches of
  each cache line in metadata coupled to the L1-I: when a line's
  branches commit they are recorded; the record is usable only while the
  line is L1-I resident ("its design ensures that its contents are
  present in the L1-I").  Restores *previously executed* branches on
  refetched lines, but never discovers a branch that has not executed --
  exactly the cold-branch blind spot the paper calls out.

* :class:`BoomerangLite` (Boomerang, HPCA'17) -- on a BTB miss,
  predecodes the missing line into a BTB prefetch buffer.  On a
  variable-length ISA the predecoder can only walk forward from a known
  boundary (the FTQ entry point), so it sees the executed path but not
  the shadow bytes -- the paper's Section 7.1 critique, reproduced
  structurally.

Both are probed in parallel with the BTB, like the SBB, and can be
enabled via ``FrontEndConfig.comparator``.
"""

from __future__ import annotations

from repro.frontend.btb import BTBEntry
from repro.isa.branch import BranchKind
from repro.isa.decoder import decode_at


class AirBTBLite:
    """Per-line branch metadata valid only while the line is L1-resident."""

    def __init__(self, line_size: int = 64, max_lines: int = 2048,
                 entries_per_line: int = 3):
        self.line_size = line_size
        self.max_lines = max_lines
        self.entries_per_line = entries_per_line
        # line address -> {pc: BTBEntry}, insertion-ordered for both
        # per-line capacity and whole-structure LRU.
        self._lines: dict[int, dict[int, BTBEntry]] = {}
        self.records = 0
        self.hits = 0

    def _line_of(self, pc: int) -> int:
        return pc & ~(self.line_size - 1)

    def record(self, pc: int, kind: BranchKind, target: int | None) -> None:
        """Called at commit: remember this branch on its line."""
        line = self._line_of(pc)
        entries = self._lines.get(line)
        if entries is None:
            if len(self._lines) >= self.max_lines:
                self._lines.pop(next(iter(self._lines)))
            entries = {}
            self._lines[line] = entries
        else:
            # Touch for LRU.
            del self._lines[line]
            self._lines[line] = entries
        if pc in entries:
            del entries[pc]
        elif len(entries) >= self.entries_per_line:
            entries.pop(next(iter(entries)))
        entries[pc] = BTBEntry(tag=pc, kind=kind, target=target)
        self.records += 1

    def lookup(self, pc: int, line_resident: bool) -> BTBEntry | None:
        """Probe; valid only when the caller confirms L1-I residency."""
        if not line_resident:
            return None
        entries = self._lines.get(self._line_of(pc))
        if entries is None:
            return None
        entry = entries.get(pc)
        if entry is not None:
            self.hits += 1
        return entry

    @property
    def size_bytes(self) -> float:
        """78 bits per entry, as BTB entries (upper bound)."""
        return self.max_lines * self.entries_per_line * 78 / 8

    def register_metrics(self, scope) -> None:
        """Expose counters as lazily-sampled gauges (repro.obs)."""
        scope.gauge("records", lambda: self.records)
        scope.gauge("hits", lambda: self.hits)
        scope.gauge("lines", lambda: len(self._lines))


class BoomerangLite:
    """BTB prefetch buffer filled by miss-triggered line predecode."""

    def __init__(self, image: bytes, base_address: int,
                 line_size: int = 64, buffer_entries: int = 64):
        self.image = image
        self.base_address = base_address
        self.line_size = line_size
        self.buffer_entries = buffer_entries
        self._buffer: dict[int, BTBEntry] = {}  # insertion-ordered FIFO
        self.predecodes = 0
        self.hits = 0

    def on_btb_miss(self, entry_pc: int) -> None:
        """Predecode forward from the FTQ entry point to the line end.

        Variable-length reality (the paper's Section 7.1 point): the
        only known boundary on the missing line is the entry point, so
        the walk covers the executed path, not the shadow bytes before
        the entry or after a taken exit.
        """
        self.predecodes += 1
        line_end = (entry_pc & ~(self.line_size - 1)) + self.line_size
        offset = entry_pc - self.base_address
        limit = line_end - self.base_address
        while offset < limit:
            decoded = decode_at(self.image, offset,
                                pc=self.base_address + offset, limit=limit)
            if decoded is None:
                break
            if decoded.kind.is_branch:
                self._insert(decoded.pc, decoded.kind, decoded.target)
            offset += decoded.length

    def _insert(self, pc: int, kind: BranchKind,
                target: int | None) -> None:
        if pc in self._buffer:
            del self._buffer[pc]
        elif len(self._buffer) >= self.buffer_entries:
            self._buffer.pop(next(iter(self._buffer)))
        self._buffer[pc] = BTBEntry(tag=pc, kind=kind, target=target)

    def lookup(self, pc: int, line_resident: bool = True) -> BTBEntry | None:
        """Probe the prefetch buffer (``line_resident`` is ignored; the
        buffer is its own storage, unlike AirBTB's L1-coupled metadata)."""
        entry = self._buffer.pop(pc, None)
        if entry is not None:
            # Boomerang migrates prefetch-buffer entries to the BTB on a
            # demand hit; the caller inserts it at commit anyway, so just
            # consume it here.
            self.hits += 1
        return entry

    @property
    def size_bytes(self) -> float:
        return self.buffer_entries * 78 / 8

    def register_metrics(self, scope) -> None:
        """Expose counters as lazily-sampled gauges (repro.obs)."""
        scope.gauge("predecodes", lambda: self.predecodes)
        scope.gauge("hits", lambda: self.hits)
        scope.gauge("buffered", lambda: len(self._buffer))
