"""Instruction cache hierarchy (L1-I / L2 / L3 / memory).

Line-granular, set-associative, true-LRU.  The L1-I tracks per-line
*ready times* so FDIP prefetches issued ahead of fetch genuinely hide
latency: a prefetch started at cycle T for a line with a 14-cycle L2 hit
is ready at T+14, and a demand fetch arriving later than that stalls zero
cycles.  Wrong-path fills are tagged so pollution is measurable.

Only instruction lines flow through this hierarchy (the simulated
workloads exercise the front-end; data traffic is out of scope, as it is
for the paper's front-end study -- see DESIGN.md substitutions).
"""

from __future__ import annotations

from repro.frontend.config import FrontEndConfig


class SetAssociativeCache:
    """One cache level; stores line addresses with LRU replacement."""

    def __init__(self, size_bytes: int, assoc: int, line_size: int,
                 name: str = "cache"):
        if size_bytes % (assoc * line_size) != 0:
            raise ValueError(
                f"{name}: size {size_bytes} not divisible by "
                f"assoc*line ({assoc}x{line_size})")
        self.name = name
        self.line_size = line_size
        self.assoc = assoc
        self.n_sets = size_bytes // (assoc * line_size)
        # Per set: insertion-ordered dict {line_addr: ready_time}.
        self._sets: list[dict[int, float]] = [dict() for _ in range(self.n_sets)]
        self.accesses = 0
        self.misses = 0

    def _set_for(self, line_addr: int) -> dict[int, float]:
        return self._sets[(line_addr // self.line_size) % self.n_sets]

    def probe(self, line_addr: int) -> bool:
        """Presence check without stats or LRU update."""
        return line_addr in self._set_for(line_addr)

    def lookup(self, line_addr: int) -> float | None:
        """Access: returns the line's ready time on hit (LRU updated)."""
        self.accesses += 1
        way = self._set_for(line_addr)
        ready = way.get(line_addr)
        if ready is None:
            self.misses += 1
            return None
        del way[line_addr]
        way[line_addr] = ready
        return ready

    def fill(self, line_addr: int, ready_time: float) -> int | None:
        """Insert a line; returns the evicted line address, if any."""
        way = self._set_for(line_addr)
        evicted = None
        if line_addr in way:
            # Refill of an in-flight/resident line keeps the earlier
            # ready time (the first fill wins the race).
            ready_time = min(ready_time, way[line_addr])
            del way[line_addr]
        elif len(way) >= self.assoc:
            evicted = next(iter(way))
            del way[evicted]
        way[line_addr] = ready_time
        return evicted

    def occupancy(self) -> int:
        return sum(len(way) for way in self._sets)

    def flush(self) -> None:
        for way in self._sets:
            way.clear()


class CacheHierarchy:
    """L1-I backed by L2, L3 and memory.

    ``access`` is the single entry point: given a line and the cycle the
    request starts, it returns ``(l1_hit, ready_time, fill_level)`` and
    performs all fills.  ``fill_level`` is 1 on an L1 hit, else the level
    that served the miss (2, 3, or 4 for memory).
    """

    def __init__(self, config: FrontEndConfig):
        line = config.line_size
        self.l1i = SetAssociativeCache(config.l1i_size, config.l1i_assoc,
                                       line, name="L1-I")
        self.l2 = SetAssociativeCache(config.l2_size, config.l2_assoc,
                                      line, name="L2")
        self.l3 = SetAssociativeCache(config.l3_size, config.l3_assoc,
                                      line, name="L3")
        self.l2_latency = config.l2_latency
        self.l3_latency = config.l3_latency
        self.memory_latency = config.memory_latency
        self.line_size = config.line_size
        self.wrong_path_fills = 0

    def access(self, line_addr: int, now: float,
               wrong_path: bool = False) -> tuple[bool, float, int]:
        """Probe the L1-I; on miss, fill from the first level that has
        the line.  Returns (l1_hit, ready_time, serviced_level)."""
        ready = self.l1i.lookup(line_addr)
        if ready is not None:
            return True, max(ready, now), 1
        fill_time, level = self.fill_after_l1_miss(line_addr, now, wrong_path)
        return False, fill_time, level

    def fill_after_l1_miss(self, line_addr: int, now: float,
                           wrong_path: bool = False) -> tuple[float, int]:
        """The miss half of :meth:`access`: walk L2/L3/memory and fill.

        Split out so the batched kernel can inline the L1 probe (with
        locally-accumulated counters) and only pay a call on the miss
        path.  The caller has already performed -- and counted -- the L1
        lookup.  Returns ``(fill_time, serviced_level)``.
        """
        l2_ready = self.l2.lookup(line_addr)
        if l2_ready is not None:
            fill_time = now + self.l2_latency
            level = 2
        else:
            l3_ready = self.l3.lookup(line_addr)
            if l3_ready is not None:
                fill_time = now + self.l3_latency
                level = 3
            else:
                fill_time = now + self.memory_latency
                level = 4
                self.l3.fill(line_addr, fill_time)
            self.l2.fill(line_addr, fill_time)
        self.l1i.fill(line_addr, fill_time)
        if wrong_path:
            self.wrong_path_fills += 1
        return fill_time, level

    def line_present(self, pc: int) -> bool:
        """Is the line containing ``pc`` resident in the L1-I?"""
        return self.l1i.probe(pc & ~(self.line_size - 1))

    def lines_spanning(self, start_pc: int, end_pc: int) -> list[int]:
        """Line addresses covering the byte range [start_pc, end_pc)."""
        mask = ~(self.line_size - 1)
        first = start_pc & mask
        last = max(start_pc, end_pc - 1) & mask
        return list(range(first, last + 1, self.line_size))
