"""The front-end timing simulator.

Replays a correct-path trace through the decoupled front-end, maintaining
per-stage clocks:

* **IAG** emits one FTQ entry (basic block) per cycle, backpressured by
  FTQ occupancy; each entry immediately issues prefetches for its lines.
* **Fetch** consumes FTQ entries in order, one cycle per line, stalling
  until the lines' fills complete -- so FDIP runahead (IAG cycles ahead of
  fetch) genuinely hides miss latency.
* **Decode** consumes fetched blocks at ``decode_width``; the gap between
  a block arriving and the previous block finishing is the decoder idle
  time of Figure 18.
* **Retire** drains at an effective back-end width, giving an IPC ceiling
  (the workloads are front-end bound, matching the paper).

Mispredictions restart the IAG after a repair delay whose anchor depends
on where the wrong path is detected (decode vs execute, Figure 7), flush
the FTQ, and stream wrong-path prefetches into the L1-I (pollution).

Skia hooks in at two points: the SBB is probed by the BPU in parallel
with the BTB, and the SBD runs when an FTQ entry's prefetch completes.
"""

from __future__ import annotations

from collections import deque

from repro.core.skia import Skia
from repro.frontend.bpu import BranchPredictionUnit
from repro.frontend.caches import CacheHierarchy
from repro.frontend.config import FrontEndConfig
from repro.frontend.fastforward import (
    ProbeState,
    note_fallback,
    plan_compiled,
    plan_records,
)
from repro.frontend.stats import SimStats
from repro.obs import (
    EventTrace,
    IntervalCollector,
    MetricsRegistry,
    TimelineRecorder,
    snapshot_from_stats,
)
from repro.workloads.compiled import fastforward_enabled
from repro.workloads.program import Program
from repro.workloads.trace import BlockRecord


class FrontEndSimulator:
    """One simulation instance: structures + timeline state."""

    def __init__(self, program: Program, config: FrontEndConfig,
                 seed: int = 0):
        self.program = program
        self.config = config
        self.hierarchy = CacheHierarchy(config)
        self.skia: Skia | None = None
        if config.skia.enabled:
            self.skia = Skia(
                image=program.image, base_address=program.base_address,
                config=config.skia, line_size=config.line_size,
                boundary_oracle=program.is_instruction_start)
        comparator = self._build_comparator(program, config)
        self.bpu = BranchPredictionUnit(config, skia=self.skia, seed=seed,
                                        comparator=comparator)
        self.stats = SimStats()
        self.metrics = MetricsRegistry()
        self.trace: EventTrace | None = None
        self.timeline: TimelineRecorder | None = None
        self.attribution = None
        self.intervals: IntervalCollector | None = None
        #: Outcome of the last run's fast-forward planning (see
        #: repro.frontend.fastforward); read by the harness for ledgers.
        self.fastforward_summary: dict | None = None
        self._records_seen = 0
        self._register_metrics()
        if config.record_timeline:
            self.attach_timeline(TimelineRecorder())
        if config.interval_size > 0:
            self.intervals = IntervalCollector(config.interval_size)

    def _register_metrics(self) -> None:
        """Give every hardware structure a scope in the registry."""
        self.bpu.btb.register_metrics(self.metrics.scope("btb"))
        self.bpu.ras.register_metrics(self.metrics.scope("ras"))
        if self.skia is not None:
            self.skia.register_metrics(self.metrics)
        if self.bpu.comparator is not None:
            self.bpu.comparator.register_metrics(
                self.metrics.scope("comparator"))
        engine_scope = self.metrics.scope("engine")
        engine_scope.gauge("records", lambda: self._records_seen)
        self._resteer_latency = engine_scope.histogram("resteer_latency")

    def attach_trace(self, trace: EventTrace) -> None:
        """Enable structured event tracing for subsequent ``run`` calls."""
        self.trace = trace
        self.bpu.trace = trace
        if self.skia is not None:
            self.skia.trace = trace
        # Surface the ring's accounting in metric snapshots: before this,
        # truncation was only visible in JSONL dump headers.  Gauges are
        # sampled at snapshot time only, so tracing cost is unchanged.
        trace_scope = self.metrics.scope("trace")
        trace_scope.gauge("emitted", lambda: trace.emitted)
        trace_scope.gauge("retained", lambda: len(trace))
        trace_scope.gauge("dropped_events", lambda: trace.dropped)

    def attach_timeline(self, timeline: TimelineRecorder) -> None:
        """Enable pipeline timeline recording for subsequent ``run`` calls."""
        self.timeline = timeline
        if self.skia is not None:
            self.skia.timeline = timeline

    def attach_attribution(self, aggregator=None):
        """Enable per-branch/per-line attribution for subsequent runs.

        Registers an :class:`repro.obs.attribution.AttributionAggregator`
        as a *sink* on the event trace (creating a trace if none is
        attached); sinks observe every emission regardless of the ring's
        capacity, so live attribution never drops events.  ``run`` hands
        the aggregator its warm-up boundary, making the rollup sums
        exactly the post-warm-up ``SimStats`` counters (the
        ``attribution_*_conservation`` invariants).  Returns the
        aggregator.
        """
        if aggregator is None:
            from repro.obs.attribution import AttributionAggregator
            aggregator = AttributionAggregator.for_simulation(
                self.program, self.config)
        if self.trace is None:
            self.attach_trace(EventTrace())
        self.trace.add_sink(aggregator.observe)
        self.attribution = aggregator
        return aggregator

    def attach_intervals(self, collector: IntervalCollector
                         ) -> IntervalCollector:
        """Replace/enable the interval collector for subsequent runs.

        Normally the collector comes from ``config.interval_size``; the
        divergence bisector attaches its own (same window, plus a
        ``state_probe``) to sample structure-occupancy digests at the
        window boundaries.
        """
        self.intervals = collector
        return collector

    def metrics_snapshot(self) -> dict[str, float]:
        """One flat dict: structure gauges + post-warm-up ``sim.*``
        counters + ``config.*`` gates for the invariant checks."""
        snapshot = self.metrics.snapshot()
        snapshot.update(snapshot_from_stats(
            self.stats, skia_enabled=self.skia is not None,
            comparator=self.config.comparator))
        if self.intervals is not None:
            snapshot.update(self.intervals.snapshot())
        return snapshot

    @staticmethod
    def _build_comparator(program: Program, config: FrontEndConfig):
        """Instantiate the optional Section 7.1 baseline mechanism."""
        if config.comparator is None:
            return None
        from repro.frontend.comparators import build_comparator
        return build_comparator(config.comparator, program, config)

    # ------------------------------------------------------------------

    def run(self, records: list[BlockRecord] | None = None,
            warmup: int = 0,
            record_iter=None) -> SimStats:
        """Replay ``records`` (or ``record_iter``); the first ``warmup``
        records train structures without being counted."""
        if records is None and record_iter is None:
            raise ValueError("provide records or record_iter")
        stream = records if records is not None else record_iter
        if self.attribution is not None:
            # The aggregator applies the same warm-up gate as SimStats.
            self.attribution.warmup = warmup

        config = self.config
        hierarchy = self.hierarchy
        bpu = self.bpu
        skia = self.skia
        stats = self.stats
        line_size = config.line_size
        line_mask = ~(line_size - 1)

        ftq_size = config.ftq_size
        decode_width = config.decode_width
        iag_to_fetch = config.iag_to_fetch_delay
        fetch_to_decode = config.fetch_to_decode_delay
        repair = config.decode_repair_cycles
        btb_extra_latency = config.btb_access_latency() - 1
        exec_resolve = config.exec_resolve_delay
        backend_width = config.backend_effective_width
        pollution_max = config.pollution_max_lines

        trace = self.trace
        timeline = self.timeline
        resteer_latency = self._resteer_latency
        records_seen = self._records_seen

        intervals = self.intervals
        interval_size = 0
        next_boundary = 0
        if intervals is not None:
            intervals.warmup = warmup
            interval_size = intervals.interval_size
            next_boundary = interval_size

        iag_free = 0.0
        fetch_free = 0.0
        decode_free = 0.0
        retire_free = 0.0
        ftq_inflight: deque[float] = deque()  # fetch_done per in-flight entry

        prev_taken = True  # the first block is "entered" at the entry point
        counting = False
        counted_instructions = 0
        counted_blocks = 0
        cycles_at_count_start = 0.0
        wrong_path_fills_at_count_start = 0

        if records is not None:
            ff = plan_records(self, records, warmup)
        else:
            ff = None
            if fastforward_enabled():
                note_fallback("generator input")
                self.fastforward_summary = {
                    "engaged": False, "reason": "generator input"}

        n_total = len(records) if records is not None else 0
        ff_segment = 0
        while True:
            if ff is not None and ff.active and ff.next_probe < n_total:
                ff_stop = ff.next_probe
                source = ((i, records[i])
                          for i in range(ff_segment, ff_stop))
            else:
                ff_stop = -1
                source = (enumerate(stream) if ff_segment == 0 else
                          ((i, records[i])
                           for i in range(ff_segment, n_total)))
            for index, record in source:
                if not counting and index >= warmup:
                    counting = True
                    cycles_at_count_start = retire_free
                    wrong_path_fills_at_count_start = hierarchy.wrong_path_fills
                stats_arg = stats if counting else None

                # ----- IAG: allocate the FTQ entry ------------------------
                iag_t = iag_free
                while ftq_inflight and ftq_inflight[0] <= iag_t:
                    ftq_inflight.popleft()
                if len(ftq_inflight) >= ftq_size:
                    iag_t = ftq_inflight.popleft()

                records_seen += 1
                if trace is not None:
                    trace.record_index = index

                branch_line_present = hierarchy.line_present(record.branch_pc)
                prediction = bpu.process(record, branch_line_present, stats_arg)

                # ----- Prefetch the entry's lines -------------------------
                block_end = record.branch_pc + record.branch_len
                first_line = record.block_start & line_mask
                last_line = (block_end - 1) & line_mask
                n_lines = (last_line - first_line) // line_size + 1
                lines_ready = iag_t
                line = first_line
                while line <= last_line:
                    hit, ready, level = hierarchy.access(line, iag_t)
                    if ready > lines_ready:
                        lines_ready = ready
                    if counting:
                        stats.l1i_accesses += 1
                        if not hit:
                            stats.l1i_misses += 1
                            if level >= 3:
                                stats.l2_misses += 1
                            if level >= 4:
                                stats.l3_misses += 1
                    line += line_size

                # ----- Skia: shadow-decode this entry's lines --------------
                if skia is not None:
                    if timeline is not None:
                        # SBD runs when the entry's prefetch completes; give
                        # its span emitter that timestamp.
                        timeline.now = lines_ready
                    exit_pc = block_end if record.taken else None
                    skia.on_ftq_entry(
                        entry_pc=record.block_start,
                        entered_by_taken_branch=prev_taken,
                        exit_pc=exit_pc,
                        line_present=hierarchy.line_present,
                        stats=stats_arg)

                # ----- Fetch ------------------------------------------------
                fetch_start = max(fetch_free, iag_t + iag_to_fetch)
                fetch_stall = 0.0
                if lines_ready > fetch_start:
                    fetch_stall = lines_ready - fetch_start
                    if counting:
                        stats.fetch_stall_cycles += fetch_stall
                    fetch_start = lines_ready
                fetch_done = fetch_start + n_lines
                fetch_free = fetch_done
                ftq_inflight.append(fetch_done)

                # ----- Decode ----------------------------------------------
                input_ready = fetch_done + fetch_to_decode
                decode_start = max(decode_free, input_ready)
                decode_idle = decode_start - decode_free
                if counting:
                    stats.decoder_idle_cycles += decode_idle
                decode_done = decode_start + (
                    (record.n_instr + decode_width - 1) // decode_width)
                decode_free = decode_done

                # ----- Retire ----------------------------------------------
                retire_start = max(retire_free, decode_done + 1)
                retire_free = retire_start + record.n_instr / backend_width

                # ----- Timeline: one span per stage, instants for BPU events
                if timeline is not None:
                    name = f"0x{record.block_start:x}"
                    timeline.span("iag", name, iag_t, 1.0, index=index)
                    if not prediction.btb_hit:
                        timeline.instant("iag", "btb_miss", iag_t,
                                         pc=record.branch_pc)
                    if prediction.sbb_hit is not None:
                        timeline.instant(
                            "iag", f"sbb_hit:{prediction.sbb_hit}", iag_t,
                            pc=record.branch_pc, used=prediction.used_sbb)
                    timeline.span("fetch", name, fetch_start,
                                  fetch_done - fetch_start, lines=n_lines,
                                  stall=fetch_stall)
                    timeline.span("decode", name, decode_start,
                                  decode_done - decode_start,
                                  instructions=record.n_instr, idle=decode_idle)
                    timeline.span("retire", name, retire_start,
                                  retire_free - retire_start)

                # ----- Resteer / next-entry scheduling ---------------------
                if prediction.resteer is None:
                    iag_free = iag_t + 1
                else:
                    # Every resteering prediction carries exactly one cause,
                    # so the per-cause counts partition decode+exec resteers.
                    cause = prediction.resteer_cause or "unattributed"
                    if prediction.resteer == "decode":
                        detect = decode_done
                        if counting:
                            stats.decode_resteers += 1
                    else:
                        detect = decode_done + exec_resolve
                        if counting:
                            stats.exec_resteers += 1
                    restart = detect + repair + btb_extra_latency
                    if counting:
                        stats.resteer_causes[cause] = (
                            stats.resteer_causes.get(cause, 0) + 1)
                        resteer_latency.record(restart - iag_t)
                    if trace is not None:
                        trace.emit("resteer", pc=record.branch_pc,
                                   stage=prediction.resteer, cause=cause,
                                   latency=restart - iag_t)
                    if timeline is not None:
                        timeline.instant("iag", f"resteer:{cause}", detect,
                                         stage=prediction.resteer,
                                         cause=cause, pc=record.branch_pc,
                                         latency=restart - iag_t)
                    # Wrong-path prefetches issued between iag_t and restart
                    # pollute the L1-I with sequential lines.
                    if prediction.wrong_path_pc is not None:
                        wrong_line = prediction.wrong_path_pc & line_mask
                        depth = min(pollution_max, ftq_size,
                                    int(restart - iag_t))
                        for step in range(1, depth + 1):
                            _, _, _ = hierarchy.access(
                                wrong_line + step * line_size, iag_t + step,
                                wrong_path=True)
                        if counting:
                            stats.wrong_path_fills = (
                                hierarchy.wrong_path_fills
                                - wrong_path_fills_at_count_start)
                    iag_free = restart
                    ftq_inflight.clear()
                    fetch_free = max(fetch_free, restart)

                if counting:
                    counted_instructions += record.n_instr
                    counted_blocks += 1
                prev_taken = record.taken
                if intervals is not None and index + 1 == next_boundary:
                    intervals.boundary(
                        next_boundary, stats, counted_instructions,
                        counted_blocks,
                        retire_free - cycles_at_count_start if counting else 0.0)
                    next_boundary += interval_size

            if ff_stop < 0:
                break
            ff_segment = ff_stop
            state = ProbeState(iag_free, fetch_free, decode_free,
                               retire_free, ftq_inflight, prev_taken,
                               counted_instructions, counted_blocks,
                               next_boundary)
            ff_segment = ff.on_probe(ff_segment, state)
            iag_free = state.iag_free
            fetch_free = state.fetch_free
            decode_free = state.decode_free
            retire_free = state.retire_free
            ftq_inflight = state.ftq_inflight
            counted_instructions = state.counted_instructions
            counted_blocks = state.counted_blocks
            next_boundary = state.next_boundary
            records_seen = self._records_seen + ff_segment
            if ff_segment >= n_total:
                break
        if ff is not None:
            ff.finalize()
        if intervals is not None:
            intervals.finish(
                records_seen - self._records_seen, stats,
                counted_instructions, counted_blocks,
                retire_free - cycles_at_count_start if counting else 0.0)
        self._records_seen = records_seen
        stats.instructions = counted_instructions
        stats.blocks = counted_blocks
        stats.cycles = max(retire_free - cycles_at_count_start, 1e-9)
        return stats

    # ------------------------------------------------------------------

    def run_compiled(self, compiled, warmup: int = 0) -> SimStats:
        """Replay a :class:`~repro.workloads.compiled.CompiledTrace`.

        The flat-array twin of :meth:`run`: iterates the compiled columns
        directly with locals-bound indices, uses the precomputed
        per-record line spans instead of re-deriving them, and calls the
        BPU's field-based entry point so no ``BlockRecord`` is ever
        constructed.  Every predictor update, cache access, event
        emission, timeline span and stat increment happens in exactly the
        order the object path performs them -- stats, metric snapshots,
        event traces and attribution artifacts are bit-identical
        (enforced over the full Fig-14 grid by
        ``tests/frontend/test_compiled_equivalence.py``).
        """
        from repro.workloads.compiled import KIND_BY_CODE

        if self.attribution is not None:
            # The aggregator applies the same warm-up gate as SimStats.
            self.attribution.warmup = warmup

        config = self.config
        hierarchy = self.hierarchy
        hierarchy_access = hierarchy.access
        line_present = hierarchy.line_present
        bpu_process = self.bpu.process_fields
        skia = self.skia
        stats = self.stats
        line_size = config.line_size
        line_mask = ~(line_size - 1)

        ftq_size = config.ftq_size
        decode_width = config.decode_width
        iag_to_fetch = config.iag_to_fetch_delay
        fetch_to_decode = config.fetch_to_decode_delay
        repair = config.decode_repair_cycles
        btb_extra_latency = config.btb_access_latency() - 1
        exec_resolve = config.exec_resolve_delay
        backend_width = config.backend_effective_width
        pollution_max = config.pollution_max_lines

        trace = self.trace
        timeline = self.timeline
        resteer_latency = self._resteer_latency
        records_seen = self._records_seen

        # Locals-bound columns: one flat sequence per record field.
        n_records = compiled.n_records
        col_block_start = compiled.column("block_start")
        col_n_instr = compiled.column("n_instr")
        col_branch_pc = compiled.column("branch_pc")
        col_branch_len = compiled.column("branch_len")
        col_kind = compiled.column("kind")
        col_taken = compiled.column("taken")
        col_target = compiled.column("target")
        col_fallthrough = compiled.column("fallthrough")
        col_first_line, col_n_lines = compiled.derived(line_size)
        kind_by_code = KIND_BY_CODE

        intervals = self.intervals
        interval_size = 0
        next_boundary = 0
        if intervals is not None:
            intervals.warmup = warmup
            interval_size = intervals.interval_size
            next_boundary = interval_size

        iag_free = 0.0
        fetch_free = 0.0
        decode_free = 0.0
        retire_free = 0.0
        ftq_inflight: deque[float] = deque()  # fetch_done per in-flight entry

        prev_taken = True  # the first block is "entered" at the entry point
        counting = False
        counted_instructions = 0
        counted_blocks = 0
        cycles_at_count_start = 0.0
        wrong_path_fills_at_count_start = 0

        ff = plan_compiled(self, compiled, warmup)

        ff_segment = 0
        while ff_segment < n_records:
            ff_stop = ff.next_probe if ff is not None and ff.active \
                and ff.next_probe < n_records else n_records
            for index in range(ff_segment, ff_stop):
                if not counting and index >= warmup:
                    counting = True
                    cycles_at_count_start = retire_free
                    wrong_path_fills_at_count_start = hierarchy.wrong_path_fills
                stats_arg = stats if counting else None

                block_start = col_block_start[index]
                n_instr = col_n_instr[index]
                branch_pc = col_branch_pc[index]
                kind = kind_by_code[col_kind[index]]
                taken = col_taken[index] != 0
                target = col_target[index]
                fallthrough = col_fallthrough[index]

                # ----- IAG: allocate the FTQ entry ------------------------
                iag_t = iag_free
                while ftq_inflight and ftq_inflight[0] <= iag_t:
                    ftq_inflight.popleft()
                if len(ftq_inflight) >= ftq_size:
                    iag_t = ftq_inflight.popleft()

                records_seen += 1
                if trace is not None:
                    trace.record_index = index

                branch_line_present = line_present(branch_pc)
                prediction = bpu_process(block_start, branch_pc, kind, taken,
                                         target, fallthrough,
                                         branch_line_present, stats_arg)

                # ----- Prefetch the entry's lines (precompiled spans) ------
                first_line = col_first_line[index]
                n_lines = col_n_lines[index]
                lines_ready = iag_t
                line = first_line
                for _ in range(n_lines):
                    hit, ready, level = hierarchy_access(line, iag_t)
                    if ready > lines_ready:
                        lines_ready = ready
                    if counting:
                        stats.l1i_accesses += 1
                        if not hit:
                            stats.l1i_misses += 1
                            if level >= 3:
                                stats.l2_misses += 1
                            if level >= 4:
                                stats.l3_misses += 1
                    line += line_size

                # ----- Skia: shadow-decode this entry's lines --------------
                if skia is not None:
                    if timeline is not None:
                        # SBD runs when the entry's prefetch completes; give
                        # its span emitter that timestamp.
                        timeline.now = lines_ready
                    exit_pc = branch_pc + col_branch_len[index] if taken else None
                    skia.on_ftq_entry(
                        entry_pc=block_start,
                        entered_by_taken_branch=prev_taken,
                        exit_pc=exit_pc,
                        line_present=line_present,
                        stats=stats_arg)

                # ----- Fetch ------------------------------------------------
                fetch_start = max(fetch_free, iag_t + iag_to_fetch)
                fetch_stall = 0.0
                if lines_ready > fetch_start:
                    fetch_stall = lines_ready - fetch_start
                    if counting:
                        stats.fetch_stall_cycles += fetch_stall
                    fetch_start = lines_ready
                fetch_done = fetch_start + n_lines
                fetch_free = fetch_done
                ftq_inflight.append(fetch_done)

                # ----- Decode ----------------------------------------------
                input_ready = fetch_done + fetch_to_decode
                decode_start = max(decode_free, input_ready)
                decode_idle = decode_start - decode_free
                if counting:
                    stats.decoder_idle_cycles += decode_idle
                decode_done = decode_start + (
                    (n_instr + decode_width - 1) // decode_width)
                decode_free = decode_done

                # ----- Retire ----------------------------------------------
                retire_start = max(retire_free, decode_done + 1)
                retire_free = retire_start + n_instr / backend_width

                # ----- Timeline: one span per stage, instants for BPU events
                if timeline is not None:
                    name = f"0x{block_start:x}"
                    timeline.span("iag", name, iag_t, 1.0, index=index)
                    if not prediction.btb_hit:
                        timeline.instant("iag", "btb_miss", iag_t,
                                         pc=branch_pc)
                    if prediction.sbb_hit is not None:
                        timeline.instant(
                            "iag", f"sbb_hit:{prediction.sbb_hit}", iag_t,
                            pc=branch_pc, used=prediction.used_sbb)
                    timeline.span("fetch", name, fetch_start,
                                  fetch_done - fetch_start, lines=n_lines,
                                  stall=fetch_stall)
                    timeline.span("decode", name, decode_start,
                                  decode_done - decode_start,
                                  instructions=n_instr, idle=decode_idle)
                    timeline.span("retire", name, retire_start,
                                  retire_free - retire_start)

                # ----- Resteer / next-entry scheduling ---------------------
                if prediction.resteer is None:
                    iag_free = iag_t + 1
                else:
                    # Every resteering prediction carries exactly one cause,
                    # so the per-cause counts partition decode+exec resteers.
                    cause = prediction.resteer_cause or "unattributed"
                    if prediction.resteer == "decode":
                        detect = decode_done
                        if counting:
                            stats.decode_resteers += 1
                    else:
                        detect = decode_done + exec_resolve
                        if counting:
                            stats.exec_resteers += 1
                    restart = detect + repair + btb_extra_latency
                    if counting:
                        stats.resteer_causes[cause] = (
                            stats.resteer_causes.get(cause, 0) + 1)
                        resteer_latency.record(restart - iag_t)
                    if trace is not None:
                        trace.emit("resteer", pc=branch_pc,
                                   stage=prediction.resteer, cause=cause,
                                   latency=restart - iag_t)
                    if timeline is not None:
                        timeline.instant("iag", f"resteer:{cause}", detect,
                                         stage=prediction.resteer,
                                         cause=cause, pc=branch_pc,
                                         latency=restart - iag_t)
                    # Wrong-path prefetches issued between iag_t and restart
                    # pollute the L1-I with sequential lines.
                    if prediction.wrong_path_pc is not None:
                        wrong_line = prediction.wrong_path_pc & line_mask
                        depth = min(pollution_max, ftq_size,
                                    int(restart - iag_t))
                        for step in range(1, depth + 1):
                            _, _, _ = hierarchy_access(
                                wrong_line + step * line_size, iag_t + step,
                                wrong_path=True)
                        if counting:
                            stats.wrong_path_fills = (
                                hierarchy.wrong_path_fills
                                - wrong_path_fills_at_count_start)
                    iag_free = restart
                    ftq_inflight.clear()
                    fetch_free = max(fetch_free, restart)

                if counting:
                    counted_instructions += n_instr
                    counted_blocks += 1
                prev_taken = taken
                if intervals is not None and index + 1 == next_boundary:
                    intervals.boundary(
                        next_boundary, stats, counted_instructions,
                        counted_blocks,
                        retire_free - cycles_at_count_start if counting else 0.0)
                    next_boundary += interval_size

            ff_segment = ff_stop
            if (ff is not None and ff.active
                    and ff_segment == ff.next_probe
                    and ff_segment < n_records):
                state = ProbeState(iag_free, fetch_free, decode_free,
                                   retire_free, ftq_inflight, prev_taken,
                                   counted_instructions, counted_blocks,
                                   next_boundary)
                ff_segment = ff.on_probe(ff_segment, state)
                iag_free = state.iag_free
                fetch_free = state.fetch_free
                decode_free = state.decode_free
                retire_free = state.retire_free
                ftq_inflight = state.ftq_inflight
                counted_instructions = state.counted_instructions
                counted_blocks = state.counted_blocks
                next_boundary = state.next_boundary
                records_seen = self._records_seen + ff_segment
        if ff is not None:
            ff.finalize()
        if intervals is not None:
            intervals.finish(
                records_seen - self._records_seen, stats,
                counted_instructions, counted_blocks,
                retire_free - cycles_at_count_start if counting else 0.0)
        self._records_seen = records_seen
        stats.instructions = counted_instructions
        stats.blocks = counted_blocks
        stats.cycles = max(retire_free - cycles_at_count_start, 1e-9)
        return stats


def simulate(program: Program, records: list[BlockRecord],
             config: FrontEndConfig, warmup: int = 0,
             seed: int = 0) -> SimStats:
    """Convenience one-shot simulation."""
    simulator = FrontEndSimulator(program, config, seed=seed)
    return simulator.run(records, warmup=warmup)
