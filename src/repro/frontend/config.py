"""Front-end configuration (the paper's Table 1 plus pipeline penalties).

Sizes follow the Alder-Lake-like (Golden Cove) baseline: 32KB/8-way L1-I,
1MB L2, 2MB L3, 8K-entry 4-way BTB (78 bits/entry = 78KB), 24-entry FTQ,
12-wide decode/retire.  The Skia defaults reproduce the paper's 12.25KB
SBB: 768-entry U-SBB (78b entries = 7.3125KB) + 2024-entry R-SBB (20b
entries ~= 4.94KB).
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field, replace


class IndexPolicy(enum.Enum):
    """Head-decode Valid Index selection (Section 3.2.2).

    ``FIRST`` -- start inserting from the first byte index whose path
    validates (the paper's empirically best choice and our default).
    ``ZERO``  -- use the path starting at byte 0 when it validates, else
    fall back to the first valid path.
    ``MERGE`` -- start from the most common merge point of all valid
    paths.
    """

    FIRST = "first"
    ZERO = "zero"
    MERGE = "merge"


@dataclass(frozen=True)
class SkiaConfig:
    """Shadow branch decoding configuration."""

    enabled: bool = True
    decode_heads: bool = True
    decode_tails: bool = True
    index_policy: IndexPolicy = IndexPolicy.FIRST
    max_valid_paths: int = 6
    # Section 4.3 replacement policy: evict never-retired entries first.
    # Exposed as a switch for the ablation benchmark.
    use_retired_bit: bool = True

    # U-SBB: direct unconditional jumps + calls. 78-bit entries (Fig 12).
    usbb_entries: int = 768
    usbb_assoc: int = 4
    usbb_tag_bits: int = 10
    usbb_entry_bits: int = 78

    # R-SBB: returns. 20-bit entries (Fig 12).
    rsbb_entries: int = 2024
    rsbb_assoc: int = 4
    rsbb_tag_bits: int = 10
    rsbb_entry_bits: int = 20

    @property
    def usbb_size_bytes(self) -> float:
        return self.usbb_entries * self.usbb_entry_bits / 8

    @property
    def rsbb_size_bytes(self) -> float:
        return self.rsbb_entries * self.rsbb_entry_bits / 8

    @property
    def total_size_bytes(self) -> float:
        return self.usbb_size_bytes + self.rsbb_size_bytes

    @property
    def total_size_kib(self) -> float:
        return self.total_size_bytes / 1024

    def scaled(self, factor: float) -> "SkiaConfig":
        """Same U:R entry ratio, ``factor``x the capacity (Fig 17 bottom)."""
        return replace(
            self,
            usbb_entries=max(self.usbb_assoc,
                             int(self.usbb_entries * factor)),
            rsbb_entries=max(self.rsbb_assoc,
                             int(self.rsbb_entries * factor)),
        )

    @staticmethod
    def disabled() -> "SkiaConfig":
        return SkiaConfig(enabled=False)


@dataclass(frozen=True)
class FrontEndConfig:
    """Complete simulator configuration."""

    # --- BTB (Table 1: 8K-entry, 4-way, 78-bit entries = 78KB) ---------
    btb_entries: int = 8192
    btb_assoc: int = 4
    btb_tag_bits: int = 10
    btb_entry_bits: int = 78
    btb_infinite: bool = False

    # --- Caches (Table 1) ----------------------------------------------
    line_size: int = 64
    l1i_size: int = 32 * 1024
    l1i_assoc: int = 8
    l2_size: int = 1024 * 1024
    l2_assoc: int = 16
    l3_size: int = 2 * 1024 * 1024
    l3_assoc: int = 16
    l2_latency: int = 14
    l3_latency: int = 40
    memory_latency: int = 150

    # --- Predictors ------------------------------------------------------
    tage_table_bits: int = 12
    tage_tag_bits: int = 9
    tage_history_lengths: tuple[int, ...] = (5, 15, 44, 130)
    ittage_table_bits: int = 10
    # The L of TAGE-SC-L: a fixed-trip loop termination predictor.
    use_loop_predictor: bool = True
    loop_predictor_entries: int = 256
    ras_depth: int = 32

    # --- Pipeline (Fig 7 timing; Golden-Cove-like depths) ---------------
    ftq_size: int = 24
    decode_width: int = 12
    iag_to_fetch_delay: int = 3
    fetch_to_decode_delay: int = 4
    decode_repair_cycles: int = 3
    exec_resolve_delay: int = 14
    backend_effective_width: float = 4.0
    pollution_max_lines: int = 8

    # --- Observability ---------------------------------------------------
    # When set, the simulator constructs and attaches a
    # repro.obs.TimelineRecorder at init; the default (False) keeps the
    # hot path at one None check per record.
    record_timeline: bool = False
    # Interval telemetry window, in retired records (0 disables).  When
    # positive the simulator attaches a repro.obs.IntervalCollector and
    # every engine -- object, compiled, batched -- cuts a stats row at
    # the same record-index boundaries, so the resulting IntervalSeries
    # is bit-identical across execution paths.  Being a config field it
    # lands in the content-addressed store key like every other knob.
    interval_size: int = 0

    # --- Skia -------------------------------------------------------------
    skia: SkiaConfig = field(default_factory=SkiaConfig.disabled)

    # --- Related-work comparators (Section 7.1 baselines) ---------------
    # None or a name registered in repro.frontend.comparators.COMPARATORS:
    # "airbtb" (Confluence-like), "boomerang" (Boomerang-like),
    # "microbtb" (Micro-BTB last-level + line-batched fills) or "fdip"
    # (FDIP-revisited prefetch-depth predecoder).  Every knob below is a
    # dataclass field so it lands in the content-addressed store key.
    comparator: str | None = None
    airbtb_max_lines: int = 2048
    airbtb_entries_per_line: int = 3
    boomerang_buffer_entries: int = 64
    microbtb_max_lines: int = 8192
    microbtb_entries_per_line: int = 3
    microbtb_fill_lines: int = 64
    fdip_depth: int = 2
    fdip_buffer_entries: int = 64

    # ------------------------------------------------------------------
    # Derived quantities
    # ------------------------------------------------------------------

    @property
    def btb_size_bytes(self) -> float:
        return self.btb_entries * self.btb_entry_bits / 8

    @property
    def btb_size_kib(self) -> float:
        return self.btb_size_bytes / 1024

    def btb_access_latency(self) -> int:
        """CACTI-flavoured latency model: bigger BTBs are slower.

        The paper uses CACTI to approximate latency as the BTB scales
        (Section 5.1); we reproduce the trend with a log-capacity model
        anchored at 1 cycle for <=8K entries.
        """
        if self.btb_infinite:
            return 1
        if self.btb_entries <= 16384:
            return 1
        return 1 + math.ceil(math.log2(self.btb_entries / 16384) / 2)

    def with_btb_entries(self, entries: int,
                         infinite: bool = False) -> "FrontEndConfig":
        return replace(self, btb_entries=entries, btb_infinite=infinite)

    def with_skia(self, skia: SkiaConfig) -> "FrontEndConfig":
        return replace(self, skia=skia)

    def with_comparator(self, name: str | None) -> "FrontEndConfig":
        if name is not None:
            # Imported lazily: comparators pulls in the decoder stack,
            # which this leaf config module must not depend on at import.
            from repro.frontend.comparators import COMPARATOR_NAMES
            if name not in COMPARATOR_NAMES:
                raise ValueError(f"unknown comparator {name!r}; "
                                 f"known: {COMPARATOR_NAMES}")
        return replace(self, comparator=name)

    def with_fdip_depth(self, depth: int) -> "FrontEndConfig":
        """The "fdip" comparator at a given prefetch depth (depth sweep)."""
        return replace(self, comparator="fdip", fdip_depth=depth)

    def with_extra_btb_state(self, extra_bytes: float) -> "FrontEndConfig":
        """Grow the BTB by ``extra_bytes`` of state (ISO-budget baseline).

        Used for the paper's "BTB+12.25KB" comparison point: the SBB's
        hardware budget handed to the BTB instead.
        """
        extra_entries = int(extra_bytes * 8 // self.btb_entry_bits)
        return replace(self, btb_entries=self.btb_entries + extra_entries)


#: Configuration presets used across benchmarks and examples.
def baseline_config() -> FrontEndConfig:
    """FDIP with an 8K-entry BTB and no Skia (the paper's baseline)."""
    return FrontEndConfig()


def skia_config(heads: bool = True, tails: bool = True) -> FrontEndConfig:
    """Baseline plus the default 12.25KB SBB."""
    return FrontEndConfig(skia=SkiaConfig(
        enabled=True, decode_heads=heads, decode_tails=tails))
