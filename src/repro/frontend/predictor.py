"""Conditional and indirect branch predictors.

The paper's BPU uses TAGE-SC-L (64KB) and ITTAGE (64KB).  We implement
faithful-but-scaled versions:

* :class:`TageLite` -- a bimodal base predictor plus N tagged tables with
  geometric history lengths, partial tags, usefulness counters and the
  standard TAGE allocate-on-mispredict policy.  Direction accuracy on the
  synthetic workloads is >97%, reproducing the regime the paper studies
  (direction prediction is good; BTB *presence* misses dominate).
* :class:`ITTageLite` -- a last-target base table plus tagged
  history-indexed tables for indirect targets.

Both are deliberately compact: the reproduction's results depend on the
*relative* quality of these predictors, not on CBP-contest accuracy (see
DESIGN.md substitutions).
"""

from __future__ import annotations

import random


def _mix(pc: int, history: int, salt: int) -> int:
    """Cheap avalanche hash for table indexing."""
    value = (pc * 0x9E3779B97F4A7C15) ^ (history * 0xC2B2AE3D27D4EB4F) ^ salt
    value ^= value >> 29
    value *= 0xBF58476D1CE4E5B9
    value ^= value >> 32
    return value & 0x7FFFFFFFFFFFFFFF


class _TaggedEntry:
    __slots__ = ("tag", "ctr", "useful")

    def __init__(self, tag: int, taken: bool):
        self.tag = tag
        self.ctr = 0 if taken else -1  # weakly taken / weakly not-taken
        self.useful = 0


class TageLite:
    """TAGE with a bimodal base and geometric tagged tables."""

    def __init__(self, table_bits: int = 12, tag_bits: int = 9,
                 history_lengths: tuple[int, ...] = (5, 15, 44, 130),
                 seed: int = 0):
        self.table_bits = table_bits
        self.tag_bits = tag_bits
        self.history_lengths = history_lengths
        self.table_mask = (1 << table_bits) - 1
        self.tag_mask = (1 << tag_bits) - 1
        self._history_masks = tuple((1 << length) - 1
                                    for length in history_lengths)
        self.tables: list[dict[int, _TaggedEntry]] = [
            dict() for _ in history_lengths
        ]
        self.bimodal: dict[int, int] = {}
        self.history = 0
        self._rng = random.Random(seed ^ 0x7A6E)
        self.predictions = 0
        self.mispredictions = 0

    # ------------------------------------------------------------------

    def _indices(self, pc: int) -> list[tuple[int, int]]:
        """(index, tag) per tagged table for the current history.

        :func:`_mix` is inlined (this runs once per conditional branch)
        over precomputed history masks; the arithmetic is identical.
        """
        out = []
        history = self.history
        table_mask = self.table_mask
        tag_mask = self.tag_mask
        table_bits = self.table_bits
        pc_mixed = pc * 0x9E3779B97F4A7C15
        salt = 1
        for mask in self._history_masks:
            value = pc_mixed ^ ((history & mask) * 0xC2B2AE3D27D4EB4F) ^ salt
            value ^= value >> 29
            value *= 0xBF58476D1CE4E5B9
            value ^= value >> 32
            value &= 0x7FFFFFFFFFFFFFFF
            out.append((value & table_mask,
                        (value >> table_bits) & tag_mask))
            salt += 1
        return out

    def _bimodal_predict(self, pc: int) -> bool:
        return self.bimodal.get(pc & 0x3FFFF, 1) >= 1  # 2-bit, init weak-T

    def predict(self, pc: int) -> bool:
        """Predict direction; does not update any state."""
        provider = self._find_provider(pc)
        if provider is None:
            return self._bimodal_predict(pc)
        _, _, entry = provider
        return entry.ctr >= 0

    def _find_provider(self, pc: int):
        """Longest-history tag hit: (table_number, index, entry)."""
        indices = self._indices(pc)
        for table_number in range(len(self.tables) - 1, -1, -1):
            index, tag = indices[table_number]
            entry = self.tables[table_number].get(index)
            if entry is not None and entry.tag == tag:
                return table_number, index, entry
        return None

    def update(self, pc: int, taken: bool) -> bool:
        """Predict, train, shift history.  Returns the prediction made."""
        self.predictions += 1
        indices = self._indices(pc)

        provider = None
        alt = None
        for table_number in range(len(self.tables) - 1, -1, -1):
            index, tag = indices[table_number]
            entry = self.tables[table_number].get(index)
            if entry is not None and entry.tag == tag:
                if provider is None:
                    provider = (table_number, index, entry)
                else:
                    alt = entry
                    break

        if provider is None:
            prediction = self._bimodal_predict(pc)
        else:
            entry = provider[2]
            weak = entry.ctr in (0, -1) and entry.useful == 0
            if weak:
                # Newly-allocated/untrusted entry: defer to the alternate
                # prediction (standard TAGE use-alt-on-new-alloc).
                prediction = (alt.ctr >= 0 if alt is not None
                              else self._bimodal_predict(pc))
            else:
                prediction = entry.ctr >= 0
        correct = prediction == taken
        if not correct:
            self.mispredictions += 1

        # Train the provider (or bimodal).
        if provider is not None:
            _, _, entry = provider
            entry.ctr = _saturate(entry.ctr + (1 if taken else -1), 3)
            if correct:
                entry.useful = min(entry.useful + 1, 3)
        else:
            key = pc & 0x3FFFF
            counter = self.bimodal.get(key, 1)
            self.bimodal[key] = max(0, min(3, counter + (1 if taken else -1)))

        # Allocate a longer-history entry on a mispredict.
        if not correct:
            start = provider[0] + 1 if provider is not None else 0
            self._allocate(indices, start, taken)

        self.history = ((self.history << 1) | int(taken)) & ((1 << 256) - 1)
        return prediction

    def _allocate(self, indices: list[tuple[int, int]], start: int,
                  taken: bool) -> None:
        candidates = []
        for table_number in range(start, len(self.tables)):
            index, tag = indices[table_number]
            entry = self.tables[table_number].get(index)
            if entry is None or entry.useful == 0:
                candidates.append((table_number, index, tag))
        if not candidates:
            # Decay usefulness so future allocations succeed.
            for table_number in range(start, len(self.tables)):
                index, _ = indices[table_number]
                entry = self.tables[table_number].get(index)
                if entry is not None and entry.useful > 0:
                    entry.useful -= 1
            return
        table_number, index, tag = self._rng.choice(candidates[:2])
        self.tables[table_number][index] = _TaggedEntry(tag, taken)

    @property
    def accuracy(self) -> float:
        if not self.predictions:
            return 1.0
        return 1.0 - self.mispredictions / self.predictions


def _saturate(value: int, magnitude: int) -> int:
    return max(-magnitude - 1, min(magnitude, value))


class _LoopEntry:
    __slots__ = ("trip", "current", "confidence")

    def __init__(self):
        self.trip = 0         # learned taken-run length
        self.current = 0      # takes seen in the ongoing run
        self.confidence = 0   # consecutive confirmations of `trip`


class LoopPredictor:
    """Fixed-trip loop termination predictor (the L of TAGE-SC-L).

    Learns, per branch, the number of consecutive taken outcomes before
    a not-taken one; once the same trip count is confirmed
    ``confidence_threshold`` times, it predicts the exit exactly --
    something global-history TAGE only manages for short trips.
    """

    def __init__(self, entries: int = 256, confidence_threshold: int = 3,
                 max_trip: int = 4096):
        self.entries = entries
        self.confidence_threshold = confidence_threshold
        self.max_trip = max_trip
        self._table: dict[int, _LoopEntry] = {}  # insertion-ordered LRU
        self.predictions = 0
        self.overrides = 0

    def _entry(self, pc: int) -> _LoopEntry:
        entry = self._table.get(pc)
        if entry is None:
            if len(self._table) >= self.entries:
                self._table.pop(next(iter(self._table)))
            entry = _LoopEntry()
            self._table[pc] = entry
        return entry

    def predict(self, pc: int) -> bool | None:
        """Confident prediction for this occurrence, else None."""
        entry = self._table.get(pc)
        if entry is None or entry.confidence < self.confidence_threshold:
            return None
        return entry.current < entry.trip

    def update(self, pc: int, taken: bool) -> None:
        entry = self._entry(pc)
        if taken:
            entry.current += 1
            if entry.current > self.max_trip:
                # Not a fixed loop at a trackable scale; reset learning.
                entry.current = 0
                entry.trip = 0
                entry.confidence = 0
        else:
            if entry.trip == entry.current and entry.trip > 0:
                entry.confidence = min(entry.confidence + 1, 7)
            else:
                entry.trip = entry.current
                entry.confidence = 0
            entry.current = 0


class _ITEntry:
    __slots__ = ("tag", "target", "confidence")

    def __init__(self, tag: int, target: int):
        self.tag = tag
        self.target = target
        self.confidence = 0


class ITTageLite:
    """Indirect target predictor: last-target base + tagged history tables."""

    def __init__(self, table_bits: int = 10, history_lengths: tuple[int, ...] = (4, 16, 64),
                 tag_bits: int = 9):
        self.table_mask = (1 << table_bits) - 1
        self.tag_mask = (1 << tag_bits) - 1
        self.table_bits = table_bits
        self.history_lengths = history_lengths
        self._history_masks = tuple((1 << length) - 1
                                    for length in history_lengths)
        self.tables: list[dict[int, _ITEntry]] = [dict() for _ in history_lengths]
        self.base: dict[int, int] = {}
        self.history = 0  # path history of recent indirect targets
        self.predictions = 0
        self.mispredictions = 0

    def _indices(self, pc: int) -> list[tuple[int, int]]:
        # _mix inlined over precomputed masks, as in TageLite._indices.
        out = []
        history = self.history
        table_mask = self.table_mask
        tag_mask = self.tag_mask
        table_bits = self.table_bits
        pc_mixed = pc * 0x9E3779B97F4A7C15
        salt = 0x17
        for mask in self._history_masks:
            value = pc_mixed ^ ((history & mask) * 0xC2B2AE3D27D4EB4F) ^ salt
            value ^= value >> 29
            value *= 0xBF58476D1CE4E5B9
            value ^= value >> 32
            value &= 0x7FFFFFFFFFFFFFFF
            out.append((value & table_mask,
                        (value >> table_bits) & tag_mask))
            salt += 1
        return out

    def _find_provider(self, indices: list[tuple[int, int]]):
        """Longest-history *confident* tag hit; unconfident entries defer
        to the base last-target table (the ITTAGE use-alt policy)."""
        for table_number in range(len(self.tables) - 1, -1, -1):
            index, tag = indices[table_number]
            entry = self.tables[table_number].get(index)
            if entry is not None and entry.tag == tag and entry.confidence > 0:
                return table_number, index, entry
        return None

    def predict(self, pc: int) -> int | None:
        provider = self._find_provider(self._indices(pc))
        if provider is not None:
            return provider[2].target
        return self.base.get(pc)

    def update(self, pc: int, target: int) -> int | None:
        """Predict, train, fold the target into the path history."""
        self.predictions += 1
        indices = self._indices(pc)
        provider = self._find_provider(indices)
        prediction = provider[2].target if provider else self.base.get(pc)
        if prediction != target:
            self.mispredictions += 1

        # Train the longest *matching* entry regardless of confidence, so
        # correct-but-unconfident entries can earn provider status.  An
        # entry only gains confidence when it *beats* the last-target
        # base table -- history-indexed entries that merely echo the base
        # (or noise) never earn the right to override it.
        base_prediction = self.base.get(pc)
        match = None
        for table_number in range(len(self.tables) - 1, -1, -1):
            index, tag = indices[table_number]
            entry = self.tables[table_number].get(index)
            if entry is not None and entry.tag == tag:
                match = (table_number, index, entry)
                break
        if match is not None:
            _, _, entry = match
            if entry.target == target:
                if base_prediction != target:
                    entry.confidence = min(entry.confidence + 1, 3)
            elif entry.confidence > 0:
                entry.confidence -= 1
            else:
                entry.target = target
        if prediction != target:
            # Allocate in a longer table than the best match.
            start = match[0] + 1 if match else 0
            for table_number in range(start, len(self.tables)):
                index, tag = indices[table_number]
                current = self.tables[table_number].get(index)
                if current is None or current.confidence == 0:
                    self.tables[table_number][index] = _ITEntry(tag, target)
                    break
        self.base[pc] = target
        self.history = ((self.history << 2) ^ (target & 0xFFFF)) & ((1 << 128) - 1)
        return prediction

    @property
    def accuracy(self) -> float:
        if not self.predictions:
            return 1.0
        return 1.0 - self.mispredictions / self.predictions
