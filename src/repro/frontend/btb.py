"""Branch Target Buffer.

Set-associative with true-LRU and *partial tags*, matching the paper's
Figure 12 entry layout (10-bit tag, valid, per-way LRU, 2-bit type, 64-bit
target = 78 bits/entry; 8K entries x 78b = 78KB).  Partial tags mean
aliasing can return a wrong entry -- modelled honestly: the caller
compares the provided target against decode-time truth and pays a resteer
when an aliased entry misleads the front-end.

An ``infinite`` mode (fully associative, unbounded, full tags) provides
the paper's upper-bound configuration in Figure 3.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.isa.branch import BranchKind


@dataclass(slots=True)
class BTBEntry:
    """One BTB entry: branch kind plus last-known target."""

    tag: int
    kind: BranchKind
    target: int | None


class BranchTargetBuffer:
    """Set-associative BTB indexed by branch PC."""

    def __init__(self, entries: int = 8192, assoc: int = 4,
                 tag_bits: int = 10, entry_bits: int = 78,
                 infinite: bool = False):
        if entries <= 0 or assoc <= 0:
            raise ValueError("entries and assoc must be positive")
        self.assoc = assoc
        self.tag_bits = tag_bits
        self.entry_bits = entry_bits
        self.infinite = infinite
        self.n_sets = max(1, (entries + assoc - 1) // assoc)
        self.entries = self.n_sets * assoc
        # Per set: insertion-ordered dict {tag: BTBEntry}; last = MRU.
        self._sets: list[dict[int, BTBEntry]] = [dict() for _ in range(self.n_sets)]
        self._full: dict[int, BTBEntry] = {}
        self.lookups = 0
        self.hits = 0
        self.false_hits_detected = 0

    # ------------------------------------------------------------------

    def _index_tag(self, pc: int) -> tuple[int, int]:
        # Fold higher PC bits into the set index (as real BTBs do) so
        # stride-aligned branch PCs spread across sets instead of
        # conflicting in a handful of them.
        word = pc >> 1
        index = (word ^ (word >> 11) ^ (word >> 23)) % self.n_sets
        tag = (word // self.n_sets) & ((1 << self.tag_bits) - 1)
        return index, tag

    def lookup(self, pc: int) -> BTBEntry | None:
        """Probe for ``pc``; updates LRU on hit."""
        self.lookups += 1
        if self.infinite:
            entry = self._full.get(pc)
            if entry is not None:
                self.hits += 1
            return entry
        index, tag = self._index_tag(pc)
        way = self._sets[index]
        entry = way.get(tag)
        if entry is None:
            return None
        # Move to MRU position.
        del way[tag]
        way[tag] = entry
        self.hits += 1
        return entry

    def insert(self, pc: int, kind: BranchKind, target: int | None) -> None:
        """Insert or update the entry for ``pc`` (MRU position).

        Updates mutate the resident entry in place -- every decoded
        branch re-inserts on commit, so reallocating an entry per record
        was a measurable share of the hot loop.
        """
        if self.infinite:
            entry = self._full.get(pc)
            if entry is not None:
                entry.kind = kind
                entry.target = target
                return
            self._full[pc] = BTBEntry(tag=pc, kind=kind, target=target)
            return
        index, tag = self._index_tag(pc)
        way = self._sets[index]
        entry = way.pop(tag, None)
        if entry is not None:
            entry.kind = kind
            entry.target = target
        else:
            if len(way) >= self.assoc:
                # Evict LRU (first inserted).
                way.pop(next(iter(way)))
            entry = BTBEntry(tag=tag, kind=kind, target=target)
        way[tag] = entry

    def contains(self, pc: int) -> bool:
        """Presence probe without LRU side effects (for tests/metrics)."""
        if self.infinite:
            return pc in self._full
        index, tag = self._index_tag(pc)
        return tag in self._sets[index]

    def occupancy(self) -> int:
        if self.infinite:
            return len(self._full)
        return sum(len(way) for way in self._sets)

    @property
    def size_bytes(self) -> float:
        return self.entries * self.entry_bits / 8

    def flush(self) -> None:
        for way in self._sets:
            way.clear()
        self._full.clear()

    def register_metrics(self, scope) -> None:
        """Expose counters as lazily-sampled gauges (repro.obs)."""
        scope.gauge("lookups", lambda: self.lookups)
        scope.gauge("hits", lambda: self.hits)
        scope.gauge("false_hits_detected", lambda: self.false_hits_detected)
        scope.gauge("occupancy", self.occupancy)
        scope.gauge("entries", lambda: self.entries)
        scope.gauge("infinite", lambda: int(self.infinite))
