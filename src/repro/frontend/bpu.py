"""Branch Prediction Unit.

Combines the BTB, the TAGE-lite conditional predictor, the ITTAGE-lite
indirect predictor, the return address stack, and (when Skia is enabled)
the parallel SBB lookup.  For each executed branch it determines how the
decoupled front-end would have speculated and, if wrongly, at which stage
the wrong path is detected:

* ``resteer=None``     -- speculation was correct; no bubble.
* ``resteer="decode"`` -- the decoder detects the problem (early resteer,
  Figure 7): an undetected *direct* branch whose target is computable at
  decode, an undetected return (RAS read at decode), a decode-time
  direction/target redirect, or a stale/aliased BTB target.
* ``resteer="exec"``   -- only execution can detect it: a wrong
  conditional direction or a wrong indirect/return target.

The BPU also *trains* all structures in commit order, which for a
sequential trace replay is equivalent to gem5's squash-and-repair.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.skia import Skia
from repro.frontend.btb import BranchTargetBuffer
from repro.frontend.config import FrontEndConfig
from repro.frontend.predictor import ITTageLite, LoopPredictor, TageLite
from repro.frontend.ras import ReturnAddressStack
from repro.frontend.stats import SimStats
from repro.isa.branch import BranchKind
from repro.workloads.trace import BlockRecord


#: The resteer-cause vocabulary.  Causes partition resteers: every
#: prediction with ``resteer is not None`` carries exactly one cause, so
#: per-cause counts sum to ``decode_resteers + exec_resteers`` (the
#: ``resteer_causes_partition`` invariant).
RESTEER_CAUSES = (
    "btb_alias",           # partial-tag alias acted on another branch's entry
    "btb_stale_target",    # direct-branch entry holds an outdated target
    "cond_mispredict",     # direction predictor was wrong
    "ras_mispredict",      # RAS-supplied return target was wrong
    "indirect_mispredict",  # ITTAGE-supplied indirect target was wrong
    "sbb_wrong_target",    # SBB hit steered FDIP to the wrong place
    "undetected_branch",   # no structure knew the branch; decode found it
)


@dataclass
class Prediction:
    """How the front-end speculated on one branch."""

    btb_hit: bool
    sbb_hit: str | None       # "u" | "r" | None
    resteer: str | None       # None | "decode" | "exec"
    used_sbb: bool            # SBB supplied the correct next fetch address
    wrong_path_pc: int | None  # where wrong-path fetch streamed from
    resteer_cause: str | None = None  # one of RESTEER_CAUSES when resteering


class BranchPredictionUnit:
    """The IAG's prediction stack (Figure 4), plus the optional SBB."""

    def __init__(self, config: FrontEndConfig, skia: Skia | None = None,
                 seed: int = 0, comparator=None):
        self.config = config
        self.btb = BranchTargetBuffer(
            entries=config.btb_entries, assoc=config.btb_assoc,
            tag_bits=config.btb_tag_bits, entry_bits=config.btb_entry_bits,
            infinite=config.btb_infinite)
        self.tage = TageLite(
            table_bits=config.tage_table_bits, tag_bits=config.tage_tag_bits,
            history_lengths=config.tage_history_lengths, seed=seed)
        self.ittage = ITTageLite(table_bits=config.ittage_table_bits)
        self.loop: LoopPredictor | None = None
        if config.use_loop_predictor:
            self.loop = LoopPredictor(entries=config.loop_predictor_entries)
        self.ras = ReturnAddressStack(depth=config.ras_depth)
        self.skia = skia
        # Optional Section 7.1 baseline implementing the
        # repro.frontend.comparators.Comparator protocol, probed in
        # parallel with the BTB like the SBB.
        self.comparator = comparator
        #: Optional repro.obs.EventTrace; attached via the engine.
        self.trace = None

    # ------------------------------------------------------------------

    def process(self, record: BlockRecord, branch_line_in_l1i: bool,
                stats: SimStats | None) -> Prediction:
        """Predict + train for one executed branch.

        ``branch_line_in_l1i`` is the L1-I residency of the branch's own
        line at lookup time (before this block's prefetch), feeding the
        paper's Figure 1/15 metric.
        """
        return self.process_fields(
            record.block_start, record.branch_pc, record.kind,
            record.taken, record.target, record.fallthrough,
            branch_line_in_l1i, stats)

    def process_fields(self, block_start: int, pc: int, kind: BranchKind,
                       taken: bool, target: int, fallthrough: int,
                       branch_line_in_l1i: bool,
                       stats: SimStats | None) -> Prediction:
        """:meth:`process` over unpacked record fields.

        The compiled-trace hot loop (``FrontEndSimulator.run_compiled``)
        reads flat columns and calls this directly, skipping
        ``BlockRecord`` construction; both entry points execute the same
        code, so object and compiled replays stay bit-identical.
        """
        entry = self.btb.lookup(pc)
        btb_hit = entry is not None
        comparator_entry = None
        sbb_result = None
        if not btb_hit:
            if self.comparator is not None:
                comparator_entry = self._comparator_lookup(
                    pc, branch_line_in_l1i)
            if comparator_entry is None and self.skia is not None:
                sbb_result = self.skia.lookup(pc)

        if self.trace is not None:
            self.trace.emit("btb", pc=pc, hit=btb_hit,
                            branch_kind=kind.value,
                            resident=branch_line_in_l1i)
            if not btb_hit and self.comparator is not None:
                self.trace.emit("comparator", pc=pc,
                                hit=comparator_entry is not None)
            if (not btb_hit and comparator_entry is None
                    and self.skia is not None):
                self.trace.emit(
                    "sbb", pc=pc, hit=sbb_result is not None,
                    which=None if sbb_result is None else sbb_result[0])

        if stats is not None:
            stats.btb_lookups += 1
            stats.branches[kind] += 1
            if taken:
                stats.taken_branches += 1
            if not btb_hit:
                stats.btb_misses[kind] += 1
                if branch_line_in_l1i:
                    stats.btb_miss_l1i_hit += 1
                if comparator_entry is not None:
                    stats.comparator_hits += 1
                elif self.skia is not None:
                    # The SBB was probed (btb_miss the comparator did not
                    # claim): btb_miss == comparator_hit + sbb_hit + sbb_miss.
                    stats.sbb_lookups += 1
                    if sbb_result is None:
                        stats.sbb_misses += 1

        if btb_hit:
            prediction = self._process_btb_hit(pc, kind, taken, target,
                                               fallthrough, entry, stats)
        elif comparator_entry is not None:
            # A comparator hit behaves like a BTB hit (it supplies kind
            # and target), except btb_hit stays False for miss stats.
            prediction = self._process_btb_hit(pc, kind, taken, target,
                                               fallthrough, comparator_entry,
                                               stats)
            prediction = Prediction(False, None, prediction.resteer, False,
                                    prediction.wrong_path_pc,
                                    prediction.resteer_cause)
        elif sbb_result is not None:
            prediction = self._process_sbb_hit(pc, kind, taken, target,
                                               fallthrough, sbb_result, stats)
        else:
            if self.comparator is not None:
                self.comparator.on_btb_miss(block_start)
            prediction = self._process_undetected(pc, kind, taken, target,
                                                  fallthrough, stats)

        self._commit_updates(pc, kind, target, fallthrough, prediction,
                             stats)
        return prediction

    def _comparator_lookup(self, pc: int, branch_line_in_l1i: bool):
        """Probe the Section 7.1 baseline; AirBTB needs L1-I residency."""
        return self.comparator.lookup(pc, branch_line_in_l1i)

    # ------------------------------------------------------------------
    # Case: BTB hit (possibly a partial-tag alias)
    # ------------------------------------------------------------------

    def _process_btb_hit(self, pc: int, kind: BranchKind, taken: bool,
                         target: int, fallthrough: int, entry,
                         stats: SimStats | None) -> Prediction:
        if entry.kind is not kind:
            # Partial-tag alias: the BPU acted on another branch's entry.
            # The decoder notices the mismatch (wrong type/target) and
            # repairs early.
            if stats is not None:
                stats.btb_false_hits += 1
            self._train_side_predictors(pc, kind, taken, target, stats)
            if taken:
                return Prediction(True, None, "decode", False,
                                  fallthrough, "btb_alias")
            return Prediction(True, None, None, False, None)

        if kind is BranchKind.DIRECT_COND:
            predicted_taken = self._predict_cond(pc, taken, stats)
            if predicted_taken == taken:
                return Prediction(True, None, None, False, None)
            wrong = target if not taken else fallthrough
            return Prediction(True, None, "exec", False, wrong,
                              "cond_mispredict")

        if kind in (BranchKind.DIRECT_UNCOND, BranchKind.CALL):
            if entry.target == target:
                return Prediction(True, None, None, False, None)
            # Stale or aliased target; the decoder recomputes it.
            return Prediction(True, None, "decode", False, fallthrough,
                              "btb_stale_target")

        if kind is BranchKind.RETURN:
            correct = self._predict_return(target, stats)
            if correct:
                return Prediction(True, None, None, False, None)
            return Prediction(True, None, "exec", False, fallthrough,
                              "ras_mispredict")

        # Indirect jump/call: the BTB entry flags the branch; ITTAGE
        # provides the target.
        correct = self._predict_indirect(pc, target, stats)
        if correct:
            return Prediction(True, None, None, False, None)
        return Prediction(True, None, "exec", False, fallthrough,
                          "indirect_mispredict")

    # ------------------------------------------------------------------
    # Case: BTB miss, SBB hit (Skia's contribution)
    # ------------------------------------------------------------------

    def _process_sbb_hit(self, pc: int, kind: BranchKind, taken: bool,
                         target: int, fallthrough: int, sbb_result,
                         stats: SimStats | None) -> Prediction:
        which, entry = sbb_result
        if stats is not None:
            if which == "u":
                stats.sbb_hits_u += 1
            else:
                stats.sbb_hits_r += 1

        if which == "u":
            if (kind in (BranchKind.DIRECT_UNCOND, BranchKind.CALL)
                    and entry.payload == target):
                # FDIP speculated through the BTB miss: the whole point.
                return Prediction(False, "u", None, True, None)
            # Bogus or aliased entry steered FDIP wrong; decode repairs.
            if stats is not None:
                stats.sbb_wrong_target += 1
            self._train_side_predictors(pc, kind, taken, target, stats)
            return Prediction(False, "u", "decode", False, fallthrough,
                              "sbb_wrong_target")

        # R-SBB: claims "a return lives at pc"; the RAS provides the target.
        if kind is BranchKind.RETURN:
            correct = self._predict_return(target, stats)
            if correct:
                return Prediction(False, "r", None, True, None)
            return Prediction(False, "r", "exec", False, fallthrough,
                              "ras_mispredict")
        if stats is not None:
            stats.sbb_wrong_target += 1
        self._train_side_predictors(pc, kind, taken, target, stats)
        return Prediction(False, "r", "decode", False, fallthrough,
                          "sbb_wrong_target")

    # ------------------------------------------------------------------
    # Case: branch completely unknown to the BPU
    # ------------------------------------------------------------------

    def _process_undetected(self, pc: int, kind: BranchKind, taken: bool,
                            target: int, fallthrough: int,
                            stats: SimStats | None) -> Prediction:
        """No BTB or SBB entry: FDIP streams sequentially past the branch."""
        if kind is BranchKind.DIRECT_COND:
            # The decoder discovers the branch and asks the direction
            # predictor.  Correct-not-taken costs nothing (sequential was
            # right); predicted-taken redirects at decode; an undetected
            # taken branch resolves at execute.
            predicted_taken = self._predict_cond(pc, taken, stats)
            if not taken:
                # A predicted-taken decode redirect down the taken path is
                # itself wrong here; execution brings the flow back.
                if predicted_taken:
                    return Prediction(False, None, "exec", False,
                                      target, "cond_mispredict")
                return Prediction(False, None, None, False, None)
            if predicted_taken:
                return Prediction(False, None, "decode", False,
                                  fallthrough, "undetected_branch")
            return Prediction(False, None, "exec", False, fallthrough,
                              "cond_mispredict")

        if kind in (BranchKind.DIRECT_UNCOND, BranchKind.CALL):
            # Target computable at decode: early resteer.
            return Prediction(False, None, "decode", False, fallthrough,
                              "undetected_branch")

        if kind is BranchKind.RETURN:
            correct = self._predict_return(target, stats)
            if correct:
                return Prediction(False, None, "decode", False,
                                  fallthrough, "undetected_branch")
            return Prediction(False, None, "exec", False, fallthrough,
                              "ras_mispredict")

        # Indirect: discovered at decode; ITTAGE supplies a target there.
        correct = self._predict_indirect(pc, target, stats)
        if correct:
            return Prediction(False, None, "decode", False, fallthrough,
                              "undetected_branch")
        return Prediction(False, None, "exec", False, fallthrough,
                          "indirect_mispredict")

    # ------------------------------------------------------------------
    # Predictor helpers (each trains its structure exactly once)
    # ------------------------------------------------------------------

    def _predict_cond(self, pc: int, taken: bool,
                      stats: SimStats | None) -> bool:
        predicted = self.tage.update(pc, taken)
        if self.loop is not None:
            # A confident loop-trip prediction overrides TAGE (the L
            # component of TAGE-SC-L).
            loop_prediction = self.loop.predict(pc)
            self.loop.update(pc, taken)
            if loop_prediction is not None:
                predicted = loop_prediction
        if stats is not None:
            stats.cond_predictions += 1
            if predicted != taken:
                stats.cond_mispredicts += 1
        return predicted

    def _predict_indirect(self, pc: int, target: int,
                          stats: SimStats | None) -> bool:
        predicted = self.ittage.update(pc, target)
        correct = predicted == target
        if stats is not None:
            stats.indirect_predictions += 1
            if not correct:
                stats.indirect_mispredicts += 1
        return correct

    def _predict_return(self, target: int,
                        stats: SimStats | None) -> bool:
        predicted = self.ras.pop()
        correct = predicted == target
        if stats is not None:
            stats.ras_predictions += 1
            if predicted is None:
                # Pop on an empty stack: no target at all, necessarily a
                # mispredict (the ras_underflows_are_mispredicts invariant).
                stats.ras_underflows += 1
            if not correct:
                stats.ras_mispredicts += 1
        return correct

    def _train_side_predictors(self, pc: int, kind: BranchKind, taken: bool,
                               target: int,
                               stats: SimStats | None) -> None:
        """Keep predictor state consistent on bogus-redirect paths."""
        if kind is BranchKind.DIRECT_COND:
            self._predict_cond(pc, taken, stats)
        elif kind is BranchKind.RETURN:
            self._predict_return(target, stats)
        elif kind.is_indirect:
            self._predict_indirect(pc, target, stats)

    # ------------------------------------------------------------------
    # Commit-time updates
    # ------------------------------------------------------------------

    def _commit_updates(self, pc: int, kind: BranchKind, target: int,
                        fallthrough: int, prediction: Prediction,
                        stats: SimStats | None) -> None:
        # The decoder inserts every decoded branch into the BTB.  Static
        # targets for direct branches; last target for indirect; returns
        # carry no target (the RAS provides it).
        btb_target = None
        if kind.is_direct or kind.is_indirect:
            btb_target = target
        self.btb.insert(pc, kind, btb_target)

        if kind.is_call:
            self.ras.push(fallthrough)

        if self.comparator is not None:
            self.comparator.record(pc, kind, btb_target)

        if prediction.used_sbb and self.skia is not None:
            self.skia.mark_retired(pc, prediction.sbb_hit, stats)
