"""Address assignment, branch relaxation and image emission.

Shared by the program generator (initial layout) and the BOLT pass
(re-layout after function reordering).  The relaxation loop is the
classic assembler algorithm: assign addresses assuming current encodings,
patch PC-relative displacements, widen any branch whose displacement
overflows its immediate, and repeat until a fixpoint.
"""

from __future__ import annotations

import random

from repro.isa.branch import BranchKind
from repro.isa.encoder import Encoder
from repro.workloads.program import BasicBlock, Function

#: Inter-function padding byte (NOP), as linkers emit.
PAD_BYTE = 0x90

_MAX_RELAX_ITERATIONS = 12


def lay_out(functions: list[Function], base_address: int, alignment: int,
            encoder: Encoder, rng: random.Random) -> bytes:
    """Assign addresses to every block/instruction and emit the image.

    Mutates ``start_pc``/``pc`` fields in place and patches every direct
    branch displacement.  Returns the final byte image.
    """
    block_by_label = {
        block.label: block
        for function in functions for block in function.blocks
    }
    align = max(1, alignment)
    for _ in range(_MAX_RELAX_ITERATIONS):
        _assign_addresses(functions, base_address, align)
        if not _patch_all(functions, block_by_label, encoder, rng):
            return _emit_image(functions, base_address, align)
    raise RuntimeError("branch relaxation did not converge")


def _assign_addresses(functions: list[Function], base_address: int,
                      align: int) -> None:
    cursor = base_address
    for function in functions:
        remainder = cursor % align
        if remainder:
            cursor += align - remainder
        for block in function.blocks:
            block.start_pc = cursor
            for ins in block.instructions:
                ins.pc = cursor
                cursor += ins.length


def _patch_all(functions: list[Function],
               block_by_label: dict[int, BasicBlock],
               encoder: Encoder, rng: random.Random) -> bool:
    """Patch every direct branch; True when any branch had to be widened."""
    overflowed = False
    for function in functions:
        for block in function.blocks:
            terminator = block.terminator
            if terminator.rel_width == 0 or terminator.target_label is None:
                continue
            target = block_by_label[terminator.target_label]
            try:
                terminator.patch_relative(target.start_pc)
            except OverflowError:
                _widen(block, encoder, rng)
                overflowed = True
    return overflowed


def _widen(block: BasicBlock, encoder: Encoder, rng: random.Random) -> None:
    old = block.terminator
    if old.kind is BranchKind.DIRECT_COND:
        new = encoder.cond_branch(rng, old.target_label, wide=True)
    elif old.kind is BranchKind.DIRECT_UNCOND:
        new = encoder.uncond_jmp(rng, old.target_label, wide=True)
    else:  # pragma: no cover - calls already use rel32
        raise AssertionError(f"cannot widen {old.kind}")
    block.instructions[-1] = new


def _emit_image(functions: list[Function], base_address: int,
                align: int) -> bytes:
    image = bytearray()
    cursor = base_address
    for function in functions:
        remainder = cursor % align
        if remainder:
            pad = align - remainder
            image.extend([PAD_BYTE] * pad)
            cursor += pad
        for block in function.blocks:
            if block.start_pc != cursor:
                raise AssertionError(
                    f"layout drift at {function.name}: "
                    f"{block.start_pc:#x} != {cursor:#x}")
            for ins in block.instructions:
                image.extend(ins.encoding)
                cursor += ins.length
    return bytes(image)
