"""Calibrated per-benchmark workload profiles.

One profile per workload in the paper's Table 2, plus ``verilator-prebolt``
for the Section 6.1.4 BOLT comparison.  The knobs control the properties
that drive the paper's results:

* **footprint / BTB pressure** -- ``n_handlers`` x ``handler_blocks`` plus
  the library pool set the static branch count, well above the 8K-entry
  BTB (the paper selects workloads with L1-I MPKI > 10, Figure 13).
* **cold-branch recurrence** -- ``handler_zipf_s`` sets dispatch skew.
  Flatter = more distinct cold handlers between recurrences = more BTB
  capacity misses.
* **branch-type mix** -- the ``p_*_block`` weights reproduce each
  workload's Figure 6 miss breakdown.  Skia only captures direct
  unconditional jumps, calls and returns, so ``voter``/``sibench`` are
  call/return heavy while ``kafka`` is conditional heavy.
* **path diversity** -- loops with periodic in-body conditionals vary the
  line entry/exit offsets across iterations, which is what puts branch
  bytes into head/tail shadow regions (Section 2.5's observation).

The ``expected`` targets record the values read off the paper's figures;
EXPERIMENTS.md compares them with what this reproduction measures.
"""

from __future__ import annotations

from dataclasses import dataclass, field


#: Instruction-length mix approximating x86-64 integer code (geomean ~3.9B).
DEFAULT_LENGTH_MIX: tuple[tuple[int, ...], tuple[float, ...]] = (
    (1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11),
    (8, 16, 22, 18, 13, 8, 6, 4, 2, 2, 1),
)


@dataclass(frozen=True)
class PaperExpectations:
    """Per-workload values read off the paper's figures (approximate).

    Used only for reporting (EXPERIMENTS.md paper-vs-measured columns) and
    as qualitative calibration targets -- never by the simulator itself.
    """

    l1i_mpki_real: float       # Figure 13 "real system" bar
    ipc_gain_pct: float        # Figure 14, head+tail configuration
    gain_class: str            # "low" | "mid" | "high" qualitative bucket


@dataclass(frozen=True)
class WorkloadProfile:
    """Generator parameters for one synthetic workload."""

    name: str
    suite: str = "synthetic"

    # Code footprint.
    n_handlers: int = 1100
    n_lib_funcs: int = 1300
    handler_blocks: tuple[int, int] = (7, 14)
    lib_blocks: tuple[int, int] = (2, 5)
    block_instrs: tuple[int, int] = (1, 6)
    instruction_length_mix: tuple[tuple[int, ...], tuple[float, ...]] = (
        DEFAULT_LENGTH_MIX
    )
    function_alignment: int = 1
    layout_policy: str = "scatter"  # "scatter" | "shuffle"

    # Dispatch behaviour (cold-branch recurrence).
    #: "zipf" -- the hot dispatch loop indirect-calls handlers with
    #: Zipf-skewed trace-time randomness.  "roundrobin" -- main
    #: direct-calls every handler in index order and loops; with the
    #: other trace-time randomness knobs zeroed the generated trace is
    #: exactly periodic (the fast-forward calibration workloads).
    dispatch_policy: str = "zipf"
    handler_zipf_s: float = 1.0
    hot_handler_fraction: float = 0.15
    lib_call_skew: float = 2.0
    dispatch_run_range: tuple[int, int] = (1, 3)
    # Call-tree shape: each handler owns a private cluster of cold
    # helpers and also calls globally-hot libraries.
    private_lib_segment: int = 10
    p_hot_lib_call: float = 0.20

    # Block terminator mix (relative weights).
    p_cond_block: float = 0.40
    p_jmp_block: float = 0.16
    p_call_block: float = 0.24
    p_indirect_jmp_block: float = 0.015
    p_early_ret_block: float = 0.08

    # Control-flow texture.
    p_loop_backedge: float = 0.22
    loop_trip_range: tuple[int, int] = (3, 16)
    p_skip_forward: float = 0.70
    short_branch_block_span: int = 2
    # Periodic in-loop conditionals (path diversity; see codegen).
    p_pattern_cond: float = 0.60
    pattern_len_range: tuple[int, int] = (2, 5)
    pattern_density_range: tuple[float, float] = (0.3, 0.8)
    # Give skipped (cold) blocks SBB-eligible terminators.
    cold_path_eligible_bias: bool = True

    # Calibration targets from the paper (reporting only).
    expected: PaperExpectations = field(
        default=PaperExpectations(l1i_mpki_real=20.0, ipc_gain_pct=5.0,
                                  gain_class="mid")
    )

    def weights_sum(self) -> float:
        return (self.p_cond_block + self.p_jmp_block + self.p_call_block
                + self.p_indirect_jmp_block + self.p_early_ret_block)


def _profile(name: str, suite: str, *, l1i: float, gain: float,
             gain_class: str, **overrides) -> WorkloadProfile:
    return WorkloadProfile(
        name=name, suite=suite,
        expected=PaperExpectations(l1i_mpki_real=l1i, ipc_gain_pct=gain,
                                   gain_class=gain_class),
        **overrides,
    )


PROFILES: dict[str, WorkloadProfile] = {}


def _register(profile: WorkloadProfile) -> None:
    if profile.name in PROFILES:
        raise ValueError(f"duplicate profile {profile.name}")
    PROFILES[profile.name] = profile


# ----------------------------------------------------------------------
# The 16 workloads of Table 2 (+ pre-bolt verilator).
#
# Qualitative calibration, from the paper's Figures 6, 13, 14, 15, 18:
#   high gain:   voter, sibench (call/return heavy; big decoder-idle wins)
#   mid gain:    tpcc, ycsb, twitter, smallbank, tatp, noop, cassandra,
#                tomcat, dotty, finagle-http, verilator(bolted)
#   low gain:    kafka (cond-heavy misses), finagle-chirper,
#                speedometer2.0 (few BTB misses)
# ----------------------------------------------------------------------

# --- DaCapo ------------------------------------------------------------
_register(_profile(
    "cassandra", "DaCapo", l1i=22.0, gain=5.5, gain_class="mid",
    n_handlers=1050, n_lib_funcs=1250, handler_zipf_s=1.0,
    p_cond_block=0.46, p_call_block=0.22,
))
_register(_profile(
    "kafka", "DaCapo", l1i=16.0, gain=1.5, gain_class="low",
    # Conditional-heavy misses: big handlers, few calls/returns (Fig 6).
    n_handlers=850, n_lib_funcs=250, handler_blocks=(12, 24),
    handler_zipf_s=1.05,
    p_cond_block=0.74, p_call_block=0.05, p_jmp_block=0.10,
    p_early_ret_block=0.03, cold_path_eligible_bias=False,
    hot_handler_fraction=0.10,
))
_register(_profile(
    "tomcat", "DaCapo", l1i=24.0, gain=5.0, gain_class="mid",
    n_handlers=1150, n_lib_funcs=1300, handler_zipf_s=1.0,
    p_cond_block=0.48, p_call_block=0.22,
))

# --- Renaissance --------------------------------------------------------
_register(_profile(
    "finagle-chirper", "Renaissance", l1i=12.0, gain=1.5, gain_class="low",
    # Few BTB misses: small, concentrated footprint.
    n_handlers=280, n_lib_funcs=160, handler_zipf_s=1.3,
    hot_handler_fraction=0.30, dispatch_run_range=(4, 12),
))
_register(_profile(
    "finagle-http", "Renaissance", l1i=18.0, gain=4.0, gain_class="mid",
    n_handlers=850, n_lib_funcs=1000, handler_zipf_s=1.05,
))
_register(_profile(
    "dotty", "Renaissance", l1i=28.0, gain=5.5, gain_class="mid",
    n_handlers=1250, n_lib_funcs=1450, handler_blocks=(8, 16),
    handler_zipf_s=0.95,
    p_cond_block=0.50, p_call_block=0.20, p_loop_backedge=0.34,
))

# --- OLTP Bench (PostgreSQL) -------------------------------------------
_register(_profile(
    "tpcc", "OLTPBench", l1i=30.0, gain=6.5, gain_class="mid",
    n_handlers=1300, n_lib_funcs=1550, handler_zipf_s=0.95,
    p_call_block=0.27, p_early_ret_block=0.09,
))
_register(_profile(
    "ycsb", "OLTPBench", l1i=26.0, gain=6.0, gain_class="mid",
    n_handlers=1150, n_lib_funcs=1400, handler_zipf_s=0.98,
    p_call_block=0.26,
))
_register(_profile(
    "twitter", "OLTPBench", l1i=25.0, gain=5.5, gain_class="mid",
    n_handlers=1100, n_lib_funcs=1300, handler_zipf_s=1.0,
    p_call_block=0.25,
))
_register(_profile(
    "voter", "OLTPBench", l1i=32.0, gain=11.0, gain_class="high",
    # Call/return dominated (Fig 6): tiny library functions everywhere.
    n_handlers=1150, n_lib_funcs=1400, lib_blocks=(2, 4),
    handler_blocks=(8, 16), handler_zipf_s=0.90, p_loop_backedge=0.18,
    block_instrs=(1, 5),
    p_cond_block=0.25, p_call_block=0.38, p_jmp_block=0.20,
    p_early_ret_block=0.12, lib_call_skew=1.3,
))
_register(_profile(
    "smallbank", "OLTPBench", l1i=24.0, gain=6.0, gain_class="mid",
    n_handlers=1050, n_lib_funcs=1300, handler_zipf_s=1.0,
    p_call_block=0.27,
))
_register(_profile(
    "tatp", "OLTPBench", l1i=22.0, gain=5.5, gain_class="mid",
    n_handlers=1000, n_lib_funcs=1200, handler_zipf_s=1.0,
    p_call_block=0.26,
))
_register(_profile(
    "sibench", "OLTPBench", l1i=28.0, gain=10.0, gain_class="high",
    n_handlers=1100, n_lib_funcs=1350, lib_blocks=(2, 4),
    handler_blocks=(8, 15), handler_zipf_s=0.90, p_loop_backedge=0.18,
    block_instrs=(1, 5),
    p_cond_block=0.27, p_call_block=0.36, p_jmp_block=0.19,
    p_early_ret_block=0.11, lib_call_skew=1.3,
))
_register(_profile(
    "noop", "OLTPBench", l1i=20.0, gain=5.0, gain_class="mid",
    n_handlers=900, n_lib_funcs=1100, handler_zipf_s=1.05,
    p_call_block=0.25,
))

# --- Chipyard -----------------------------------------------------------
_register(_profile(
    "verilator-bolted", "Chipyard", l1i=35.0, gain=5.0, gain_class="mid",
    # BOLT is applied as a separate pass (bolt_optimize); this profile is
    # the underlying verilator code structure.
    n_handlers=1300, n_lib_funcs=400, handler_blocks=(8, 18),
    handler_zipf_s=0.9, p_cond_block=0.52, p_call_block=0.16,
    p_jmp_block=0.16, p_loop_backedge=0.24,
))
_register(_profile(
    "verilator-prebolt", "Chipyard", l1i=42.0, gain=10.27, gain_class="high",
    # The binary *before* BOLT: the same code base as verilator-bolted
    # but without BOLT's hot-path straightening -- more taken jumps on
    # hot paths (p_jmp up), link-order layout (shuffle) instead of
    # hot-first, and aligned (padded) functions.  See DESIGN.md: BOLT
    # produces a different binary, so the comparison is between two
    # generated textures plus the function-reordering pass.
    n_handlers=1300, n_lib_funcs=400, handler_blocks=(8, 18),
    handler_zipf_s=0.80, p_cond_block=0.46, p_call_block=0.16,
    p_jmp_block=0.28, p_loop_backedge=0.24,
    layout_policy="shuffle", function_alignment=16,
))

# --- Steady-state calibration (fast-forward; PROFILES-only) ------------
# Not part of Table 2 and deliberately absent from WORKLOAD_NAMES: these
# are exactly periodic traces for the cycle fast-forward layer -- every
# trace-time randomness source is zeroed, so the block stream repeats
# with a period of one dispatch cycle.  ``steady-stream`` is branch-mix
# minimal (jumps/calls/returns only); ``steady-loop`` adds deterministic
# counted loops so TAGE and the loop predictor carry state too.
_register(_profile(
    "steady-stream", "Steady", l1i=20.0, gain=5.0, gain_class="mid",
    n_handlers=120, n_lib_funcs=60, handler_blocks=(5, 9),
    lib_blocks=(2, 4), dispatch_policy="roundrobin",
    p_cond_block=0.0, p_indirect_jmp_block=0.0,
    p_jmp_block=0.30, p_call_block=0.40, p_early_ret_block=0.08,
    p_loop_backedge=0.0, p_pattern_cond=0.0,
    cold_path_eligible_bias=False,
))
_register(_profile(
    "steady-loop", "Steady", l1i=20.0, gain=5.0, gain_class="mid",
    # Counted loops expand each dispatch cycle by the trip counts, so
    # the handler pool and trips stay small to keep the period short.
    n_handlers=40, n_lib_funcs=30, handler_blocks=(5, 9),
    lib_blocks=(2, 4), dispatch_policy="roundrobin",
    loop_trip_range=(3, 6),
    p_cond_block=0.0, p_indirect_jmp_block=0.0,
    p_jmp_block=0.24, p_call_block=0.36, p_early_ret_block=0.06,
    p_loop_backedge=0.25, p_pattern_cond=0.0,
    cold_path_eligible_bias=False,
))

# --- BrowserBench -------------------------------------------------------
_register(_profile(
    "speedometer2.0", "BrowserBench", l1i=14.0, gain=1.8, gain_class="low",
    n_handlers=330, n_lib_funcs=190, handler_zipf_s=1.25,
    hot_handler_fraction=0.28, dispatch_run_range=(4, 12),
))


#: The 16 workloads of Table 2, in the paper's presentation order.
WORKLOAD_NAMES: tuple[str, ...] = (
    "cassandra", "kafka", "tomcat",
    "finagle-chirper", "finagle-http", "dotty",
    "tpcc", "ycsb", "twitter", "voter", "smallbank", "tatp", "sibench",
    "noop",
    "verilator-bolted",
    "speedometer2.0",
)


def get_profile(name: str) -> WorkloadProfile:
    try:
        return PROFILES[name]
    except KeyError:
        known = ", ".join(sorted(PROFILES))
        raise KeyError(f"unknown workload {name!r}; known: {known}") from None
