"""Synthetic program generator.

Builds programs with the control-flow structure of the paper's server
workloads:

* ``main`` -- a hot dispatch loop that indirect-calls into a pool of
  *handler* functions selected with a Zipf distribution.  The Zipf head is
  the hot code; the long tail is the paper's "cold" code: functions that
  recur throughout execution but whose branches are evicted from the BTB
  between recurrences.
* *handlers* -- medium functions with loops, biased conditionals, rarely
  taken error paths, and calls into the shared library pool.
* *libraries* -- small shared helpers (high call/return density), possibly
  calling deeper helpers.  Function calls follow a DAG (callees always
  have a larger function index) so traces cannot recurse unboundedly.

Layout interleaves hot and cold functions (seeded shuffle) and packs
functions with configurable alignment, so cold function heads share cache
lines with hot function tails -- the exact shape that produces the paper's
head/tail shadow branches.

Branch displacement widths are resolved with a standard relaxation loop:
encode short forms optimistically, lay out, patch, widen whatever
overflows, repeat until fixpoint.
"""

from __future__ import annotations

import random
import zlib

from repro.isa.branch import BranchKind
from repro.isa.encoder import Encoder
from repro.isa.instruction import Instruction
from repro.workloads.layout import lay_out
from repro.workloads.program import BasicBlock, Function, Program
from repro.workloads.profiles import WorkloadProfile


class ProgramGenerator:
    """Generates one :class:`Program` from a profile and a seed."""

    def __init__(self, profile: WorkloadProfile, seed: int = 0,
                 base_address: int = 0x400000):
        self.profile = profile
        # zlib.crc32, not hash(): str hashing is randomised per process
        # (PYTHONHASHSEED) and would make generation non-reproducible.
        name_salt = zlib.crc32(profile.name.encode()) & 0xFFFF
        self.rng = random.Random((seed << 16) ^ name_salt)
        self.encoder = Encoder()
        self.base_address = base_address
        self._next_label = 0
        self._cold_hint: set[int] = set()

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------

    def generate(self) -> Program:
        profile = self.profile
        handlers = [
            self._build_function(
                f"handler_{i}", self._sample(profile.handler_blocks),
                is_handler=True)
            for i in range(profile.n_handlers)
        ]
        libraries = [
            self._build_function(
                f"lib_{i}", self._sample(profile.lib_blocks), is_handler=False)
            for i in range(profile.n_lib_funcs)
        ]
        main = self._build_main([f.entry_label for f in handlers])

        self._wire_calls(handlers, libraries)
        self._mark_hotness(handlers, libraries)

        functions = [main] + self._layout_order(handlers, libraries)
        image = lay_out(functions, self.base_address,
                        profile.function_alignment, self.encoder, self.rng)
        return Program(functions=functions, image=image,
                       base_address=self.base_address,
                       entry_label=main.entry_label,
                       name=profile.name)

    # ------------------------------------------------------------------
    # Function construction
    # ------------------------------------------------------------------

    def _label(self) -> int:
        label = self._next_label
        self._next_label += 1
        return label

    def _sample(self, bounds: tuple[int, int]) -> int:
        lo, hi = bounds
        return self.rng.randint(lo, hi)

    def _sample_instruction_length(self) -> int:
        lengths, weights = self.profile.instruction_length_mix
        return self.rng.choices(lengths, weights=weights)[0]

    def _block_body(self) -> list[Instruction]:
        count = self._sample(self.profile.block_instrs)
        return [
            self.encoder.filler(self.rng, self._sample_instruction_length())
            for _ in range(count)
        ]

    def _build_main(self, handler_labels: list[int]) -> Function:
        """The dispatch loop: dispatch block -> indirect call -> loop back.

        Handler selection weights follow Zipf(s) over handler index, so
        handler 0 is the hottest and the tail is cold.
        """
        profile = self.profile
        if profile.dispatch_policy == "roundrobin":
            return self._build_main_roundrobin(handler_labels)
        weights = [
            1.0 / (rank + 1) ** profile.handler_zipf_s
            for rank in range(len(handler_labels))
        ]
        dispatch = BasicBlock(label=self._label())
        dispatch.instructions = self._block_body()
        dispatch.instructions.append(self.encoder.indirect_call(self.rng))
        dispatch.indirect_targets = list(zip(handler_labels, weights))

        loop_back = BasicBlock(label=self._label())
        loop_back.instructions = self._block_body()
        loop_back.instructions.append(
            self.encoder.uncond_jmp(self.rng, dispatch.label, wide=True))

        dispatch.fallthrough_label = loop_back.label
        function = Function(name="main", blocks=[dispatch, loop_back], hot=True)
        return function

    def _build_main_roundrobin(self, handler_labels: list[int]) -> Function:
        """Deterministic dispatch: direct-call every handler in order.

        With the profile's trace-time randomness knobs zeroed (plain
        conditionals, indirect jumps), the resulting trace repeats with
        a period of exactly one dispatch cycle -- the shape the
        fast-forward layer detects and skips.  Calls are wired here
        (``_wire_calls`` only touches handlers and libraries).
        """
        blocks = []
        for label in handler_labels:
            block = BasicBlock(label=self._label())
            block.instructions = self._block_body()
            block.instructions.append(
                self.encoder.call(self.rng, target_label=label))
            blocks.append(block)
        loop_back = BasicBlock(label=self._label())
        loop_back.instructions = self._block_body()
        loop_back.instructions.append(
            self.encoder.uncond_jmp(self.rng, blocks[0].label, wide=True))
        for index, block in enumerate(blocks):
            block.fallthrough_label = (
                blocks[index + 1].label if index + 1 < len(blocks)
                else loop_back.label)
        return Function(name="main", blocks=blocks + [loop_back], hot=True)

    def _build_function(self, name: str, n_blocks: int,
                        is_handler: bool) -> Function:
        """A chain of blocks with loops, patterned bodies, skips and calls.

        Loops are chosen first (non-overlapping block ranges with a
        deterministic trip count).  Blocks *inside* a loop body favour
        periodic-pattern conditionals: their direction varies per
        iteration (path diversity -> shadow-region coverage, Section 2.5)
        while remaining fully deterministic, so a global-history predictor
        learns them -- mirroring real data-dependent-but-correlated
        branches.
        """
        profile = self.profile
        rng = self.rng
        blocks = [BasicBlock(label=self._label()) for _ in range(max(2, n_blocks))]
        for block in blocks:
            block.instructions = self._block_body()

        loop_end_to_start, loop_end_of_body = self._choose_loops(len(blocks))
        self._cold_hint = set()

        for index, block in enumerate(blocks[:-1]):
            block.fallthrough_label = blocks[index + 1].label
            if index in loop_end_to_start:
                self._terminate_backedge(blocks, index, loop_end_to_start[index])
                continue
            in_loop_body = index in loop_end_of_body
            if in_loop_body and rng.random() < profile.p_pattern_cond:
                self._terminate_pattern(blocks, index, loop_end_of_body[index])
                continue
            if (profile.cold_path_eligible_bias
                    and index in self._cold_hint and not in_loop_body):
                # Skipped (cold) blocks live in the tail shadow of the hot
                # skip branch; give them the SBB-eligible terminators that
                # real cold paths have (error handlers end in jumps to
                # cleanup, calls to slow paths, or returns).
                weights = (0.15, 0.30, 0.33, 0.02,
                           0.0 if in_loop_body else 0.20)
            else:
                weights = (
                    profile.p_cond_block,
                    profile.p_jmp_block,
                    profile.p_call_block,
                    profile.p_indirect_jmp_block,
                    # Early returns inside a loop body would starve the
                    # back-edge; disallow them there.
                    0.0 if in_loop_body else profile.p_early_ret_block,
                )
            kind = rng.choices(
                ("cond", "jmp", "call", "indirect_jmp", "ret"),
                weights=weights,
            )[0]
            if kind == "cond":
                self._terminate_cond(blocks, index)
            elif kind == "jmp":
                self._terminate_jmp(blocks, index)
            elif kind == "call":
                # Placeholder; the callee is wired once all functions exist.
                block.instructions.append(self.encoder.call(rng, target_label=-1))
            elif kind == "indirect_jmp":
                self._terminate_indirect_jmp(blocks, index)
            else:  # early return (shared epilogue would be a jmp; keep ret)
                block.instructions.append(
                    self.encoder.ret(rng, with_imm=rng.random() < 0.1))
        blocks[-1].instructions.append(
            self.encoder.ret(rng, with_imm=rng.random() < 0.1))
        return Function(name=name, blocks=blocks, hot=False)

    def _choose_loops(self, n_blocks: int) -> tuple[dict[int, int], dict[int, int]]:
        """Greedy non-overlapping loop placement.

        Returns (back-edge block -> loop-head block) and (body block ->
        its loop's back-edge block).
        """
        rng = self.rng
        loop_end_to_start: dict[int, int] = {}
        loop_end_of_body: dict[int, int] = {}
        index = 1
        while index < n_blocks - 2:
            if rng.random() < self.profile.p_loop_backedge:
                start = index
                end = min(start + rng.randint(1, 3), n_blocks - 2)
                loop_end_to_start[end] = start
                for body in range(start, end):
                    loop_end_of_body[body] = end
                index = end + 2
            else:
                index += 1
        return loop_end_to_start, loop_end_of_body

    def _terminate_backedge(self, blocks: list[BasicBlock], index: int,
                            start: int) -> None:
        rng = self.rng
        block = blocks[index]
        loop_trip = rng.randint(*self.profile.loop_trip_range)
        wide = (index - start) > self.profile.short_branch_block_span
        block.instructions.append(
            self.encoder.cond_branch(rng, blocks[start].label, wide=wide))
        block.cond_taken_bias = 1.0 - 1.0 / max(loop_trip, 1)
        block.loop_trip = loop_trip

    def _terminate_pattern(self, blocks: list[BasicBlock], index: int,
                           loop_end: int) -> None:
        """Periodic conditional inside a loop body; taken skips within
        the body (or to just past the loop = break)."""
        rng = self.rng
        profile = self.profile
        block = blocks[index]
        target_index = min(index + rng.randint(2, 3), loop_end + 1,
                           len(blocks) - 1)
        length = rng.randint(*profile.pattern_len_range)
        density = rng.uniform(*profile.pattern_density_range)
        bits = 0
        for bit in range(length):
            if rng.random() < density:
                bits |= 1 << bit
        wide = (target_index - index) > profile.short_branch_block_span
        block.instructions.append(
            self.encoder.cond_branch(rng, blocks[target_index].label, wide=wide))
        block.pattern_bits = bits
        block.pattern_len = length
        block.cond_taken_bias = (bin(bits).count("1") / length) or 0.01

    def _terminate_cond(self, blocks: list[BasicBlock], index: int) -> None:
        """Straight-line conditional: forward skip or rarely-taken path."""
        profile = self.profile
        rng = self.rng
        block = blocks[index]
        if index + 2 < len(blocks) and rng.random() < profile.p_skip_forward:
            # Skip over the next one or two (cold) blocks almost always.
            span = 2 if rng.random() < 0.75 else 3
            target_index = min(len(blocks) - 1, index + span)
            bias = rng.uniform(0.95, 0.995)
            self._cold_hint.update(range(index + 1, target_index))
        else:
            # Rarely-taken forward branch (error/slow path stays cold).
            target_index = rng.randint(index + 1, len(blocks) - 1)
            bias = rng.uniform(0.01, 0.06)
        target = blocks[target_index]
        wide = (target_index - index) > profile.short_branch_block_span
        block.instructions.append(
            self.encoder.cond_branch(rng, target.label, wide=wide))
        block.cond_taken_bias = bias

    def _terminate_jmp(self, blocks: list[BasicBlock], index: int) -> None:
        """Unconditional jump, usually to the next block (if/else joins),
        occasionally further ahead (shared epilogues)."""
        rng = self.rng
        block = blocks[index]
        if rng.random() < 0.7 or index + 2 >= len(blocks):
            target_index = index + 1
        else:
            target_index = rng.randint(index + 2,
                                       min(index + 4, len(blocks) - 1))
        wide = (target_index - index) > self.profile.short_branch_block_span
        block.instructions.append(
            self.encoder.uncond_jmp(rng, blocks[target_index].label, wide=wide))

    def _terminate_indirect_jmp(self, blocks: list[BasicBlock], index: int) -> None:
        """A switch: indirect jump among a few later blocks."""
        rng = self.rng
        block = blocks[index]
        later = blocks[index + 1:]
        count = min(len(later), rng.randint(2, 5))
        candidates = rng.sample(later, count)
        block.instructions.append(
            self.encoder.indirect_jmp(rng, memory=rng.random() < 0.5))
        block.indirect_targets = [
            (candidate.label, rng.uniform(0.2, 1.0)) for candidate in candidates
        ]

    # ------------------------------------------------------------------
    # Call wiring (DAG by function index)
    # ------------------------------------------------------------------

    def _wire_calls(self, handlers: list[Function],
                    libraries: list[Function]) -> None:
        """Fill in call targets.

        Each handler owns a *private segment* of the library pool (its
        cold helpers, which recur exactly when the handler recurs) and
        also calls a small set of globally-hot libraries (the Zipf head
        every request touches).  Libraries call strictly-later libraries
        (a DAG, so traces cannot recurse), preferring nearby ones --
        which extends each handler's private call tree.
        """
        rng = self.rng
        profile = self.profile
        lib_count = len(libraries)
        segment = max(4, profile.private_lib_segment)
        for handler_index, function in enumerate(handlers):
            base = (handler_index * segment) % max(1, lib_count)
            for block in function.blocks:
                terminator = block.terminator
                if terminator.kind is not BranchKind.CALL:
                    continue
                if rng.random() < profile.p_hot_lib_call:
                    # Globally-hot library (skewed toward low indices).
                    position = rng.random() ** profile.lib_call_skew
                    callee = libraries[int(position * lib_count) % lib_count]
                else:
                    callee = libraries[(base + rng.randrange(segment)) % lib_count]
                terminator.target_label = callee.entry_label
                callee.call_count += 1
        for lib_index, function in enumerate(libraries):
            for block in function.blocks:
                terminator = block.terminator
                if terminator.kind is not BranchKind.CALL:
                    continue
                if lib_index + 1 >= lib_count:
                    self._demote_call(block)
                    continue
                # Prefer nearby later libraries (same private cluster).
                reach = min(lib_count - 1 - lib_index, 2 * segment)
                callee = libraries[lib_index + 1 + rng.randrange(reach)]
                terminator.target_label = callee.entry_label
                callee.call_count += 1

    def _demote_call(self, block: BasicBlock) -> None:
        """Turn an unwireable call terminator into an unconditional jump."""
        block.instructions.pop()
        block.instructions.append(
            self.encoder.uncond_jmp(self.rng, block.fallthrough_label, wide=True))

    def _mark_hotness(self, handlers: list[Function],
                      libraries: list[Function]) -> None:
        """Rough static hotness for the layout/BOLT passes."""
        hot_handlers = max(1, int(len(handlers) * self.profile.hot_handler_fraction))
        for index, function in enumerate(handlers):
            function.hot = index < hot_handlers
        threshold = sorted(
            (lib.call_count for lib in libraries), reverse=True
        )[max(0, int(len(libraries) * 0.2) - 1)] if libraries else 0
        for library in libraries:
            library.hot = library.call_count >= max(1, threshold)

    # ------------------------------------------------------------------
    # Layout
    # ------------------------------------------------------------------

    def _layout_order(self, handlers: list[Function],
                      libraries: list[Function]) -> list[Function]:
        """Interleave hot and cold functions.

        ``shuffle``: seeded random order (link order in real builds).
        ``scatter`` (default): rank functions by estimated heat and place
        the hot head uniformly among the cold tail, so hot and cold
        functions share cache lines throughout the image -- the paper's
        motivating layout ("frequently used functions are placed next to
        less frequently used, colder functions in the binary").
        """
        if self.profile.layout_policy == "shuffle":
            functions = handlers + libraries
            order_rng = random.Random(self.rng.randrange(1 << 30))
            order_rng.shuffle(functions)
            return functions

        heat: list[tuple[float, Function]] = []
        for rank, handler in enumerate(handlers):
            heat.append((1.0 / (rank + 1) ** self.profile.handler_zipf_s,
                         handler))
        max_calls = max((lib.call_count for lib in libraries), default=1) or 1
        for lib in libraries:
            heat.append((lib.call_count / max_calls, lib))
        heat.sort(key=lambda item: item[0], reverse=True)
        ranked = [function for _, function in heat]
        hot_count = max(1, int(len(ranked) * self.profile.hot_handler_fraction))
        hot, cold = ranked[:hot_count], ranked[hot_count:]

        order_rng = random.Random(self.rng.randrange(1 << 30))
        order_rng.shuffle(cold)
        ordered: list[Function] = []
        stride = max(1, len(cold) // max(1, len(hot)))
        hot_iter = iter(hot)
        for index, function in enumerate(cold):
            if index % stride == 0:
                nxt = next(hot_iter, None)
                if nxt is not None:
                    ordered.append(nxt)
            ordered.append(function)
        ordered.extend(hot_iter)
        return ordered
