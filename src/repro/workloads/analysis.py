"""Workload characterisation.

Quantifies the properties the paper's argument rests on, directly from a
program + trace: branch-type mix, dynamic footprint, branch reuse
distances (the "cold branch" evidence), and shadow-region geometry (how
many static branches live in head/tail shadow positions of their lines).
Used for calibration reports and by the workload-characterisation tests.
"""

from __future__ import annotations

from bisect import bisect_left
from collections import Counter
from dataclasses import dataclass, field

from repro.isa.branch import BranchKind
from repro.workloads.program import LINE_SIZE, Program
from repro.workloads.trace import BlockRecord


@dataclass
class ReuseProfile:
    """Branch reuse distances, measured in distinct branch PCs."""

    median: float
    p90: float
    over_8k_fraction: float  # recurrences beyond an 8K-entry BTB's reach
    samples: int


def branch_reuse_profile(records: list[BlockRecord],
                         btb_entries: int = 8192) -> ReuseProfile:
    """Stack-distance-style reuse profile of the branch-PC stream.

    A branch whose reuse distance (distinct branch PCs since its last
    execution) exceeds the BTB capacity is a *cold* recurrence -- the
    population Skia targets.
    """
    last_seen: dict[int, int] = {}
    # Approximate distinct-count via timestamps + a Fenwick tree over
    # positions of most-recent occurrences (exact stack distances).
    positions: list[int] = []
    tree: list[int] = [0] * (len(records) + 1)

    def tree_add(index: int, delta: int) -> None:
        index += 1
        while index < len(tree):
            tree[index] += delta
            index += index & -index

    def tree_sum(index: int) -> int:
        index += 1
        total = 0
        while index > 0:
            total += tree[index]
            index -= index & -index
        return total

    distances: list[int] = []
    for position, record in enumerate(records):
        pc = record.branch_pc
        previous = last_seen.get(pc)
        if previous is not None:
            distinct_since = tree_sum(position - 1) - tree_sum(previous)
            distances.append(distinct_since)
            tree_add(previous, -1)
        tree_add(position, 1)
        last_seen[pc] = position
        positions.append(position)

    if not distances:
        return ReuseProfile(0.0, 0.0, 0.0, 0)
    distances.sort()
    count = len(distances)
    return ReuseProfile(
        median=distances[count // 2],
        p90=distances[int(count * 0.9)],
        over_8k_fraction=sum(d > btb_entries for d in distances) / count,
        samples=count,
    )


@dataclass
class ShadowGeometry:
    """Static shadow-position census over the program image.

    For each basic block's terminator, classify where the *next* static
    branch bytes sit relative to the block's line usage: branches after
    a block's (potentially taken) exit within the same line are tail-
    shadow candidates; branches before block entry offsets are head-
    shadow candidates.
    """

    total_branches: int = 0
    tail_shadow_candidates: int = 0
    head_shadow_candidates: int = 0
    eligible_branches: int = 0  # DirectUncond/Call/Return

    @property
    def tail_fraction(self) -> float:
        return (self.tail_shadow_candidates / self.total_branches
                if self.total_branches else 0.0)

    @property
    def eligible_fraction(self) -> float:
        return (self.eligible_branches / self.total_branches
                if self.total_branches else 0.0)


@dataclass(frozen=True)
class ShadowPosition:
    """One static branch's head/tail shadow candidacy.

    ``tail`` -- the branch sits past an earlier block's exit within the
    same line (tail-shadow bytes a taken entry into the line exposes);
    ``head`` -- a later block's entry within the same line lies past the
    branch's end (head-shadow bytes a mid-line entry exposes).
    """

    pc: int
    kind: BranchKind
    head: bool
    tail: bool
    eligible: bool  # DirectUncond/Call/Return (SBB-capturable)

    @property
    def label(self) -> str:
        """Compact position label for attribution reports."""
        if self.head and self.tail:
            return "head+tail"
        if self.head:
            return "head"
        if self.tail:
            return "tail"
        return "none"


def shadow_positions(program: Program) -> list[ShadowPosition]:
    """Per-terminator shadow census, one entry per basic block.

    The list form preserves duplicate terminator PCs exactly as the
    per-block loop sees them, so :func:`shadow_geometry` aggregates to
    identical counts; use :func:`shadow_position_map` for keyed lookup.
    """
    blocks = sorted(program.iter_blocks(), key=lambda b: b.start_pc)
    exits = [(block.terminator.pc + block.terminator.length)
             for block in blocks]
    entries = [block.start_pc for block in blocks]
    exit_index = 0
    positions: list[ShadowPosition] = []

    for block in blocks:
        terminator = block.terminator
        line = terminator.pc & ~(LINE_SIZE - 1)
        # Tail candidate: some earlier block in the same line exits
        # before this branch starts.
        while exit_index < len(exits) and exits[exit_index] <= terminator.pc:
            exit_index += 1
        tail = any(line <= earlier_exit <= terminator.pc
                   for earlier_exit in exits[max(0, exit_index - 8):
                                             exit_index])
        # Head candidate: some block entry in the same line lies after
        # this branch's end.  ``entries`` is sorted and ``end > line``,
        # so "any entry in [end, line_end)" is a bisect range check.
        end = terminator.pc + terminator.length
        line_end = line + LINE_SIZE
        head = bisect_left(entries, end) < bisect_left(entries, line_end)
        positions.append(ShadowPosition(
            pc=terminator.pc, kind=terminator.kind, head=head, tail=tail,
            eligible=terminator.kind.sbb_eligible))
    return positions


def shadow_position_map(program: Program) -> dict[int, ShadowPosition]:
    """Shadow positions keyed by branch PC (for attribution stamping)."""
    return {position.pc: position
            for position in shadow_positions(program)}


def shadow_geometry(program: Program) -> ShadowGeometry:
    geometry = ShadowGeometry()
    for position in shadow_positions(program):
        geometry.total_branches += 1
        if position.eligible:
            geometry.eligible_branches += 1
        if position.tail:
            geometry.tail_shadow_candidates += 1
        if position.head:
            geometry.head_shadow_candidates += 1
    return geometry


@dataclass
class WorkloadReport:
    """One-stop characterisation used by EXPERIMENTS.md."""

    name: str
    footprint_bytes: int
    static_branches: Counter = field(default_factory=Counter)
    dynamic_mix: Counter = field(default_factory=Counter)
    reuse: ReuseProfile | None = None

    def render(self) -> str:
        lines = [
            f"workload {self.name}: footprint {self.footprint_bytes // 1024}KB,"
            f" static branches {sum(self.static_branches.values())}",
        ]
        total = sum(self.dynamic_mix.values()) or 1
        mix = ", ".join(
            f"{kind.value}={count / total:.1%}"
            for kind, count in self.dynamic_mix.most_common())
        lines.append(f"  dynamic mix: {mix}")
        if self.reuse is not None:
            lines.append(
                f"  branch reuse: median={self.reuse.median:.0f} "
                f"p90={self.reuse.p90:.0f} "
                f"beyond-8K={self.reuse.over_8k_fraction:.1%}")
        return "\n".join(lines)


def characterise(program: Program,
                 records: list[BlockRecord]) -> WorkloadReport:
    report = WorkloadReport(name=program.name,
                            footprint_bytes=len(program.image))
    for block in program.iter_blocks():
        report.static_branches[block.terminator.kind] += 1
    for record in records:
        report.dynamic_mix[record.kind] += 1
    report.reuse = branch_reuse_profile(records)
    return report
