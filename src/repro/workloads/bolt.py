"""BOLT-like profile-guided layout optimisation (Section 6.1.4).

BOLT reorders functions so hot code is packed together, improving L1-I and
BTB locality.  The pass here mirrors that at function granularity: it
profiles a short trace, sorts functions by measured invocation count (hot
first), re-lays-out and re-patches the image.  The result is a new
:class:`~repro.workloads.program.Program` sharing the same functions and
labels, so traces generated for the bolted program use the new addresses.

The paper applies BOLT only to verilator (the one pre-compiled native
binary in its suite); we expose the pass for any synthetic workload so the
bolted-vs-pre-bolt experiment can be reproduced.
"""

from __future__ import annotations

import copy
import random

from repro.isa.encoder import Encoder
from repro.workloads.layout import lay_out
from repro.workloads.program import Function, Program
from repro.workloads.trace import TraceGenerator


def profile_function_heat(program: Program, seed: int = 0,
                          sample_records: int = 40_000) -> dict[str, int]:
    """Count block executions per function over a short profiling trace."""
    function_of_start: dict[int, Function] = {}
    for function in program.functions:
        for block in function.blocks:
            function_of_start[block.start_pc] = function
    heat: dict[str, int] = {function.name: 0 for function in program.functions}
    for record in TraceGenerator(program, seed=seed).iter_records(sample_records):
        function = function_of_start.get(record.block_start)
        if function is not None:
            heat[function.name] += 1
    return heat


def bolt_optimize(program: Program, seed: int = 0,
                  alignment: int = 16,
                  sample_records: int = 40_000) -> Program:
    """Return a hot-first re-laid-out copy of ``program``.

    Function bodies (and block order within functions) are untouched --
    like BOLT's function-reordering mode -- so the CFG and labels are
    preserved; only addresses change.  Hot functions are aligned and
    packed first, pushing cold functions out of the hot lines.
    """
    heat = profile_function_heat(program, seed=seed,
                                 sample_records=sample_records)
    # Re-layout mutates instruction addresses, so work on a deep copy --
    # the input program (and any traces generated from it) stay valid.
    functions = copy.deepcopy(program.functions)
    entry_function = next(f for f in functions
                          if f.blocks[0].label == program.entry_label)
    others = [f for f in functions if f is not entry_function]
    others.sort(key=lambda function: heat.get(function.name, 0), reverse=True)
    ordered = [entry_function] + others

    encoder = Encoder()
    rng = random.Random(seed ^ 0xB017)
    image = lay_out(ordered, program.base_address, alignment, encoder, rng)
    return Program(functions=ordered, image=image,
                   base_address=program.base_address,
                   entry_label=program.entry_label,
                   name=f"{program.name}+bolt")
