"""Program data model: functions, basic blocks, and the laid-out image.

A :class:`Program` owns the ground truth that only the *workload* may know:
where every instruction starts, what every branch's static target is, and
which block follows which.  The front-end simulator never reads this
directly -- it sees only the byte image (for shadow decoding) and the
dynamic trace (for the correct-path oracle); ground truth is used for
layout, trace generation and for *auditing* (e.g. counting how many SBB
insertions were bogus).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.isa.branch import BranchKind
from repro.isa.instruction import Instruction

#: Instruction-cache line size used throughout (Table 1: 64B lines).
LINE_SIZE = 64


def line_of(pc: int) -> int:
    """Cache-line address (line-aligned byte address) containing ``pc``."""
    return pc & ~(LINE_SIZE - 1)


@dataclass
class BasicBlock:
    """A straight-line run of instructions ended by exactly one branch.

    ``label`` is a program-unique id used as a patch target before layout.
    ``fallthrough_label`` is the block reached when a conditional
    terminator is not taken (always the physically-next block of the same
    function), or the block that a ``call`` returns into.
    ``indirect_targets`` lists (label, weight) candidates for indirect
    terminators; the trace generator samples among them.
    """

    label: int
    instructions: list[Instruction] = field(default_factory=list)
    fallthrough_label: int | None = None
    indirect_targets: list[tuple[int, float]] = field(default_factory=list)
    cond_taken_bias: float = 0.5
    loop_trip: int | None = None  # deterministic trip count for back-edges
    # Periodic direction pattern: bit (visit % pattern_len) of pattern_bits
    # decides taken.  Deterministic (so TAGE can learn it) yet path-diverse
    # across visits, which moves line entry/exit points around -- the
    # source of the paper's shadow-region coverage.
    pattern_bits: int | None = None
    pattern_len: int = 0
    start_pc: int = -1

    @property
    def terminator(self) -> Instruction:
        return self.instructions[-1]

    @property
    def size(self) -> int:
        return sum(ins.length for ins in self.instructions)

    @property
    def end_pc(self) -> int:
        """One past the last byte (valid only after layout)."""
        return self.start_pc + self.size

    @property
    def num_instructions(self) -> int:
        return len(self.instructions)


@dataclass
class Function:
    """An ordered list of blocks; ``blocks[0]`` is the entry."""

    name: str
    blocks: list[BasicBlock] = field(default_factory=list)
    hot: bool = False
    call_count: int = 0  # filled by profiling for the BOLT pass

    @property
    def entry_label(self) -> int:
        return self.blocks[0].label

    @property
    def size(self) -> int:
        return sum(block.size for block in self.blocks)


@dataclass
class GroundTruthInstruction:
    """Audit record for one laid-out instruction."""

    pc: int
    length: int
    kind: BranchKind
    target_pc: int | None


class Program:
    """A laid-out program: image bytes + CFG + ground-truth maps."""

    def __init__(self, functions: list[Function], image: bytes,
                 base_address: int, entry_label: int,
                 name: str = "program"):
        self.name = name
        self.functions = functions
        self.image = image
        self.base_address = base_address
        self.entry_label = entry_label

        self.block_by_label: dict[int, BasicBlock] = {}
        self.function_of_label: dict[int, Function] = {}
        for function in functions:
            for block in function.blocks:
                if block.label in self.block_by_label:
                    raise ValueError(f"duplicate block label {block.label}")
                self.block_by_label[block.label] = block
                self.function_of_label[block.label] = function

        # Ground-truth instruction map, keyed by pc.
        self.instruction_starts: set[int] = set()
        self._truth: dict[int, GroundTruthInstruction] = {}
        for function in functions:
            for block in function.blocks:
                for ins in block.instructions:
                    self.instruction_starts.add(ins.pc)

    @property
    def size(self) -> int:
        return len(self.image)

    @property
    def entry_block(self) -> BasicBlock:
        return self.block_by_label[self.entry_label]

    def block(self, label: int) -> BasicBlock:
        return self.block_by_label[label]

    def bytes_at(self, pc: int, length: int) -> bytes:
        offset = pc - self.base_address
        return self.image[offset:offset + length]

    def is_instruction_start(self, pc: int) -> bool:
        """Ground-truth boundary check (used for bogus-branch auditing)."""
        return pc in self.instruction_starts

    # ------------------------------------------------------------------
    # Introspection helpers used by tests and reports.
    # ------------------------------------------------------------------

    def iter_blocks(self):
        for function in self.functions:
            yield from function.blocks

    def static_branch_counts(self) -> dict[BranchKind, int]:
        counts: dict[BranchKind, int] = {}
        for block in self.iter_blocks():
            kind = block.terminator.kind
            counts[kind] = counts.get(kind, 0) + 1
        return counts

    def footprint_lines(self) -> int:
        """Number of distinct cache lines the image spans."""
        first = line_of(self.base_address)
        last = line_of(self.base_address + len(self.image) - 1)
        return (last - first) // LINE_SIZE + 1

    def describe(self) -> str:
        counts = self.static_branch_counts()
        branch_text = ", ".join(
            f"{kind.value}={count}" for kind, count in sorted(
                counts.items(), key=lambda item: item[0].value)
        )
        return (
            f"Program {self.name}: {len(self.functions)} functions, "
            f"{sum(len(f.blocks) for f in self.functions)} blocks, "
            f"{len(self.image)} bytes ({self.footprint_lines()} lines); "
            f"terminators: {branch_text}"
        )
