"""Binary trace serialization.

Traces are the unit of exchange for trace-driven front-end studies; this
module gives them a compact on-disk form so experiments can reuse traces
across processes (or ship them) without regenerating programs.

Format ``SKTR`` version 1 (little endian, gzip-wrapped):

* header: magic ``SKTR`` | u16 version | u16 reserved | u64 record count
  | u64 base address hint
* per record (26 bytes): u64 block_start | u16 n_instr | u16 branch
  offset from block_start | u8 branch_len | u8 kind | u8 taken |
  u8 reserved | u64 target

``fallthrough`` and ``next_pc`` are reconstructed on load (they are
derived fields), keeping records at 26 bytes -- a 300k-record trace is
~2MB gzipped.
"""

from __future__ import annotations

import gzip
import pathlib
import struct

from repro.isa.branch import BranchKind
from repro.workloads.trace import BlockRecord

MAGIC = b"SKTR"
VERSION = 1

_HEADER = struct.Struct("<4sHHQQ")
_RECORD = struct.Struct("<QHHBBBBQ")

#: Stable on-disk encoding of branch kinds.
_KIND_TO_CODE = {
    BranchKind.DIRECT_COND: 0,
    BranchKind.DIRECT_UNCOND: 1,
    BranchKind.CALL: 2,
    BranchKind.RETURN: 3,
    BranchKind.INDIRECT_UNCOND: 4,
    BranchKind.INDIRECT_CALL: 5,
}
_CODE_TO_KIND = {code: kind for kind, code in _KIND_TO_CODE.items()}


class TraceFormatError(ValueError):
    """Raised for corrupt or unsupported trace files."""


def save_trace(records: list[BlockRecord], path: str | pathlib.Path,
               base_address: int = 0) -> None:
    """Write records to ``path`` in SKTR v1 format."""
    path = pathlib.Path(path)
    with gzip.open(path, "wb") as stream:
        stream.write(_HEADER.pack(MAGIC, VERSION, 0, len(records),
                                  base_address))
        for record in records:
            branch_offset = record.branch_pc - record.block_start
            if not 0 <= branch_offset < (1 << 16):
                raise TraceFormatError(
                    f"branch offset {branch_offset} unencodable")
            stream.write(_RECORD.pack(
                record.block_start, record.n_instr, branch_offset,
                record.branch_len, _KIND_TO_CODE[record.kind],
                int(record.taken), 0, record.target))


def load_trace(path: str | pathlib.Path) -> list[BlockRecord]:
    """Read an SKTR v1 trace back into records."""
    path = pathlib.Path(path)
    with gzip.open(path, "rb") as stream:
        header = stream.read(_HEADER.size)
        if len(header) != _HEADER.size:
            raise TraceFormatError("truncated header")
        magic, version, _, count, _base = _HEADER.unpack(header)
        if magic != MAGIC:
            raise TraceFormatError(f"bad magic {magic!r}")
        if version != VERSION:
            raise TraceFormatError(f"unsupported version {version}")
        payload = stream.read(count * _RECORD.size)
        if len(payload) != count * _RECORD.size:
            raise TraceFormatError("truncated record payload")

    records: list[BlockRecord] = []
    for index in range(count):
        (block_start, n_instr, branch_offset, branch_len, kind_code,
         taken, _, target) = _RECORD.unpack_from(
            payload, index * _RECORD.size)
        try:
            kind = _CODE_TO_KIND[kind_code]
        except KeyError:
            raise TraceFormatError(
                f"record {index}: unknown kind code {kind_code}") from None
        branch_pc = block_start + branch_offset
        fallthrough = branch_pc + branch_len
        taken_bool = bool(taken)
        records.append(BlockRecord(
            block_start=block_start, n_instr=n_instr, branch_pc=branch_pc,
            branch_len=branch_len, kind=kind, taken=taken_bool,
            target=target, fallthrough=fallthrough,
            next_pc=target if taken_bool else fallthrough))
    return records


def trace_info(path: str | pathlib.Path) -> dict:
    """Header + summary statistics without materialising semantics."""
    records = load_trace(path)
    from repro.workloads.trace import trace_statistics
    stats = trace_statistics(records)
    stats["path"] = str(path)
    return stats
