"""Control-flow trace generation.

A trace is the *correct-path oracle*: the sequence of basic blocks the
program actually executes, with each block's terminating branch outcome.
The front-end simulator replays it, making its own (possibly wrong)
predictions and paying for them; an execution-driven gem5 would discover
the same stream by executing instructions, so replaying it is equivalent
for front-end studies as long as wrong-path *fetch* effects are modelled
(the simulator does model them).

Traces are deterministic in (program, seed): the stochastic controller
that picks handler dispatches, loop trips and rare paths is seeded, so
every simulator configuration replays an identical stream.
"""

from __future__ import annotations

import bisect
import itertools
import random
from dataclasses import dataclass

from repro.isa.branch import BranchKind
from repro.workloads.program import BasicBlock, Program


@dataclass(frozen=True, slots=True)
class BlockRecord:
    """One executed basic block and its terminating branch outcome.

    ``fallthrough`` is the address immediately after the branch: the
    not-taken successor for conditionals and the return address for calls.
    ``target`` is where control actually went when ``taken`` (branch
    target, call entry, return address or indirect destination).
    ``next_pc`` is always the address of the next executed block.
    """

    block_start: int
    n_instr: int
    branch_pc: int
    branch_len: int
    kind: BranchKind
    taken: bool
    target: int
    fallthrough: int
    next_pc: int


class _IndirectChooser:
    """Weighted sampling of indirect targets with cached cumulative weights."""

    def __init__(self, block: BasicBlock, resolve):
        if not block.indirect_targets:
            raise ValueError(f"block {block.label} has no indirect targets")
        labels = [label for label, _ in block.indirect_targets]
        weights = [weight for _, weight in block.indirect_targets]
        self.targets = [resolve(label) for label in labels]
        self.cumulative = list(itertools.accumulate(weights))

    def choose(self, rng: random.Random) -> "BasicBlock":
        point = rng.random() * self.cumulative[-1]
        return self.targets[bisect.bisect_right(self.cumulative, point)]


class TraceGenerator:
    """Replays a program's CFG with a seeded stochastic controller.

    ``dispatch_run_range`` models request batching: an indirect branch
    repeats its chosen target for a sampled run length before re-sampling,
    as commercial dispatch loops do (the last-target predictor then covers
    the body of each run and only the switches mispredict).
    """

    def __init__(self, program: Program, seed: int = 0,
                 dispatch_run_range: tuple[int, int] = (2, 12)):
        self.program = program
        self.seed = seed
        self.dispatch_run_range = dispatch_run_range
        self._choosers: dict[int, _IndirectChooser] = {}

    def _chooser(self, block: BasicBlock) -> _IndirectChooser:
        chooser = self._choosers.get(block.label)
        if chooser is None:
            chooser = _IndirectChooser(block, self.program.block)
            self._choosers[block.label] = chooser
        return chooser

    def _choose_indirect(self, block: BasicBlock,
                         run_state: dict[int, tuple[BasicBlock, int]],
                         rng: random.Random, run_lo: int,
                         run_hi: int) -> BasicBlock:
        """Run-length-sticky weighted choice (request batching)."""
        state = run_state.get(block.label)
        if state is not None:
            target, remaining = state
            if remaining > 0:
                run_state[block.label] = (target, remaining - 1)
                return target
        target = self._chooser(block).choose(rng)
        run_state[block.label] = (target, rng.randint(run_lo, run_hi) - 1)
        return target

    def iter_records(self, n_records: int | None = None):
        """Yield :class:`BlockRecord` starting from the program entry.

        The generated stream is infinite when ``n_records`` is None; the
        caller decides how much to consume.
        """
        program = self.program
        rng = random.Random(self.seed ^ 0x5BB)
        block = program.entry_block
        # Call stack of (return_block, return_pc); rets that would
        # underflow (cannot happen with a well-formed main loop) restart
        # at the entry.
        stack: list[tuple[BasicBlock, int]] = []
        # Deterministic loop counters: remaining back-edge takes per block.
        loop_state: dict[int, int] = {}
        # Indirect run state: (current_target, remaining) per block label.
        run_state: dict[int, tuple[BasicBlock, int]] = {}
        run_lo, run_hi = self.dispatch_run_range
        emitted = 0

        while n_records is None or emitted < n_records:
            terminator = block.terminator
            branch_pc = terminator.pc
            branch_end = branch_pc + terminator.length
            kind = terminator.kind
            taken = True

            if kind is BranchKind.DIRECT_COND:
                if block.loop_trip is not None:
                    # Back-edge: taken (trip - 1) times, then fall through.
                    remaining = loop_state.get(block.label)
                    if remaining is None:
                        remaining = block.loop_trip - 1
                    taken = remaining > 0
                    loop_state[block.label] = (
                        remaining - 1 if taken else block.loop_trip - 1)
                elif block.pattern_bits is not None:
                    # Periodic direction pattern (deterministic).
                    visit = loop_state.get(block.label, 0)
                    taken = bool((block.pattern_bits >> visit) & 1)
                    loop_state[block.label] = (visit + 1) % block.pattern_len
                else:
                    taken = rng.random() < block.cond_taken_bias
                target_block = program.block(terminator.target_label)
                if taken:
                    next_block = target_block
                else:
                    next_block = program.block(block.fallthrough_label)
                actual_target = target_block.start_pc
            elif kind is BranchKind.DIRECT_UNCOND:
                next_block = program.block(terminator.target_label)
                actual_target = next_block.start_pc
            elif kind is BranchKind.CALL:
                next_block = program.block(terminator.target_label)
                actual_target = next_block.start_pc
                return_block = program.block(block.fallthrough_label)
                stack.append((return_block, branch_end))
            elif kind is BranchKind.INDIRECT_CALL:
                next_block = self._choose_indirect(block, run_state, rng,
                                                   run_lo, run_hi)
                actual_target = next_block.start_pc
                return_block = program.block(block.fallthrough_label)
                stack.append((return_block, branch_end))
            elif kind is BranchKind.INDIRECT_UNCOND:
                next_block = self._choose_indirect(block, run_state, rng,
                                                   run_lo, run_hi)
                actual_target = next_block.start_pc
            elif kind is BranchKind.RETURN:
                if stack:
                    next_block, _ = stack.pop()
                else:  # pragma: no cover - main never returns
                    next_block = program.entry_block
                actual_target = next_block.start_pc
            else:  # pragma: no cover - blocks always end in a branch
                raise AssertionError(f"non-branch terminator {kind}")

            yield BlockRecord(
                block_start=block.start_pc,
                n_instr=block.num_instructions,
                branch_pc=branch_pc,
                branch_len=terminator.length,
                kind=kind,
                taken=taken,
                target=actual_target,
                fallthrough=branch_end,
                next_pc=next_block.start_pc if taken else branch_end,
            )
            emitted += 1
            block = next_block

    def records(self, n_records: int) -> list[BlockRecord]:
        """Materialise ``n_records`` records (deterministic per seed)."""
        return list(self.iter_records(n_records))


def trace_statistics(records: list[BlockRecord]) -> dict[str, float]:
    """Summary statistics used by tests and workload reports."""
    if not records:
        return {"records": 0, "instructions": 0}
    instructions = sum(record.n_instr for record in records)
    by_kind: dict[str, int] = {}
    taken = 0
    distinct_branches: set[int] = set()
    for record in records:
        by_kind[record.kind.value] = by_kind.get(record.kind.value, 0) + 1
        taken += record.taken
        distinct_branches.add(record.branch_pc)
    stats: dict[str, float] = {
        "records": len(records),
        "instructions": instructions,
        "instr_per_block": instructions / len(records),
        "taken_fraction": taken / len(records),
        "distinct_branch_pcs": len(distinct_branches),
    }
    for kind, count in by_kind.items():
        stats[f"frac_{kind}"] = count / len(records)
    return stats
