"""Memoisation of generated programs and traces.

Experiments sweep dozens of front-end configurations over the same
(workload, seed) pair; regenerating a megabyte program or a half-million
record trace per configuration would dominate runtime.  The cache keys on
everything that affects the artefact and nothing else.

The cache is in-process only: programs are cheap enough to rebuild per
Python session, and pickling them would just risk staleness.
"""

from __future__ import annotations

from repro.caching import CacheStats, LRUCache
from repro.workloads.bolt import bolt_optimize
from repro.workloads.codegen import ProgramGenerator
from repro.workloads.compiled import DEFAULT_LINE_SIZES, CompiledTrace
from repro.workloads.profiles import get_profile
from repro.workloads.program import Program
from repro.workloads.trace import BlockRecord, TraceGenerator


class WorkloadCache:
    """Caches programs, materialised traces and compiled traces.

    Programs are small and kept unbounded; traces are large, so only the
    ``max_traces`` most recently *used* survive (genuine LRU: a cache hit
    refreshes the trace's recency).  Compiled traces share the same bound
    and additionally own OS resources (shared-memory segments once
    published), so eviction *closes* them -- no ``/dev/shm`` handle
    outlives its cache entry.  All caches count hits, misses and
    evictions -- see :meth:`stats`.
    """

    def __init__(self, max_traces: int = 4):
        self._programs = LRUCache(maxsize=None)
        self._traces = LRUCache(maxsize=max_traces)
        self._compiled = LRUCache(
            maxsize=max_traces,
            on_evict=lambda _key, trace: trace.close())
        self._max_traces = max_traces

    def program(self, workload: str, seed: int = 0,
                bolted: bool = False) -> Program:
        key = (workload, seed, bolted)
        cached = self._programs.get(key)
        if cached is None:
            profile = get_profile(workload)
            cached = ProgramGenerator(profile, seed=seed).generate()
            if bolted:
                cached = bolt_optimize(cached, seed=seed)
            self._programs[key] = cached
        return cached

    def trace(self, workload: str, n_records: int, seed: int = 0,
              trace_seed: int = 0, bolted: bool = False) -> list[BlockRecord]:
        key = (workload, seed, bolted, trace_seed, n_records)
        cached = self._traces.get(key)
        if cached is None:
            program = self.program(workload, seed=seed, bolted=bolted)
            profile = get_profile(workload)
            cached = TraceGenerator(
                program, seed=trace_seed,
                dispatch_run_range=profile.dispatch_run_range,
            ).records(n_records)
            self._traces[key] = cached
        return cached

    def compiled(self, workload: str, n_records: int, seed: int = 0,
                 trace_seed: int = 0, bolted: bool = False,
                 ) -> CompiledTrace:
        """The flat-array lowering of :meth:`trace` (memoised).

        Key and content are exactly the object trace's: compiling the
        cached record list yields byte-identical columns for the same
        (program, seed) in any process.  Line-size-dependent derived
        columns are precomputed for the stock 64-byte lines and derived
        lazily (and memoised per instance) for any other size.
        """
        key = (workload, seed, bolted, trace_seed, n_records)
        cached = self._compiled.get(key)
        if cached is None or cached.closed:
            records = self.trace(workload, n_records, seed=seed,
                                 trace_seed=trace_seed, bolted=bolted)
            cached = CompiledTrace.from_records(
                records, line_sizes=DEFAULT_LINE_SIZES)
            self._compiled[key] = cached
        return cached

    def stats(self) -> dict[str, CacheStats]:
        """Hit/miss/eviction counters for all three caches."""
        return {"programs": self._programs.stats,
                "traces": self._traces.stats,
                "compiled": self._compiled.stats}

    def clear(self) -> None:
        self._programs.clear()
        self._traces.clear()
        # LRUCache.clear does not run eviction callbacks; close the
        # compiled traces first so shared-memory segments are released.
        for key in list(self._compiled):
            trace = self._compiled.peek(key)
            if trace is not None:
                trace.close()
        self._compiled.clear()


#: Process-wide default cache used by the harness.
GLOBAL_CACHE = WorkloadCache()


def build_program(workload: str, seed: int = 0, bolted: bool = False) -> Program:
    """Convenience accessor against the global cache."""
    return GLOBAL_CACHE.program(workload, seed=seed, bolted=bolted)


def build_trace(workload: str, n_records: int, seed: int = 0,
                trace_seed: int = 0, bolted: bool = False) -> list[BlockRecord]:
    """Convenience accessor against the global cache."""
    return GLOBAL_CACHE.trace(workload, n_records, seed=seed,
                              trace_seed=trace_seed, bolted=bolted)


def build_compiled_trace(workload: str, n_records: int, seed: int = 0,
                         trace_seed: int = 0,
                         bolted: bool = False) -> CompiledTrace:
    """Convenience accessor against the global cache."""
    return GLOBAL_CACHE.compiled(workload, n_records, seed=seed,
                                 trace_seed=trace_seed, bolted=bolted)
