"""Synthetic workload substrate.

The paper evaluates Skia on 16 commercial client/server workloads with
multi-hundred-kilobyte instruction footprints (Table 2).  Those binaries
and their gem5 checkpoints are not reproducible offline, so this package
generates synthetic *programs* (real byte images in the `repro.isa`
encoding, with functions, basic blocks and patched branch targets) and
*control-flow traces* (the correct-path oracle the front-end simulator
replays), with one calibrated profile per paper workload.

The programs are built around a dispatch loop -- the dominant structure of
the paper's server workloads: a hot main loop indirect-calls into a large,
Zipf-weighted pool of handler functions, which call into shared library
helpers.  The Zipf tail produces exactly the paper's "cold branches":
branches that recur throughout execution but are separated by enough other
branches to be evicted from the BTB between recurrences, while their cache
lines stay hot because hot and cold functions are interleaved in layout and
share lines.
"""

from repro.workloads.program import BasicBlock, Function, Program
from repro.workloads.codegen import ProgramGenerator
from repro.workloads.trace import BlockRecord, TraceGenerator
from repro.workloads.profiles import (
    PROFILES,
    WORKLOAD_NAMES,
    WorkloadProfile,
    get_profile,
)
from repro.workloads.bolt import bolt_optimize
from repro.workloads.cache import (
    WorkloadCache,
    build_compiled_trace,
    build_program,
    build_trace,
)
from repro.workloads.compiled import CompiledTrace, compile_trace
from repro.workloads.analysis import characterise, shadow_geometry
from repro.workloads.traceio import load_trace, save_trace

__all__ = [
    "BasicBlock",
    "Function",
    "Program",
    "ProgramGenerator",
    "BlockRecord",
    "TraceGenerator",
    "PROFILES",
    "WORKLOAD_NAMES",
    "WorkloadProfile",
    "get_profile",
    "bolt_optimize",
    "WorkloadCache",
    "CompiledTrace",
    "compile_trace",
    "build_compiled_trace",
    "build_program",
    "build_trace",
    "characterise",
    "shadow_geometry",
    "load_trace",
    "save_trace",
]
