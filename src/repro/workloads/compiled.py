"""Compiled traces: the flat-array fast path for trace replay.

A generated trace is a list of :class:`~repro.workloads.trace.BlockRecord`
dataclass instances.  Replaying it is the simulator's hot loop, and a grid
run replays the *same* trace through dozens of configurations -- so the
object representation pays its attribute-access and per-record arithmetic
tax over and over, and every parallel worker used to re-generate the trace
from scratch in its own process.

:class:`CompiledTrace` lowers a trace **once** into columnar
``array('q')`` storage:

* one 64-bit column per :class:`BlockRecord` field (``kind`` as a small
  integer code, ``taken`` as 0/1), laid out contiguously so the whole
  trace serialises to a single buffer;
* precomputed *derived* columns keyed by cache-line size -- the branch
  line address, the block's first line and its line count -- which the
  engine's per-record prefetch arithmetic otherwise recomputes for every
  (workload, config) cell;
* a content fingerprint (SHA-256 over the column bytes), so byte-identity
  of two compilations of the same (program, seed) is checkable across
  processes.

The single-buffer layout buys **zero-copy distribution**: the compiling
process publishes the buffer in a :mod:`multiprocessing.shared_memory`
segment (or, where POSIX shared memory is unavailable, spills it to a
``.ctrace`` file under the cache directory) and workers attach read-only
views instead of re-generating or unpickling anything.  A grid run
generates each trace exactly once per host.

Disable the whole layer with ``REPRO_NO_COMPILED_TRACES=1`` -- the
harness then replays object traces exactly as before (the engine keeps
both paths bit-identical; see ``tests/frontend/test_compiled_equivalence``).
"""

from __future__ import annotations

import atexit
import hashlib
import json
import os
import secrets
import struct
import tempfile
from array import array
from pathlib import Path
from typing import Iterable, Sequence

from repro.isa.branch import BranchKind
from repro.obs.profiler import PROFILER
from repro.workloads.trace import BlockRecord

try:  # numpy accelerates decode-table construction; plain Python works.
    import numpy as _np
except ImportError:  # pragma: no cover - exercised via monkeypatch
    _np = None

#: Wire order of the branch-kind codes.  The compiled ``kind`` column
#: stores indices into this tuple; the header records the names so a
#: buffer compiled by a different vocabulary can never be misread.
KIND_BY_CODE: tuple[BranchKind, ...] = tuple(BranchKind)
CODE_BY_KIND: dict[BranchKind, int] = {
    kind: code for code, kind in enumerate(KIND_BY_CODE)}

#: Core columns, in buffer order; one per BlockRecord field.
CORE_COLUMNS: tuple[str, ...] = (
    "block_start", "n_instr", "branch_pc", "branch_len", "kind",
    "taken", "target", "fallthrough", "next_pc")

#: Derived columns materialised per line size, in buffer order.
DERIVED_COLUMNS: tuple[str, ...] = ("first_line", "n_lines")

#: Line sizes whose derived columns are precomputed at compile time
#: (every stock configuration uses 64-byte lines; other sizes are
#: derived lazily per process and never shipped).
DEFAULT_LINE_SIZES: tuple[int, ...] = (64,)

_MAGIC = b"CTRC"
_FORMAT_VERSION = 1
_HEADER = struct.Struct("<4sII")  # magic, format version, json length

_ITEM = array("q").itemsize
assert _ITEM == 8, "compiled traces require 64-bit array('q') items"


def compiled_traces_enabled() -> bool:
    """False when ``REPRO_NO_COMPILED_TRACES`` is set truthy."""
    return os.environ.get("REPRO_NO_COMPILED_TRACES", "").lower() not in (
        "1", "true", "yes", "on")


def batch_enabled() -> bool:
    """Whether the batched simulation kernel may be used (default on).

    ``REPRO_BATCH=0`` forces every cell down the per-record object /
    compiled loops.  The flag lives here rather than in ``frontend``
    because the harness consults it next to
    :func:`compiled_traces_enabled` and ``workloads`` must not import
    ``frontend``.
    """
    return os.environ.get("REPRO_BATCH", "").lower() not in (
        "0", "false", "no", "off")


def fastforward_enabled() -> bool:
    """Whether steady-state fast-forwarding may be used (default on).

    ``REPRO_FASTFORWARD=0`` forces every cell to step all records.  Like
    :func:`batch_enabled`, the flag lives here because the harness and
    CLI consult it next to the other trace-path gates.
    """
    return os.environ.get("REPRO_FASTFORWARD", "").lower() not in (
        "0", "false", "no", "off")


# ----------------------------------------------------------------------
# Column-level period detection (the fast-forward layer's first gate)
# ----------------------------------------------------------------------

def _common_suffix_records(a, b, width: int = _ITEM) -> int:
    """Length in records of the longest common suffix of two columns.

    ``a`` and ``b`` are equal-length byte views of column slices.
    Compared in 64 KiB blocks from the end (C-speed), with a per-byte
    scan only inside the first differing block.
    """
    pos = len(a)
    matched = 0
    block = 1 << 16
    while pos > 0:
        start = max(0, pos - block)
        if a[start:pos] == b[start:pos]:
            matched += pos - start
            pos = start
            continue
        for i in range(pos - 1, start - 1, -1):
            if a[i] != b[i]:
                matched += pos - 1 - i
                break
        break
    return matched // width


def _verify_period(columns, period: int, n_records: int) -> int | None:
    """Preamble length if ``period`` holds for every column, else None.

    A trace has period ``p`` with preamble ``m`` when record ``i``
    equals record ``i + p`` for all ``i >= m``; per column that is a
    common suffix of the column against itself shifted by ``p``.
    """
    preamble = 0
    for column in columns:
        view = memoryview(column).cast("B")
        suffix = _common_suffix_records(
            view[:(n_records - period) * _ITEM], view[period * _ITEM:])
        preamble = max(preamble, (n_records - period) - suffix)
        if n_records - preamble < 2 * period:
            return None
    return preamble


def _detect_period(columns, probe_column,
                   n_records: int) -> tuple[int, int] | None:
    """``(period, preamble)`` of a columnar trace, or None.

    Candidate periods come from re-occurrences of the trace's final
    records (a multi-record needle, so values that recur many times
    per period do not flood the search) in ``probe_column``, found
    backwards with ``bytes.rfind`` so the smallest period is tried
    first; each candidate is verified exactly against every column.  A
    detected period must repeat at least twice past the preamble,
    otherwise "periodicity" would be a single coincidence.
    """
    if n_records < 4:
        return None
    probe = bytes(memoryview(probe_column))
    tail = min(16, n_records // 2)
    needle = probe[(n_records - tail) * _ITEM:]
    end = n_records * _ITEM - 1  # excludes only the trivial self-match
    attempts = 0
    scans = 0
    while attempts < 8 and scans < 64:
        scans += 1
        j = probe.rfind(needle, 0, end)
        if j < 0:
            return None
        end = j + len(needle) - 1
        if j % _ITEM:
            continue  # unaligned coincidence, keep scanning
        period = (n_records - tail) - j // _ITEM
        if period > n_records // 2:
            return None
        attempts += 1
        preamble = _verify_period(columns, period, n_records)
        if preamble is not None:
            return period, preamble
    return None


def _period_of_columns(columns: dict[str, Sequence[int]],
                       n_records: int) -> tuple[int, int] | None:
    ordered = [columns[name] for name in CORE_COLUMNS]
    return _detect_period(ordered, columns["branch_pc"], n_records)


def period_of_records(records: Sequence[BlockRecord],
                      ) -> tuple[int, int] | None:
    """``(period, preamble)`` of an object trace, or None.

    Lowers the records into throwaway columns first; one O(n) pass,
    cheap relative to object-loop stepping of the same trace.
    """
    cols = {name: array("q") for name in CORE_COLUMNS}
    code_of = CODE_BY_KIND
    for record in records:
        cols["block_start"].append(record.block_start)
        cols["n_instr"].append(record.n_instr)
        cols["branch_pc"].append(record.branch_pc)
        cols["branch_len"].append(record.branch_len)
        cols["kind"].append(code_of[record.kind])
        cols["taken"].append(1 if record.taken else 0)
        cols["target"].append(record.target)
        cols["fallthrough"].append(record.fallthrough)
        cols["next_pc"].append(record.next_pc)
    return _period_of_columns(cols, len(records))


def _shared_memory_module():
    """The stdlib shared-memory module, or None where unsupported."""
    try:
        from multiprocessing import shared_memory
    except ImportError:  # pragma: no cover - non-POSIX fallback path
        return None
    return shared_memory


def shared_memory_available() -> bool:
    """True when zero-copy segments can be created on this platform."""
    return _shared_memory_module() is not None


def _unregister_from_resource_tracker(name: str) -> None:
    """Detach a worker-side segment from the resource tracker.

    Attaching registers the segment with the per-process tracker (until
    Python 3.13's ``track=False``), which would unlink it when the
    *worker* exits even though the owner still serves other workers.
    """
    try:  # pragma: no cover - tracker internals, best effort
        from multiprocessing import resource_tracker
        resource_tracker.unregister(f"/{name}", "shared_memory")
    except Exception:
        pass


#: Owned (created, not attached) segments still alive in this process;
#: unlinked at interpreter exit so a crashed grid run cannot leak
#: /dev/shm segments past process lifetime.
_LIVE_OWNED: dict[int, "CompiledTrace"] = {}


def _cleanup_owned_segments() -> None:  # pragma: no cover - atexit path
    for trace in list(_LIVE_OWNED.values()):
        trace.close()


atexit.register(_cleanup_owned_segments)


class TraceDecodeTable:
    """Fully decoded per-record columns for the batched kernel.

    The compiled columns are int64 buffers; the per-record loop still
    pays to re-derive booleans, kind objects and line arithmetic from
    them on every (config, seed) lane.  This table decodes a trace
    **once per (trace, line_size)** into plain Python lists -- the
    fastest thing to index from an interpreted loop -- so every lane
    that shares the trace shares the decode:

    ``kind``            :class:`BranchKind` objects (not codes);
    ``taken``           bools;
    ``exit_pc``         ``branch_pc + branch_len`` (the tail-decode
                        boundary Skia probes on taken exits);
    ``branch_line``     ``branch_pc & ~(line_size-1)`` (the residency
                        probe the BPU makes per record);
    ``entry_offset``    ``block_start % line_size`` (zero means head
                        decode is structurally skipped);
    ``tail_aligned``    ``exit_pc % line_size == 0`` (true means tail
                        decode is structurally a no-op).

    Tables derive purely from the content-addressed columns, so the
    existing fingerprint is their invalidation rule: new trace bytes
    mean a new ``CompiledTrace`` and therefore fresh tables.  They are
    never serialised -- a worker attaching a shared buffer rebuilds its
    table lazily on first batched use.
    """

    __slots__ = ("n_records", "line_size", "block_start", "n_instr",
                 "branch_pc", "exit_pc", "kind", "kind_code", "taken",
                 "target", "fallthrough", "next_pc", "first_line",
                 "n_lines", "branch_line", "entry_offset", "tail_aligned",
                 "_lane_cols")

    def __init__(self, trace: "CompiledTrace", line_size: int):
        self.n_records = n = trace.n_records
        self.line_size = line_size
        first_line, n_lines = trace.derived(line_size)
        col = trace.column
        if _np is not None:
            i64 = lambda c: _np.frombuffer(c, dtype=_np.int64)  # noqa: E731
            block_start = i64(col("block_start"))
            branch_pc = i64(col("branch_pc"))
            exit_pc = branch_pc + i64(col("branch_len"))
            mask = ~(line_size - 1)
            self.block_start = block_start.tolist()
            self.n_instr = i64(col("n_instr")).tolist()
            self.branch_pc = branch_pc.tolist()
            self.exit_pc = exit_pc.tolist()
            codes = i64(col("kind")).tolist()
            self.taken = i64(col("taken")).astype(bool).tolist()
            self.target = i64(col("target")).tolist()
            self.fallthrough = i64(col("fallthrough")).tolist()
            self.next_pc = i64(col("next_pc")).tolist()
            self.first_line = i64(first_line).tolist()
            self.n_lines = i64(n_lines).tolist()
            self.branch_line = (branch_pc & mask).tolist()
            self.entry_offset = (block_start & (line_size - 1)).tolist()
            self.tail_aligned = (exit_pc & (line_size - 1) == 0).tolist()
        else:
            mask = ~(line_size - 1)
            self.block_start = list(col("block_start"))
            self.n_instr = list(col("n_instr"))
            self.branch_pc = list(col("branch_pc"))
            self.exit_pc = [pc + ln for pc, ln in
                            zip(col("branch_pc"), col("branch_len"))]
            codes = list(col("kind"))
            self.taken = [bool(t) for t in col("taken")]
            self.target = list(col("target"))
            self.fallthrough = list(col("fallthrough"))
            self.next_pc = list(col("next_pc"))
            self.first_line = list(first_line)
            self.n_lines = list(n_lines)
            self.branch_line = [pc & mask for pc in self.branch_pc]
            self.entry_offset = [s & (line_size - 1)
                                 for s in self.block_start]
            self.tail_aligned = [pc & (line_size - 1) == 0
                                 for pc in self.exit_pc]
        kinds = KIND_BY_CODE
        self.kind = [kinds[code] for code in codes]
        # Codes alongside objects: the kernel's per-kind flag tables and
        # counter accumulators index by small int, avoiding enum hashing.
        self.kind_code = codes
        # Geometry-dependent index columns (BTB set/tag, L1 set numbers)
        # cached per structure geometry by repro.frontend.batch.
        self._lane_cols: dict = {}


class CompiledTrace:
    """Columnar, shareable lowering of one materialised trace.

    Construct via :meth:`from_records` (compilation), :meth:`from_buffer`
    (zero-copy view over a serialised buffer), :meth:`attach` (worker side
    of a shared ref) or ``WorkloadCache.compiled`` (memoised).  Instances
    are immutable after construction; ``close()`` releases any buffer
    views and shared-memory handles (owner side also unlinks).
    """

    def __init__(self, n_records: int, columns: dict[str, Sequence[int]],
                 derived: dict[int, tuple[Sequence[int], Sequence[int]]],
                 fingerprint: str):
        self.n_records = n_records
        self._columns = columns
        self._derived = dict(derived)
        self._decode_tables: dict[int, TraceDecodeTable] = {}
        self.fingerprint = fingerprint
        self._views: list[memoryview] = []
        self._shm = None          # attached or owned SharedMemory
        self._owns_shm = False
        self._shared_ref: tuple[str, str] | None = None
        self._closed = False
        self._period_cache: tuple[int, int] | None | bool = False

    # ------------------------------------------------------------------
    # Compilation
    # ------------------------------------------------------------------

    @classmethod
    def from_records(cls, records: Iterable[BlockRecord],
                     line_sizes: Sequence[int] = DEFAULT_LINE_SIZES,
                     ) -> "CompiledTrace":
        """Lower ``records`` into flat columns (one pass)."""
        with PROFILER.section("trace.compile"):
            cols = {name: array("q") for name in CORE_COLUMNS}
            block_start = cols["block_start"].append
            n_instr = cols["n_instr"].append
            branch_pc = cols["branch_pc"].append
            branch_len = cols["branch_len"].append
            kind = cols["kind"].append
            taken = cols["taken"].append
            target = cols["target"].append
            fallthrough = cols["fallthrough"].append
            next_pc = cols["next_pc"].append
            code_of = CODE_BY_KIND
            n = 0
            for record in records:
                block_start(record.block_start)
                n_instr(record.n_instr)
                branch_pc(record.branch_pc)
                branch_len(record.branch_len)
                kind(code_of[record.kind])
                taken(1 if record.taken else 0)
                target(record.target)
                fallthrough(record.fallthrough)
                next_pc(record.next_pc)
                n += 1
            trace = cls(n, cols, {}, cls._fingerprint_of(n, cols))
            for line_size in line_sizes:
                trace.derived(line_size)
                if batch_enabled():
                    trace.decode_table(line_size)
        return trace

    @staticmethod
    def _fingerprint_of(n: int, columns: dict[str, Sequence[int]]) -> str:
        digest = hashlib.sha256()
        digest.update(str(n).encode())
        for name in CORE_COLUMNS:
            digest.update(name.encode())
            column = columns[name]
            digest.update(column.tobytes() if isinstance(column, array)
                          else bytes(column))
        return digest.hexdigest()

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------

    def column(self, name: str) -> Sequence[int]:
        """One core column (an ``array('q')`` or an int64 memoryview)."""
        return self._columns[name]

    def derived(self, line_size: int) -> tuple[Sequence[int], Sequence[int]]:
        """``(first_line, n_lines)`` columns for ``line_size``.

        Precompiled sizes return the stored (possibly shared) columns;
        other sizes are computed once per instance and memoised.  The
        arithmetic is exactly the engine's historical per-record code::

            first_line = block_start & ~(line_size - 1)
            last_line  = (branch_pc + branch_len - 1) & ~(line_size - 1)
            n_lines    = (last_line - first_line) // line_size + 1
        """
        cached = self._derived.get(line_size)
        if cached is not None:
            return cached
        if line_size <= 0 or line_size & (line_size - 1):
            raise ValueError(f"line_size must be a power of two, "
                             f"got {line_size}")
        line_mask = ~(line_size - 1)
        first_line = array("q")
        n_lines = array("q")
        append_first = first_line.append
        append_n = n_lines.append
        branch_pc = self._columns["branch_pc"]
        branch_len = self._columns["branch_len"]
        block_start = self._columns["block_start"]
        for index in range(self.n_records):
            first = block_start[index] & line_mask
            last = (branch_pc[index] + branch_len[index] - 1) & line_mask
            append_first(first)
            append_n((last - first) // line_size + 1)
        self._derived[line_size] = (first_line, n_lines)
        return self._derived[line_size]

    def decode_table(self, line_size: int) -> TraceDecodeTable:
        """The memoised :class:`TraceDecodeTable` for ``line_size``.

        Built once per (instance, line size) -- for the stock sizes at
        compile time when the batched kernel is enabled, lazily
        otherwise -- and shared by every lane replaying this trace.
        """
        table = self._decode_tables.get(line_size)
        if table is None:
            if PROFILER.enabled:
                with PROFILER.section("trace.decode_table"):
                    table = TraceDecodeTable(self, line_size)
            else:
                table = TraceDecodeTable(self, line_size)
            self._decode_tables[line_size] = table
        return table

    def period(self) -> tuple[int, int] | None:
        """``(period, preamble)`` of the column stream, or None.

        Record ``i`` equals record ``i + period`` (across every core
        column) for all ``i >= preamble``, and at least two full
        periods follow the preamble.  Detected once per instance and
        cached; the fast-forward layer and ``repro workloads period``
        both read it from here.
        """
        if self._period_cache is not False:
            return self._period_cache
        with PROFILER.section("trace.period"):
            self._period_cache = _period_of_columns(
                self._columns, self.n_records)
        return self._period_cache

    def records(self) -> list[BlockRecord]:
        """Re-materialise the object representation (tests, tooling)."""
        cols = [self._columns[name] for name in CORE_COLUMNS]
        kinds = KIND_BY_CODE
        out = []
        for i in range(self.n_records):
            (block_start, n_instr, branch_pc, branch_len, kind, taken,
             target, fallthrough, next_pc) = (col[i] for col in cols)
            out.append(BlockRecord(
                block_start=block_start, n_instr=n_instr,
                branch_pc=branch_pc, branch_len=branch_len,
                kind=kinds[kind], taken=bool(taken), target=target,
                fallthrough=fallthrough, next_pc=next_pc))
        return out

    def __len__(self) -> int:
        return self.n_records

    # ------------------------------------------------------------------
    # Serialisation: single buffer, zero-copy readable
    # ------------------------------------------------------------------

    def _precompiled_line_sizes(self) -> tuple[int, ...]:
        return tuple(sorted(self._derived))

    def nbytes(self) -> int:
        """Exact size of :meth:`to_bytes` output."""
        line_sizes = self._precompiled_line_sizes()
        n_columns = len(CORE_COLUMNS) + len(DERIVED_COLUMNS) * len(line_sizes)
        header = self._header_bytes(line_sizes)
        return len(header) + n_columns * self.n_records * _ITEM

    def _header_bytes(self, line_sizes: Sequence[int]) -> bytes:
        meta = {
            "n": self.n_records,
            "columns": list(CORE_COLUMNS),
            "derived": list(DERIVED_COLUMNS),
            "line_sizes": list(line_sizes),
            "kinds": [kind.name for kind in KIND_BY_CODE],
            "fingerprint": self.fingerprint,
        }
        blob = json.dumps(meta, sort_keys=True).encode()
        prefix = _HEADER.pack(_MAGIC, _FORMAT_VERSION, len(blob))
        header = prefix + blob
        pad = (-len(header)) % _ITEM  # 8-align the column region
        return header + b"\0" * pad

    def _iter_column_arrays(self, line_sizes: Sequence[int]):
        for name in CORE_COLUMNS:
            yield self._columns[name]
        for line_size in line_sizes:
            first_line, n_lines = self.derived(line_size)
            yield first_line
            yield n_lines

    def to_bytes(self) -> bytes:
        """Serialise header + columns into one buffer."""
        line_sizes = self._precompiled_line_sizes()
        parts = [self._header_bytes(line_sizes)]
        for column in self._iter_column_arrays(line_sizes):
            parts.append(column.tobytes() if isinstance(column, array)
                         else bytes(column))
        return b"".join(parts)

    @classmethod
    def from_buffer(cls, buffer) -> "CompiledTrace":
        """Zero-copy view over a buffer produced by :meth:`to_bytes`.

        The returned trace's columns are int64 memoryviews into
        ``buffer``; nothing is copied.  The caller keeps the buffer (or
        its shared-memory segment) alive; ``close()`` releases the views.
        """
        view = memoryview(buffer)
        magic, version, meta_len = _HEADER.unpack_from(view, 0)
        if magic != _MAGIC:
            raise ValueError("not a compiled trace buffer")
        if version != _FORMAT_VERSION:
            raise ValueError(f"compiled trace format {version}; "
                             f"this build reads {_FORMAT_VERSION}")
        meta_start = _HEADER.size
        meta = json.loads(bytes(view[meta_start:meta_start + meta_len]))
        if meta["columns"] != list(CORE_COLUMNS) or \
                meta["kinds"] != [kind.name for kind in KIND_BY_CODE]:
            raise ValueError("compiled trace schema does not match this "
                             "build's column/kind vocabulary")
        n = meta["n"]
        offset = meta_start + meta_len
        offset += (-offset) % _ITEM
        column_bytes = n * _ITEM

        views: list[memoryview] = []

        def take() -> memoryview:
            nonlocal offset
            column = view[offset:offset + column_bytes].cast("q")
            views.append(column)
            offset += column_bytes
            return column

        columns = {name: take() for name in CORE_COLUMNS}
        derived = {}
        for line_size in meta["line_sizes"]:
            derived[line_size] = (take(), take())
        trace = cls(n, columns, derived, meta["fingerprint"])
        trace._views = views
        trace._views.append(view)
        return trace

    # ------------------------------------------------------------------
    # Zero-copy sharing
    # ------------------------------------------------------------------

    def shared_ref(self, spill_dir: str | os.PathLike | None = None,
                   ) -> tuple[str, str]:
        """Publish this trace for other processes; returns ``(kind, ref)``.

        ``("shm", name)`` -- a POSIX shared-memory segment holding the
        serialised buffer; workers attach with :meth:`attach` and read
        the columns in place.  Created once per instance and reused for
        every later batch; :meth:`close` (or cache eviction, or interpreter
        exit) unlinks it.

        ``("file", path)`` -- the fallback where shared memory is
        unavailable: the buffer is spilled to ``<spill_dir>/<fp>.ctrace``
        and workers map it read-only (page-cache shared).
        """
        if self._shared_ref is not None:
            return self._shared_ref
        shared_memory = _shared_memory_module()
        if shared_memory is not None:
            payload = self.to_bytes()
            name = f"repro_ctrace_{os.getpid():x}_{secrets.token_hex(6)}"
            shm = shared_memory.SharedMemory(name=name, create=True,
                                             size=len(payload))
            shm.buf[:len(payload)] = payload
            self._shm = shm
            self._owns_shm = True
            _LIVE_OWNED[id(self)] = self
            self._shared_ref = ("shm", shm.name)
        else:  # pragma: no cover - exercised via the spill_path tests
            self._shared_ref = ("file", str(self.spill(spill_dir)))
        return self._shared_ref

    def spill(self, spill_dir: str | os.PathLike | None = None) -> Path:
        """Write the serialised buffer to the compiled-trace spill area.

        Content-addressed by fingerprint, written atomically; an existing
        spill for the same fingerprint is reused as-is.  ``make clean``
        sweeps the directory.
        """
        root = Path(spill_dir) if spill_dir is not None else \
            default_spill_dir()
        root.mkdir(parents=True, exist_ok=True)
        path = root / f"{self.fingerprint}.ctrace"
        if path.exists():
            return path
        descriptor, tmp_name = tempfile.mkstemp(
            dir=root, prefix=".tmp-", suffix=".ctrace")
        try:
            with os.fdopen(descriptor, "wb") as handle:
                handle.write(self.to_bytes())
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        return path

    @classmethod
    def attach(cls, ref: tuple[str, str]) -> "CompiledTrace":
        """Worker side of :meth:`shared_ref`: map and view, no copy."""
        kind, location = ref
        with PROFILER.section("trace.attach"):
            if kind == "shm":
                shared_memory = _shared_memory_module()
                if shared_memory is None:  # pragma: no cover - defensive
                    raise RuntimeError(
                        "shared memory unavailable in this process")
                shm = shared_memory.SharedMemory(name=location)
                # Attaching re-registers the segment with this process's
                # resource tracker, which would unlink it when *this*
                # process exits even though the owner is still serving
                # other workers.  Detach the registration -- except when
                # the owner is this very process (tests attach in-process;
                # the owner's registration must survive so unlink pairs).
                owned_here = any(
                    trace._shared_ref == ref
                    for trace in _LIVE_OWNED.values())
                if not owned_here:
                    _unregister_from_resource_tracker(location)
                trace = cls.from_buffer(shm.buf)
                trace._shm = shm
                return trace
            if kind == "file":
                # One read into process memory; the OS page cache shares
                # the underlying bytes between workers on re-reads.
                return cls.from_buffer(Path(location).read_bytes())
        raise ValueError(f"unknown compiled-trace ref kind {kind!r}")

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def close(self) -> None:
        """Release buffer views and shared-memory handles.

        Owner side also unlinks the segment, so after ``close()`` no
        ``/dev/shm`` handle survives (the cache-eviction contract).
        Idempotent; a closed trace must not be used again.
        """
        if self._closed:
            return
        self._closed = True
        for view in self._views:
            view.release()
        self._views = []
        self._columns = {}
        self._derived = {}
        self._decode_tables = {}
        if self._shm is not None:
            shm, self._shm = self._shm, None
            shm.close()
            if self._owns_shm:
                try:
                    shm.unlink()
                except FileNotFoundError:  # pragma: no cover - raced
                    pass
                _LIVE_OWNED.pop(id(self), None)
        self._shared_ref = None

    @property
    def closed(self) -> bool:
        return self._closed


def default_spill_dir() -> Path:
    """Spill area for the no-shared-memory fallback.

    Lives under the result-store root (``REPRO_CACHE_DIR``, default
    ``.repro_cache``) in a ``compiled/`` subdirectory so ``make clean``
    and ``make clean-cache`` sweep it with the store.
    """
    root = os.environ.get("REPRO_CACHE_DIR", ".repro_cache")
    return Path(root) / "compiled"


def compile_trace(records: Iterable[BlockRecord],
                  line_sizes: Sequence[int] = DEFAULT_LINE_SIZES,
                  ) -> CompiledTrace:
    """Convenience wrapper over :meth:`CompiledTrace.from_records`."""
    return CompiledTrace.from_records(records, line_sizes=line_sizes)
