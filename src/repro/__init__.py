"""Skia: Exposing Shadow Branches -- a full Python reproduction.

Reproduces the ASPLOS 2025 paper "Exposing Shadow Branches" (Skia):
shadow branch decoding of the unused bytes in FDIP-fetched cache lines,
buffered in a small Shadow Branch Buffer probed in parallel with the BTB.

Layers (bottom-up):

* :mod:`repro.isa`       -- synthetic x86-like variable-length ISA
  (encoder + honest byte decoder);
* :mod:`repro.workloads` -- synthetic programs and control-flow traces
  calibrated per paper workload (Table 2);
* :mod:`repro.frontend`  -- decoupled FDIP front-end simulator (BTB,
  TAGE-lite, ITTAGE-lite, RAS, FTQ, 3-level I-cache, resteer timing);
* :mod:`repro.core`      -- Skia itself: Shadow Branch Decoder + Shadow
  Branch Buffer (the paper's contribution);
* :mod:`repro.harness`   -- experiment functions regenerating every
  table and figure of the paper's evaluation.

Quickstart::

    from repro import quick_compare
    result = quick_compare("voter")
    print(result.render())
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.frontend.config import FrontEndConfig, SkiaConfig
from repro.frontend.engine import FrontEndSimulator, simulate
from repro.frontend.stats import SimStats
from repro.workloads.cache import build_program, build_trace
from repro.workloads.profiles import WORKLOAD_NAMES, get_profile

__version__ = "1.0.0"

__all__ = [
    "FrontEndConfig",
    "SkiaConfig",
    "FrontEndSimulator",
    "SimStats",
    "simulate",
    "build_program",
    "build_trace",
    "get_profile",
    "WORKLOAD_NAMES",
    "quick_compare",
    "CompareResult",
    "__version__",
]


@dataclass
class CompareResult:
    """Baseline-vs-Skia comparison for one workload."""

    workload: str
    baseline: SimStats
    skia: SimStats

    @property
    def speedup(self) -> float:
        return self.skia.ipc / self.baseline.ipc - 1.0

    def render(self) -> str:
        base, skia = self.baseline, self.skia
        lines = [
            f"workload            : {self.workload}",
            f"baseline IPC        : {base.ipc:.3f}",
            f"Skia IPC            : {skia.ipc:.3f}",
            f"speedup             : {self.speedup:.2%}",
            f"L1-I MPKI           : {base.l1i_mpki:.1f}",
            f"BTB miss MPKI       : {base.btb_miss_mpki:.2f}",
            f"misses w/ L1-I hit  : {base.btb_miss_l1i_hit_fraction:.0%}",
            f"SBB hits (U/R)      : {skia.sbb_hits_u}/{skia.sbb_hits_r}",
            f"decode resteers     : {base.decode_resteers} -> "
            f"{skia.decode_resteers}",
            f"bogus insertion rate: {skia.bogus_insertion_rate:.6f}",
        ]
        return "\n".join(lines)


def quick_compare(workload: str = "voter", records: int = 160_000,
                  warmup: int = 50_000, seed: int = 0) -> CompareResult:
    """Run baseline FDIP and FDIP+Skia on one workload and compare.

    The one-call entry point used by ``examples/quickstart.py``.
    """
    program = build_program(workload, seed=seed)
    trace = build_trace(workload, records, seed=seed)
    baseline = simulate(program, trace, FrontEndConfig(), warmup=warmup,
                        seed=seed)
    skia = simulate(program, trace, FrontEndConfig(skia=SkiaConfig()),
                    warmup=warmup, seed=seed)
    return CompareResult(workload=workload, baseline=baseline, skia=skia)
